//! # slicenstitch
//!
//! Top-level façade crate for the SliceNStitch workspace — a complete Rust
//! reproduction of *"SliceNStitch: Continuous CP Decomposition of Sparse
//! Tensor Streams"* (Kwon, Park, Lee, Shin — ICDE 2021).
//!
//! This crate simply re-exports the workspace members under stable paths so
//! that examples and downstream users can depend on a single crate:
//!
//! - [`linalg`] — dense kernels (matrices, pseudoinverse, eigensolver),
//! - [`tensor`] — sparse tensor windows with fiber indexes,
//! - [`stream`] — the continuous tensor model (event-driven windows),
//! - [`core`] — the SliceNStitch CPD algorithms and engine,
//! - [`baselines`] — conventional once-per-period online CPD comparators,
//! - [`data`] — synthetic dataset generators mirroring the paper's datasets,
//! - [`runtime`] — the unified drive layer: every engine behind one
//!   `StreamingCpd` trait, plus the sharded, session-based `EnginePool`
//!   multi-stream runtime,
//! - [`codec`] — versioned binary serialization of engine snapshots and
//!   the file-backed `CheckpointStore` (pool-wide crash recovery),
//! - [`ops`] — the operability surface: in-process lifecycle event bus,
//!   per-stream/per-shard metrics registry with latency histograms, and
//!   the dead-letter quarantine that keeps a panicking engine's stream
//!   alive (reachable from a pool via `EnginePool::ops`),
//! - [`SnsError`] — the single typed error surface shared by all of the
//!   above.
//!
//! ## Architecture
//!
//! Engines (continuous [`core::SnsEngine`], periodic
//! [`baselines::BaselineEngine`]) all implement
//! [`runtime::StreamingCpd`] — prefill, ALS warm start, ingest (single
//! tuple or batch), read fitness/factors — so drivers are written once
//! against `Box<dyn StreamingCpd>`. To serve many independent tensor
//! streams from one process, [`runtime::EnginePool`] shards streams
//! across worker threads behind **bounded** command queues: clients
//! describe engines with a declarative [`runtime::EngineSpec`], open a
//! [`runtime::StreamSession`], and ingest acknowledged batches with
//! typed flow control ([`SnsError::Backpressure`]). Pooled results are
//! bitwise-identical to serial runs, and a live stream can be
//! snapshotted and restored onto another shard without perturbing its
//! trajectory (see `examples/multi_stream.rs` and
//! `tests/engine_pool.rs`).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

pub use sns_baselines as baselines;
pub use sns_codec as codec;
pub use sns_core as core;
pub use sns_data as data;
pub use sns_linalg as linalg;
pub use sns_ops as ops;
pub use sns_runtime as runtime;
pub use sns_stream as stream;
pub use sns_tensor as tensor;

pub use sns_error::SnsError;

/// Workspace version string (all member crates share one version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
