//! Criterion suite for the per-event hot path, at the Table-III default
//! scale (`R = 20`, three modes, `W = 10`).
//!
//! Groups:
//! - `per_event`: one full factor update per window event, per updater —
//!   the number the paper's microsecond claim lives or dies on;
//! - `ingest_batch`: the engine's `ingest_all` batch path (window +
//!   updater + bookkeeping), tuples/second shape;
//! - `mttkrp`: full (one mode), full (all modes via prefix/suffix), and
//!   per-row kernels;
//! - `gram_solve`: the `x = u·H†` row solve — fresh factorization per
//!   solve versus the version-keyed cached factorization;
//! - `pool_round_trip`: the same batch ingest behind a one-shard
//!   `EnginePool` session (submit → worker ingest → ack), so the
//!   command pipeline's overhead over the bare `ingest_all` loop is a
//!   number, not a claim.
//!
//! Run with `cargo bench -p sns-core --bench hot_path`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sns_core::config::Precision;
use sns_core::config::{AlgorithmKind, SnsConfig};
use sns_core::engine::SnsEngine;
use sns_core::grams::compute_grams;
use sns_core::kruskal::KruskalTensor;
use sns_core::mirror::FactorMirror;
use sns_core::mttkrp::{
    mttkrp_full, mttkrp_full_all, mttkrp_row, mttkrp_row_interleaved, mttkrp_row_par,
};
use sns_core::update::{ContinuousUpdater, Updater};
use sns_core::workspace::GramSolves;
use sns_linalg::lstsq::solve_row_sym;
use sns_runtime::{EnginePool, EngineSpec, PoolConfig, QuarantinePolicy};
use sns_stream::{ContinuousWindow, StreamTuple};
use sns_tensor::{Coord, Shape, SparseTensor};

const RANK: usize = 20;
const DIMS: [usize; 2] = [150, 150];
const WINDOW: usize = 10;
const PERIOD: u64 = 40;

/// A synthetic chronological stream over `DIMS` with mild hot spots.
fn stream(n: usize, seed: u64) -> Vec<StreamTuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            t += rng.gen_range(0..3);
            // Square the draw to skew mass toward low indices (hot rows).
            let skew = |rng: &mut StdRng, d: usize| {
                let x: f64 = rng.gen::<f64>();
                ((x * x) * d as f64) as u32
            };
            StreamTuple::new([skew(&mut rng, DIMS[0]), skew(&mut rng, DIMS[1])], 1.0, t)
        })
        .collect()
}

fn window_tensor(rng: &mut StdRng, dims: &[usize], nnz: usize) -> SparseTensor {
    let mut x = SparseTensor::new(Shape::new(dims));
    for _ in 0..nnz {
        let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
        x.add(&Coord::new(&c), rng.gen_range(1..4) as f64);
    }
    x
}

fn bench_per_event(c: &mut Criterion) {
    let tuples = stream(30_000, 7);
    let mut group = c.benchmark_group("per_event");
    group.sample_size(10);
    for kind in
        [AlgorithmKind::Vec, AlgorithmKind::Rnd, AlgorithmKind::PlusVec, AlgorithmKind::PlusRnd]
    {
        group.bench_function(BenchmarkId::new("update", kind.name()), |b| {
            b.iter_custom(|iters| {
                let config = SnsConfig { rank: RANK, theta: 20, eta: 1000.0, ..Default::default() };
                let mut dims = DIMS.to_vec();
                dims.push(WINDOW);
                let mut window = ContinuousWindow::new(&DIMS, WINDOW, PERIOD);
                let mut updater = Updater::new(kind, &dims, &config);
                let mut buf = Vec::new();
                // Pre-fill so the measured events see a realistic window.
                let (head, tail) = tuples.split_at(tuples.len() / 2);
                for tu in head {
                    buf.clear();
                    window.ingest(*tu, &mut buf).unwrap();
                }
                let mut applied = 0u64;
                let start = std::time::Instant::now();
                'outer: for tu in tail {
                    buf.clear();
                    window.ingest(*tu, &mut buf).unwrap();
                    for d in &buf {
                        updater.apply(window.tensor(), d);
                        applied += 1;
                        if applied >= iters {
                            break 'outer;
                        }
                    }
                }
                let elapsed = start.elapsed();
                // The stream is finite; if the harness asked for more
                // events than it holds, scale the measurement to the
                // requested count so elapsed/iters stays an honest
                // per-event time.
                if applied < iters {
                    elapsed.mul_f64(iters as f64 / applied.max(1) as f64)
                } else {
                    elapsed
                }
            })
        });
    }
    group.finish();
}

fn bench_ingest_batch(c: &mut Criterion) {
    let tuples = stream(30_000, 11);
    let mut group = c.benchmark_group("ingest_batch");
    group.sample_size(10);
    group.bench_function("ingest_all_plus_rnd", |b| {
        b.iter_custom(|iters| {
            let config = SnsConfig { rank: RANK, theta: 20, eta: 1000.0, ..Default::default() };
            let mut engine = SnsEngine::new(&DIMS, WINDOW, PERIOD, AlgorithmKind::PlusRnd, &config);
            let (head, tail) = tuples.split_at(tuples.len() / 2);
            for tu in head {
                engine.prefill(*tu).unwrap();
            }
            let n = (iters as usize).min(tail.len());
            let start = std::time::Instant::now();
            engine.ingest_all(&tail[..n]).unwrap();
            let elapsed = start.elapsed();
            // Scale to the requested iteration count when the finite
            // stream is shorter (see bench_per_event).
            if n < iters as usize {
                elapsed.mul_f64(iters as f64 / n.max(1) as f64)
            } else {
                elapsed
            }
        })
    });
    group.finish();
}

fn bench_mttkrp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let dims = [DIMS[0], DIMS[1], WINDOW];
    let x = window_tensor(&mut rng, &dims, 10_000);
    let k = KruskalTensor::random(&mut rng, &dims, RANK, 1.0);

    let mut group = c.benchmark_group("mttkrp");
    group.sample_size(10);
    group.bench_function("full_mode0_10k_nnz", |b| {
        b.iter(|| std::hint::black_box(mttkrp_full(&x, &k.factors, 0)))
    });
    group.bench_function("full_all_modes_10k_nnz", |b| {
        b.iter(|| std::hint::black_box(mttkrp_full_all(&x, &k.factors)))
    });
    group.bench_function("row_fiber", |b| {
        let mut out = vec![0.0; RANK];
        let mut scratch = vec![0.0; RANK];
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % DIMS[0] as u32;
            mttkrp_row(&x, &k.factors, 0, i, &mut out, &mut scratch).expect("rank-sized buffers");
            std::hint::black_box(out[0])
        })
    });
    group.bench_function("row_fiber_interleaved_f64", |b| {
        let mirror = FactorMirror::new(&k.factors, Precision::F64);
        let mut out = vec![0.0; RANK];
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % DIMS[0] as u32;
            mttkrp_row_interleaved(&x, &mirror, 0, i, &mut out).expect("rank-sized buffers");
            std::hint::black_box(out[0])
        })
    });
    group.bench_function("row_fiber_interleaved_f32", |b| {
        let mut rounded = k.factors.clone();
        for m in &mut rounded {
            for r in 0..m.rows() {
                sns_core::mirror::round_row_f32(m.row_mut(r));
            }
        }
        let mirror = FactorMirror::new(&rounded, Precision::F32);
        let mut out = vec![0.0; RANK];
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % DIMS[0] as u32;
            mttkrp_row_interleaved(&x, &mirror, 0, i, &mut out).expect("rank-sized buffers");
            std::hint::black_box(out[0])
        })
    });
    // High-rank split so the parallel path has real work per worker; the
    // serial same-rank entry isolates the thread-spawn overhead.
    let big = KruskalTensor::random(&mut rng, &dims, 128, 1.0);
    let big_mirror = FactorMirror::new(&big.factors, Precision::F64);
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("row_fiber_par_r128", threads), |b| {
            let mut out = vec![0.0; 128];
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % DIMS[0] as u32;
                mttkrp_row_par(&x, &big_mirror, 0, i, &mut out, threads)
                    .expect("rank-sized buffers");
                std::hint::black_box(out[0])
            })
        });
    }
    group.finish();
}

fn bench_gram_solve(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let dims = [DIMS[0], DIMS[1], WINDOW];
    let k = KruskalTensor::random(&mut rng, &dims, RANK, 1.0);
    let grams = compute_grams(&k.factors);
    let versions = vec![1u64; 3];
    let u: Vec<f64> = (0..RANK).map(|i| i as f64 * 0.25 - 2.0).collect();

    let mut group = c.benchmark_group("gram_solve");
    group.sample_size(10);
    group.bench_function("fresh_solve_row_sym", |b| {
        // Pre-PR shape: Hadamard + Cholesky from scratch per solve.
        let h = sns_core::grams::hadamard_except(&grams, 0, RANK);
        let mut out = vec![0.0; RANK];
        b.iter(|| {
            solve_row_sym(&h, &u, &mut out);
            std::hint::black_box(out[0])
        })
    });
    group.bench_function("cached_cold", |b| {
        // Rebuild + refactorize every solve (version always stale).
        let mut ws = GramSolves::new(3, RANK);
        let mut out = vec![0.0; RANK];
        b.iter(|| {
            ws.invalidate();
            ws.solve(&grams, &versions, 0, &u, &mut out);
            std::hint::black_box(out[0])
        })
    });
    group.bench_function("cached_warm", |b| {
        // Steady state: versions unchanged, factorization reused.
        let mut ws = GramSolves::new(3, RANK);
        let mut out = vec![0.0; RANK];
        ws.solve(&grams, &versions, 0, &u, &mut out);
        b.iter(|| {
            ws.solve(&grams, &versions, 0, &u, &mut out);
            std::hint::black_box(out[0])
        })
    });
    group.finish();
}

fn bench_pool_round_trip(c: &mut Criterion) {
    let tuples = stream(30_000, 19);
    let mut group = c.benchmark_group("pool_round_trip");
    group.sample_size(10);
    group.bench_function("open_ingest_ack_plus_rnd", |b| {
        b.iter_custom(|iters| {
            let config = SnsConfig { rank: RANK, theta: 20, eta: 1000.0, ..Default::default() };
            let pool = EnginePool::new(PoolConfig {
                shards: 1,
                base_seed: 42,
                queue_depth: 64,
                bus_capacity: 1 << 10,
                quarantine: QuarantinePolicy::Disabled,
                ..Default::default()
            });
            let spec = EngineSpec::sns(&DIMS, WINDOW, PERIOD, AlgorithmKind::PlusRnd, &config);
            let mut session = pool.open(0, spec).unwrap();
            let (head, tail) = tuples.split_at(tuples.len() / 2);
            for chunk in head.chunks(4096) {
                let _ = session.prefill_batch(chunk).unwrap();
            }
            let n = (iters as usize).min(tail.len());
            // The blocking round-trip: each batch is submit → worker
            // ingest → ack before the next, so the measurement includes
            // the full command-pipeline cost (freelist take/put, channel
            // hops, receipt stamping) on top of the engine work.
            let start = std::time::Instant::now();
            for chunk in tail[..n].chunks(256) {
                let _ = session.ingest_batch(chunk).unwrap();
            }
            let elapsed = start.elapsed();
            drop(session);
            pool.join();
            // Scale to the requested iteration count when the finite
            // stream is shorter (see bench_per_event).
            if n < iters as usize {
                elapsed.mul_f64(iters as f64 / n.max(1) as f64)
            } else {
                elapsed
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_per_event,
    bench_ingest_batch,
    bench_mttkrp,
    bench_gram_solve,
    bench_pool_round_trip
);
criterion_main!(benches);
