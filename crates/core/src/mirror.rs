//! Interleaved, padded factor storage for the fiber MTTKRP kernels.
//!
//! The row MTTKRP walks a fiber and multiplies two factor rows per
//! non-zero. [`sns_linalg::Mat`] is already row-major, but its rows are
//! exactly `R` long, so consecutive rows start at arbitrary alignments
//! and the vectorized inner loop always carries a scalar tail.
//! [`FactorMirror`] keeps a kernel-facing copy of every factor in
//! row-major-by-rank layout *padded to a whole register block*
//! (`stride = R` rounded up to 4 `f64` / 8 `f32` lanes): each row starts
//! on a block boundary and the padding lanes are zero, so fiber walks
//! touch contiguous, uniformly-strided memory.
//!
//! The mirror is derived state: [`FactorState`](crate::update::FactorState)
//! re-syncs the affected row on every commit (an `O(R)` copy next to the
//! `O(R²)` Gram update) and rebuilds it wholesale on install/restore.
//! Snapshots never encode it.
//!
//! Two element widths exist behind the same API:
//!
//! - **f64** (default): rows are bit-identical copies of the master
//!   factors, so kernels reading the mirror produce bitwise the same
//!   results as kernels reading the `Mat` rows.
//! - **f32** ([`Precision::F32`]): rows are stored as `f32`. The master
//!   factors are themselves rounded through `f32` on every commit (see
//!   [`round_row_f32`]), so widening a mirror row back to `f64` recovers
//!   the master values *exactly* — the kernels accumulate in `f64` and
//!   stay deterministic; only the committed rows carry rounding.

use crate::config::Precision;
use sns_linalg::Mat;

/// Pads `rank` up to a whole number of vector blocks for `precision`.
#[inline]
fn padded_stride(rank: usize, precision: Precision) -> usize {
    let block = match precision {
        Precision::F64 => 4,
        Precision::F32 => 8,
    };
    rank.div_ceil(block).max(1) * block
}

/// Rounds every entry of a row through `f32` in place (the
/// [`Precision::F32`] commit contract).
#[inline]
pub fn round_row_f32(row: &mut [f64]) {
    for v in row {
        *v = *v as f32 as f64;
    }
}

/// Per-mode interleaved storage (see module docs).
#[derive(Debug, Clone)]
enum MirrorData {
    /// Bit-identical `f64` copies of the master rows.
    F64(Vec<Vec<f64>>),
    /// `f32` copies of (f32-rounded) master rows.
    F32(Vec<Vec<f32>>),
}

/// Kernel-facing padded copy of a factor set (one plane per mode).
#[derive(Debug, Clone)]
pub struct FactorMirror {
    rank: usize,
    stride: usize,
    data: MirrorData,
}

impl FactorMirror {
    /// Builds a mirror of `factors` at the given precision.
    pub fn new(factors: &[Mat], precision: Precision) -> Self {
        let rank = factors.first().map_or(0, |f| f.cols());
        let stride = padded_stride(rank, precision);
        let data = match precision {
            Precision::F64 => {
                MirrorData::F64(factors.iter().map(|f| vec![0.0f64; f.rows() * stride]).collect())
            }
            Precision::F32 => {
                MirrorData::F32(factors.iter().map(|f| vec![0.0f32; f.rows() * stride]).collect())
            }
        };
        let mut m = FactorMirror { rank, stride, data };
        m.resync(factors);
        m
    }

    /// Which precision the mirror stores.
    #[inline]
    pub fn precision(&self) -> Precision {
        match self.data {
            MirrorData::F64(_) => Precision::F64,
            MirrorData::F32(_) => Precision::F32,
        }
    }

    /// Padded row stride (a multiple of the vector block width, `≥ rank`).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The factor rank `R` mirrored rows carry in their first `R` lanes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Mode `m`'s plane when the mirror is `f64`, else `None`.
    #[inline]
    pub fn f64_plane(&self, mode: usize) -> Option<&[f64]> {
        match &self.data {
            MirrorData::F64(planes) => Some(&planes[mode]),
            MirrorData::F32(_) => None,
        }
    }

    /// Mode `m`'s plane when the mirror is `f32`, else `None`.
    #[inline]
    pub fn f32_plane(&self, mode: usize) -> Option<&[f32]> {
        match &self.data {
            MirrorData::F32(planes) => Some(&planes[mode]),
            MirrorData::F64(_) => None,
        }
    }

    /// Rebuilds every plane from `factors` (install/restore path); the
    /// planes are resized if the shapes changed.
    pub fn resync(&mut self, factors: &[Mat]) {
        self.rank = factors.first().map_or(0, |f| f.cols());
        self.stride = padded_stride(self.rank, self.precision());
        match &mut self.data {
            MirrorData::F64(planes) => {
                planes.resize(factors.len(), Vec::new());
                for (plane, f) in planes.iter_mut().zip(factors) {
                    plane.clear();
                    plane.resize(f.rows() * self.stride, 0.0);
                    for i in 0..f.rows() {
                        plane[i * self.stride..i * self.stride + self.rank]
                            .copy_from_slice(f.row(i));
                    }
                }
            }
            MirrorData::F32(planes) => {
                planes.resize(factors.len(), Vec::new());
                for (plane, f) in planes.iter_mut().zip(factors) {
                    plane.clear();
                    plane.resize(f.rows() * self.stride, 0.0);
                    for i in 0..f.rows() {
                        for (dst, &src) in plane[i * self.stride..i * self.stride + self.rank]
                            .iter_mut()
                            .zip(f.row(i))
                        {
                            *dst = src as f32;
                        }
                    }
                }
            }
        }
    }

    /// Copies one (already precision-rounded) master row into its mirror
    /// slot — the per-commit sync.
    #[inline]
    pub fn sync_row(&mut self, mode: usize, index: usize, row: &[f64]) {
        debug_assert_eq!(row.len(), self.rank);
        let at = index * self.stride;
        match &mut self.data {
            MirrorData::F64(planes) => {
                planes[mode][at..at + self.rank].copy_from_slice(row);
            }
            MirrorData::F32(planes) => {
                for (dst, &src) in planes[mode][at..at + self.rank].iter_mut().zip(row) {
                    *dst = src as f32;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn factors(seed: u64, rank: usize) -> Vec<Mat> {
        let mut rng = StdRng::seed_from_u64(seed);
        [5usize, 4, 6].iter().map(|&n| Mat::random(&mut rng, n, rank, 1.0)).collect()
    }

    #[test]
    fn stride_is_padded_per_precision() {
        for (rank, f64_stride, f32_stride) in [(1, 4, 8), (4, 4, 8), (5, 8, 8), (20, 20, 24)] {
            assert_eq!(padded_stride(rank, Precision::F64), f64_stride, "rank {rank}");
            assert_eq!(padded_stride(rank, Precision::F32), f32_stride, "rank {rank}");
        }
    }

    #[test]
    fn f64_mirror_rows_are_bitwise_copies() {
        let f = factors(1, 5);
        let m = FactorMirror::new(&f, Precision::F64);
        assert_eq!(m.stride(), 8);
        assert_eq!(m.rank(), 5);
        for (mode, fac) in f.iter().enumerate() {
            let plane = m.f64_plane(mode).unwrap();
            assert!(m.f32_plane(mode).is_none());
            for i in 0..fac.rows() {
                let got = &plane[i * m.stride()..i * m.stride() + 5];
                assert_eq!(got, fac.row(i), "mode {mode} row {i}");
                // Padding lanes stay zero.
                assert!(plane[i * m.stride() + 5..(i + 1) * m.stride()].iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn f32_mirror_recovers_rounded_masters_exactly() {
        let mut f = factors(2, 6);
        for fac in &mut f {
            round_row_f32(fac.as_mut_slice());
        }
        let m = FactorMirror::new(&f, Precision::F32);
        for (mode, fac) in f.iter().enumerate() {
            let plane = m.f32_plane(mode).unwrap();
            for i in 0..fac.rows() {
                for k in 0..6 {
                    let widened = plane[i * m.stride() + k] as f64;
                    assert_eq!(widened.to_bits(), fac[(i, k)].to_bits(), "mode {mode} ({i},{k})");
                }
            }
        }
    }

    #[test]
    fn sync_row_updates_one_slot() {
        let f = factors(3, 4);
        let mut m = FactorMirror::new(&f, Precision::F64);
        let new_row = [9.0, -8.0, 7.0, -6.0];
        m.sync_row(1, 2, &new_row);
        let plane = m.f64_plane(1).unwrap();
        assert_eq!(&plane[2 * m.stride()..2 * m.stride() + 4], &new_row);
        // Neighbors untouched.
        assert_eq!(&plane[m.stride()..m.stride() + 4], f[1].row(1));
    }

    #[test]
    fn resync_follows_shape_changes() {
        let f = factors(4, 4);
        let mut m = FactorMirror::new(&f, Precision::F64);
        let g = factors(5, 7);
        m.resync(&g);
        assert_eq!(m.rank(), 7);
        assert_eq!(m.stride(), 8);
        for (mode, fac) in g.iter().enumerate() {
            let plane = m.f64_plane(mode).unwrap();
            assert_eq!(plane.len(), fac.rows() * 8);
            for i in 0..fac.rows() {
                assert_eq!(&plane[i * 8..i * 8 + 7], fac.row(i));
            }
        }
    }

    #[test]
    fn round_row_is_idempotent() {
        let mut row = [1.0 / 3.0, -2.0 / 7.0, 1e-40, 5.5];
        round_row_f32(&mut row);
        let once = row;
        round_row_f32(&mut row);
        assert_eq!(row, once);
        assert_eq!(row[3], 5.5); // exactly representable values survive
    }
}
