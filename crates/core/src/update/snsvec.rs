//! SNS_VEC — affected-row updates (Section V-B).
//!
//! Per event (Algorithm 3) it updates only the rows of the factor matrices
//! that approximate the changed entries: the one or two affected time-mode
//! rows via the additive rule Eq. (9), and the row `i_m` of every
//! categorical mode via the exact row least squares Eq. (12). Gram
//! matrices follow by Eq. (13). `O(MR·Σ deg + (MR)² + MR³)` per event
//! (Theorem 4). No normalization and no clipping — fast, but can diverge
//! (Observation 3).

use crate::config::{AlgorithmKind, Precision, SnsConfig};
use crate::kruskal::KruskalTensor;
use crate::update::common::{
    touched_rows_blew_up, update_row_exact, update_time_row_additive, FactorState,
};
use crate::update::ContinuousUpdater;
use crate::workspace::KernelWorkspace;
use sns_linalg::Mat;
use sns_stream::Delta;
use sns_tensor::SparseTensor;

/// The SNS_VEC updater.
#[derive(Clone)]
pub struct SnsVec {
    state: FactorState,
    ws: KernelWorkspace,
    diverged: bool,
}

impl SnsVec {
    /// Creates an SNS_VEC updater with random initial factors.
    pub fn new(dims: &[usize], config: &SnsConfig) -> Self {
        let state = FactorState::random(
            dims,
            config.rank,
            config.init_scale,
            config.seed,
            config.precision,
        );
        let ws = KernelWorkspace::new(dims.len(), config.rank);
        SnsVec { state, ws, diverged: false }
    }

    /// Captures the updater's complete live state.
    pub fn capture_state(&self) -> crate::update::UpdaterState {
        crate::update::UpdaterState::Vec {
            factors: self.state.kruskal.clone(),
            grams: self.state.grams.clone(),
            precision: self.state.precision(),
            diverged: self.diverged,
        }
    }

    /// Rebuilds an updater from captured state (bitwise continuation).
    pub(crate) fn from_state(
        factors: KruskalTensor,
        grams: Vec<Mat>,
        precision: Precision,
        diverged: bool,
    ) -> Result<Self, String> {
        let order = factors.order();
        let rank = factors.rank();
        let state = FactorState::from_parts(factors, grams, precision)?;
        Ok(SnsVec { state, ws: KernelWorkspace::new(order, rank), diverged })
    }
}

impl ContinuousUpdater for SnsVec {
    fn apply(&mut self, window: &SparseTensor, delta: &Delta) {
        if self.diverged {
            return;
        }
        let tm = self.state.time_mode();
        // Time-mode rows (Algorithm 3 lines 3–6): Eq. (9) per affected row.
        // `delta.changes` lists them in the paper's order (W−w then W−w−1,
        // 0-based) with their signed values.
        for &(coord, value) in delta.changes.iter() {
            let index = coord.get(tm);
            update_time_row_additive(&mut self.state, delta, index, value, &mut self.ws);
        }
        // Categorical modes (lines 7–8): Eq. (12).
        for m in 0..tm {
            let index = delta.tuple.coords.get(m);
            update_row_exact(&mut self.state, window, m, index, &mut self.ws);
        }
        if touched_rows_blew_up(&self.state, delta) {
            // Numerical runaway (Observation 3): freeze the factors. The
            // clipped SNS+ variants exist precisely to avoid this.
            self.diverged = true;
        }
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.state.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.state.grams
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Vec
    }

    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>) {
        self.state.install(kruskal, grams);
        self.diverged = false;
    }

    fn diverged(&self) -> bool {
        self.diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::{als, AlsOptions};
    use crate::fitness::fitness_with_grams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sns_linalg::ops::gram;
    use sns_stream::{ContinuousWindow, StreamTuple};

    fn drive(seed: u64, n_tuples: usize) -> (ContinuousWindow, SnsVec) {
        let mut w = ContinuousWindow::new(&[5, 4], 5, 10);
        let mut rng = StdRng::seed_from_u64(seed);
        let config = SnsConfig { rank: 3, seed: seed + 1, init_scale: 0.3, ..Default::default() };
        let mut vec = SnsVec::new(&[5, 4, 5], &config);
        let mut out = Vec::new();
        // Pre-fill, then warm start from ALS like the paper does.
        let mut t = 0u64;
        for _ in 0..n_tuples / 2 {
            t += rng.gen_range(0..3);
            out.clear();
            w.ingest(
                StreamTuple::new([rng.gen_range(0..5u32), rng.gen_range(0..4u32)], 1.0, t),
                &mut out,
            )
            .unwrap();
        }
        let warm = als(w.tensor(), 3, &AlsOptions { max_iters: 30, ..Default::default() });
        vec.install(warm.kruskal, warm.grams);
        for _ in 0..n_tuples / 2 {
            t += rng.gen_range(0..3);
            out.clear();
            w.ingest(
                StreamTuple::new([rng.gen_range(0..5u32), rng.gen_range(0..4u32)], 1.0, t),
                &mut out,
            )
            .unwrap();
            for d in &out {
                vec.apply(w.tensor(), d);
            }
        }
        (w, vec)
    }

    #[test]
    fn tracks_stream_with_reasonable_fitness() {
        let (w, vec) = drive(11, 200);
        assert!(!vec.diverged());
        let fit = fitness_with_grams(w.tensor(), &vec.state.kruskal, &vec.state.grams);
        let reference = als(w.tensor(), 3, &AlsOptions { max_iters: 40, ..Default::default() });
        assert!(
            fit > 0.5 * reference.fitness,
            "SNS_VEC fitness {fit} too far below ALS {}",
            reference.fitness
        );
    }

    #[test]
    fn grams_stay_consistent() {
        let (_, vec) = drive(13, 150);
        for (m, g) in vec.state.grams.iter().enumerate() {
            let fresh = gram(&vec.state.kruskal.factors[m]);
            for i in 0..3 {
                for j in 0..3 {
                    assert!(
                        (g[(i, j)] - fresh[(i, j)]).abs() < 1e-6 * (1.0 + fresh[(i, j)].abs()),
                        "mode {m} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn only_affected_rows_change() {
        let mut w = ContinuousWindow::new(&[6, 6], 4, 100);
        let config = SnsConfig { rank: 2, seed: 3, init_scale: 0.3, ..Default::default() };
        let mut vec = SnsVec::new(&[6, 6, 4], &config);
        let mut out = Vec::new();
        w.ingest(StreamTuple::new([1u32, 1], 1.0, 1), &mut out).unwrap();
        for d in &out {
            vec.apply(w.tensor(), d);
        }
        let snapshot: Vec<Mat> = vec.state.kruskal.factors.clone();
        // New arrival touching coords (4, 5) and time row 3 only.
        out.clear();
        w.ingest(StreamTuple::new([4u32, 5], 2.0, 2), &mut out).unwrap();
        for d in &out {
            vec.apply(w.tensor(), d);
        }
        for (m, snap) in snapshot.iter().enumerate().take(2) {
            let touched = if m == 0 { 4 } else { 5 };
            for i in 0..6 {
                if i == touched {
                    continue;
                }
                assert_eq!(
                    vec.state.kruskal.factors[m].row(i),
                    snap.row(i),
                    "mode {m} row {i} must not change"
                );
            }
        }
        for t in 0..3 {
            assert_eq!(vec.state.kruskal.factors[2].row(t), snapshot[2].row(t));
        }
    }

    #[test]
    fn divergence_flag_stops_updates() {
        let config = SnsConfig { rank: 2, seed: 4, ..Default::default() };
        let mut vec = SnsVec::new(&[3, 3, 2], &config);
        // Poison the state.
        vec.state.kruskal.factors[0][(0, 0)] = f64::NAN;
        vec.diverged = true;
        let mut w = ContinuousWindow::new(&[3, 3], 2, 10);
        let mut out = Vec::new();
        w.ingest(StreamTuple::new([0u32, 0], 1.0, 0), &mut out).unwrap();
        vec.apply(w.tensor(), &out[0]); // must not panic
        assert!(vec.diverged());
    }
}
