//! Per-event factor updaters (Section V of the paper).
//!
//! All five algorithms consume the same inputs (Problem 2): the current
//! tensor window `X + ΔX` (the [`sns_stream::ContinuousWindow`] applies
//! deltas *before* notifying), the change `ΔX` (≤ 2 entries), and the
//! maintained factor matrices with their Gram matrices. They differ in how
//! much of the window they touch per event:
//!
//! | Updater | rows touched | entries read per row | stabilized |
//! |---|---|---|---|
//! | [`SnsMat`] | all | all | normalization |
//! | [`SnsVec`] | affected only | `deg(m, i_m)` | no |
//! | [`SnsRnd`] | affected only | `≤ θ` | no |
//! | [`SnsPlusVec`] | affected only | `deg(m, i_m)` | clipping |
//! | [`SnsPlusRnd`] | affected only | `≤ θ` | clipping |

pub mod common;
pub mod snsmat;
pub mod snsplus;
pub mod snsrnd;
pub mod snsvec;

pub use crate::workspace::{GramSolves, KernelWorkspace, RowBufs};
pub use common::FactorState;
pub use snsmat::SnsMat;
pub use snsplus::{SnsPlusRnd, SnsPlusVec};
pub use snsrnd::SnsRnd;
pub use snsvec::SnsVec;

use crate::config::{AlgorithmKind, Precision};
use crate::kruskal::KruskalTensor;
use sns_linalg::Mat;
use sns_stream::Delta;
use sns_tensor::SparseTensor;

/// A CP-factor updater reacting to single-entry window changes.
///
/// Contract: `window` already contains the change described by `delta`
/// (i.e. `window = X + ΔX`), matching the way
/// [`sns_stream::ContinuousWindow`] reports events.
pub trait ContinuousUpdater {
    /// Reacts to one window change.
    fn apply(&mut self, window: &SparseTensor, delta: &Delta);

    /// Current factorization.
    fn kruskal(&self) -> &KruskalTensor;

    /// Maintained Gram matrices `A(m)ᵀA(m)`.
    fn grams(&self) -> &[Mat];

    /// Which algorithm this is.
    fn kind(&self) -> AlgorithmKind;

    /// Installs a (warm-started) factorization, replacing current state.
    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>);

    /// True once the updater has hit non-finite values and stopped
    /// updating (the instability of Observation 3; only the unclipped
    /// variants ever set this).
    fn diverged(&self) -> bool {
        false
    }

    /// Fitness of the current factorization against `window`.
    fn fitness(&self, window: &SparseTensor) -> f64 {
        crate::fitness::fitness_with_grams(window, self.kruskal(), self.grams())
    }
}

/// Enum dispatch over the five updaters (avoids `dyn` in hot loops and
/// keeps engines trivially movable).
///
/// `Clone` deep-copies the factors, Gram matrices, and — for the
/// sampling variants — the RNG mid-stream state, so a clone continues
/// bitwise-identically to the original (the basis of engine snapshots).
#[derive(Clone)]
pub enum Updater {
    /// SNS_MAT.
    Mat(SnsMat),
    /// SNS_VEC.
    Vec(SnsVec),
    /// SNS_RND.
    Rnd(SnsRnd),
    /// SNS⁺_VEC.
    PlusVec(SnsPlusVec),
    /// SNS⁺_RND.
    PlusRnd(SnsPlusRnd),
}

/// Captured state of an [`Updater`], sufficient to rebuild one that
/// continues **bitwise-identically** — factors, Gram matrices, sampling
/// RNG state, clipping/sampling hyperparameters, and the divergence
/// freeze flag.
///
/// Deliberately *not* captured, because it is unobservable dead state:
/// kernel workspaces (scratch + caches, rebuilt cold), `A_prev` Gram
/// snapshots of the sampling variants (overwritten from the live Grams
/// at the start of every event), and version counters (cache keys only).
#[derive(Clone)]
pub enum UpdaterState {
    /// SNS_MAT: normalized factors (λ carries scale) + Grams.
    Mat {
        /// The factorization.
        factors: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
    },
    /// SNS_VEC.
    Vec {
        /// The factorization (unit weights).
        factors: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
        /// Factor-storage precision profile.
        precision: Precision,
        /// Whether the updater froze after numerical runaway.
        diverged: bool,
    },
    /// SNS_RND.
    Rnd {
        /// The factorization (unit weights).
        factors: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
        /// Factor-storage precision profile.
        precision: Precision,
        /// Sampling threshold `θ`.
        theta: usize,
        /// Sampling RNG state, mid-stream.
        rng: [u64; 4],
        /// Whether the updater froze after numerical runaway.
        diverged: bool,
    },
    /// SNS⁺_VEC.
    PlusVec {
        /// The factorization (unit weights).
        factors: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
        /// Factor-storage precision profile.
        precision: Precision,
        /// Clipping bound `η`.
        eta: f64,
    },
    /// SNS⁺_RND.
    PlusRnd {
        /// The factorization (unit weights).
        factors: KruskalTensor,
        /// Maintained Gram matrices.
        grams: Vec<Mat>,
        /// Factor-storage precision profile.
        precision: Precision,
        /// Sampling threshold `θ`.
        theta: usize,
        /// Clipping bound `η`.
        eta: f64,
        /// Sampling RNG state, mid-stream.
        rng: [u64; 4],
    },
}

impl UpdaterState {
    /// Which algorithm the captured state belongs to.
    pub fn kind(&self) -> AlgorithmKind {
        match self {
            UpdaterState::Mat { .. } => AlgorithmKind::Mat,
            UpdaterState::Vec { .. } => AlgorithmKind::Vec,
            UpdaterState::Rnd { .. } => AlgorithmKind::Rnd,
            UpdaterState::PlusVec { .. } => AlgorithmKind::PlusVec,
            UpdaterState::PlusRnd { .. } => AlgorithmKind::PlusRnd,
        }
    }

    /// The captured factor-storage precision (`SNS_MAT` has no
    /// fast-updater state and always runs `f64`).
    pub fn precision(&self) -> Precision {
        match self {
            UpdaterState::Mat { .. } => Precision::F64,
            UpdaterState::Vec { precision, .. }
            | UpdaterState::Rnd { precision, .. }
            | UpdaterState::PlusVec { precision, .. }
            | UpdaterState::PlusRnd { precision, .. } => *precision,
        }
    }

    /// The captured factorization.
    pub fn factors(&self) -> &KruskalTensor {
        match self {
            UpdaterState::Mat { factors, .. }
            | UpdaterState::Vec { factors, .. }
            | UpdaterState::Rnd { factors, .. }
            | UpdaterState::PlusVec { factors, .. }
            | UpdaterState::PlusRnd { factors, .. } => factors,
        }
    }
}

impl Updater {
    /// Builds the updater selected by `kind` with random initial factors.
    pub fn new(kind: AlgorithmKind, dims: &[usize], config: &crate::config::SnsConfig) -> Self {
        match kind {
            AlgorithmKind::Mat => Updater::Mat(SnsMat::new(dims, config)),
            AlgorithmKind::Vec => Updater::Vec(SnsVec::new(dims, config)),
            AlgorithmKind::Rnd => Updater::Rnd(SnsRnd::new(dims, config)),
            AlgorithmKind::PlusVec => Updater::PlusVec(SnsPlusVec::new(dims, config)),
            AlgorithmKind::PlusRnd => Updater::PlusRnd(SnsPlusRnd::new(dims, config)),
        }
    }

    /// Captures the updater's complete live state (see [`UpdaterState`]).
    pub fn capture_state(&self) -> UpdaterState {
        match self {
            Updater::Mat(u) => u.capture_state(),
            Updater::Vec(u) => u.capture_state(),
            Updater::Rnd(u) => u.capture_state(),
            Updater::PlusVec(u) => u.capture_state(),
            Updater::PlusRnd(u) => u.capture_state(),
        }
    }

    /// Rebuilds an updater from captured state; it continues
    /// bitwise-identically to the captured one.
    ///
    /// # Errors
    /// Returns a description of the first shape inconsistency (decoded
    /// snapshots are validated, not trusted).
    pub fn from_state(state: UpdaterState) -> Result<Self, String> {
        Ok(match state {
            UpdaterState::Mat { factors, grams } => {
                Updater::Mat(SnsMat::from_state(factors, grams)?)
            }
            UpdaterState::Vec { factors, grams, precision, diverged } => {
                Updater::Vec(SnsVec::from_state(factors, grams, precision, diverged)?)
            }
            UpdaterState::Rnd { factors, grams, precision, theta, rng, diverged } => {
                Updater::Rnd(SnsRnd::from_state(factors, grams, precision, theta, rng, diverged)?)
            }
            UpdaterState::PlusVec { factors, grams, precision, eta } => {
                Updater::PlusVec(SnsPlusVec::from_state(factors, grams, precision, eta)?)
            }
            UpdaterState::PlusRnd { factors, grams, precision, theta, eta, rng } => {
                Updater::PlusRnd(SnsPlusRnd::from_state(
                    factors, grams, precision, theta, eta, rng,
                )?)
            }
        })
    }
}

macro_rules! delegate {
    ($self:ident, $u:ident => $body:expr) => {
        match $self {
            Updater::Mat($u) => $body,
            Updater::Vec($u) => $body,
            Updater::Rnd($u) => $body,
            Updater::PlusVec($u) => $body,
            Updater::PlusRnd($u) => $body,
        }
    };
}

impl ContinuousUpdater for Updater {
    fn apply(&mut self, window: &SparseTensor, delta: &Delta) {
        delegate!(self, u => u.apply(window, delta))
    }

    fn kruskal(&self) -> &KruskalTensor {
        delegate!(self, u => u.kruskal())
    }

    fn grams(&self) -> &[Mat] {
        delegate!(self, u => u.grams())
    }

    fn kind(&self) -> AlgorithmKind {
        delegate!(self, u => u.kind())
    }

    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>) {
        delegate!(self, u => u.install(kruskal, grams))
    }

    fn diverged(&self) -> bool {
        delegate!(self, u => u.diverged())
    }
}
