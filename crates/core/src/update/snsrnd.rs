//! SNS_RND — sampled affected-row updates (Section V-C).
//!
//! Like SNS_VEC it updates only affected rows, but caps the number of
//! window entries read per row at the user threshold `θ`:
//!
//! - `deg(m, i_m) ≤ θ`: the exact row rule Eq. (12);
//! - `deg(m, i_m) > θ`: the sampled rule Eq. (16)
//!   `A(m)(i,:) ← A(m)(i,:)·H_prev·H† + (X̄+ΔX)(m)(i,:)·K·H†`, where `X̄`
//!   carries the residual `x_J − x̃_J` at `θ` fiber entries sampled
//!   uniformly without replacement (ΔX's own coordinates are excluded,
//!   footnote 2).
//!
//! Both branches maintain `Q(m) = A(m)ᵀA(m)` (Eq. 13) and
//! `U(m) = A_prev(m)ᵀA(m)` (Eq. 17), with `A_prev` snapshotted at event
//! start (Algorithm 3 line 1 — only the Grams are snapshotted, `O(MR²)`).
//! With `M, R, θ` constant the per-event cost is `O(1)` (Theorem 5).
//!
//! The residuals `x̃_J` are evaluated with the *current* factor matrices;
//! within one event at most `M+1` rows differ from `A_prev`, a
//! second-order discrepancy (the first-order staleness is exactly what
//! the maintained `U(m)` matrices account for).

use crate::config::{AlgorithmKind, Precision, SnsConfig};
use crate::grams::prev_gram_row_update;
use crate::kruskal::KruskalTensor;
use crate::mttkrp::{khatri_rao_row, mttkrp_row_sampled_residuals};
use crate::update::common::{delta_entries_for_row, touched_rows_blew_up, FactorState};
use crate::update::ContinuousUpdater;
use crate::workspace::KernelWorkspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sns_linalg::ops::{axpy, row_times_mat};
use sns_linalg::Mat;
use sns_stream::Delta;
use sns_tensor::SparseTensor;

/// The SNS_RND updater.
#[derive(Clone)]
pub struct SnsRnd {
    state: FactorState,
    /// `U(m) = A_prev(m)ᵀ A(m)` — refreshed from `Q` at each event start.
    prev_grams: Vec<Mat>,
    /// Change counters for `prev_grams` (cache keys for `ws.prev_solves`).
    prev_versions: Vec<u64>,
    theta: usize,
    rng: StdRng,
    ws: KernelWorkspace,
    diverged: bool,
}

impl SnsRnd {
    /// Creates an SNS_RND updater with random initial factors.
    pub fn new(dims: &[usize], config: &SnsConfig) -> Self {
        let state = FactorState::random(
            dims,
            config.rank,
            config.init_scale,
            config.seed,
            config.precision,
        );
        let prev_grams = state.grams.clone();
        SnsRnd {
            prev_grams,
            prev_versions: vec![1; dims.len()],
            ws: KernelWorkspace::new(dims.len(), config.rank),
            theta: config.theta,
            rng: StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15),
            state,
            diverged: false,
        }
    }

    /// Sampling threshold `θ`.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Captures the updater's complete live state. `A_prev` Grams are
    /// not captured: they are overwritten from the live Grams at the
    /// start of every event (Algorithm 3 line 1), so between events they
    /// are dead state.
    pub fn capture_state(&self) -> crate::update::UpdaterState {
        crate::update::UpdaterState::Rnd {
            factors: self.state.kruskal.clone(),
            grams: self.state.grams.clone(),
            precision: self.state.precision(),
            theta: self.theta,
            rng: self.rng.state(),
            diverged: self.diverged,
        }
    }

    /// Rebuilds an updater from captured state (bitwise continuation).
    pub(crate) fn from_state(
        factors: KruskalTensor,
        grams: Vec<Mat>,
        precision: Precision,
        theta: usize,
        rng: [u64; 4],
        diverged: bool,
    ) -> Result<Self, String> {
        let order = factors.order();
        let rank = factors.rank();
        let state = FactorState::from_parts(factors, grams, precision)?;
        Ok(SnsRnd {
            prev_grams: state.grams.clone(),
            prev_versions: vec![1; order],
            ws: KernelWorkspace::new(order, rank),
            theta,
            rng: StdRng::from_state(rng),
            state,
            diverged,
        })
    }

    /// One `updateRowRan` call (Algorithm 4, lines 7–17).
    fn update_row(&mut self, window: &SparseTensor, delta: &Delta, mode: usize, index: u32) {
        let deg = window.deg(mode, index);
        let versions = self.state.gram_versions();
        let h = self.ws.solves.h(&self.state.grams, versions, mode);
        if !h.is_finite() {
            self.diverged = true;
            return;
        }
        if deg <= self.theta {
            // Exact path: Eq. (12).
            self.state.mttkrp_row_ws(
                window,
                mode,
                index,
                &mut self.ws.bufs.acc,
                &mut self.ws.bufs.prod,
                &self.ws.par,
            );
        } else {
            // Sampled path: Eq. (16).
            self.ws.bufs.exclude.clear();
            self.ws.bufs.exclude.extend(delta.changes.coords());
            self.ws.bufs.samples.clear();
            window.sample_fiber_positions(
                mode,
                index,
                self.theta,
                &mut self.rng,
                &self.ws.bufs.exclude,
                &mut self.ws.bufs.samples,
            );
            // (X̄ + ΔX)(m)(i,:)·K(m): the sampled residuals (fused
            // eval + Khatri–Rao pass), then the ≤ 2 ΔX terms.
            mttkrp_row_sampled_residuals(
                window,
                &self.state.kruskal,
                mode,
                &self.ws.bufs.samples,
                &mut self.ws.bufs.acc,
                &mut self.ws.bufs.prod,
            )
            .expect("workspace-sized buffers");
            for (c, v) in delta_entries_for_row(delta, mode, index) {
                if v != 0.0 {
                    khatri_rao_row(&self.state.kruskal.factors, &c, mode, &mut self.ws.bufs.prod);
                    axpy(v, &self.ws.bufs.prod, &mut self.ws.bufs.acc);
                }
            }
            // + A(m)(i,:)·H_prev  (the X̃ part of the fiber)
            let h_prev = self.ws.prev_solves.h(&self.prev_grams, &self.prev_versions, mode);
            let row = self.state.kruskal.factors[mode].row(index as usize);
            row_times_mat(row, h_prev, &mut self.ws.bufs.prod);
            axpy(1.0, &self.ws.bufs.prod, &mut self.ws.bufs.acc);
        }
        // · H† (cached factorization; H itself was refreshed above).
        self.ws.solves.solve(
            &self.state.grams,
            self.state.gram_versions(),
            mode,
            &self.ws.bufs.acc,
            &mut self.ws.bufs.row,
        );
        // Commit + Eq. (13) + Eq. (17). The committed row can differ from
        // `bufs.row` under the f32 profile (commit rounds), so re-read it
        // for the U(m) update.
        if self.state.commit_row(mode, index, &self.ws.bufs.row, &mut self.ws.bufs.old) {
            self.ws.bufs.row.copy_from_slice(self.state.kruskal.factors[mode].row(index as usize));
            prev_gram_row_update(&mut self.prev_grams[mode], &self.ws.bufs.old, &self.ws.bufs.row);
            self.prev_versions[mode] += 1;
        }
    }
}

impl ContinuousUpdater for SnsRnd {
    fn apply(&mut self, window: &SparseTensor, delta: &Delta) {
        if self.diverged {
            return;
        }
        // Algorithm 3 line 1: A_prevᵀA ← AᵀA at event start.
        for ((u, q), v) in
            self.prev_grams.iter_mut().zip(&self.state.grams).zip(&mut self.prev_versions)
        {
            u.as_mut_slice().copy_from_slice(q.as_slice());
            *v += 1;
        }
        let tm = self.state.time_mode();
        // Time-mode rows in the order the delta lists them.
        for index in delta.time_indices() {
            self.update_row(window, delta, tm, index);
        }
        // Categorical modes.
        for m in 0..tm {
            let index = delta.tuple.coords.get(m);
            self.update_row(window, delta, m, index);
        }
        if touched_rows_blew_up(&self.state, delta) {
            // Numerical runaway (Observation 3): freeze the factors. The
            // clipped SNS+ variants exist precisely to avoid this.
            self.diverged = true;
        }
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.state.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.state.grams
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Rnd
    }

    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>) {
        self.prev_grams = grams.clone();
        self.state.install(kruskal, grams);
        self.diverged = false;
    }

    fn diverged(&self) -> bool {
        self.diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::{als, AlsOptions};
    use crate::fitness::fitness_with_grams;
    use rand::Rng;
    use sns_linalg::ops::gram;
    use sns_stream::{ContinuousWindow, StreamTuple};

    fn drive(theta: usize, seed: u64, n: usize) -> (ContinuousWindow, SnsRnd) {
        let mut w = ContinuousWindow::new(&[5, 4], 5, 10);
        let mut rng = StdRng::seed_from_u64(seed);
        let config =
            SnsConfig { rank: 3, theta, seed: seed + 1, init_scale: 0.3, ..Default::default() };
        let mut alg = SnsRnd::new(&[5, 4, 5], &config);
        let mut out = Vec::new();
        let mut t = 0u64;
        for _ in 0..n / 2 {
            t += rng.gen_range(0..3);
            out.clear();
            w.ingest(
                StreamTuple::new([rng.gen_range(0..5u32), rng.gen_range(0..4u32)], 1.0, t),
                &mut out,
            )
            .unwrap();
        }
        let warm = als(w.tensor(), 3, &AlsOptions { max_iters: 30, ..Default::default() });
        alg.install(warm.kruskal, warm.grams);
        for _ in 0..n / 2 {
            t += rng.gen_range(0..3);
            out.clear();
            w.ingest(
                StreamTuple::new([rng.gen_range(0..5u32), rng.gen_range(0..4u32)], 1.0, t),
                &mut out,
            )
            .unwrap();
            for d in &out {
                alg.apply(w.tensor(), d);
            }
        }
        (w, alg)
    }

    #[test]
    fn tracks_stream_with_reasonable_fitness() {
        let (w, alg) = drive(8, 21, 200);
        assert!(!alg.diverged());
        let fit = fitness_with_grams(w.tensor(), &alg.state.kruskal, &alg.state.grams);
        let reference = als(w.tensor(), 3, &AlsOptions { max_iters: 40, ..Default::default() });
        assert!(
            fit > 0.4 * reference.fitness,
            "SNS_RND fitness {fit} too far below ALS {}",
            reference.fitness
        );
    }

    #[test]
    fn large_theta_equals_exact_path() {
        // With θ ≥ any fiber degree, SNS_RND must behave exactly like the
        // Eq. (12) path on every row (no sampling branch taken), so two
        // runs with different RNG seeds must agree bit-for-bit.
        let (_, a) = drive(10_000, 31, 120);
        let (_, b) = drive(10_000, 31, 120);
        for m in 0..3 {
            assert_eq!(a.state.kruskal.factors[m], b.state.kruskal.factors[m]);
        }
    }

    #[test]
    fn grams_follow_factors() {
        let (_, alg) = drive(5, 41, 160);
        if alg.diverged() || alg.kruskal().max_abs_entry() > 1e3 {
            // The unclipped variant may legitimately run away (Observation
            // 3); incremental Gram bookkeeping loses relative precision in
            // that regime, which is exactly why SNS⁺ exists.
            return;
        }
        for (m, g) in alg.state.grams.iter().enumerate() {
            let fresh = gram(&alg.state.kruskal.factors[m]);
            let scale = 1.0 + fresh.max_abs();
            for i in 0..3 {
                for j in 0..3 {
                    assert!(
                        (g[(i, j)] - fresh[(i, j)]).abs() < 1e-6 * scale,
                        "mode {m} ({i},{j}): {} vs {}",
                        g[(i, j)],
                        fresh[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_path_is_taken_for_small_theta() {
        // θ = 1 with a dense-ish fiber forces sampling; two seeds diverge.
        let (_, a) = drive(1, 51, 160);
        let (_, b) = drive(1, 52, 160);
        let same = (0..3).all(|m| a.state.kruskal.factors[m] == b.state.kruskal.factors[m]);
        assert!(!same, "different sampling seeds should yield different factors");
    }

    #[test]
    fn metadata() {
        let config = SnsConfig { rank: 2, theta: 9, ..Default::default() };
        let alg = SnsRnd::new(&[3, 3, 2], &config);
        assert_eq!(alg.kind(), AlgorithmKind::Rnd);
        assert_eq!(alg.theta(), 9);
    }
}
