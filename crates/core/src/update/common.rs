//! Shared state and row-update kernels for the fast updaters.

use crate::config::Precision;
use crate::grams::{compute_grams, gram_row_update};
use crate::kruskal::KruskalTensor;
use crate::mirror::{round_row_f32, FactorMirror};
use crate::mttkrp::{khatri_rao_row, mttkrp_row, mttkrp_row_interleaved, mttkrp_row_par};
use crate::workspace::{KernelWorkspace, ParConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sns_linalg::Mat;
use sns_stream::Delta;
use sns_tensor::{Coord, SparseTensor};

/// Factor matrices plus their maintained Gram matrices and the
/// kernel-facing interleaved mirror.
///
/// Every Gram carries a version counter that is bumped exactly when the
/// matrix changes; the [`KernelWorkspace`] keys its cached
/// Hadamard-of-Grams factorizations on those counters, so solves
/// refactorize only when the underlying Grams actually changed.
///
/// The mirror ([`FactorMirror`]) is derived state kept in lock-step by
/// the commit paths; under [`Precision::F32`] the *master* rows are
/// themselves rounded through `f32` on every commit, so masters and
/// mirror always agree exactly (see the mirror module docs).
#[derive(Debug, Clone)]
pub struct FactorState {
    /// The factorization (`λ = 1` for all fast updaters).
    pub kruskal: KruskalTensor,
    /// `Q(m) = A(m)ᵀA(m)`, kept in lock-step with every row edit.
    pub grams: Vec<Mat>,
    /// Per-mode change counters for `grams` (monotone; row edits that
    /// leave the row bitwise unchanged do not bump).
    versions: Vec<u64>,
    /// Interleaved padded factor copy the fiber kernels read.
    mirror: FactorMirror,
}

impl FactorState {
    /// Random non-negative initialization (the paper then overwrites this
    /// with batch ALS on the initial window).
    pub fn random(
        dims: &[usize],
        rank: usize,
        scale: f64,
        seed: u64,
        precision: Precision,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kruskal = KruskalTensor::random(&mut rng, dims, rank, scale);
        if precision == Precision::F32 {
            for f in &mut kruskal.factors {
                round_row_f32(f.as_mut_slice());
            }
        }
        let grams = compute_grams(&kruskal.factors);
        let versions = vec![1; kruskal.order()];
        let mirror = FactorMirror::new(&kruskal.factors, precision);
        FactorState { kruskal, grams, versions, mirror }
    }

    /// Rebuilds a factor state from captured factors and Grams (state
    /// restore). Version counters restart at 1 — they are only cache
    /// keys for a [`KernelWorkspace`], which a restored engine gets
    /// fresh, so their absolute values are unobservable.
    ///
    /// Under [`Precision::F32`] the factors are rounded through `f32`
    /// (idempotent — snapshots of an f32 engine are already rounded, so
    /// restores stay bitwise) and the Grams recomputed only if rounding
    /// changed anything.
    ///
    /// # Errors
    /// Returns a description of the first shape inconsistency.
    pub fn from_parts(
        mut kruskal: KruskalTensor,
        mut grams: Vec<Mat>,
        precision: Precision,
    ) -> Result<Self, String> {
        kruskal.check_gram_shapes(&grams, true)?;
        if precision == Precision::F32 {
            let mut changed = false;
            for f in &mut kruskal.factors {
                for v in f.as_mut_slice() {
                    let r = *v as f32 as f64;
                    if r.to_bits() != v.to_bits() {
                        *v = r;
                        changed = true;
                    }
                }
            }
            if changed {
                grams = compute_grams(&kruskal.factors);
            }
        }
        let versions = vec![1; kruskal.order()];
        let mirror = FactorMirror::new(&kruskal.factors, precision);
        Ok(FactorState { kruskal, grams, versions, mirror })
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.kruskal.order()
    }

    /// CP rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.kruskal.rank()
    }

    /// The time mode index (always the last mode).
    #[inline]
    pub fn time_mode(&self) -> usize {
        self.order() - 1
    }

    /// The per-mode Gram version counters (cache keys for
    /// [`crate::workspace::GramSolves`]).
    #[inline]
    pub fn gram_versions(&self) -> &[u64] {
        &self.versions
    }

    /// The factor-storage precision this state runs at.
    #[inline]
    pub fn precision(&self) -> Precision {
        self.mirror.precision()
    }

    /// The kernel-facing interleaved factor mirror.
    #[inline]
    pub fn mirror(&self) -> &FactorMirror {
        &self.mirror
    }

    /// Replaces the factorization (warm start).
    ///
    /// The fast updaters model `X̃ = [[A(1),…,A(M)]]` with unit weights, so
    /// a weighted factorization (e.g. fresh from ALS, whose columns are
    /// normalized with scales in `λ`) is converted by distributing `λ`
    /// into the factors and recomputing the Gram matrices. Under
    /// [`Precision::F32`] the installed factors are rounded through `f32`
    /// first (ALS runs in `f64`), then the Grams are recomputed from the
    /// rounded factors.
    pub fn install(&mut self, mut kruskal: KruskalTensor, grams: Vec<Mat>) {
        debug_assert_eq!(kruskal.order(), grams.len());
        let f32_profile = self.mirror.precision() == Precision::F32;
        if kruskal.lambda.iter().any(|&l| l != 1.0) {
            kruskal.distribute_lambda();
            if f32_profile {
                for f in &mut kruskal.factors {
                    round_row_f32(f.as_mut_slice());
                }
            }
            self.grams = compute_grams(&kruskal.factors);
        } else if f32_profile {
            for f in &mut kruskal.factors {
                round_row_f32(f.as_mut_slice());
            }
            self.grams = compute_grams(&kruskal.factors);
        } else {
            self.grams = grams;
        }
        self.kruskal = kruskal;
        self.mirror.resync(&self.kruskal.factors);
        for v in &mut self.versions {
            *v += 1;
        }
    }

    /// Writes `new` into `A(mode)(index,:)` (rounding it through `f32`
    /// first under [`Precision::F32`]), saving the previous row into
    /// `old` and applying the Eq. (13) Gram update plus the mirror sync.
    /// Returns whether the row actually changed; a bitwise-identical row
    /// skips the Gram update, mirror sync, and version bump entirely
    /// (the update would add exact zeros), which is what keeps
    /// downstream `H(m)` caches warm across no-op commits.
    pub fn commit_row(&mut self, mode: usize, index: u32, new: &[f64], old: &mut [f64]) -> bool {
        let i = index as usize;
        old.copy_from_slice(self.kruskal.factors[mode].row(i));
        let f32_profile = self.mirror.precision() == Precision::F32;
        self.kruskal.factors[mode].set_row(i, new);
        let row = self.kruskal.factors[mode].row_mut(i);
        if f32_profile {
            round_row_f32(row);
        }
        if row[..] == old[..] {
            return false;
        }
        gram_row_update(&mut self.grams[mode], old, row);
        self.mirror.sync_row(mode, i, row);
        self.versions[mode] += 1;
        true
    }

    /// Records a row edit that was already written into the factor matrix
    /// (coordinate descent mutates rows in place): rounds the live row
    /// through `f32` under [`Precision::F32`], then applies the Eq. (13)
    /// Gram update, mirror sync, and version bump unless the row ends up
    /// unchanged bitwise. `old` is the caller's copy of the row as it was
    /// before the in-place edit.
    pub fn note_row_changed(&mut self, mode: usize, index: u32, old: &[f64]) -> bool {
        let i = index as usize;
        let f32_profile = self.mirror.precision() == Precision::F32;
        let row = self.kruskal.factors[mode].row_mut(i);
        if f32_profile {
            round_row_f32(row);
        }
        if &row[..] == old {
            return false;
        }
        gram_row_update(&mut self.grams[mode], old, row);
        self.mirror.sync_row(mode, i, row);
        self.versions[mode] += 1;
        true
    }

    /// Row MTTKRP through the fastest applicable kernel: the parallel
    /// rank-split kernel when [`ParConfig::engages`] (3-mode only), the
    /// serial interleaved-mirror kernel otherwise, and the row-major
    /// master walk for orders ≠ 3. All routes are bitwise-identical for
    /// the same state (mirror rows recover the masters exactly at either
    /// precision), so this dispatch is purely a bandwidth/latency choice.
    pub fn mttkrp_row_ws(
        &self,
        window: &SparseTensor,
        mode: usize,
        index: u32,
        out: &mut [f64],
        scratch: &mut [f64],
        par: &ParConfig,
    ) {
        if self.order() == 3 {
            if par.engages(self.rank(), window.deg(mode, index)) {
                mttkrp_row_par(window, &self.mirror, mode, index, out, par.threads)
                    .expect("workspace-sized buffers");
            } else {
                mttkrp_row_interleaved(window, &self.mirror, mode, index, out)
                    .expect("workspace-sized buffers");
            }
        } else {
            mttkrp_row(window, &self.kruskal.factors, mode, index, out, scratch)
                .expect("workspace-sized buffers");
        }
    }
}

/// The ΔX entries of `delta` whose mode-`m` index equals `index`, i.e. the
/// non-zeros of `ΔX(m)(index, :)`. At most two.
pub fn delta_entries_for_row(delta: &Delta, mode: usize, index: u32) -> [(Coord, f64); 2] {
    let mut out = [(Coord::new(&[]), 0.0); 2];
    let mut n = 0;
    for &(c, v) in delta.changes.iter() {
        if c.get(mode) == index {
            out[n] = (c, v);
            n += 1;
        }
    }
    out
}

/// Eq. (12) + Eq. (13): exact row least squares for mode `m`, row `index`:
/// `A(m)(i,:) ← (X+ΔX)(m)(i,:)·K(m)·H(m)†`, then the Gram rank-1 update.
/// The old and new rows are left in `ws.bufs.old` / `ws.bufs.row`.
///
/// `window` must already contain `ΔX`. Cost `O(deg·M·R + R³)`, with the
/// `R³` factorization skipped whenever `ws` already holds it for the
/// current Grams.
pub fn update_row_exact(
    state: &mut FactorState,
    window: &SparseTensor,
    mode: usize,
    index: u32,
    ws: &mut KernelWorkspace,
) {
    // u = (X+ΔX)(m)(i,:)·K(m)
    state.mttkrp_row_ws(window, mode, index, &mut ws.bufs.acc, &mut ws.bufs.prod, &ws.par);
    // Row solve against H(m) (cached Cholesky, pinv fallback).
    ws.solves.solve(&state.grams, &state.versions, mode, &ws.bufs.acc, &mut ws.bufs.row);
    state.commit_row(mode, index, &ws.bufs.row, &mut ws.bufs.old);
}

/// Eq. (9) + Eq. (13): additive approximate update of a *time-mode* row:
/// `A(M)(j,:) += ΔX(M)(j,:)·K(M)·H(M)†`. Used by SNS_VEC only; the ΔX row
/// has at most one non-zero (the tuple's categorical coordinate), whose
/// signed value is `value`.
pub fn update_time_row_additive(
    state: &mut FactorState,
    delta: &Delta,
    index: u32,
    value: f64,
    ws: &mut KernelWorkspace,
) {
    let tm = state.time_mode();
    // ΔX(M)(j,:)·K(M): a single scaled Khatri–Rao row product. Build the
    // full window coordinate so `khatri_rao_row` can skip the time mode.
    let coord = delta.tuple.coords.extended(index);
    khatri_rao_row(&state.kruskal.factors, &coord, tm, &mut ws.bufs.prod);
    for p in ws.bufs.prod.iter_mut() {
        *p *= value;
    }
    ws.solves.solve(&state.grams, &state.versions, tm, &ws.bufs.prod, &mut ws.bufs.acc);
    let old = state.kruskal.factors[tm].row(index as usize);
    for (k, o) in old.iter().enumerate() {
        ws.bufs.row[k] = *o + ws.bufs.acc[k];
    }
    state.commit_row(tm, index, &ws.bufs.row, &mut ws.bufs.old);
}

/// Magnitude threshold past which an unclipped updater is declared
/// numerically diverged (Observation 3). Factor entries of count tensors
/// live in O(1)–O(10²); 10⁹ is unambiguously runaway while still far from
/// overflow, so the freeze happens before `inf`/`NaN` pollute the state.
pub const DIVERGENCE_LIMIT: f64 = 1e9;

/// Checks the rows an event touched (the only entries that can have
/// changed) for runaway magnitude — O(M·R), unlike a full factor scan.
pub fn touched_rows_blew_up(state: &FactorState, delta: &Delta) -> bool {
    let tm = state.time_mode();
    let over = |row: &[f64]| row.iter().any(|v| !v.is_finite() || v.abs() > DIVERGENCE_LIMIT);
    for (c, _) in delta.changes.iter() {
        if over(state.kruskal.factors[tm].row(c.get(tm) as usize)) {
            return true;
        }
    }
    for m in 0..tm {
        if over(state.kruskal.factors[m].row(delta.tuple.coords.get(m) as usize)) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::fitness_with_grams;
    use crate::grams::hadamard_except;
    use rand::Rng;
    use sns_linalg::ops::gram;
    use sns_stream::{ContinuousWindow, StreamTuple};
    use sns_tensor::Shape;

    fn approx_mat(a: &Mat, b: &Mat, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    fn random_window(seed: u64, nnz: usize) -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = [4usize, 3, 5];
        let mut x = SparseTensor::new(Shape::new(&dims));
        for _ in 0..nnz {
            let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            x.add(&Coord::new(&c), rng.gen_range(1..4) as f64);
        }
        x
    }

    #[test]
    fn factor_state_construction() {
        let s = FactorState::random(&[4, 3, 5], 3, 1.0, 7, Precision::F64);
        assert_eq!(s.order(), 3);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.time_mode(), 2);
        assert_eq!(s.gram_versions().len(), 3);
        for (m, g) in s.grams.iter().enumerate() {
            assert!(approx_mat(g, &gram(&s.kruskal.factors[m]), 1e-12));
        }
    }

    #[test]
    fn commit_row_tracks_versions_and_skips_noops() {
        let mut s = FactorState::random(&[4, 3, 5], 3, 1.0, 8, Precision::F64);
        let v0 = s.gram_versions().to_vec();
        let mut old = vec![0.0; 3];
        let new = vec![0.25, -1.0, 2.0];
        assert!(s.commit_row(0, 1, &new, &mut old));
        assert_eq!(s.gram_versions()[0], v0[0] + 1);
        assert_eq!(s.gram_versions()[1], v0[1]);
        assert!(approx_mat(&s.grams[0], &gram(&s.kruskal.factors[0]), 1e-10));
        // Re-committing the identical row is a no-op: no bump, no drift.
        let g_before = s.grams[0].clone();
        assert!(!s.commit_row(0, 1, &new, &mut old));
        assert_eq!(s.gram_versions()[0], v0[0] + 1);
        assert_eq!(s.grams[0], g_before);
        assert_eq!(old, new);
    }

    #[test]
    fn install_bumps_every_version() {
        let mut s = FactorState::random(&[4, 3, 5], 3, 1.0, 9, Precision::F64);
        let v0 = s.gram_versions().to_vec();
        let k = KruskalTensor::random(&mut StdRng::seed_from_u64(1), &[4, 3, 5], 3, 1.0);
        let g = compute_grams(&k.factors);
        s.install(k, g);
        for (m, &v) in s.gram_versions().iter().enumerate() {
            assert_eq!(v, v0[m] + 1);
        }
    }

    #[test]
    fn exact_row_update_solves_the_row_ls() {
        // After Eq. (12), the updated row must be a least-squares optimum:
        // perturbing any entry must not reduce the full objective restricted
        // to that row's fiber... equivalently u = row · H must hold.
        let x = random_window(1, 30);
        let mut s = FactorState::random(&[4, 3, 5], 3, 1.0, 2, Precision::F64);
        let mut ws = KernelWorkspace::new(3, 3);
        update_row_exact(&mut s, &x, 0, 2, &mut ws);
        // Check stationarity: (X)(0)(2,:)·K = row·H at the new row.
        let mut u = vec![0.0; 3];
        let mut tmp = vec![0.0; 3];
        mttkrp_row(&x, &s.kruskal.factors, 0, 2, &mut u, &mut tmp).unwrap();
        let h = hadamard_except(&s.grams, 0, 3);
        let row = s.kruskal.factors[0].row(2);
        let mut lhs = vec![0.0; 3];
        sns_linalg::ops::row_times_mat(row, &h, &mut lhs);
        for k in 0..3 {
            assert!((lhs[k] - u[k]).abs() < 1e-8, "stationarity violated at {k}");
        }
        // Grams stayed consistent.
        for (m, g) in s.grams.iter().enumerate() {
            assert!(approx_mat(g, &gram(&s.kruskal.factors[m]), 1e-9));
        }
    }

    #[test]
    fn exact_row_update_never_increases_objective() {
        // Row LS: the objective restricted to other variables fixed cannot
        // increase, hence fitness cannot decrease.
        let x = random_window(3, 40);
        let mut s = FactorState::random(&[4, 3, 5], 3, 0.5, 4, Precision::F64);
        let mut ws = KernelWorkspace::new(3, 3);
        for mode in 0..2 {
            for i in 0..x.shape().dim(mode) as u32 {
                let before = fitness_with_grams(&x, &s.kruskal, &s.grams);
                update_row_exact(&mut s, &x, mode, i, &mut ws);
                let after = fitness_with_grams(&x, &s.kruskal, &s.grams);
                assert!(after >= before - 1e-9, "mode {mode} row {i}: {before} -> {after}");
            }
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_workspace_bitwise() {
        // The same update sequence through one long-lived workspace and
        // through a fresh workspace per call must agree bit for bit —
        // cached H(m)/Cholesky reuse may only skip redundant work.
        let x = random_window(11, 35);
        let mut a = FactorState::random(&[4, 3, 5], 3, 0.6, 12, Precision::F64);
        let mut b = a.clone();
        let mut shared = KernelWorkspace::new(3, 3);
        for step in 0..12u32 {
            let mode = (step % 2) as usize;
            let index = step % x.shape().dim(mode) as u32;
            update_row_exact(&mut a, &x, mode, index, &mut shared);
            let mut fresh = KernelWorkspace::new(3, 3);
            update_row_exact(&mut b, &x, mode, index, &mut fresh);
            for m in 0..3 {
                assert_eq!(a.kruskal.factors[m], b.kruskal.factors[m], "step {step} mode {m}");
                assert_eq!(a.grams[m], b.grams[m], "step {step} gram {m}");
            }
        }
    }

    #[test]
    fn empty_fiber_zeroes_the_row() {
        let x = random_window(5, 1); // at most one non-zero
        let mut s = FactorState::random(&[4, 3, 5], 3, 1.0, 6, Precision::F64);
        let mut ws = KernelWorkspace::new(3, 3);
        // Find a row with an empty fiber.
        let empty = (0..4u32).find(|&i| x.deg(0, i) == 0).expect("an empty fiber exists");
        update_row_exact(&mut s, &x, 0, empty, &mut ws);
        assert!(s.kruskal.factors[0].row(empty as usize).iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn delta_entry_extraction() {
        let mut w = ContinuousWindow::new(&[3, 3], 4, 10);
        let mut out = Vec::new();
        w.ingest(StreamTuple::new([1u32, 2], 5.0, 0), &mut out).unwrap();
        out.clear();
        w.advance_to(10, &mut out); // Shift: −5 @ t-idx 3, +5 @ t-idx 2
        let d = &out[0];
        // Time mode (mode 2): each row sees exactly one entry.
        let top = delta_entries_for_row(d, 2, 3);
        assert_eq!(top[0].1, -5.0);
        assert_eq!(top[1].1, 0.0);
        let bot = delta_entries_for_row(d, 2, 2);
        assert_eq!(bot[0].1, 5.0);
        // Non-time mode 0: both entries share index 1.
        let both = delta_entries_for_row(d, 0, 1);
        assert_eq!(both[0].1, -5.0);
        assert_eq!(both[1].1, 5.0);
        // Mismatched index: nothing.
        let none = delta_entries_for_row(d, 0, 2);
        assert_eq!(none[0].1, 0.0);
    }

    #[test]
    fn additive_time_update_reduces_residual_on_fresh_arrival() {
        // Build a window whose factors fit it exactly, then inject an
        // arrival; Eq. (9) must move the affected time row toward the new
        // mass (fitness after ≥ fitness before is not guaranteed in
        // general, but the update must at least change only that row).
        let mut w = ContinuousWindow::new(&[4, 3], 5, 10);
        let mut rng = StdRng::seed_from_u64(8);
        let mut out = Vec::new();
        for t in 0..30u64 {
            let tu = StreamTuple::new([rng.gen_range(0..4u32), rng.gen_range(0..3u32)], 1.0, t);
            w.ingest(tu, &mut out).unwrap();
        }
        let mut s = FactorState::random(&[4, 3, 5], 3, 0.5, 9, Precision::F64);
        let before = s.kruskal.factors[2].clone();
        out.clear();
        w.ingest(StreamTuple::new([2u32, 1], 4.0, 31), &mut out).unwrap();
        let d = out.last().unwrap();
        let mut ws = KernelWorkspace::new(3, 3);
        update_time_row_additive(&mut s, d, 4, 4.0, &mut ws);
        // Only row 4 changed.
        for r in 0..4 {
            assert_eq!(s.kruskal.factors[2].row(r), before.row(r), "row {r} must be untouched");
        }
        assert_ne!(s.kruskal.factors[2].row(4), before.row(4));
        // Gram consistent.
        assert!(approx_mat(&s.grams[2], &gram(&s.kruskal.factors[2]), 1e-9));
    }
}
