//! SNS⁺_VEC and SNS⁺_RND — coordinate descent with clipping (Section V-D).
//!
//! The unclipped row solves of SNS_VEC / SNS_RND can blow factor entries
//! up (Observation 3). The stable variants update one entry at a time
//! (coordinate descent) and clip every result into `[−η, η]`, which never
//! increases the local objective (footnote 3: the objective restricted to
//! one entry is a convex parabola, so moving from the unconstrained
//! minimizer back toward a point still on the same side keeps it below
//! the starting value).
//!
//! For the entry `a(m)_{i_m k}`, with `G = ∗_{n≠m} Q(n)` and
//! `Ĝ = ∗_{n≠m} U(n)` (Eq. 20):
//!
//! - `c_k = G_kk`,
//! - `d_{ik} = Σ_{r≠k} a_{i r} G_{r k}` (uses the *current*, mutating row),
//! - `e_{ik} = Σ_r b_{i r} Ĝ_{r k}` with `b` the row at event start,
//!
//! and the updates are Eq. (21) (exact), Eq. (22) (time-mode model
//! approximation), Eq. (23) (sampled). Gram upkeep is Eqs. (24)–(26),
//! applied as the equivalent end-of-row rank-1 forms (the per-coordinate
//! entrywise updates telescope to exactly these — see `grams.rs`).

use crate::config::{AlgorithmKind, Precision, SnsConfig};
use crate::grams::prev_gram_row_update;
use crate::kruskal::KruskalTensor;
use crate::mttkrp::mttkrp_row_sampled_residuals;
use crate::update::common::{delta_entries_for_row, FactorState};
use crate::update::ContinuousUpdater;
use crate::workspace::KernelWorkspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sns_linalg::Mat;
use sns_stream::Delta;
use sns_tensor::SparseTensor;

/// Coordinate-descent sweep over one factor row with clipping.
///
/// `base[k]` must hold the data-dependent part of the numerator (the
/// bracketed sums of Eqs. 21–23 *without* `−d_{ik}`); this function
/// subtracts `d_{ik}` with the live row and divides by `c_k`, clipping
/// each result to `[−η, η]`. Returns the updated row via the factor
/// matrix itself; the previous row must already be saved by the caller.
fn descend_row(factor: &mut Mat, index: u32, g: &Mat, base: &[f64], eta: f64) {
    let rank = g.rows();
    let row = factor.row_mut(index as usize);
    for k in 0..rank {
        // G is bitwise symmetric (a Hadamard product of Gram matrices),
        // so column k equals row k — read the contiguous row and let the
        // dot product vectorize instead of striding down the column.
        let gk = g.row(k);
        let c = gk[k];
        if c > 0.0 {
            // d_{ik} = row·G(:,k) − row[k]·G_kk (current row values).
            let d = sns_linalg::ops::dot(row, gk) - row[k] * c;
            row[k] = (base[k] - d) / c;
        }
        // Clipping (Algorithm 5 lines 5/15) applies in every case.
        if row[k] > eta {
            row[k] = eta;
        } else if row[k] < -eta {
            row[k] = -eta;
        }
    }
}

/// `e_{ik} = Σ_r b_{ir} Ĝ_{rk}` for the whole row (Eq. 20's `e` terms).
fn model_row(prev_row: &[f64], g_hat: &Mat, out: &mut [f64]) {
    sns_linalg::ops::row_times_mat(prev_row, g_hat, out);
}

/// The SNS⁺_VEC updater (Algorithm 5, `updateRowVec+`).
#[derive(Clone)]
pub struct SnsPlusVec {
    state: FactorState,
    eta: f64,
    ws: KernelWorkspace,
}

impl SnsPlusVec {
    /// Creates an SNS⁺_VEC updater with random initial factors.
    pub fn new(dims: &[usize], config: &SnsConfig) -> Self {
        SnsPlusVec {
            state: FactorState::random(
                dims,
                config.rank,
                config.init_scale,
                config.seed,
                config.precision,
            ),
            eta: config.eta,
            ws: KernelWorkspace::new(dims.len(), config.rank),
        }
    }

    /// Clipping bound `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Captures the updater's complete live state.
    pub fn capture_state(&self) -> crate::update::UpdaterState {
        crate::update::UpdaterState::PlusVec {
            factors: self.state.kruskal.clone(),
            grams: self.state.grams.clone(),
            precision: self.state.precision(),
            eta: self.eta,
        }
    }

    /// Rebuilds an updater from captured state (bitwise continuation).
    pub(crate) fn from_state(
        factors: KruskalTensor,
        grams: Vec<Mat>,
        precision: Precision,
        eta: f64,
    ) -> Result<Self, String> {
        let order = factors.order();
        let rank = factors.rank();
        let state = FactorState::from_parts(factors, grams, precision)?;
        Ok(SnsPlusVec { state, eta, ws: KernelWorkspace::new(order, rank) })
    }

    fn update_row(&mut self, window: &SparseTensor, delta: &Delta, mode: usize, index: u32) {
        let tm = self.state.time_mode();
        self.ws.bufs.old.copy_from_slice(self.state.kruskal.factors[mode].row(index as usize));
        // Coordinate descent reads H(m) entrywise and never factorizes it,
        // so the cache only pays the Hadamard rebuild — and skips even
        // that when no Gram it depends on changed.
        let g = self.ws.solves.h(&self.state.grams, self.state.gram_versions(), mode);
        if mode == tm {
            // Eq. (22): e + Σ_ΔX Δx·Π a. The time mode is updated before
            // any other factor changes in this event, so U(n) = Q(n) for
            // all n ≠ M and Ĝ = G.
            model_row(&self.ws.bufs.old, g, &mut self.ws.bufs.acc);
            for (c, v) in delta_entries_for_row(delta, mode, index) {
                if v == 0.0 {
                    continue;
                }
                crate::mttkrp::khatri_rao_row(
                    &self.state.kruskal.factors,
                    &c,
                    mode,
                    &mut self.ws.bufs.prod,
                );
                sns_linalg::ops::axpy(v, &self.ws.bufs.prod, &mut self.ws.bufs.acc);
            }
        } else {
            // Eq. (21): exact fiber sum over X+ΔX (already in `window`).
            self.state.mttkrp_row_ws(
                window,
                mode,
                index,
                &mut self.ws.bufs.acc,
                &mut self.ws.bufs.prod,
                &self.ws.par,
            );
        }
        descend_row(&mut self.state.kruskal.factors[mode], index, g, &self.ws.bufs.acc, self.eta);
        self.state.note_row_changed(mode, index, &self.ws.bufs.old);
    }
}

impl ContinuousUpdater for SnsPlusVec {
    fn apply(&mut self, window: &SparseTensor, delta: &Delta) {
        let tm = self.state.time_mode();
        for index in delta.time_indices() {
            self.update_row(window, delta, tm, index);
        }
        for m in 0..tm {
            self.update_row(window, delta, m, delta.tuple.coords.get(m));
        }
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.state.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.state.grams
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::PlusVec
    }

    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>) {
        self.state.install(kruskal, grams);
    }
}

/// The SNS⁺_RND updater (Algorithm 5, `updateRowRan+`).
#[derive(Clone)]
pub struct SnsPlusRnd {
    state: FactorState,
    prev_grams: Vec<Mat>,
    /// Change counters for `prev_grams` (cache keys for `ws.prev_solves`).
    prev_versions: Vec<u64>,
    theta: usize,
    eta: f64,
    rng: StdRng,
    ws: KernelWorkspace,
}

impl SnsPlusRnd {
    /// Creates an SNS⁺_RND updater with random initial factors.
    pub fn new(dims: &[usize], config: &SnsConfig) -> Self {
        let state = FactorState::random(
            dims,
            config.rank,
            config.init_scale,
            config.seed,
            config.precision,
        );
        let prev_grams = state.grams.clone();
        SnsPlusRnd {
            prev_grams,
            prev_versions: vec![1; dims.len()],
            theta: config.theta,
            eta: config.eta,
            rng: StdRng::seed_from_u64(config.seed ^ 0x517c_c1b7_2722_0a95),
            ws: KernelWorkspace::new(dims.len(), config.rank),
            state,
        }
    }

    /// Sampling threshold `θ`.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// Clipping bound `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Captures the updater's complete live state. `A_prev` Grams are
    /// not captured: they are overwritten from the live Grams at the
    /// start of every event (Algorithm 3 line 1), so between events they
    /// are dead state.
    pub fn capture_state(&self) -> crate::update::UpdaterState {
        crate::update::UpdaterState::PlusRnd {
            factors: self.state.kruskal.clone(),
            grams: self.state.grams.clone(),
            precision: self.state.precision(),
            theta: self.theta,
            eta: self.eta,
            rng: self.rng.state(),
        }
    }

    /// Rebuilds an updater from captured state (bitwise continuation).
    pub(crate) fn from_state(
        factors: KruskalTensor,
        grams: Vec<Mat>,
        precision: Precision,
        theta: usize,
        eta: f64,
        rng: [u64; 4],
    ) -> Result<Self, String> {
        let order = factors.order();
        let rank = factors.rank();
        let state = FactorState::from_parts(factors, grams, precision)?;
        Ok(SnsPlusRnd {
            prev_grams: state.grams.clone(),
            prev_versions: vec![1; order],
            theta,
            eta,
            rng: StdRng::from_state(rng),
            ws: KernelWorkspace::new(order, rank),
            state,
        })
    }

    fn update_row(&mut self, window: &SparseTensor, delta: &Delta, mode: usize, index: u32) {
        let deg = window.deg(mode, index);
        self.ws.bufs.old.copy_from_slice(self.state.kruskal.factors[mode].row(index as usize));
        if deg <= self.theta {
            // Eq. (21): exact fiber sum.
            self.state.mttkrp_row_ws(
                window,
                mode,
                index,
                &mut self.ws.bufs.acc,
                &mut self.ws.bufs.prod,
                &self.ws.par,
            );
        } else {
            // Eq. (23): e (model part via Ĝ) + sampled residuals + ΔX.
            let g_hat = self.ws.prev_solves.h(&self.prev_grams, &self.prev_versions, mode);
            model_row(&self.ws.bufs.old, g_hat, &mut self.ws.bufs.acc);
            self.ws.bufs.exclude.clear();
            self.ws.bufs.exclude.extend(delta.changes.coords());
            self.ws.bufs.samples.clear();
            window.sample_fiber_positions(
                mode,
                index,
                self.theta,
                &mut self.rng,
                &self.ws.bufs.exclude,
                &mut self.ws.bufs.samples,
            );
            // Sampled residuals accumulate separately (fused eval +
            // Khatri–Rao pass), then fold into the model part with the ΔX
            // terms — mirroring the Eq. (23) bracketing.
            mttkrp_row_sampled_residuals(
                window,
                &self.state.kruskal,
                mode,
                &self.ws.bufs.samples,
                &mut self.ws.bufs.extra,
                &mut self.ws.bufs.prod,
            )
            .expect("workspace-sized buffers");
            for (c, v) in delta_entries_for_row(delta, mode, index) {
                if v != 0.0 {
                    crate::mttkrp::khatri_rao_row(
                        &self.state.kruskal.factors,
                        &c,
                        mode,
                        &mut self.ws.bufs.prod,
                    );
                    sns_linalg::ops::axpy(v, &self.ws.bufs.prod, &mut self.ws.bufs.extra);
                }
            }
            sns_linalg::ops::axpy(1.0, &self.ws.bufs.extra, &mut self.ws.bufs.acc);
        }
        let g = self.ws.solves.h(&self.state.grams, self.state.gram_versions(), mode);
        descend_row(&mut self.state.kruskal.factors[mode], index, g, &self.ws.bufs.acc, self.eta);
        // note_row_changed may round the live row (f32 profile), so read
        // the committed row back for the U(m) update.
        if self.state.note_row_changed(mode, index, &self.ws.bufs.old) {
            self.ws.bufs.row.copy_from_slice(self.state.kruskal.factors[mode].row(index as usize));
            prev_gram_row_update(&mut self.prev_grams[mode], &self.ws.bufs.old, &self.ws.bufs.row);
            self.prev_versions[mode] += 1;
        }
    }
}

impl ContinuousUpdater for SnsPlusRnd {
    fn apply(&mut self, window: &SparseTensor, delta: &Delta) {
        // Snapshot the Grams: A_prevᵀA ← AᵀA (Algorithm 3 line 1).
        for ((u, q), v) in
            self.prev_grams.iter_mut().zip(&self.state.grams).zip(&mut self.prev_versions)
        {
            u.as_mut_slice().copy_from_slice(q.as_slice());
            *v += 1;
        }
        let tm = self.state.time_mode();
        for index in delta.time_indices() {
            self.update_row(window, delta, tm, index);
        }
        for m in 0..tm {
            self.update_row(window, delta, m, delta.tuple.coords.get(m));
        }
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.state.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.state.grams
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::PlusRnd
    }

    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>) {
        self.prev_grams = grams.clone();
        self.state.install(kruskal, grams);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::{als, AlsOptions};
    use crate::fitness::fitness_with_grams;
    use rand::Rng;
    use sns_linalg::ops::gram;
    use sns_stream::{ContinuousWindow, StreamTuple};

    fn stream(seed: u64, n: usize) -> Vec<StreamTuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0u64;
        (0..n)
            .map(|_| {
                t += rng.gen_range(0..3);
                StreamTuple::new([rng.gen_range(0..5u32), rng.gen_range(0..4u32)], 1.0, t)
            })
            .collect()
    }

    fn drive<U: ContinuousUpdater>(alg: &mut U, tuples: &[StreamTuple]) -> ContinuousWindow {
        let mut w = ContinuousWindow::new(&[5, 4], 5, 10);
        let mut out = Vec::new();
        let half = tuples.len() / 2;
        for tu in &tuples[..half] {
            out.clear();
            w.ingest(*tu, &mut out).unwrap();
        }
        let warm = als(w.tensor(), 3, &AlsOptions { max_iters: 30, ..Default::default() });
        alg.install(warm.kruskal, warm.grams);
        for tu in &tuples[half..] {
            out.clear();
            w.ingest(*tu, &mut out).unwrap();
            for d in &out {
                alg.apply(w.tensor(), d);
            }
        }
        w
    }

    #[test]
    fn plus_vec_tracks_stream() {
        let tuples = stream(61, 200);
        let config = SnsConfig { rank: 3, eta: 1000.0, seed: 62, ..Default::default() };
        let mut alg = SnsPlusVec::new(&[5, 4, 5], &config);
        let w = drive(&mut alg, &tuples);
        let fit = fitness_with_grams(w.tensor(), alg.kruskal(), alg.grams());
        let reference = als(w.tensor(), 3, &AlsOptions { max_iters: 40, ..Default::default() });
        assert!(
            fit > 0.5 * reference.fitness,
            "SNS+_VEC fitness {fit} vs ALS {}",
            reference.fitness
        );
        assert!(alg.kruskal().is_finite());
    }

    #[test]
    fn plus_rnd_tracks_stream() {
        let tuples = stream(71, 200);
        // θ must cover a reasonable share of the fiber degrees (here ~30)
        // for the sampled rule to track an unstructured stream.
        let config = SnsConfig { rank: 3, theta: 12, eta: 1000.0, seed: 72, ..Default::default() };
        let mut alg = SnsPlusRnd::new(&[5, 4, 5], &config);
        let w = drive(&mut alg, &tuples);
        let fit = fitness_with_grams(w.tensor(), alg.kruskal(), alg.grams());
        let reference = als(w.tensor(), 3, &AlsOptions { max_iters: 40, ..Default::default() });
        assert!(
            fit > 0.4 * reference.fitness,
            "SNS+_RND fitness {fit} vs ALS {}",
            reference.fitness
        );
        assert!(alg.kruskal().is_finite());
    }

    #[test]
    fn clipping_bound_is_respected_always() {
        // Tiny η: every factor entry must stay within [−η, η] after any
        // number of events.
        let tuples = stream(81, 150);
        let eta = 2.0;
        let config = SnsConfig { rank: 3, theta: 4, eta, seed: 82, ..Default::default() };
        let mut alg = SnsPlusRnd::new(&[5, 4, 5], &config);
        // Note: install() replaces factors with ALS output that may exceed
        // η; the bound is enforced on every row the updater touches.
        let mut w = ContinuousWindow::new(&[5, 4], 5, 10);
        let mut out = Vec::new();
        for tu in &tuples {
            out.clear();
            w.ingest(*tu, &mut out).unwrap();
            for d in &out {
                alg.apply(w.tensor(), d);
            }
        }
        assert!(
            alg.kruskal().max_abs_entry() <= eta + 1e-12,
            "entry exceeded η: {}",
            alg.kruskal().max_abs_entry()
        );
    }

    #[test]
    fn exact_coordinate_descent_never_increases_objective() {
        // Footnote 3: the exact path (Eq. 21 + clipping) is a true
        // coordinate-descent step — the objective cannot increase. (The
        // time-mode Eq. 22 carries this guarantee only when X̃ ≈ X,
        // footnote 4, so we exercise *categorical* rows only.)
        let tuples = stream(91, 80);
        let config = SnsConfig { rank: 3, eta: 1e6, seed: 92, ..Default::default() };
        let mut alg = SnsPlusVec::new(&[5, 4, 5], &config);
        let mut w = ContinuousWindow::new(&[5, 4], 5, 10);
        let mut out = Vec::new();
        for tu in &tuples {
            out.clear();
            w.ingest(*tu, &mut out).unwrap();
        }
        let last_delta = out.last().copied().unwrap();
        let mut prev = fitness_with_grams(w.tensor(), alg.kruskal(), alg.grams());
        // Sweep every categorical row through the exact Eq. 21 update.
        for pass in 0..4 {
            for mode in 0..2usize {
                for i in 0..w.tensor().shape().dim(mode) as u32 {
                    alg.update_row(w.tensor(), &last_delta, mode, i);
                    let fit = fitness_with_grams(w.tensor(), alg.kruskal(), alg.grams());
                    assert!(
                        fit >= prev - 1e-9,
                        "pass {pass} mode {mode} row {i}: fitness decreased {prev} -> {fit}"
                    );
                    prev = fit;
                }
            }
        }
    }

    #[test]
    fn grams_follow_factors() {
        let tuples = stream(101, 150);
        let config = SnsConfig { rank: 3, theta: 5, seed: 102, ..Default::default() };
        let mut alg = SnsPlusRnd::new(&[5, 4, 5], &config);
        let _ = drive(&mut alg, &tuples);
        for (m, g) in alg.grams().iter().enumerate() {
            let fresh = gram(&alg.kruskal().factors[m]);
            let scale = 1.0 + fresh.max_abs();
            for i in 0..3 {
                for j in 0..3 {
                    assert!((g[(i, j)] - fresh[(i, j)]).abs() < 1e-6 * scale, "mode {m} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn large_theta_makes_plus_rnd_deterministic() {
        // With θ ≥ every fiber degree, SNS⁺_RND never samples, so two runs
        // with different RNG seeds must agree bit-for-bit.
        let tuples = stream(111, 120);
        let run = |seed: u64| {
            let config = SnsConfig {
                rank: 3,
                theta: 10_000,
                eta: 1000.0,
                seed: 112, // same factor init
                ..Default::default()
            };
            let mut alg = SnsPlusRnd::new(&[5, 4, 5], &config);
            alg.rng = StdRng::seed_from_u64(seed); // different sampling RNG
            let _ = drive(&mut alg, &tuples);
            alg
        };
        let a = run(1);
        let b = run(2);
        for m in 0..3 {
            assert_eq!(a.kruskal().factors[m], b.kruskal().factors[m], "mode {m}");
        }
    }

    #[test]
    fn metadata() {
        let config = SnsConfig { rank: 2, theta: 3, eta: 64.0, ..Default::default() };
        let v = SnsPlusVec::new(&[3, 3, 2], &config);
        assert_eq!(v.kind(), AlgorithmKind::PlusVec);
        assert_eq!(v.eta(), 64.0);
        let r = SnsPlusRnd::new(&[3, 3, 2], &config);
        assert_eq!(r.kind(), AlgorithmKind::PlusRnd);
        assert_eq!(r.theta(), 3);
        assert_eq!(r.eta(), 64.0);
        assert!(!v.diverged() && !r.diverged());
    }
}
