//! SNS_MAT — naive extension of ALS (Algorithm 2).
//!
//! Per event it runs one full ALS sweep over the whole window, with column
//! normalization into `λ`. Most accurate, slowest: `O(M²R|X| + …)` per
//! event (Theorem 3).

use crate::als::als_sweep;
use crate::config::{AlgorithmKind, SnsConfig};
use crate::grams::compute_grams;
use crate::kruskal::KruskalTensor;
use crate::update::ContinuousUpdater;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sns_linalg::Mat;
use sns_stream::Delta;
use sns_tensor::SparseTensor;

/// The SNS_MAT updater.
#[derive(Clone)]
pub struct SnsMat {
    kruskal: KruskalTensor,
    grams: Vec<Mat>,
}

impl SnsMat {
    /// Creates an SNS_MAT updater with random initial factors.
    pub fn new(dims: &[usize], config: &SnsConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let kruskal = KruskalTensor::random(&mut rng, dims, config.rank, config.init_scale);
        let grams = compute_grams(&kruskal.factors);
        SnsMat { kruskal, grams }
    }

    /// Captures the updater's complete live state.
    pub fn capture_state(&self) -> crate::update::UpdaterState {
        crate::update::UpdaterState::Mat {
            factors: self.kruskal.clone(),
            grams: self.grams.clone(),
        }
    }

    /// Rebuilds an updater from captured state (bitwise continuation).
    pub(crate) fn from_state(factors: KruskalTensor, grams: Vec<Mat>) -> Result<Self, String> {
        // SNS_MAT carries scale in λ, so the unit-weight restriction of
        // `FactorState::from_parts` does not apply; check shapes only.
        factors.check_gram_shapes(&grams, false)?;
        Ok(SnsMat { kruskal: factors, grams })
    }
}

impl ContinuousUpdater for SnsMat {
    fn apply(&mut self, window: &SparseTensor, _delta: &Delta) {
        // One full ALS iteration per event; ΔX is already inside `window`.
        als_sweep(window, &mut self.kruskal, &mut self.grams);
    }

    fn kruskal(&self) -> &KruskalTensor {
        &self.kruskal
    }

    fn grams(&self) -> &[Mat] {
        &self.grams
    }

    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Mat
    }

    fn install(&mut self, kruskal: KruskalTensor, grams: Vec<Mat>) {
        self.kruskal = kruskal;
        self.grams = grams;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::fitness_with_grams;
    use rand::Rng;
    use sns_stream::{ContinuousWindow, StreamTuple};

    #[test]
    fn improves_fitness_event_by_event() {
        let mut w = ContinuousWindow::new(&[5, 4], 4, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let config = SnsConfig { rank: 3, seed: 2, ..Default::default() };
        let mut mat = SnsMat::new(&[5, 4, 4], &config);
        let mut out = Vec::new();
        let mut last_fit = f64::NEG_INFINITY;
        for t in 0..120u64 {
            let tu = StreamTuple::new([rng.gen_range(0..5u32), rng.gen_range(0..4u32)], 1.0, t);
            out.clear();
            w.ingest(tu, &mut out).unwrap();
            for d in &out {
                mat.apply(w.tensor(), d);
            }
            if t == 119 {
                last_fit = fitness_with_grams(w.tensor(), &mat.kruskal, &mat.grams);
            }
        }
        // A full sweep per event with warm factors tracks the window.
        // (Cold-started on a growing window, some columns can die early —
        // the paper avoids this by ALS-initializing; keep a loose floor.)
        assert!(last_fit > 0.2, "fitness {last_fit}");
        assert!(mat.kruskal.is_finite());
        // SNS_MAT keeps normalized columns (scale lives in λ).
        for f in &mat.kruskal.factors {
            for r in 0..3 {
                let n: f64 = (0..f.rows()).map(|i| f[(i, r)] * f[(i, r)]).sum::<f64>().sqrt();
                assert!((n - 1.0).abs() < 1e-8 || n == 0.0);
            }
        }
    }

    #[test]
    fn metadata() {
        let config = SnsConfig::with_rank(2);
        let mat = SnsMat::new(&[3, 3, 2], &config);
        assert_eq!(mat.kind(), AlgorithmKind::Mat);
        assert!(!mat.diverged());
        assert_eq!(mat.kruskal().rank(), 2);
        assert_eq!(mat.grams().len(), 3);
    }
}
