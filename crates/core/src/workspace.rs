//! Reusable per-updater kernel workspace: scratch rows, coordinate
//! buffers, and cached Hadamard-of-Grams factorizations.
//!
//! The paper's headline claim is that one event is absorbed in
//! microseconds by touching only the factor rows it involves
//! (Eqs. 12–13, 16–17). The arithmetic is tiny — `R`-vectors and `R×R`
//! systems — so at that scale heap allocation and redundant
//! factorization dominate. [`KernelWorkspace`] makes the steady-state
//! per-event path allocation-free:
//!
//! - [`RowBufs`] owns every scratch vector the update rules need
//!   (Khatri–Rao row products, MTTKRP accumulators, old/new rows, sampled
//!   coordinates), sized once at construction;
//! - [`GramSolves`] caches, per mode, the Hadamard-of-Grams matrix
//!   `H(m) = ∗_{n≠m} Q(n)` (Eq. 4) *and* its Cholesky factorization
//!   ([`sns_linalg::cached::SymSolveCache`]), keyed on the Gram version
//!   counters maintained by [`FactorState`](crate::update::FactorState).
//!   A solve refactorizes only when a Gram it depends on actually
//!   changed; repeated solves against an unchanged `H(m)` — the two
//!   time-mode rows of a shift event, or consecutive events whose row
//!   updates left a factor untouched — reuse both the matrix and its
//!   factor outright, and even a stale rebuild reuses the storage.
//!
//! Every updater owns one workspace; `Clone` deep-copies it so cloned
//! engines (snapshots) keep their caches warm and continue
//! bitwise-identically.

use sns_linalg::cached::SymSolveCache;
use sns_linalg::lstsq::GRAM_PIVOT_RTOL;
use sns_linalg::ops::hadamard_assign;
use sns_linalg::Mat;
use sns_tensor::Coord;

/// Scratch vectors for per-event row updates — no allocation in steady
/// state.
#[derive(Debug, Default, Clone)]
pub struct RowBufs {
    /// Khatri–Rao row product buffer (`R`).
    pub prod: Vec<f64>,
    /// MTTKRP accumulator (`R`).
    pub acc: Vec<f64>,
    /// New-row buffer (`R`).
    pub row: Vec<f64>,
    /// Old-row copy (`R`).
    pub old: Vec<f64>,
    /// Secondary accumulator (`R`) for the sampled corrections.
    pub extra: Vec<f64>,
    /// Sampled fiber coordinates (`θ`).
    pub samples: Vec<Coord>,
    /// Sampling-exclusion coordinates (the ≤ 2 entries of `ΔX`).
    pub exclude: Vec<Coord>,
}

impl RowBufs {
    /// Creates buffers sized for rank `r`.
    pub fn new(r: usize) -> Self {
        RowBufs {
            prod: vec![0.0; r],
            acc: vec![0.0; r],
            row: vec![0.0; r],
            old: vec![0.0; r],
            extra: vec![0.0; r],
            samples: Vec::new(),
            exclude: Vec::new(),
        }
    }
}

/// One mode's cached `H(m)` and factorization.
#[derive(Debug, Clone)]
struct HCache {
    /// `H(m) = ∗_{n≠m} Q(n)`, rebuilt in place when stale.
    h: Mat,
    /// Gram version counters `H` was built from (entry `m` is ignored).
    seen: Vec<u64>,
    /// False until the first build.
    h_valid: bool,
    /// Cholesky/pseudoinverse factorization of `h`.
    solver: SymSolveCache,
    /// True when `solver` factorizes the current `h` (factorization is
    /// lazy: the clipped updaters use `H` directly and never pay it).
    factored: bool,
}

/// Version-keyed cache of the per-mode Hadamard-of-Grams systems.
///
/// Callers pass the live Gram matrices together with their version
/// counters (see [`FactorState::gram_versions`]); the cache compares
/// counters — never matrix contents — so staleness checks are `O(M)`.
///
/// [`FactorState::gram_versions`]: crate::update::FactorState::gram_versions
#[derive(Debug, Clone)]
pub struct GramSolves {
    modes: Vec<HCache>,
}

impl GramSolves {
    /// Cache for `order` modes at rank `rank`.
    pub fn new(order: usize, rank: usize) -> Self {
        GramSolves {
            modes: (0..order)
                .map(|_| HCache {
                    h: Mat::zeros(rank, rank),
                    seen: vec![0; order],
                    h_valid: false,
                    solver: SymSolveCache::new(),
                    factored: false,
                })
                .collect(),
        }
    }

    /// Drops every cached matrix and factorization (next use rebuilds).
    /// Results are unaffected — rebuilding from the same Grams
    /// reproduces the same `H` bitwise; this exists for the parity tests.
    pub fn invalidate(&mut self) {
        for c in &mut self.modes {
            c.h_valid = false;
            c.factored = false;
        }
    }

    /// Ensures mode `skip`'s `H` matches the current Grams, rebuilding in
    /// place if any `Q(n)`, `n ≠ skip`, changed since the last build.
    fn refresh(&mut self, grams: &[Mat], versions: &[u64], skip: usize) -> &mut HCache {
        debug_assert_eq!(grams.len(), versions.len());
        let cache = &mut self.modes[skip];
        debug_assert_eq!(cache.seen.len(), versions.len());
        let stale = !cache.h_valid
            || versions.iter().enumerate().any(|(n, &v)| n != skip && cache.seen[n] != v);
        if stale {
            // Three-mode tensors rebuild H as one fused element-wise
            // multiply of the two participating Grams (starting from all
            // ones and folding each Gram in gives bitwise-identical
            // results, one extra pass at a time).
            let mut parts = grams.iter().enumerate().filter(|&(n, _)| n != skip).map(|(_, g)| g);
            match (grams.len(), parts.next(), parts.next()) {
                (3, Some(a), Some(b)) => {
                    debug_assert_eq!(a.shape(), cache.h.shape());
                    cache
                        .h
                        .as_mut_slice()
                        .iter_mut()
                        .zip(a.as_slice().iter().zip(b.as_slice()))
                        .for_each(|(o, (&x, &y))| *o = x * y);
                }
                _ => {
                    cache.h.fill(1.0);
                    for (n, g) in grams.iter().enumerate() {
                        if n == skip {
                            continue;
                        }
                        hadamard_assign(&mut cache.h, g).expect("gram shapes agree");
                    }
                }
            }
            cache.seen.copy_from_slice(versions);
            cache.h_valid = true;
            cache.factored = false;
        }
        cache
    }

    /// The current `H(skip)`, rebuilt only if stale. The returned
    /// reference borrows the cache, not `grams`.
    pub fn h(&mut self, grams: &[Mat], versions: &[u64], skip: usize) -> &Mat {
        &self.refresh(grams, versions, skip).h
    }

    /// Solves `out = u · H(skip)†` (Eq. 12's row solve), factorizing at
    /// most once per distinct `H` (Cholesky fast path, truncated
    /// pseudoinverse for near-singular systems — the same policy as
    /// [`sns_linalg::lstsq::solve_row_sym`]).
    pub fn solve(
        &mut self,
        grams: &[Mat],
        versions: &[u64],
        skip: usize,
        u: &[f64],
        out: &mut [f64],
    ) {
        let cache = self.refresh(grams, versions, skip);
        if !cache.factored {
            cache.solver.refactor(&cache.h, GRAM_PIVOT_RTOL);
            cache.factored = true;
        }
        cache.solver.solve_row(u, out);
    }
}

/// Gates for the intra-event parallel fiber kernel
/// ([`crate::mttkrp::mttkrp_row_par`]).
///
/// Spawning scoped worker threads costs single-digit microseconds — more
/// than an entire default-rank event — so parallelism only pays when both
/// the rank (work per fiber entry) and the fiber degree (entries per
/// row MTTKRP) are large. Below either threshold the dispatch runs the
/// serial interleaved kernel; results are bitwise-identical either way,
/// so the gate is purely a performance knob. At the paper's defaults
/// (`R = 20`) parallelism never engages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker threads to split the rank range over (`≤ 1` disables).
    pub threads: usize,
    /// Minimum rank before parallelism engages.
    pub min_rank: usize,
    /// Minimum fiber degree (non-zeros in the walked fiber) before
    /// parallelism engages.
    pub min_fiber_entries: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        ParConfig { threads, min_rank: 64, min_fiber_entries: 256 }
    }
}

impl ParConfig {
    /// A config that always runs serially (single-threaded hosts, parity
    /// tests).
    pub fn serial() -> Self {
        ParConfig { threads: 1, ..Default::default() }
    }

    /// True when a row MTTKRP at this rank/degree should parallelize.
    #[inline]
    pub fn engages(&self, rank: usize, fiber_degree: usize) -> bool {
        self.threads > 1 && rank >= self.min_rank && fiber_degree >= self.min_fiber_entries
    }
}

/// Everything a fast updater needs to process one event without heap
/// allocation: row scratch, sampling buffers, the cached `H(m)`
/// solves for both the live Grams and (for the sampling variants) the
/// event-start `A_prevᵀA` Grams, and the intra-event parallelism gate.
#[derive(Debug, Clone)]
pub struct KernelWorkspace {
    /// Scratch vectors.
    pub bufs: RowBufs,
    /// Cached `H(m)` over the live Grams `Q(m) = A(m)ᵀA(m)`.
    pub solves: GramSolves,
    /// Cached `Ĥ(m)` over the event-start Grams `U(m) = A_prev(m)ᵀA(m)`
    /// (Eq. 17 / Eq. 26); unused by the non-sampling updaters.
    pub prev_solves: GramSolves,
    /// Intra-event parallelism gate for the fiber MTTKRP.
    pub par: ParConfig,
}

impl KernelWorkspace {
    /// Workspace for `order` modes at rank `rank`.
    pub fn new(order: usize, rank: usize) -> Self {
        KernelWorkspace {
            bufs: RowBufs::new(rank),
            solves: GramSolves::new(order, rank),
            prev_solves: GramSolves::new(order, rank),
            par: ParConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grams::{compute_grams, hadamard_except};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sns_linalg::lstsq::solve_row_sym;

    fn setup(seed: u64) -> (Vec<Mat>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<Mat> =
            [5usize, 4, 6].iter().map(|&n| Mat::random(&mut rng, n, 3, 1.0)).collect();
        (compute_grams(&factors), vec![7, 7, 7])
    }

    #[test]
    fn cached_h_matches_hadamard_except() {
        let (grams, versions) = setup(1);
        let mut ws = GramSolves::new(3, 3);
        for m in 0..3 {
            let h = ws.h(&grams, &versions, m);
            let fresh = hadamard_except(&grams, m, 3);
            assert_eq!(h.as_slice(), fresh.as_slice(), "mode {m}");
        }
    }

    #[test]
    fn version_bump_triggers_rebuild_others_stay() {
        let (mut grams, mut versions) = setup(2);
        let mut ws = GramSolves::new(3, 3);
        let h0_before = ws.h(&grams, &versions, 0).clone();
        let _ = ws.h(&grams, &versions, 1);
        // Mutate Q(0): H(1), H(2) become stale, H(0) must NOT change.
        grams[0][(0, 0)] += 1.0;
        versions[0] += 1;
        assert_eq!(ws.h(&grams, &versions, 0).as_slice(), h0_before.as_slice());
        let h1 = ws.h(&grams, &versions, 1);
        let fresh1 = hadamard_except(&grams, 1, 3);
        assert_eq!(h1.as_slice(), fresh1.as_slice());
    }

    #[test]
    fn unchanged_versions_reuse_without_rebuild() {
        let (mut grams, versions) = setup(3);
        let mut ws = GramSolves::new(3, 3);
        let before = ws.h(&grams, &versions, 1).clone();
        // Stealth-mutate Q(0) without bumping: the cache must keep the
        // old H — proving it keys on versions, not contents.
        grams[0][(1, 1)] += 5.0;
        assert_eq!(ws.h(&grams, &versions, 1).as_slice(), before.as_slice());
    }

    #[test]
    fn cached_solve_matches_fresh() {
        let (grams, versions) = setup(4);
        let mut ws = GramSolves::new(3, 3);
        let u = [1.0, -0.5, 2.0];
        let mut fast = [0.0; 3];
        ws.solve(&grams, &versions, 2, &u, &mut fast);
        let h = hadamard_except(&grams, 2, 3);
        let mut slow = [0.0; 3];
        solve_row_sym(&h, &u, &mut slow);
        for k in 0..3 {
            assert!((fast[k] - slow[k]).abs() < 1e-12);
        }
        // Second solve hits the cached factorization and agrees.
        let mut again = [0.0; 3];
        ws.solve(&grams, &versions, 2, &u, &mut again);
        assert_eq!(fast, again);
    }

    #[test]
    fn par_config_gates_on_rank_and_degree() {
        let par = ParConfig { threads: 4, min_rank: 64, min_fiber_entries: 256 };
        assert!(par.engages(64, 256));
        assert!(!par.engages(63, 256));
        assert!(!par.engages(64, 255));
        assert!(!ParConfig::serial().engages(1000, 1000));
        assert!(ParConfig::default().threads >= 1);
    }

    #[test]
    fn invalidate_forces_rebuild_with_same_result() {
        let (grams, versions) = setup(5);
        let mut ws = GramSolves::new(3, 3);
        let u = [0.3, 1.0, -2.0];
        let mut a = [0.0; 3];
        let mut b = [0.0; 3];
        ws.solve(&grams, &versions, 0, &u, &mut a);
        ws.invalidate();
        ws.solve(&grams, &versions, 0, &u, &mut b);
        assert_eq!(a, b);
    }
}
