//! Incrementally maintained Gram matrices.
//!
//! Every fast updater keeps `Q(m) = A(m)ᵀA(m)` up to date across row
//! edits (Eq. 13 / Eqs. 24–25) instead of recomputing them, and the
//! sampling variants additionally keep `U(m) = A(m)_prevᵀ A(m)`
//! (Eq. 17 / Eq. 26). Both rank-1 update forms live here, together with
//! the ubiquitous "Hadamard of all Grams except mode m" product
//! `H(m) = ∗_{n≠m} Q(n)` from Eq. (4).

use sns_linalg::ops::{gram, hadamard_assign};
use sns_linalg::Mat;

/// Computes all Gram matrices of a factor set from scratch.
pub fn compute_grams(factors: &[Mat]) -> Vec<Mat> {
    factors.iter().map(gram).collect()
}

/// `H(m) = ∗_{n≠m} grams[n]` (Hadamard product over all modes but `m`).
pub fn hadamard_except(grams: &[Mat], skip: usize, rank: usize) -> Mat {
    let mut h = Mat::filled(rank, rank, 1.0);
    for (n, g) in grams.iter().enumerate() {
        if n == skip {
            continue;
        }
        hadamard_assign(&mut h, g).expect("gram shapes agree");
    }
    h
}

/// Eq. (13): after row `i` of `A(m)` changes from `p` to `new`,
/// `Q(m) ← Q(m) − pᵀp + newᵀnew`.
pub fn gram_row_update(q: &mut Mat, p: &[f64], new: &[f64]) {
    let r = q.rows();
    debug_assert_eq!(p.len(), r);
    debug_assert_eq!(new.len(), r);
    for a in 0..r {
        let (pa, na) = (p[a], new[a]);
        let row = q.row_mut(a);
        row.iter_mut().zip(new.iter().zip(p)).for_each(|(x, (&nb, &pb))| *x += na * nb - pa * pb);
    }
}

/// Eq. (17) / Eq. (26): after row `i` of `A(m)` changes from `p` to `new`,
/// `U(m) ← U(m) − pᵀp + pᵀ·new` (only the right operand of
/// `U = A_prevᵀA` changed).
pub fn prev_gram_row_update(u: &mut Mat, p: &[f64], new: &[f64]) {
    let r = u.rows();
    debug_assert_eq!(p.len(), r);
    debug_assert_eq!(new.len(), r);
    for a in 0..r {
        let pa = p[a];
        if pa == 0.0 {
            continue;
        }
        let row = u.row_mut(a);
        row.iter_mut().zip(new.iter().zip(p)).for_each(|(x, (&nb, &pb))| *x += pa * (nb - pb));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sns_linalg::ops::matmul_transa;

    fn approx(a: &Mat, b: &Mat, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn hadamard_except_skips_mode() {
        let g0 = Mat::filled(2, 2, 2.0);
        let g1 = Mat::filled(2, 2, 3.0);
        let g2 = Mat::filled(2, 2, 5.0);
        let h = hadamard_except(&[g0, g1, g2], 1, 2);
        assert_eq!(h, Mat::filled(2, 2, 10.0));
    }

    #[test]
    fn gram_row_update_matches_recompute() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = Mat::random(&mut rng, 6, 4, 1.0);
        let mut q = gram(&a);
        for _ in 0..20 {
            let i = rng.gen_range(0..6);
            let p: Vec<f64> = a.row(i).to_vec();
            let new: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            a.set_row(i, &new);
            gram_row_update(&mut q, &p, &new);
            assert!(approx(&q, &gram(&a), 1e-10));
        }
    }

    #[test]
    fn prev_gram_row_update_matches_recompute() {
        let mut rng = StdRng::seed_from_u64(4);
        let a_prev = Mat::random(&mut rng, 6, 4, 1.0);
        let mut a = a_prev.clone();
        let mut u = matmul_transa(&a_prev, &a).unwrap();
        for _ in 0..20 {
            let i = rng.gen_range(0..6);
            // Eq. (17) requires p to be the row of A *before* this update;
            // over successive updates of the same row this telescopes only
            // if A_prev's row equals the pre-update A row, which holds when
            // each row is updated at most once — mirror that here by
            // tracking U against the true A_prevᵀA after every edit.
            let p: Vec<f64> = a.row(i).to_vec();
            let new: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            a.set_row(i, &new);
            // The incremental rule uses pᵀ(new − p); it tracks A_prevᵀA
            // exactly when p equals A_prev's row i.
            let p_prev: Vec<f64> = a_prev.row(i).to_vec();
            if p == p_prev {
                prev_gram_row_update(&mut u, &p, &new);
                assert!(approx(&u, &matmul_transa(&a_prev, &a).unwrap(), 1e-10));
            } else {
                break; // row already edited once; stop the telescoping check
            }
        }
    }

    #[test]
    fn compute_grams_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = vec![Mat::random(&mut rng, 3, 2, 1.0), Mat::random(&mut rng, 5, 2, 1.0)];
        let g = compute_grams(&f);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].shape(), (2, 2));
        assert!(approx(&g[1], &gram(&f[1]), 0.0));
    }
}
