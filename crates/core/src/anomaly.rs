//! Z-score anomaly detection on reconstruction errors (Section VI-G).
//!
//! The paper's application experiment: as events stream in, measure the
//! reconstruction error of entries in the *latest tensor unit* (where new
//! changes arrive) and flag entries whose error z-score is extreme.
//! Because SliceNStitch updates factors per event, a spike is scored the
//! moment it arrives; period-based baselines only see it at the next
//! boundary — that gap is exactly Fig. 9's "time between occurrence and
//! detection".

use crate::kruskal::KruskalTensor;
use sns_tensor::{Coord, SparseTensor};

/// Streaming mean/variance tracker (Welford) that converts observations
/// into z-scores against the statistics of everything seen *before* them.
#[derive(Debug, Clone, Default)]
pub struct ZScoreTracker {
    count: u64,
    mean: f64,
    m2: f64,
}

impl ZScoreTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current (population) standard deviation.
    pub fn std(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Scores `value` against the current statistics, then absorbs it.
    /// Returns 0 while fewer than 2 observations exist or the variance is
    /// degenerate.
    pub fn score_and_update(&mut self, value: f64) -> f64 {
        let z = self.score(value);
        self.update(value);
        z
    }

    /// Z-score of `value` without absorbing it.
    ///
    /// With fewer than 2 observations the score is 0. A degenerate
    /// zero-variance history gets a tiny floor instead, so that the first
    /// true outlier after a constant stretch still scores high (instead
    /// of the undefined 0/0).
    pub fn score(&self, value: f64) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let sd = self.std().max(1e-12 * (1.0 + self.mean.abs()));
        (value - self.mean) / sd
    }

    /// Absorbs an observation.
    pub fn update(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// The accumulated second central moment `M₂` (state capture).
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuilds a tracker from captured Welford accumulators; it
    /// continues bitwise-identically to the captured one.
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Self {
        ZScoreTracker { count, mean, m2 }
    }
}

/// One scored stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEvent {
    /// Stream time of the event.
    pub time: u64,
    /// The full window coordinate that was scored.
    pub coord: Coord,
    /// Reconstruction error `|x_J − x̃_J|` at that coordinate.
    pub error: f64,
    /// Z-score of the error against all previously scored events.
    pub z: f64,
}

/// Scores arrival events by reconstruction error z-score and keeps the
/// scored events for offline ranking (top-k precision, detection delay).
///
/// By default every event is retained; [`AnomalyDetector::bounded`]
/// caps retention for long-running streams (the z-score statistics stay
/// exact either way — only the replayable event log is truncated).
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    tracker: ZScoreTracker,
    events: Vec<ScoredEvent>,
    /// Retention cap; `usize::MAX` (the default) keeps everything.
    max_events: usize,
}

impl Default for AnomalyDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl AnomalyDetector {
    /// Creates an empty detector that retains every scored event.
    pub fn new() -> Self {
        AnomalyDetector {
            tracker: ZScoreTracker::new(),
            events: Vec::new(),
            max_events: usize::MAX,
        }
    }

    /// Creates a detector that retains *at least* the `max_events` most
    /// recent scored events (truncation is amortized, so up to twice as
    /// many may be resident). Use for indefinitely running streams where
    /// an unbounded event log would be a leak.
    ///
    /// # Panics
    /// Panics if `max_events == 0`; a detector that records nothing
    /// cannot rank anything.
    pub fn bounded(max_events: usize) -> Self {
        assert!(max_events > 0, "retention cap must be positive");
        AnomalyDetector { max_events, ..Default::default() }
    }

    /// Scores the entry at `coord` of the current window against the
    /// current factorization, records and returns the event.
    pub fn observe(
        &mut self,
        window: &SparseTensor,
        kruskal: &KruskalTensor,
        coord: &Coord,
        time: u64,
    ) -> ScoredEvent {
        let error = (window.get(coord) - kruskal.eval(coord)).abs();
        self.record(coord, time, error)
    }

    /// Scores a pre-computed reconstruction error, records and returns
    /// the event. This is the path for callers that measure the residual
    /// themselves — e.g. the runtime's `AnomalyCpd` decorator, which
    /// scores an arrival *before* the tuple reaches the window.
    pub fn record(&mut self, coord: &Coord, time: u64, error: f64) -> ScoredEvent {
        let z = self.tracker.score_and_update(error);
        let ev = ScoredEvent { time, coord: *coord, error, z };
        if self.events.len() >= self.max_events.saturating_mul(2) {
            // Amortized truncation: drop the oldest half in one move.
            self.events.drain(..self.events.len() - self.max_events);
        }
        self.events.push(ev);
        ev
    }

    /// The streaming statistics every event has been scored against.
    pub fn tracker(&self) -> &ZScoreTracker {
        &self.tracker
    }

    /// Total events scored (independent of retention).
    pub fn scored(&self) -> u64 {
        self.tracker.count()
    }

    /// All *retained* scored events in arrival order (everything, unless
    /// the detector is [`bounded`](AnomalyDetector::bounded)).
    pub fn events(&self) -> &[ScoredEvent] {
        &self.events
    }

    /// The `k` events with the highest z-scores, best first.
    pub fn top_k(&self, k: usize) -> Vec<ScoredEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by(|a, b| b.z.total_cmp(&a.z));
        sorted.truncate(k);
        sorted
    }

    /// Precision@k against a ground-truth predicate on coordinates+time.
    pub fn precision_at_k(&self, k: usize, is_true_anomaly: impl Fn(&ScoredEvent) -> bool) -> f64 {
        let top = self.top_k(k);
        if top.is_empty() {
            return 0.0;
        }
        top.iter().filter(|e| is_true_anomaly(e)).count() as f64 / top.len() as f64
    }

    /// Captures the detector's complete state — streaming statistics,
    /// retained event log, retention cap — for durable serialization.
    pub fn capture_state(&self) -> DetectorState {
        DetectorState {
            count: self.tracker.count(),
            mean: self.tracker.mean(),
            m2: self.tracker.m2(),
            events: self.events.clone(),
            max_events: self.max_events,
        }
    }

    /// Rebuilds a detector from captured state; it scores, retains, and
    /// ranks exactly as the captured one would have.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn from_state(state: DetectorState) -> Result<Self, String> {
        let DetectorState { count, mean, m2, events, max_events } = state;
        if max_events == 0 {
            return Err("retention cap must be positive".to_string());
        }
        if (events.len() as u64) > count {
            return Err(format!("{} retained events but only {count} scored", events.len()));
        }
        Ok(AnomalyDetector {
            tracker: ZScoreTracker::from_parts(count, mean, m2),
            events,
            max_events,
        })
    }
}

/// Captured raw state of an [`AnomalyDetector`] (see
/// [`AnomalyDetector::capture_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorState {
    /// Observations absorbed by the z-score tracker.
    pub count: u64,
    /// Welford running mean.
    pub mean: f64,
    /// Welford second central moment.
    pub m2: f64,
    /// Retained scored events, in arrival order.
    pub events: Vec<ScoredEvent>,
    /// Retention cap (`usize::MAX` = unbounded).
    pub max_events: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_tensor::Shape;

    #[test]
    fn welford_matches_bruteforce() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0, 5.0, 1.0];
        let mut t = ZScoreTracker::new();
        for &x in &xs {
            t.update(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((t.mean() - mean).abs() < 1e-12);
        assert!((t.std() - var.sqrt()).abs() < 1e-12);
        assert_eq!(t.count(), 7);
    }

    #[test]
    fn score_uses_prior_statistics_only() {
        let mut t = ZScoreTracker::new();
        assert_eq!(t.score_and_update(5.0), 0.0); // nothing seen yet
        assert_eq!(t.score_and_update(5.0), 0.0); // one obs: degenerate
        assert_eq!(t.score_and_update(5.0), 0.0); // zero variance
        let z = t.score_and_update(50.0); // far outlier
        assert!(z > 3.0, "z = {z}");
    }

    #[test]
    fn spike_gets_top_zscore() {
        // Window with small errors everywhere except one injected spike.
        let shape = Shape::new(&[3, 3, 2]);
        let mut window = SparseTensor::new(shape);
        let kruskal = KruskalTensor::zeros(&[3, 3, 2], 1); // reconstructs 0
        let mut det = AnomalyDetector::new();
        let mut t = 0u64;
        for a in 0..3u32 {
            for b in 0..3u32 {
                let c = Coord::new(&[a, b, 1]);
                window.add(&c, 1.0); // error = 1 everywhere
                det.observe(&window, &kruskal, &c, t);
                t += 1;
            }
        }
        let spike = Coord::new(&[1, 1, 1]);
        window.add(&spike, 14.0); // error jumps to 15
        let ev = det.observe(&window, &kruskal, &spike, t);
        assert!(ev.z > 2.0, "spike z = {}", ev.z);
        let top = det.top_k(1);
        assert_eq!(top[0].coord, spike);
        assert_eq!(top[0].time, t);
        // Precision@1 with the spike event (identified by time) as truth.
        let spike_time = t;
        let p = det.precision_at_k(1, |e| e.time == spike_time);
        assert_eq!(p, 1.0);
        // Precision@k beyond recorded events degrades to hits/total.
        let p_all = det.precision_at_k(100, |e| e.time == spike_time);
        assert!((p_all - 0.1).abs() < 1e-9, "p@100 = {p_all}");
    }

    #[test]
    fn empty_detector_behaviour() {
        let det = AnomalyDetector::new();
        assert!(det.top_k(5).is_empty());
        assert_eq!(det.precision_at_k(5, |_| true), 0.0);
        assert!(det.events().is_empty());
        assert_eq!(det.scored(), 0);
    }

    #[test]
    fn record_matches_observe() {
        let shape = Shape::new(&[2, 2]);
        let mut window = SparseTensor::new(shape);
        let kruskal = KruskalTensor::zeros(&[2, 2], 1);
        let c = Coord::new(&[1, 1]);
        window.add(&c, 3.0);
        let mut a = AnomalyDetector::new();
        let mut b = AnomalyDetector::new();
        for t in 0..5u64 {
            let ea = a.observe(&window, &kruskal, &c, t);
            let eb = b.record(&c, t, 3.0); // |3.0 − 0| computed by hand
            assert_eq!(ea, eb);
        }
        assert_eq!(a.scored(), b.scored());
        assert_eq!(a.tracker().mean(), b.tracker().mean());
    }

    #[test]
    fn bounded_retention_keeps_recent_events_and_exact_stats() {
        let c = Coord::new(&[0, 0]);
        let mut capped = AnomalyDetector::bounded(10);
        let mut full = AnomalyDetector::new();
        for t in 0..100u64 {
            let v = (t % 7) as f64;
            capped.record(&c, t, v);
            full.record(&c, t, v);
        }
        // Statistics are exact regardless of truncation.
        assert_eq!(capped.scored(), 100);
        assert_eq!(capped.tracker().mean().to_bits(), full.tracker().mean().to_bits());
        assert_eq!(capped.tracker().std().to_bits(), full.tracker().std().to_bits());
        // At least the 10 most recent events survive, far fewer than all.
        assert!(capped.events().len() >= 10 && capped.events().len() < 25);
        let last = capped.events().last().unwrap();
        assert_eq!(last.time, 99);
        assert_eq!(full.events().len(), 100);
    }

    #[test]
    #[should_panic(expected = "retention cap")]
    fn zero_retention_rejected() {
        let _ = AnomalyDetector::bounded(0);
    }
}
