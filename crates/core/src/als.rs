//! Batch ALS for CP decomposition (Section II, Eq. 4).
//!
//! Used three ways in the reproduction, exactly as in the paper:
//! 1. to initialize factor matrices on the initial tensor window,
//! 2. as the fitness reference (denominator of relative fitness),
//! 3. as the body of SNS_MAT, which runs a single sweep per event.

use crate::fitness::fitness_with_grams;
use crate::grams::{compute_grams, hadamard_except};
use crate::kruskal::KruskalTensor;
use crate::mttkrp::mttkrp_full;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sns_linalg::ops::gram;
use sns_tensor::SparseTensor;

/// Options for a batch ALS run.
#[derive(Debug, Clone, PartialEq)]
pub struct AlsOptions {
    /// Maximum number of full sweeps.
    pub max_iters: usize,
    /// Stop when the fitness improvement drops below this threshold.
    pub tol: f64,
    /// Seed for the random initialization.
    pub seed: u64,
    /// Scale of the uniform random initialization.
    pub init_scale: f64,
}

impl Default for AlsOptions {
    fn default() -> Self {
        AlsOptions { max_iters: 50, tol: 1e-5, seed: 0x5eed, init_scale: 1.0 }
    }
}

/// Result of a batch ALS run.
#[derive(Debug, Clone)]
pub struct AlsResult {
    /// The fitted factorization (columns normalized, weights in `λ`).
    pub kruskal: KruskalTensor,
    /// Gram matrices of the final factors.
    pub grams: Vec<sns_linalg::Mat>,
    /// Final fitness.
    pub fitness: f64,
    /// Number of sweeps performed.
    pub iters: usize,
}

/// One ALS sweep (Algorithm 2 without the ΔX bookkeeping): for each mode,
/// solve Eq. (4), normalize columns into `λ`, and refresh that mode's Gram.
///
/// `k.lambda` is overwritten with the scales gathered at the *last* mode,
/// which is the standard `cp_als` convention: after the final mode's
/// normalization all other factors have unit columns, so the last `λ`
/// carries the full scale of the model.
pub fn als_sweep(x: &SparseTensor, k: &mut KruskalTensor, grams: &mut [sns_linalg::Mat]) {
    let order = k.order();
    let rank = k.rank();
    for m in 0..order {
        let u = mttkrp_full(x, &k.factors, m);
        let h = hadamard_except(grams, m, rank);
        let a = sns_linalg::lstsq::solve_xh_eq_u(&h, &u).expect("Gram system is square/finite");
        k.factors[m] = a;
        // Column normalization (footnote 1 of the paper).
        for r in 0..rank {
            let f = &mut k.factors[m];
            let norm: f64 = (0..f.rows()).map(|i| f[(i, r)] * f[(i, r)]).sum::<f64>().sqrt();
            k.lambda[r] = norm;
            if norm > 0.0 {
                for i in 0..f.rows() {
                    f[(i, r)] /= norm;
                }
            }
        }
        grams[m] = gram(&k.factors[m]);
    }
}

/// Runs batch ALS from a random start until convergence or `max_iters`.
pub fn als(x: &SparseTensor, rank: usize, opts: &AlsOptions) -> AlsResult {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let dims = x.shape().dims().to_vec();
    let start = KruskalTensor::random(&mut rng, &dims, rank, opts.init_scale);
    warm_start_from(x, &start, opts)
}

/// The shared warm-start every engine uses (paper §VI-A initialization):
/// batch ALS on `x` starting from a clone of `start`, Grams recomputed
/// from scratch. [`als`] is exactly this applied to a seeded random
/// start, so an engine whose initial factors were drawn with
/// `AlsOptions::seed` warm-starts bitwise-identically to a fresh
/// [`als`] call.
pub fn warm_start_from(x: &SparseTensor, start: &KruskalTensor, opts: &AlsOptions) -> AlsResult {
    let mut k = start.clone();
    let mut grams = compute_grams(&k.factors);
    als_from(x, &mut k, &mut grams, opts)
}

/// Runs batch ALS from the supplied starting point (warm start), mutating
/// it in place and returning a summary.
pub fn als_from(
    x: &SparseTensor,
    k: &mut KruskalTensor,
    grams: &mut [sns_linalg::Mat],
    opts: &AlsOptions,
) -> AlsResult {
    let mut prev_fit = f64::NEG_INFINITY;
    let mut iters = 0;
    for it in 0..opts.max_iters {
        als_sweep(x, k, grams);
        iters = it + 1;
        let fit = fitness_with_grams(x, k, grams);
        if (fit - prev_fit).abs() < opts.tol {
            prev_fit = fit;
            break;
        }
        prev_fit = fit;
    }
    AlsResult { kruskal: k.clone(), grams: grams.to_vec(), fitness: prev_fit, iters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sns_tensor::{Coord, Shape};

    /// Builds an exactly rank-`r` sparse tensor from random non-negative
    /// factors over a small dense grid (zeros dropped).
    fn lowrank_tensor(rng: &mut StdRng, dims: &[usize], rank: usize) -> SparseTensor {
        let k = KruskalTensor::random(rng, dims, rank, 1.0);
        k.reconstruct_dense().to_sparse()
    }

    #[test]
    fn recovers_rank1_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = lowrank_tensor(&mut rng, &[4, 3, 2], 1);
        let result = als(&x, 1, &AlsOptions { max_iters: 60, ..Default::default() });
        assert!(result.fitness > 0.999, "fitness {}", result.fitness);
        assert!(result.kruskal.is_finite());
    }

    #[test]
    fn fits_rank2_with_rank2() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = lowrank_tensor(&mut rng, &[5, 4, 3], 2);
        let result = als(&x, 2, &AlsOptions { max_iters: 200, tol: 1e-9, ..Default::default() });
        assert!(result.fitness > 0.98, "fitness {}", result.fitness);
    }

    #[test]
    fn fitness_is_monotone_nondecreasing_across_sweeps() {
        // ALS is a block-coordinate descent: each sweep cannot decrease
        // the fit (up to numerical noise).
        let mut rng = StdRng::seed_from_u64(3);
        let dims = [5usize, 4, 3];
        let mut x = lowrank_tensor(&mut rng, &dims, 3);
        // Add noise entries.
        for _ in 0..10 {
            let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            x.add(&Coord::new(&c), 0.3);
        }
        let mut k = KruskalTensor::random(&mut rng, &dims, 2, 1.0);
        let mut grams = compute_grams(&k.factors);
        let mut prev = fitness_with_grams(&x, &k, &grams);
        for _ in 0..15 {
            als_sweep(&x, &mut k, &mut grams);
            let fit = fitness_with_grams(&x, &k, &grams);
            assert!(fit >= prev - 1e-8, "fitness decreased: {prev} -> {fit}");
            prev = fit;
        }
    }

    #[test]
    fn grams_stay_consistent_with_factors() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = lowrank_tensor(&mut rng, &[4, 4, 4], 2);
        let result = als(&x, 2, &AlsOptions::default());
        for (m, g) in result.grams.iter().enumerate() {
            let fresh = gram(&result.kruskal.factors[m]);
            for i in 0..2 {
                for j in 0..2 {
                    assert!((g[(i, j)] - fresh[(i, j)]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn normalized_columns_after_run() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = lowrank_tensor(&mut rng, &[4, 3, 3], 2);
        let result = als(&x, 2, &AlsOptions::default());
        // All but scale live in λ: every column of every factor is unit.
        for f in &result.kruskal.factors {
            for r in 0..2 {
                let n: f64 = (0..f.rows()).map(|i| f[(i, r)] * f[(i, r)]).sum::<f64>().sqrt();
                assert!((n - 1.0).abs() < 1e-8 || n == 0.0);
            }
        }
    }

    #[test]
    fn empty_tensor_is_handled() {
        let x = SparseTensor::new(Shape::new(&[3, 3, 3]));
        let result = als(&x, 2, &AlsOptions { max_iters: 3, ..Default::default() });
        // Zero tensor → zero λ → perfect (vacuous) fit.
        assert_eq!(result.fitness, 1.0);
        assert!(result.kruskal.is_finite());
    }

    #[test]
    fn warm_start_converges_faster_than_cold() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = lowrank_tensor(&mut rng, &[5, 5, 4], 2);
        let cold = als(&x, 2, &AlsOptions { max_iters: 100, tol: 1e-7, ..Default::default() });
        // Warm start from the converged model: one sweep should suffice.
        let mut k = cold.kruskal.clone();
        let mut grams = cold.grams.clone();
        let warm = als_from(
            &x,
            &mut k,
            &mut grams,
            &AlsOptions { max_iters: 100, tol: 1e-7, ..Default::default() },
        );
        assert!(
            warm.iters <= cold.iters,
            "warm start took {} iters vs cold {}",
            warm.iters,
            cold.iters
        );
        assert!(warm.fitness >= cold.fitness - 1e-6);
    }
}
