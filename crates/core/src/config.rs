//! Hyperparameters and algorithm selection.

/// Which SliceNStitch updater to run (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// SNS_MAT — one full ALS sweep per event (Algorithm 2).
    Mat,
    /// SNS_VEC — affected-row updates (Eqs. 9, 12, 13).
    Vec,
    /// SNS_RND — sampled affected-row updates (Eqs. 16, 17).
    Rnd,
    /// SNS⁺_VEC — coordinate descent with clipping (Eqs. 21, 22, 24, 25).
    PlusVec,
    /// SNS⁺_RND — sampled coordinate descent with clipping
    /// (Eqs. 21, 23, 24–26).
    PlusRnd,
}

impl AlgorithmKind {
    /// All variants, in the paper's presentation order.
    pub const ALL: [AlgorithmKind; 5] = [
        AlgorithmKind::Mat,
        AlgorithmKind::Vec,
        AlgorithmKind::Rnd,
        AlgorithmKind::PlusVec,
        AlgorithmKind::PlusRnd,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Mat => "SNS_MAT",
            AlgorithmKind::Vec => "SNS_VEC",
            AlgorithmKind::Rnd => "SNS_RND",
            AlgorithmKind::PlusVec => "SNS+_VEC",
            AlgorithmKind::PlusRnd => "SNS+_RND",
        }
    }

    /// True for the clipped (numerically stable) variants.
    pub fn is_stable(&self) -> bool {
        matches!(self, AlgorithmKind::Mat | AlgorithmKind::PlusVec | AlgorithmKind::PlusRnd)
    }

    /// True for the sampling variants (which consume `θ`).
    pub fn uses_sampling(&self) -> bool {
        matches!(self, AlgorithmKind::Rnd | AlgorithmKind::PlusRnd)
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Factor-storage precision profile for the fast updaters.
///
/// [`Precision::F64`] (the default) is the exact path: factors live as
/// `f64` end to end. [`Precision::F32`] is an opt-in speed profile:
/// every committed factor row is rounded through `f32` and the kernel
/// mirror ([`crate::mirror::FactorMirror`]) stores rows as `f32`, so the
/// memory-bound fiber MTTKRP reads half the bytes. All *accumulation*
/// stays in `f64`, which keeps the profile deterministic and bounds the
/// per-commit rounding error at f32 epsilon (`≈1.2e-7` relative per
/// entry); trajectories drift from the f64 profile but remain
/// bitwise-reproducible run to run. `SNS_MAT` (full ALS per event) does
/// not use the fast-updater state and always runs the f64 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Exact `f64` factors (default).
    #[default]
    F64,
    /// `f32`-stored factors with `f64` accumulation (speed profile).
    F32,
}

impl Precision {
    /// Display name used in bench output and snapshots' debug strings.
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// Hyperparameters shared by all updaters (Table III of the paper).
#[derive(Debug, Clone)]
pub struct SnsConfig {
    /// CP rank `R` (paper default: 20).
    pub rank: usize,
    /// Sampling threshold `θ` for SNS_RND / SNS⁺_RND (paper: 20–50).
    pub theta: usize,
    /// Clipping bound `η` for SNS⁺ variants (paper default: 1000).
    pub eta: f64,
    /// Scale of the uniform random factor initialization.
    pub init_scale: f64,
    /// RNG seed (factor init + sampling), for reproducible runs.
    pub seed: u64,
    /// Factor-storage precision profile (default: exact `f64`).
    pub precision: Precision,
}

impl Default for SnsConfig {
    fn default() -> Self {
        SnsConfig {
            rank: 20,
            theta: 20,
            eta: 1000.0,
            init_scale: 1.0,
            seed: 0x5eed,
            precision: Precision::F64,
        }
    }
}

impl SnsConfig {
    /// Config with a given rank, other fields at paper defaults.
    pub fn with_rank(rank: usize) -> Self {
        SnsConfig { rank, ..Default::default() }
    }

    /// Builder-style θ override.
    pub fn theta(mut self, theta: usize) -> Self {
        self.theta = theta;
        self
    }

    /// Builder-style η override.
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style precision-profile override.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table3() {
        let c = SnsConfig::default();
        assert_eq!(c.rank, 20);
        assert_eq!(c.theta, 20);
        assert_eq!(c.eta, 1000.0);
    }

    #[test]
    fn builders() {
        let c = SnsConfig::with_rank(5).theta(7).eta(32.0).seed(1).precision(Precision::F32);
        assert_eq!(c.rank, 5);
        assert_eq!(c.theta, 7);
        assert_eq!(c.eta, 32.0);
        assert_eq!(c.seed, 1);
        assert_eq!(c.precision, Precision::F32);
        assert_eq!(SnsConfig::default().precision, Precision::F64);
        assert_eq!(Precision::F64.name(), "f64");
        assert_eq!(Precision::F32.name(), "f32");
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(AlgorithmKind::ALL.len(), 5);
        assert!(AlgorithmKind::PlusRnd.is_stable());
        assert!(!AlgorithmKind::Vec.is_stable());
        assert!(AlgorithmKind::Rnd.uses_sampling());
        assert!(!AlgorithmKind::Mat.uses_sampling());
        assert_eq!(AlgorithmKind::PlusVec.to_string(), "SNS+_VEC");
    }
}
