//! # sns-core
//!
//! The SliceNStitch algorithms — continuous CP decomposition of sparse
//! tensor streams (Section V of the paper), plus the batch ALS used for
//! initialization and as the fitness reference.
//!
//! ## Layout
//!
//! - [`config`] — hyperparameters (`R`, `θ`, `η`, seeds),
//! - [`kruskal`] — the factorization object `[[λ; A(1),…,A(M)]]`,
//! - [`grams`] — incrementally maintained Gram matrices `A(m)ᵀA(m)`,
//! - [`mttkrp`] — sparse MTTKRP kernels (full, all-modes prefix/suffix,
//!   per-row with entry-pair blocking, interleaved-mirror and
//!   rank-split parallel variants, fused sampled-residual),
//! - [`mirror`] — [`mirror::FactorMirror`]: interleaved, padded (and
//!   optionally `f32`) factor storage the fiber kernels read,
//! - [`workspace`] — [`workspace::KernelWorkspace`]: per-updater scratch
//!   buffers and version-keyed cached `H(m)` Cholesky solves that make
//!   the steady-state per-event path allocation-free,
//! - [`fitness`] — exact sparse fitness via the Gram identity,
//! - [`als`] — batch ALS (Eq. 4) with column normalization,
//! - [`update`] — the five per-event updaters:
//!   [`update::SnsMat`] (Alg. 2), [`update::SnsVec`] (Eqs. 9/12/13),
//!   [`update::SnsRnd`] (Eqs. 16/17), [`update::SnsPlusVec`] and
//!   [`update::SnsPlusRnd`] (coordinate descent, Eqs. 20–26, with
//!   clipping),
//! - [`engine`] — glue: a continuous window + an updater = a continuously
//!   maintained CP decomposition,
//! - [`anomaly`] — the z-score anomaly detector of Section VI-G.

pub mod als;
pub mod anomaly;
pub mod config;
pub mod engine;
pub mod fitness;
pub mod grams;
pub mod kruskal;
pub mod mirror;
pub mod mttkrp;
pub mod update;
pub mod workspace;

pub use anomaly::{AnomalyDetector, DetectorState, ZScoreTracker};
pub use config::{AlgorithmKind, Precision, SnsConfig};
pub use engine::{SnsEngine, SnsEngineState};
pub use kruskal::KruskalTensor;
pub use update::{ContinuousUpdater, UpdaterState};
