//! The Kruskal (CP) factorization object `X̃ = [[λ; A(1), …, A(M)]]`.

use rand::Rng;
use sns_linalg::Mat;
use sns_tensor::{Coord, DenseTensor, Shape};

/// A rank-`R` CP factorization: `M` factor matrices `A(m) ∈ R^{N_m×R}`
/// plus column weights `λ ∈ R^R`.
///
/// The streaming updaters other than SNS_MAT keep factors unnormalized and
/// `λ = 1`; SNS_MAT and batch ALS normalize columns and carry the scale in
/// `λ` (Algorithm 2, footnote 1).
#[derive(Debug, Clone)]
pub struct KruskalTensor {
    /// Factor matrices, one per mode (the time mode is last).
    pub factors: Vec<Mat>,
    /// Column weights.
    pub lambda: Vec<f64>,
}

impl KruskalTensor {
    /// Creates a factorization with uniform random non-negative entries in
    /// `[0, scale)` and unit weights.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], rank: usize, scale: f64) -> Self {
        let factors = dims.iter().map(|&n| Mat::random(rng, n, rank, scale)).collect();
        KruskalTensor { factors, lambda: vec![1.0; rank] }
    }

    /// Creates an all-zero factorization (useful as a placeholder).
    pub fn zeros(dims: &[usize], rank: usize) -> Self {
        let factors = dims.iter().map(|&n| Mat::zeros(n, rank)).collect();
        KruskalTensor { factors, lambda: vec![1.0; rank] }
    }

    /// CP rank `R`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// Number of modes `M`.
    #[inline]
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// Mode lengths.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.rows()).collect()
    }

    /// Total number of parameters (`R · Σ N_m`), the quantity of Fig. 1d.
    pub fn num_parameters(&self) -> usize {
        self.factors.iter().map(|f| f.rows() * f.cols()).sum()
    }

    /// Evaluates the reconstruction `x̃_J = Σ_r λ_r Π_m a(m)_{j_m r}`.
    pub fn eval(&self, coord: &Coord) -> f64 {
        debug_assert_eq!(coord.order(), self.order());
        let r = self.rank();
        let mut acc = 0.0;
        for k in 0..r {
            let mut prod = self.lambda[k];
            if prod == 0.0 {
                continue;
            }
            for (m, f) in self.factors.iter().enumerate() {
                prod *= f.row(coord.get(m) as usize)[k];
                if prod == 0.0 {
                    break;
                }
            }
            acc += prod;
        }
        acc
    }

    /// Squared Frobenius norm of the reconstruction,
    /// `‖X̃‖² = Σ_{r,s} λ_r λ_s Π_m (A(m)ᵀA(m))_{rs}`, computed from the
    /// supplied Gram matrices in `O(M·R²)`.
    pub fn norm_sq_from_grams(&self, grams: &[Mat]) -> f64 {
        debug_assert_eq!(grams.len(), self.order());
        let r = self.rank();
        let mut acc = 0.0;
        for i in 0..r {
            for j in 0..r {
                let mut prod = self.lambda[i] * self.lambda[j];
                for g in grams {
                    prod *= g[(i, j)];
                    if prod == 0.0 {
                        break;
                    }
                }
                acc += prod;
            }
        }
        acc.max(0.0)
    }

    /// Normalizes every factor's columns to unit ℓ₂ norm, folding the
    /// scales into `λ` (multiplied in). Zero columns get `λ_r = 0`.
    pub fn normalize_columns(&mut self) {
        let r = self.rank();
        for f in &mut self.factors {
            for k in 0..r {
                let norm: f64 = (0..f.rows()).map(|i| f[(i, k)] * f[(i, k)]).sum::<f64>().sqrt();
                if norm > 0.0 {
                    self.lambda[k] *= norm;
                    for i in 0..f.rows() {
                        f[(i, k)] /= norm;
                    }
                } else {
                    self.lambda[k] = 0.0;
                }
            }
        }
    }

    /// Folds the weights `λ` into the factor matrices, distributing
    /// `λ_r^{1/M}` to each mode's column `r`, and resets `λ = 1`. The
    /// reconstruction is unchanged. The fast updaters require this form
    /// (they model `X̃ = [[A(1),…,A(M)]]` without weights).
    ///
    /// Negative weights (which column normalization never produces, but a
    /// caller could) keep their sign on the first mode.
    pub fn distribute_lambda(&mut self) {
        let m = self.order() as f64;
        for r in 0..self.rank() {
            let lam = self.lambda[r];
            if lam == 1.0 {
                continue;
            }
            let mag = lam.abs().powf(1.0 / m);
            for (mode, f) in self.factors.iter_mut().enumerate() {
                let scale = if mode == 0 { mag * lam.signum() } else { mag };
                for i in 0..f.rows() {
                    f[(i, r)] *= scale;
                }
            }
            self.lambda[r] = 1.0;
        }
    }

    /// Materializes the reconstruction densely (test oracle; exponential in
    /// order, use on small shapes only).
    pub fn reconstruct_dense(&self) -> DenseTensor {
        let shape = Shape::new(&self.dims());
        let mut out = DenseTensor::zeros(shape.clone());
        for c in shape.iter_coords() {
            *out.get_mut(&c) = self.eval(&c);
        }
        out
    }

    /// Validates that `grams` structurally matches this factorization —
    /// one `R×R` Gram per mode, every factor with `R` columns — and,
    /// when `require_unit_lambda`, that all weights are 1 (the form the
    /// fast updaters and incremental baselines require). The single
    /// shape check behind every state-restore path; returns a
    /// description of the first inconsistency.
    pub fn check_gram_shapes(
        &self,
        grams: &[Mat],
        require_unit_lambda: bool,
    ) -> Result<(), String> {
        let rank = self.rank();
        if self.order() == 0 {
            return Err("factorization has no modes".to_string());
        }
        if grams.len() != self.order() {
            return Err(format!("{} grams for {} modes", grams.len(), self.order()));
        }
        for (m, f) in self.factors.iter().enumerate() {
            if f.cols() != rank {
                return Err(format!("mode {m} factor has {} cols, rank is {rank}", f.cols()));
            }
            if grams[m].shape() != (rank, rank) {
                return Err(format!("mode {m} gram is {:?}, want {rank}x{rank}", grams[m].shape()));
            }
        }
        if require_unit_lambda && !self.lambda.iter().all(|&l| l == 1.0) {
            return Err("factors must carry unit weights".to_string());
        }
        Ok(())
    }

    /// True if every factor entry and weight is finite.
    pub fn is_finite(&self) -> bool {
        self.lambda.iter().all(|l| l.is_finite()) && self.factors.iter().all(|f| f.is_finite())
    }

    /// Largest absolute factor entry (diagnostic for the instability that
    /// clipping prevents — Observation 3).
    pub fn max_abs_entry(&self) -> f64 {
        self.factors.iter().map(|f| f.max_abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sns_linalg::ops::gram;

    fn sample() -> KruskalTensor {
        let mut rng = StdRng::seed_from_u64(7);
        KruskalTensor::random(&mut rng, &[3, 4, 2], 5, 1.0)
    }

    #[test]
    fn shape_metadata() {
        let k = sample();
        assert_eq!(k.rank(), 5);
        assert_eq!(k.order(), 3);
        assert_eq!(k.dims(), vec![3, 4, 2]);
        assert_eq!(k.num_parameters(), 5 * (3 + 4 + 2));
    }

    #[test]
    fn eval_matches_bruteforce() {
        let k = sample();
        let c = Coord::new(&[2, 1, 0]);
        let mut expect = 0.0;
        for r in 0..5 {
            expect +=
                k.lambda[r] * k.factors[0][(2, r)] * k.factors[1][(1, r)] * k.factors[2][(0, r)];
        }
        assert!((k.eval(&c) - expect).abs() < 1e-12);
    }

    #[test]
    fn norm_from_grams_matches_dense() {
        let k = sample();
        let grams: Vec<Mat> = k.factors.iter().map(gram).collect();
        let from_grams = k.norm_sq_from_grams(&grams);
        let dense = k.reconstruct_dense();
        let direct = dense.norm().powi(2);
        assert!((from_grams - direct).abs() < 1e-9 * (1.0 + direct), "{from_grams} vs {direct}");
    }

    #[test]
    fn normalization_preserves_reconstruction() {
        let mut k = sample();
        let before = k.reconstruct_dense();
        k.normalize_columns();
        let after = k.reconstruct_dense();
        assert!(before.dist(&after) < 1e-9);
        // Columns are unit norm.
        for f in &k.factors {
            for r in 0..k.rank() {
                let n: f64 = (0..f.rows()).map(|i| f[(i, r)] * f[(i, r)]).sum::<f64>().sqrt();
                assert!((n - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn normalization_zero_column() {
        let mut k = KruskalTensor::zeros(&[2, 2], 2);
        k.factors[0][(0, 0)] = 1.0;
        k.factors[1][(0, 0)] = 2.0;
        // Column 1 is all-zero in both factors.
        k.normalize_columns();
        assert_eq!(k.lambda[1], 0.0);
        assert!((k.lambda[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finiteness_and_max_entry() {
        let mut k = sample();
        assert!(k.is_finite());
        assert!(k.max_abs_entry() <= 1.0);
        k.factors[0][(0, 0)] = f64::INFINITY;
        assert!(!k.is_finite());
    }

    #[test]
    fn random_is_seeded() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let k1 = KruskalTensor::random(&mut a, &[3, 3], 2, 0.5);
        let k2 = KruskalTensor::random(&mut b, &[3, 3], 2, 0.5);
        assert_eq!(k1.factors[0], k2.factors[0]);
    }
}
