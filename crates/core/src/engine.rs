//! The SliceNStitch engine: a continuous tensor window wired to a
//! per-event factor updater.
//!
//! This is the object a downstream user instantiates: feed it the raw
//! multi-aspect data stream, read back an always-current CP decomposition.

use crate::als::{warm_start_from, AlsOptions, AlsResult};
use crate::config::{AlgorithmKind, SnsConfig};
use crate::fitness::fitness_with_grams;
use crate::kruskal::KruskalTensor;
use crate::update::{ContinuousUpdater, Updater, UpdaterState};
use sns_stream::{ContinuousWindow, ContinuousWindowState, Delta, StreamTuple};
use sns_tensor::SparseTensor;

/// A continuously maintained CP decomposition of a sparse tensor stream.
///
/// `Clone` captures the complete engine state — window tensor, pending
/// boundary events, factors, Gram matrices, sampling RNG, and clock —
/// so a clone continues bitwise-identically to the original. The
/// runtime's snapshot/restore (shard migration) is built on this.
#[derive(Clone)]
pub struct SnsEngine {
    window: ContinuousWindow,
    updater: Updater,
    buf: Vec<Delta>,
    updates_applied: u64,
}

impl SnsEngine {
    /// Creates an engine over categorical mode lengths `base_dims` with a
    /// window of `window` periods of `period` ticks, running the chosen
    /// algorithm. Factors start random; call [`SnsEngine::prefill`] +
    /// [`SnsEngine::warm_start`] to reproduce the paper's initialization.
    pub fn new(
        base_dims: &[usize],
        window: usize,
        period: u64,
        kind: AlgorithmKind,
        config: &SnsConfig,
    ) -> Self {
        let mut dims = base_dims.to_vec();
        dims.push(window);
        SnsEngine {
            window: ContinuousWindow::new(base_dims, window, period),
            updater: Updater::new(kind, &dims, config),
            buf: Vec::with_capacity(8),
            updates_applied: 0,
        }
    }

    /// Ingests a tuple into the window **without** updating factors.
    /// Use to build the initial window that ALS is warm-started on.
    pub fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()> {
        self.buf.clear();
        self.window.ingest(tuple, &mut self.buf)
    }

    /// Runs batch ALS on the current window and installs the result,
    /// mirroring the paper's "initialized factor matrices using ALS on
    /// the initial tensor window".
    pub fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult {
        let result = warm_start_from(self.window.tensor(), self.updater.kruskal(), opts);
        self.updater.install(result.kruskal.clone(), result.grams.clone());
        result
    }

    /// Applies the factor update for every delta in `self.buf`, returning
    /// how many were processed. The single drain point behind `ingest`,
    /// `ingest_all`, and `advance_to`; `self.buf` doubles as the reusable
    /// delta arena (deltas are `Copy`, so steady-state ingestion performs
    /// no per-event allocation anywhere on this path).
    fn drain_events(&mut self) -> usize {
        // The window applies each delta before reporting it, so by the
        // time we iterate here the tensor already includes ΔX for *all*
        // deltas in the batch. For same-timestamp batches this makes later
        // deltas see slightly fresher state than a strict serial replay —
        // harmless, since every update rule reads the window as X+ΔX.
        for d in &self.buf {
            self.updater.apply(self.window.tensor(), d);
        }
        self.updates_applied += self.buf.len() as u64;
        self.buf.len()
    }

    /// Ingests one stream tuple, applying the factor update for every
    /// window event it causes (the arrival plus any boundary crossings
    /// that became due). Returns the number of events processed.
    pub fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
        self.buf.clear();
        self.window.ingest(tuple, &mut self.buf)?;
        Ok(self.drain_events())
    }

    /// Ingests a whole slice of chronological tuples, applying every
    /// factor update the batch triggers. Returns the total number of
    /// events processed.
    ///
    /// Bitwise-identical to calling [`SnsEngine::ingest`] per tuple; the
    /// batch entry point lets `dyn StreamingCpd` drivers pay one virtual
    /// call per batch instead of one per tuple. Consecutive calls
    /// compose: `ingest_all(a); ingest_all(b)` ≡ `ingest_all(a ++ b)`
    /// bitwise (pinned by `ingest_all_matches_per_tuple_ingest_bitwise`)
    /// — the invariant the pooled runtime's batch coalescing builds on.
    ///
    /// # Errors
    /// Short-circuits at the first failing tuple with
    /// [`SnsError::BatchAborted`](sns_stream::SnsError::BatchAborted):
    /// tuples before it **were** applied and stay applied; the window is
    /// untouched by the failing tuple itself.
    pub fn ingest_all(&mut self, tuples: &[StreamTuple]) -> sns_stream::Result<u64> {
        let mut updates = 0u64;
        for (i, tu) in tuples.iter().enumerate() {
            match self.ingest(*tu) {
                Ok(n) => updates += n as u64,
                Err(e) => return Err(e.aborted_at(i, updates)),
            }
        }
        Ok(updates)
    }

    /// Advances the clock without an arrival (boundary events still fire
    /// and update factors). Returns the number of events processed.
    pub fn advance_to(&mut self, t: u64) -> usize {
        self.buf.clear();
        self.window.advance_to(t, &mut self.buf);
        self.drain_events()
    }

    /// The deltas produced by the most recent `ingest`/`advance_to` call.
    pub fn last_deltas(&self) -> &[Delta] {
        &self.buf
    }

    /// Current window tensor.
    pub fn window(&self) -> &SparseTensor {
        self.window.tensor()
    }

    /// Current factorization.
    pub fn kruskal(&self) -> &KruskalTensor {
        self.updater.kruskal()
    }

    /// Current fitness against the live window.
    pub fn fitness(&self) -> f64 {
        fitness_with_grams(self.window.tensor(), self.updater.kruskal(), self.updater.grams())
    }

    /// Which algorithm is running.
    pub fn kind(&self) -> AlgorithmKind {
        self.updater.kind()
    }

    /// True if an unclipped variant hit non-finite values and froze.
    pub fn diverged(&self) -> bool {
        self.updater.diverged()
    }

    /// Total factor updates applied (events, not tuples).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Clock of the underlying window.
    pub fn now(&self) -> u64 {
        self.window.now()
    }

    /// Number of model parameters (Fig. 1d's y-axis).
    pub fn num_parameters(&self) -> usize {
        self.updater.kruskal().num_parameters()
    }

    /// Direct access to the updater (ablations, tests).
    pub fn updater(&self) -> &Updater {
        &self.updater
    }

    /// Captures the engine's complete live state — window (with exact
    /// iteration orders), pending boundary events, factors, Grams,
    /// sampling RNG, and counters — as plain serializable data. A
    /// [`SnsEngine::from_state`] rebuild continues bitwise-identically.
    pub fn capture_state(&self) -> SnsEngineState {
        SnsEngineState {
            window: self.window.capture_state(),
            updater: self.updater.capture_state(),
            updates_applied: self.updates_applied,
        }
    }

    /// Rebuilds an engine from captured state. Scratch (the delta arena
    /// and kernel workspace) is rebuilt cold — workspace reuse is
    /// bitwise-invisible, so the restored engine's outputs are identical
    /// to the captured engine's.
    ///
    /// # Errors
    /// Returns a description of the first internal inconsistency
    /// (decoded snapshots are validated, not trusted).
    pub fn from_state(state: SnsEngineState) -> Result<Self, String> {
        let SnsEngineState { window, updater, updates_applied } = state;
        let window = ContinuousWindow::from_state(window)?;
        let updater = Updater::from_state(updater)?;
        let expect: Vec<usize> = window.tensor().shape().dims().to_vec();
        if updater.kruskal().dims() != expect {
            return Err(format!(
                "factor dims {:?} do not match window dims {expect:?}",
                updater.kruskal().dims()
            ));
        }
        Ok(SnsEngine { window, updater, buf: Vec::with_capacity(8), updates_applied })
    }
}

/// Captured raw state of an [`SnsEngine`] (see
/// [`SnsEngine::capture_state`]).
#[derive(Clone)]
pub struct SnsEngineState {
    /// The continuous window: tensor, event queue, clock.
    pub window: ContinuousWindowState,
    /// The per-event updater: factors, Grams, RNG, hyperparameters.
    pub updater: UpdaterState,
    /// Factor updates applied so far.
    pub updates_applied: u64,
}

impl SnsEngineState {
    /// Which algorithm the captured engine was running.
    pub fn kind(&self) -> AlgorithmKind {
        self.updater.kind()
    }

    /// The captured clock (largest time advanced to).
    pub fn clock(&self) -> u64 {
        self.window.now
    }
}

impl std::fmt::Debug for SnsEngineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SnsEngineState({}, dims={:?}, clock={}, updates={})",
            self.kind(),
            self.updater.factors().dims(),
            self.window.now,
            self.updates_applied
        )
    }
}

impl std::fmt::Debug for SnsEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SnsEngine({}, window nnz={}, events={})",
            self.kind(),
            self.window().nnz(),
            self.updates_applied
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stream(seed: u64, n: usize, dims: (u32, u32)) -> Vec<StreamTuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0u64;
        (0..n)
            .map(|_| {
                t += rng.gen_range(0..3);
                StreamTuple::new([rng.gen_range(0..dims.0), rng.gen_range(0..dims.1)], 1.0, t)
            })
            .collect()
    }

    fn run_engine(kind: AlgorithmKind, seed: u64) -> SnsEngine {
        let config = SnsConfig { rank: 3, theta: 12, seed, init_scale: 0.3, ..Default::default() };
        let mut e = SnsEngine::new(&[5, 4], 5, 10, kind, &config);
        let tuples = stream(seed, 160, (5, 4));
        let half = tuples.len() / 2;
        for tu in &tuples[..half] {
            e.prefill(*tu).unwrap();
        }
        e.warm_start(&AlsOptions { max_iters: 25, ..Default::default() });
        for tu in &tuples[half..] {
            e.ingest(*tu).unwrap();
        }
        e
    }

    #[test]
    fn every_algorithm_runs_end_to_end() {
        for kind in AlgorithmKind::ALL {
            let e = run_engine(kind, 7);
            assert_eq!(e.kind(), kind);
            assert!(e.updates_applied() > 0, "{kind}: no updates");
            if kind.is_stable() {
                assert!(!e.diverged(), "{kind} diverged");
                let fit = e.fitness();
                assert!(fit.is_finite() && fit > 0.0, "{kind}: fitness {fit}");
            }
        }
    }

    #[test]
    fn warm_start_produces_good_initial_fit() {
        let config = SnsConfig { rank: 3, seed: 9, ..Default::default() };
        let mut e = SnsEngine::new(&[5, 4], 5, 10, AlgorithmKind::PlusRnd, &config);
        for tu in stream(9, 80, (5, 4)) {
            e.prefill(tu).unwrap();
        }
        let result = e.warm_start(&AlsOptions { max_iters: 40, ..Default::default() });
        assert!(result.fitness > 0.2, "ALS warm start fitness {}", result.fitness);
        assert!((e.fitness() - result.fitness).abs() < 1e-9);
    }

    #[test]
    fn advance_to_processes_boundary_events() {
        let config = SnsConfig { rank: 2, seed: 10, ..Default::default() };
        let mut e = SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::PlusVec, &config);
        e.ingest(StreamTuple::new([0u32, 0], 1.0, 0)).unwrap();
        // 3 crossings pending: t = 10, 20, 30 (the last is the expiry).
        let n = e.advance_to(100);
        assert_eq!(n, 3);
        assert_eq!(e.window().nnz(), 0);
        assert_eq!(e.now(), 100);
    }

    #[test]
    fn parameters_are_window_sized_not_history_sized() {
        // The whole point of the continuous model (Fig. 1d): parameters
        // stay R·(ΣN_m + W) regardless of how long the stream runs.
        let config = SnsConfig { rank: 4, seed: 11, ..Default::default() };
        let mut e = SnsEngine::new(&[6, 5], 3, 5, AlgorithmKind::PlusRnd, &config);
        let expected = 4 * (6 + 5 + 3);
        assert_eq!(e.num_parameters(), expected);
        for tu in stream(11, 300, (6, 5)) {
            e.ingest(tu).unwrap();
        }
        assert_eq!(e.num_parameters(), expected);
    }

    #[test]
    fn ingest_all_matches_per_tuple_ingest_bitwise() {
        for kind in AlgorithmKind::ALL {
            let config =
                SnsConfig { rank: 3, theta: 2, seed: 17, init_scale: 0.3, ..Default::default() };
            let mut a = SnsEngine::new(&[5, 4], 4, 10, kind, &config);
            let mut b = SnsEngine::new(&[5, 4], 4, 10, kind, &config);
            let tuples = stream(23, 150, (5, 4));
            let mut per_tuple = 0u64;
            for tu in &tuples {
                per_tuple += a.ingest(*tu).unwrap() as u64;
            }
            let batched = b.ingest_all(&tuples).unwrap();
            assert_eq!(per_tuple, batched, "{kind}: update counts differ");
            assert_eq!(a.updates_applied(), b.updates_applied());
            for m in 0..3 {
                assert_eq!(
                    a.kruskal().factors[m],
                    b.kruskal().factors[m],
                    "{kind}: mode {m} factors differ"
                );
            }
        }
    }

    #[test]
    fn ingest_all_reports_partial_progress_on_error() {
        let config = SnsConfig { rank: 2, seed: 3, ..Default::default() };
        let mut e = SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::PlusVec, &config);
        let tuples = [
            StreamTuple::new([0u32, 0], 1.0, 5),
            StreamTuple::new([1u32, 1], 1.0, 8),
            StreamTuple::new([2u32, 2], 1.0, 4), // out of order
            StreamTuple::new([0u32, 1], 1.0, 9),
        ];
        let err = e.ingest_all(&tuples).unwrap_err();
        match err {
            sns_stream::SnsError::BatchAborted { accepted, applied, source } => {
                assert_eq!(accepted, 2);
                assert_eq!(applied, 2); // two arrivals, no boundary crossings
                assert!(matches!(*source, sns_stream::SnsError::OutOfOrder { .. }));
            }
            other => panic!("expected BatchAborted, got {other:?}"),
        }
        // The accepted prefix stays applied; the engine remains usable.
        assert_eq!(e.updates_applied(), 2);
        assert_eq!(e.window().nnz(), 2);
        e.ingest(StreamTuple::new([0u32, 2], 1.0, 12)).unwrap();
    }

    #[test]
    fn cloned_engine_continues_bitwise_identically() {
        // Clone mid-stream (live window, pending events, mid-state RNG)
        // and drive both copies forward: they must agree bit for bit.
        for kind in [AlgorithmKind::PlusRnd, AlgorithmKind::Rnd, AlgorithmKind::PlusVec] {
            let config =
                SnsConfig { rank: 3, theta: 2, seed: 29, init_scale: 0.3, ..Default::default() };
            let mut original = SnsEngine::new(&[5, 4], 4, 10, kind, &config);
            let tuples = stream(31, 160, (5, 4));
            let (half, rest) = tuples.split_at(80);
            for tu in half {
                original.ingest(*tu).unwrap();
            }
            let mut clone = original.clone();
            for tu in rest {
                original.ingest(*tu).unwrap();
                clone.ingest(*tu).unwrap();
            }
            assert_eq!(original.updates_applied(), clone.updates_applied(), "{kind}");
            assert_eq!(original.fitness().to_bits(), clone.fitness().to_bits(), "{kind}");
            for m in 0..3 {
                assert_eq!(original.kruskal().factors[m], clone.kruskal().factors[m], "{kind}");
            }
        }
    }

    #[test]
    fn captured_state_restores_bitwise_for_every_algorithm() {
        // Capture mid-stream (live window, pending events, mid-state RNG),
        // rebuild from the plain-data state, and drive both engines
        // forward: they must agree bit for bit. Stronger than the clone
        // test — the restored engine got fresh scratch and a fresh
        // workspace, so only the captured state carries continuity.
        for kind in AlgorithmKind::ALL {
            let config =
                SnsConfig { rank: 3, theta: 2, seed: 41, init_scale: 0.3, ..Default::default() };
            let mut original = SnsEngine::new(&[5, 4], 4, 10, kind, &config);
            let tuples = stream(43, 120, (5, 4));
            let (half, rest) = tuples.split_at(60);
            for tu in half {
                original.ingest(*tu).unwrap();
            }
            let state = original.capture_state();
            let mut restored = SnsEngine::from_state(state).unwrap();
            assert_eq!(restored.now(), original.now(), "{kind}");
            for tu in rest {
                original.ingest(*tu).unwrap();
                restored.ingest(*tu).unwrap();
            }
            original.advance_to(600);
            restored.advance_to(600);
            assert_eq!(original.updates_applied(), restored.updates_applied(), "{kind}");
            assert_eq!(original.fitness().to_bits(), restored.fitness().to_bits(), "{kind}");
            for m in 0..3 {
                assert_eq!(
                    original.kruskal().factors[m],
                    restored.kruskal().factors[m],
                    "{kind} mode {m}"
                );
            }
        }
    }

    #[test]
    fn engine_state_debug_is_compact() {
        let config = SnsConfig { rank: 2, seed: 5, ..Default::default() };
        let mut e = SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
        for t in 0..50u64 {
            e.ingest(StreamTuple::new([(t % 3) as u32, (t % 3) as u32], 1.0, t)).unwrap();
        }
        let dbg = format!("{:?}", e.capture_state());
        assert!(dbg.contains("SNS+_RND") && dbg.contains("clock="), "{dbg}");
        assert!(dbg.len() < 120, "state debug must stay compact: {dbg}");
    }

    #[test]
    fn out_of_order_is_propagated() {
        let config = SnsConfig::with_rank(2);
        let mut e = SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::Vec, &config);
        e.ingest(StreamTuple::new([0u32, 0], 1.0, 10)).unwrap();
        assert!(e.ingest(StreamTuple::new([0u32, 0], 1.0, 5)).is_err());
    }

    #[test]
    fn stable_variants_beat_noise_floor_on_structured_stream() {
        // Structured stream: two "communities" with disjoint coordinates.
        let mut tuples = Vec::new();
        let mut rng = StdRng::seed_from_u64(12);
        for t in 0..400u64 {
            let (a, b) = if rng.gen_bool(0.5) {
                (rng.gen_range(0..2u32), rng.gen_range(0..2u32))
            } else {
                (rng.gen_range(3..5u32), rng.gen_range(2..4u32))
            };
            tuples.push(StreamTuple::new([a, b], 1.0, t / 2));
        }
        let config = SnsConfig { rank: 2, theta: 10, seed: 13, ..Default::default() };
        let mut e = SnsEngine::new(&[5, 4], 5, 20, AlgorithmKind::PlusRnd, &config);
        for tu in &tuples[..200] {
            e.prefill(*tu).unwrap();
        }
        e.warm_start(&AlsOptions::default());
        for tu in &tuples[200..] {
            e.ingest(*tu).unwrap();
        }
        assert!(e.fitness() > 0.4, "fitness {}", e.fitness());
    }
}
