//! Sparse MTTKRP kernels.
//!
//! The matricized-tensor-times-Khatri-Rao product `X(m)·K(m)` is the hot
//! kernel of every CP algorithm. For a sparse `X` it reduces to, per
//! non-zero `x_J`, a scaled element-wise product of factor rows — the
//! Khatri–Rao product is never materialized.
//!
//! # Rank invariants
//!
//! Every kernel here works on length-`R` row buffers, where `R` is the
//! common column count of all `factors`. Callers must pass `out` and
//! `scratch` slices of exactly that length: a longer `scratch` would
//! silently leave stale tail entries in the product (the classic
//! wrong-length-scratch bug), a shorter one would truncate it. The
//! kernels `debug_assert!` these invariants; release builds trust the
//! caller (the buffers all come from
//! [`KernelWorkspace`](crate::workspace::KernelWorkspace), which sizes
//! them once at construction).

use crate::kruskal::KruskalTensor;
use sns_linalg::Mat;
use sns_tensor::{Coord, SparseTensor};

#[inline]
fn debug_assert_rank(factors: &[Mat], len: usize, what: &str) {
    debug_assert!(
        factors.iter().all(|f| f.cols() == len),
        "{what}: buffer length {len} must equal the factor rank {:?}",
        factors.iter().map(|f| f.cols()).collect::<Vec<_>>()
    );
}

/// Collects the participating factor rows of one coordinate (all modes
/// but `skip`) into a stack array — one bounds-checked lookup per mode,
/// after which the product kernels run over plain slices.
#[inline]
fn gather_rows<'a>(
    factors: &'a [Mat],
    coord: &Coord,
    skip: usize,
) -> ([&'a [f64]; sns_tensor::MAX_ORDER], usize) {
    let mut rows: [&[f64]; sns_tensor::MAX_ORDER] = [&[]; sns_tensor::MAX_ORDER];
    let mut n = 0;
    for (m, f) in factors.iter().enumerate() {
        if m != skip {
            rows[n] = f.row(coord.get(m) as usize);
            n += 1;
        }
    }
    (rows, n)
}

/// `out[k] = Π_{n≠skip} factors[n](coord_n, k)` — the Khatri–Rao *row*
/// product for one coordinate. `O(M·R)`.
///
/// `out.len()` must equal the factor rank `R`. The ubiquitous
/// three-mode/one-skip case runs as a single fused element-wise multiply
/// (one pass over `out` instead of init + one pass per mode); products
/// accumulate in ascending-mode order in every case, so results are
/// bitwise independent of which path runs.
#[inline]
pub fn khatri_rao_row(factors: &[Mat], coord: &Coord, skip: usize, out: &mut [f64]) {
    debug_assert_rank(factors, out.len(), "khatri_rao_row");
    let (rows, n) = gather_rows(factors, coord, skip);
    match n {
        0 => out.iter_mut().for_each(|x| *x = 1.0),
        1 => out.copy_from_slice(rows[0]),
        2 => {
            out.iter_mut().zip(rows[0].iter().zip(rows[1])).for_each(|(o, (&a, &b))| *o = a * b);
        }
        _ => {
            out.iter_mut().zip(rows[0].iter().zip(rows[1])).for_each(|(o, (&a, &b))| *o = a * b);
            for row in &rows[2..n] {
                out.iter_mut().zip(*row).for_each(|(o, &v)| *o *= v);
            }
        }
    }
}

/// All `M` Khatri–Rao row products of one coordinate at once:
/// `rows[m·R + k] = Π_{n≠m} factors[n](coord_n, k)` for every mode `m`.
///
/// Uses prefix/suffix product caching: one backward sweep materializes
/// the suffix products `S_m = Π_{n≥m}`, then a forward sweep maintains
/// the running prefix `P_m = Π_{n<m}` and emits each mode's row as the
/// single element-wise multiply `P_m ∗ S_{m+1}` — `O(M·R)` total instead
/// of the `O(M²·R)` of `M` separate [`khatri_rao_row`] calls.
///
/// `scratch` is caller scratch of length `≥ (M+2)·R` (suffix products
/// plus the running prefix); `rows` has length `M·R` (mode `m`'s row at
/// `rows[m·R..(m+1)·R]`). Each row matches [`khatri_rao_row`] up to
/// floating-point reassociation (≤ 1e-12 relative; the factor rows
/// multiply in a different order).
pub fn khatri_rao_rows_all(factors: &[Mat], coord: &Coord, scratch: &mut [f64], rows: &mut [f64]) {
    let m = factors.len();
    let r = factors[0].cols();
    debug_assert_rank(factors, r, "khatri_rao_rows_all");
    debug_assert!(scratch.len() >= (m + 2) * r, "scratch must be (M+2)·R");
    debug_assert_eq!(rows.len(), m * r, "rows buffer must be M·R");
    let (suffix, prefix) = scratch.split_at_mut((m + 1) * r);
    let prefix = &mut prefix[..r];
    // Backward sweep: S_M = 1, S_n = row_n ∗ S_{n+1} (S_0 never read).
    suffix[m * r..(m + 1) * r].iter_mut().for_each(|x| *x = 1.0);
    for n in (1..m).rev() {
        let row = factors[n].row(coord.get(n) as usize);
        let (dst, src) = suffix[n * r..(n + 2) * r].split_at_mut(r);
        dst.iter_mut().zip(src.iter().zip(row)).for_each(|(d, (&s, &v))| *d = s * v);
    }
    // Forward sweep: rows_n = P ∗ S_{n+1}, then P ∗= row_n.
    for n in 0..m {
        let out = &mut rows[n * r..(n + 1) * r];
        let s = &suffix[(n + 1) * r..(n + 2) * r];
        if n == 0 {
            out.copy_from_slice(s); // P = 1
        } else {
            out.iter_mut().zip(s.iter().zip(&*prefix)).for_each(|(o, (&sv, &pv))| *o = sv * pv);
        }
        if n + 1 < m {
            let row = factors[n].row(coord.get(n) as usize);
            if n == 0 {
                prefix.copy_from_slice(row);
            } else {
                prefix.iter_mut().zip(row).for_each(|(p, &v)| *p *= v);
            }
        }
    }
}

/// Full MTTKRP `U = X(m)·K(m) ∈ R^{N_m×R}` over all non-zeros of `x`.
/// `O(|X|·M·R)`.
pub fn mttkrp_full(x: &SparseTensor, factors: &[Mat], mode: usize) -> Mat {
    let rank = factors[0].cols();
    let mut u = Mat::zeros(x.shape().dim(mode), rank);
    let mut prod = vec![0.0; rank];
    for (coord, value) in x.iter() {
        khatri_rao_row(factors, coord, mode, &mut prod);
        let row = u.row_mut(coord.get(mode) as usize);
        row.iter_mut().zip(&prod).for_each(|(r, &p)| *r += value * p);
    }
    u
}

/// All-modes MTTKRP in one pass: `U(m) = X(m)·K(m)` for every mode `m`,
/// sharing each non-zero's Khatri–Rao rows via prefix/suffix caching
/// ([`khatri_rao_rows_all`]). `O(|X|·M·R)` total versus the
/// `O(|X|·M²·R)` of `M` separate [`mttkrp_full`] calls — the batch form
/// for Jacobi-style (all modes from the same factors) refreshes, and the
/// kernel the criterion suite benchmarks against the mode-at-a-time
/// path. Gauss–Seidel sweeps ([`crate::als::als_sweep`]) cannot use it:
/// they interleave factor updates between modes.
pub fn mttkrp_full_all(x: &SparseTensor, factors: &[Mat]) -> Vec<Mat> {
    let m = factors.len();
    let rank = factors[0].cols();
    let mut us: Vec<Mat> = (0..m).map(|n| Mat::zeros(x.shape().dim(n), rank)).collect();
    let mut scratch = vec![0.0; (m + 2) * rank];
    let mut rows = vec![0.0; m * rank];
    for (coord, value) in x.iter() {
        khatri_rao_rows_all(factors, coord, &mut scratch, &mut rows);
        for (n, u) in us.iter_mut().enumerate() {
            let dst = u.row_mut(coord.get(n) as usize);
            let src = &rows[n * rank..(n + 1) * rank];
            dst.iter_mut().zip(src).for_each(|(d, &p)| *d += value * p);
        }
    }
    us
}

/// Row MTTKRP over one fiber:
/// `out[k] = Σ_{J : J_mode = index} x_J · Π_{n≠mode} factors[n](J_n, k)`.
/// This is `(X)(m)(i,:)·K(m)` of Eq. (12). `O(deg·M·R)`.
///
/// `out` and `scratch` must both have length equal to the factor rank
/// `R` (see the module docs on rank invariants).
pub fn mttkrp_row(
    x: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    index: u32,
    out: &mut [f64],
    scratch: &mut [f64],
) {
    debug_assert_rank(factors, out.len(), "mttkrp_row(out)");
    debug_assert_rank(factors, scratch.len(), "mttkrp_row(scratch)");
    out.iter_mut().for_each(|v| *v = 0.0);
    for (coord, value) in x.fiber_entries(mode, index) {
        let (rows, n) = gather_rows(factors, coord, mode);
        if n == 2 {
            // Three-mode tensors (every Table-III dataset but one):
            // accumulate the fused product directly, skipping the scratch
            // round-trip. Same multiplication grouping, bitwise-equal.
            out.iter_mut()
                .zip(rows[0].iter().zip(rows[1]))
                .for_each(|(o, (&a, &b))| *o += value * (a * b));
        } else {
            khatri_rao_row(factors, coord, mode, scratch);
            out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += value * p);
        }
    }
}

/// Row MTTKRP over an explicit list of `(coord, value)` pairs (used for
/// the sampled correction `X̄ + ΔX` of Eq. (16) and Eq. (23)).
///
/// `out` and `scratch` must both have length equal to the factor rank
/// `R` (see the module docs on rank invariants).
pub fn mttkrp_row_from_entries(
    entries: &[(Coord, f64)],
    factors: &[Mat],
    mode: usize,
    out: &mut [f64],
    scratch: &mut [f64],
) {
    debug_assert_rank(factors, out.len(), "mttkrp_row_from_entries(out)");
    debug_assert_rank(factors, scratch.len(), "mttkrp_row_from_entries(scratch)");
    out.iter_mut().for_each(|v| *v = 0.0);
    for (coord, value) in entries {
        khatri_rao_row(factors, coord, mode, scratch);
        out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += value * p);
    }
}

/// The sampled-correction row MTTKRP of Eq. (16)/Eq. (23), fused:
/// `out[k] = Σ_{J ∈ samples} (x_J − x̃_J) · Π_{n≠mode} a(n)_{J_n k}`
/// (`out` is zeroed first; the caller appends the `ΔX` terms).
///
/// The residual `x̃_J = Σ_k λ_k Π_n a(n)_{J_n k}` shares its all-modes
/// product with the Khatri–Rao row: the kernel computes the skip-`mode`
/// row once and derives `x̃_J` from it with a single extra
/// multiply-accumulate against `a(mode)_{J_mode}` — one pass over the
/// factor rows instead of the separate `eval` + `khatri_rao_row` passes
/// (which is the prefix/suffix-caching idea applied to the sampled hot
/// path). Matches the unfused form to ≤ 1e-12: the model value
/// multiplies factors in a different order than
/// [`KruskalTensor::eval`].
pub fn mttkrp_row_sampled_residuals(
    window: &SparseTensor,
    kruskal: &KruskalTensor,
    mode: usize,
    samples: &[Coord],
    out: &mut [f64],
    scratch: &mut [f64],
) {
    debug_assert_rank(&kruskal.factors, out.len(), "mttkrp_row_sampled_residuals(out)");
    debug_assert_rank(&kruskal.factors, scratch.len(), "mttkrp_row_sampled_residuals(scratch)");
    out.iter_mut().for_each(|v| *v = 0.0);
    for coord in samples {
        khatri_rao_row(&kruskal.factors, coord, mode, scratch);
        let frow = kruskal.factors[mode].row(coord.get(mode) as usize);
        let model: f64 = scratch
            .iter()
            .zip(frow.iter().zip(&kruskal.lambda))
            .map(|(&p, (&a, &l))| l * p * a)
            .sum();
        let residual = window.get(coord) - model;
        out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += residual * p);
    }
}

/// Dense-oracle MTTKRP: materializes `X(m)` and the full Khatri–Rao
/// product and multiplies them. Small shapes only; used to pin the sparse
/// kernels in tests.
pub fn mttkrp_dense_oracle(x: &sns_tensor::DenseTensor, factors: &[Mat], mode: usize) -> Mat {
    use sns_linalg::ops::{khatri_rao_all, matmul};
    use sns_tensor::matricize::kr_ordering;
    let ordering = kr_ordering(factors.len(), mode);
    let parts: Vec<&Mat> = ordering.iter().map(|&n| &factors[n]).collect();
    let k = khatri_rao_all(&parts).expect("rank-consistent factors");
    matmul(&x.matricize(mode), &k).expect("shape-consistent MTTKRP")
}

/// Inner product `⟨X, X̃⟩ = Σ_{J non-zero} x_J · x̃_J`. `O(|X|·M·R)`.
pub fn inner_with_kruskal(x: &SparseTensor, k: &KruskalTensor) -> f64 {
    x.iter().map(|(c, v)| v * k.eval(c)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sns_tensor::{DenseTensor, Shape};

    fn random_sparse(rng: &mut StdRng, dims: &[usize], nnz: usize) -> SparseTensor {
        let mut x = SparseTensor::new(Shape::new(dims));
        for _ in 0..nnz {
            let coord: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            x.add(&Coord::new(&coord), rng.gen_range(1..5) as f64);
        }
        x
    }

    fn random_factors(rng: &mut StdRng, dims: &[usize], rank: usize) -> Vec<Mat> {
        dims.iter().map(|&n| Mat::random(rng, n, rank, 1.0)).collect()
    }

    #[test]
    fn khatri_rao_row_products() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = random_factors(&mut rng, &[3, 4, 2], 5);
        let c = Coord::new(&[2, 3, 1]);
        let mut out = vec![0.0; 5];
        khatri_rao_row(&f, &c, 1, &mut out);
        for k in 0..5 {
            let expect = f[0][(2, k)] * f[2][(1, k)];
            assert!((out[k] - expect).abs() < 1e-14);
        }
        // skip = every mode — result excludes exactly that factor.
        khatri_rao_row(&f, &c, 0, &mut out);
        for k in 0..5 {
            let expect = f[1][(3, k)] * f[2][(1, k)];
            assert!((out[k] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn sparse_mttkrp_matches_dense_oracle_all_modes() {
        let mut rng = StdRng::seed_from_u64(2);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 25);
        let f = random_factors(&mut rng, &dims, 3);
        let dense = DenseTensor::from_sparse(&x);
        for mode in 0..3 {
            let fast = mttkrp_full(&x, &f, mode);
            let oracle = mttkrp_dense_oracle(&dense, &f, mode);
            assert_eq!(fast.shape(), oracle.shape());
            for i in 0..fast.rows() {
                for j in 0..fast.cols() {
                    assert!(
                        (fast[(i, j)] - oracle[(i, j)]).abs() < 1e-9,
                        "mode {mode} ({i},{j}): {} vs {}",
                        fast[(i, j)],
                        oracle[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn mttkrp_4mode_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        let dims = [3usize, 2, 4, 3];
        let x = random_sparse(&mut rng, &dims, 20);
        let f = random_factors(&mut rng, &dims, 2);
        let dense = DenseTensor::from_sparse(&x);
        for mode in 0..4 {
            let fast = mttkrp_full(&x, &f, mode);
            let oracle = mttkrp_dense_oracle(&dense, &f, mode);
            for i in 0..fast.rows() {
                for j in 0..fast.cols() {
                    assert!((fast[(i, j)] - oracle[(i, j)]).abs() < 1e-9, "mode {mode}");
                }
            }
        }
    }

    #[test]
    fn row_mttkrp_matches_full() {
        let mut rng = StdRng::seed_from_u64(4);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 30);
        let f = random_factors(&mut rng, &dims, 4);
        let mut out = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        for (mode, &dim) in dims.iter().enumerate() {
            let full = mttkrp_full(&x, &f, mode);
            for i in 0..dim as u32 {
                mttkrp_row(&x, &f, mode, i, &mut out, &mut scratch);
                for k in 0..4 {
                    assert!((out[k] - full[(i as usize, k)]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn row_from_entries_matches_row() {
        let mut rng = StdRng::seed_from_u64(5);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 30);
        let f = random_factors(&mut rng, &dims, 4);
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        let entries: Vec<(Coord, f64)> = x.fiber_entries(0, 2).map(|(c, v)| (*c, v)).collect();
        mttkrp_row(&x, &f, 0, 2, &mut a, &mut scratch);
        mttkrp_row_from_entries(&entries, &f, 0, &mut b, &mut scratch);
        for k in 0..4 {
            assert!((a[k] - b[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_with_kruskal_matches_dense() {
        let mut rng = StdRng::seed_from_u64(6);
        let dims = [3usize, 4, 2];
        let x = random_sparse(&mut rng, &dims, 15);
        let k = KruskalTensor::random(&mut rng, &dims, 3, 1.0);
        let dense_x = DenseTensor::from_sparse(&x);
        let dense_k = k.reconstruct_dense();
        let brute: f64 =
            Shape::new(&dims).iter_coords().map(|c| dense_x.get(&c) * dense_k.get(&c)).sum();
        assert!((inner_with_kruskal(&x, &k) - brute).abs() < 1e-9);
    }

    #[test]
    fn prefix_suffix_rows_match_per_mode_kernel() {
        let mut rng = StdRng::seed_from_u64(8);
        for dims in [vec![4usize, 3, 5], vec![3, 2, 4, 3], vec![2, 5]] {
            let m = dims.len();
            let f = random_factors(&mut rng, &dims, 4);
            let coord: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            let c = Coord::new(&coord);
            let mut scratch = vec![0.0; (m + 2) * 4];
            let mut rows = vec![0.0; m * 4];
            khatri_rao_rows_all(&f, &c, &mut scratch, &mut rows);
            let mut reference = vec![0.0; 4];
            for skip in 0..m {
                khatri_rao_row(&f, &c, skip, &mut reference);
                for k in 0..4 {
                    let got = rows[skip * 4 + k];
                    assert!(
                        (got - reference[k]).abs() <= 1e-12 * (1.0 + reference[k].abs()),
                        "order {m} skip {skip} k {k}: {got} vs {}",
                        reference[k]
                    );
                }
            }
        }
    }

    #[test]
    fn mttkrp_full_all_matches_per_mode_full() {
        let mut rng = StdRng::seed_from_u64(9);
        let dims = [3usize, 4, 2, 3];
        let x = random_sparse(&mut rng, &dims, 25);
        let f = random_factors(&mut rng, &dims, 3);
        let all = mttkrp_full_all(&x, &f);
        for (mode, got) in all.iter().enumerate() {
            let one = mttkrp_full(&x, &f, mode);
            assert_eq!(got.shape(), one.shape());
            for i in 0..one.rows() {
                for j in 0..one.cols() {
                    assert!(
                        (got[(i, j)] - one[(i, j)]).abs() <= 1e-12 * (1.0 + one[(i, j)].abs()),
                        "mode {mode} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_sampled_residuals_match_eval_route() {
        let mut rng = StdRng::seed_from_u64(10);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 30);
        let k = KruskalTensor::random(&mut rng, &dims, 4, 1.0);
        let mode = 1;
        let samples: Vec<Coord> = (0..10)
            .map(|_| {
                let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
                Coord::new(&c)
            })
            .collect();
        let mut fused = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        mttkrp_row_sampled_residuals(&x, &k, mode, &samples, &mut fused, &mut scratch);
        // Unfused reference: residuals via eval, then the entry-list MTTKRP.
        let entries: Vec<(Coord, f64)> =
            samples.iter().map(|c| (*c, x.get(c) - k.eval(c))).collect();
        let mut reference = vec![0.0; 4];
        mttkrp_row_from_entries(&entries, &k.factors, mode, &mut reference, &mut scratch);
        for j in 0..4 {
            assert!(
                (fused[j] - reference[j]).abs() <= 1e-12 * (1.0 + reference[j].abs()),
                "{} vs {}",
                fused[j],
                reference[j]
            );
        }
    }

    #[test]
    fn empty_tensor_gives_zero_mttkrp() {
        let mut rng = StdRng::seed_from_u64(7);
        let dims = [3usize, 3, 3];
        let x = SparseTensor::new(Shape::new(&dims));
        let f = random_factors(&mut rng, &dims, 2);
        let u = mttkrp_full(&x, &f, 0);
        assert_eq!(u.frob_norm(), 0.0);
    }
}
