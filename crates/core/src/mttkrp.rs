//! Sparse MTTKRP kernels.
//!
//! The matricized-tensor-times-Khatri-Rao product `X(m)·K(m)` is the hot
//! kernel of every CP algorithm. For a sparse `X` it reduces to, per
//! non-zero `x_J`, a scaled element-wise product of factor rows — the
//! Khatri–Rao product is never materialized.

use crate::kruskal::KruskalTensor;
use sns_linalg::Mat;
use sns_tensor::{Coord, SparseTensor};

/// `out[k] = Π_{n≠skip} factors[n](coord_n, k)` — the Khatri–Rao *row*
/// product for one coordinate. `O(M·R)`.
#[inline]
pub fn khatri_rao_row(factors: &[Mat], coord: &Coord, skip: usize, out: &mut [f64]) {
    out.iter_mut().for_each(|x| *x = 1.0);
    for (n, f) in factors.iter().enumerate() {
        if n == skip {
            continue;
        }
        let row = f.row(coord.get(n) as usize);
        out.iter_mut().zip(row).for_each(|(o, &v)| *o *= v);
    }
}

/// Full MTTKRP `U = X(m)·K(m) ∈ R^{N_m×R}` over all non-zeros of `x`.
/// `O(|X|·M·R)`.
pub fn mttkrp_full(x: &SparseTensor, factors: &[Mat], mode: usize) -> Mat {
    let rank = factors[0].cols();
    let mut u = Mat::zeros(x.shape().dim(mode), rank);
    let mut prod = vec![0.0; rank];
    for (coord, value) in x.iter() {
        khatri_rao_row(factors, coord, mode, &mut prod);
        let row = u.row_mut(coord.get(mode) as usize);
        row.iter_mut().zip(&prod).for_each(|(r, &p)| *r += value * p);
    }
    u
}

/// Row MTTKRP over one fiber:
/// `out[k] = Σ_{J : J_mode = index} x_J · Π_{n≠mode} factors[n](J_n, k)`.
/// This is `(X)(m)(i,:)·K(m)` of Eq. (12). `O(deg·M·R)`.
pub fn mttkrp_row(
    x: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    index: u32,
    out: &mut [f64],
    scratch: &mut [f64],
) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for (coord, value) in x.fiber_entries(mode, index) {
        khatri_rao_row(factors, coord, mode, scratch);
        out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += value * p);
    }
}

/// Row MTTKRP over an explicit list of `(coord, value)` pairs (used for
/// the sampled correction `X̄ + ΔX` of Eq. (16) and Eq. (23)).
pub fn mttkrp_row_from_entries(
    entries: &[(Coord, f64)],
    factors: &[Mat],
    mode: usize,
    out: &mut [f64],
    scratch: &mut [f64],
) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for (coord, value) in entries {
        khatri_rao_row(factors, coord, mode, scratch);
        out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += value * p);
    }
}

/// Dense-oracle MTTKRP: materializes `X(m)` and the full Khatri–Rao
/// product and multiplies them. Small shapes only; used to pin the sparse
/// kernels in tests.
pub fn mttkrp_dense_oracle(x: &sns_tensor::DenseTensor, factors: &[Mat], mode: usize) -> Mat {
    use sns_linalg::ops::{khatri_rao_all, matmul};
    use sns_tensor::matricize::kr_ordering;
    let ordering = kr_ordering(factors.len(), mode);
    let parts: Vec<&Mat> = ordering.iter().map(|&n| &factors[n]).collect();
    let k = khatri_rao_all(&parts).expect("rank-consistent factors");
    matmul(&x.matricize(mode), &k).expect("shape-consistent MTTKRP")
}

/// Inner product `⟨X, X̃⟩ = Σ_{J non-zero} x_J · x̃_J`. `O(|X|·M·R)`.
pub fn inner_with_kruskal(x: &SparseTensor, k: &KruskalTensor) -> f64 {
    x.iter().map(|(c, v)| v * k.eval(c)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sns_tensor::{DenseTensor, Shape};

    fn random_sparse(rng: &mut StdRng, dims: &[usize], nnz: usize) -> SparseTensor {
        let mut x = SparseTensor::new(Shape::new(dims));
        for _ in 0..nnz {
            let coord: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            x.add(&Coord::new(&coord), rng.gen_range(1..5) as f64);
        }
        x
    }

    fn random_factors(rng: &mut StdRng, dims: &[usize], rank: usize) -> Vec<Mat> {
        dims.iter().map(|&n| Mat::random(rng, n, rank, 1.0)).collect()
    }

    #[test]
    fn khatri_rao_row_products() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = random_factors(&mut rng, &[3, 4, 2], 5);
        let c = Coord::new(&[2, 3, 1]);
        let mut out = vec![0.0; 5];
        khatri_rao_row(&f, &c, 1, &mut out);
        for k in 0..5 {
            let expect = f[0][(2, k)] * f[2][(1, k)];
            assert!((out[k] - expect).abs() < 1e-14);
        }
        // skip = every mode — result excludes exactly that factor.
        khatri_rao_row(&f, &c, 0, &mut out);
        for k in 0..5 {
            let expect = f[1][(3, k)] * f[2][(1, k)];
            assert!((out[k] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn sparse_mttkrp_matches_dense_oracle_all_modes() {
        let mut rng = StdRng::seed_from_u64(2);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 25);
        let f = random_factors(&mut rng, &dims, 3);
        let dense = DenseTensor::from_sparse(&x);
        for mode in 0..3 {
            let fast = mttkrp_full(&x, &f, mode);
            let oracle = mttkrp_dense_oracle(&dense, &f, mode);
            assert_eq!(fast.shape(), oracle.shape());
            for i in 0..fast.rows() {
                for j in 0..fast.cols() {
                    assert!(
                        (fast[(i, j)] - oracle[(i, j)]).abs() < 1e-9,
                        "mode {mode} ({i},{j}): {} vs {}",
                        fast[(i, j)],
                        oracle[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn mttkrp_4mode_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        let dims = [3usize, 2, 4, 3];
        let x = random_sparse(&mut rng, &dims, 20);
        let f = random_factors(&mut rng, &dims, 2);
        let dense = DenseTensor::from_sparse(&x);
        for mode in 0..4 {
            let fast = mttkrp_full(&x, &f, mode);
            let oracle = mttkrp_dense_oracle(&dense, &f, mode);
            for i in 0..fast.rows() {
                for j in 0..fast.cols() {
                    assert!((fast[(i, j)] - oracle[(i, j)]).abs() < 1e-9, "mode {mode}");
                }
            }
        }
    }

    #[test]
    fn row_mttkrp_matches_full() {
        let mut rng = StdRng::seed_from_u64(4);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 30);
        let f = random_factors(&mut rng, &dims, 4);
        let mut out = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        for (mode, &dim) in dims.iter().enumerate() {
            let full = mttkrp_full(&x, &f, mode);
            for i in 0..dim as u32 {
                mttkrp_row(&x, &f, mode, i, &mut out, &mut scratch);
                for k in 0..4 {
                    assert!((out[k] - full[(i as usize, k)]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn row_from_entries_matches_row() {
        let mut rng = StdRng::seed_from_u64(5);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 30);
        let f = random_factors(&mut rng, &dims, 4);
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        let entries: Vec<(Coord, f64)> = x.fiber_entries(0, 2).map(|(c, v)| (*c, v)).collect();
        mttkrp_row(&x, &f, 0, 2, &mut a, &mut scratch);
        mttkrp_row_from_entries(&entries, &f, 0, &mut b, &mut scratch);
        for k in 0..4 {
            assert!((a[k] - b[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_with_kruskal_matches_dense() {
        let mut rng = StdRng::seed_from_u64(6);
        let dims = [3usize, 4, 2];
        let x = random_sparse(&mut rng, &dims, 15);
        let k = KruskalTensor::random(&mut rng, &dims, 3, 1.0);
        let dense_x = DenseTensor::from_sparse(&x);
        let dense_k = k.reconstruct_dense();
        let brute: f64 =
            Shape::new(&dims).iter_coords().map(|c| dense_x.get(&c) * dense_k.get(&c)).sum();
        assert!((inner_with_kruskal(&x, &k) - brute).abs() < 1e-9);
    }

    #[test]
    fn empty_tensor_gives_zero_mttkrp() {
        let mut rng = StdRng::seed_from_u64(7);
        let dims = [3usize, 3, 3];
        let x = SparseTensor::new(Shape::new(&dims));
        let f = random_factors(&mut rng, &dims, 2);
        let u = mttkrp_full(&x, &f, 0);
        assert_eq!(u.frob_norm(), 0.0);
    }
}
