//! Sparse MTTKRP kernels.
//!
//! The matricized-tensor-times-Khatri-Rao product `X(m)·K(m)` is the hot
//! kernel of every CP algorithm. For a sparse `X` it reduces to, per
//! non-zero `x_J`, a scaled element-wise product of factor rows — the
//! Khatri–Rao product is never materialized.
//!
//! # Kernel variants
//!
//! The fiber kernel exists in three layouts that are **bitwise
//! interchangeable** (identical per-`k` accumulation order and
//! multiplication grouping, pinned by the proptest parity suite):
//!
//! - [`mttkrp_row`] walks the master row-major factors,
//! - [`mttkrp_row_interleaved`] walks a padded
//!   [`FactorMirror`] plane (contiguous,
//!   block-aligned rows; `f32` mirrors widen to `f64` per element and
//!   recover the f32-rounded masters exactly),
//! - [`mttkrp_row_par`] splits the rank range over scoped worker
//!   threads — each worker owns a contiguous `k`-range of `out` and
//!   walks the whole fiber, so per-`k` accumulation order is identical
//!   to serial at **any** thread count.
//!
//! All three accumulate fiber entries in *pairs* (two entries fused per
//! pass over `out`, halving the accumulator traffic) over explicit
//! width-4 register blocks with a scalar tail, so the inner loops
//! autovectorize on stable Rust.
//!
//! # Rank invariants
//!
//! Every kernel here works on length-`R` row buffers, where `R` is the
//! common column count of all `factors`. The public entry points return
//! [`SnsError::KernelShape`] when `out`/`scratch` do not match (a longer
//! `scratch` would silently leave stale tail entries in the product,
//! a shorter one would truncate it); the inner loops keep
//! `debug_assert!`s only. The updaters pass buffers from
//! [`KernelWorkspace`](crate::workspace::KernelWorkspace), which sizes
//! them once at construction.

use crate::kruskal::KruskalTensor;
use crate::mirror::FactorMirror;
use sns_error::SnsError;
use sns_linalg::Mat;
use sns_tensor::{Coord, SparseTensor};

#[inline]
fn debug_assert_rank(factors: &[Mat], len: usize, what: &str) {
    debug_assert!(
        factors.iter().all(|f| f.cols() == len),
        "{what}: buffer length {len} must equal the factor rank {:?}",
        factors.iter().map(|f| f.cols()).collect::<Vec<_>>()
    );
}

/// Typed rank check for the public kernel entry points (panic-free
/// release behavior for malformed buffer lengths).
#[inline]
fn check_rank(factors: &[Mat], len: usize, what: &'static str) -> Result<(), SnsError> {
    match factors.iter().find(|f| f.cols() != len) {
        None => Ok(()),
        Some(f) => Err(SnsError::KernelShape { what, expected: f.cols(), got: len }),
    }
}

/// The two categorical-or-time modes a 3-mode fiber kernel reads when
/// mode `skip` is being updated, in ascending order (which fixes the
/// multiplication grouping `a·b` across every kernel variant).
#[inline]
fn other_two(skip: usize) -> (usize, usize) {
    match skip {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

/// Element type a mirror plane stores. Widening to `f64` is exact for
/// both widths, so accumulation is always full-precision `f64`.
pub trait MirrorElem: Copy + Send + Sync {
    /// Widens to `f64` (exact).
    fn widen(self) -> f64;
}

impl MirrorElem for f64 {
    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
}

impl MirrorElem for f32 {
    #[inline(always)]
    fn widen(self) -> f64 {
        self as f64
    }
}

/// `out[k] += v0·(a0[k]·b0[k]) + v1·(a1[k]·b1[k])` over explicit
/// width-4 blocks plus a scalar tail. The per-`k` expression is the
/// single source of truth for the fused two-entry accumulation: every
/// kernel variant (row-major, interleaved, parallel, f32) funnels
/// through here, which is what makes them bitwise interchangeable.
#[inline]
fn accum_pair<T: MirrorElem>(
    out: &mut [f64],
    v0: f64,
    a0: &[T],
    b0: &[T],
    v1: f64,
    a1: &[T],
    b1: &[T],
) {
    let n = out.len();
    debug_assert!(a0.len() == n && b0.len() == n && a1.len() == n && b1.len() == n);
    let mut o = out.chunks_exact_mut(4);
    let mut a0c = a0.chunks_exact(4);
    let mut b0c = b0.chunks_exact(4);
    let mut a1c = a1.chunks_exact(4);
    let mut b1c = b1.chunks_exact(4);
    for ((((o, x0), y0), x1), y1) in
        (&mut o).zip(&mut a0c).zip(&mut b0c).zip(&mut a1c).zip(&mut b1c)
    {
        o[0] += v0 * (x0[0].widen() * y0[0].widen()) + v1 * (x1[0].widen() * y1[0].widen());
        o[1] += v0 * (x0[1].widen() * y0[1].widen()) + v1 * (x1[1].widen() * y1[1].widen());
        o[2] += v0 * (x0[2].widen() * y0[2].widen()) + v1 * (x1[2].widen() * y1[2].widen());
        o[3] += v0 * (x0[3].widen() * y0[3].widen()) + v1 * (x1[3].widen() * y1[3].widen());
    }
    for ((((o, x0), y0), x1), y1) in o
        .into_remainder()
        .iter_mut()
        .zip(a0c.remainder())
        .zip(b0c.remainder())
        .zip(a1c.remainder())
        .zip(b1c.remainder())
    {
        *o += v0 * (x0.widen() * y0.widen()) + v1 * (x1.widen() * y1.widen());
    }
}

/// `out[k] += v·(a[k]·b[k])` — the odd-entry tail of the pair-blocked
/// fiber walk, same blocking and grouping as [`accum_pair`].
#[inline]
fn accum_single<T: MirrorElem>(out: &mut [f64], v: f64, a: &[T], b: &[T]) {
    let n = out.len();
    debug_assert!(a.len() == n && b.len() == n);
    let mut o = out.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for ((o, x), y) in (&mut o).zip(&mut ac).zip(&mut bc) {
        o[0] += v * (x[0].widen() * y[0].widen());
        o[1] += v * (x[1].widen() * y[1].widen());
        o[2] += v * (x[2].widen() * y[2].widen());
        o[3] += v * (x[3].widen() * y[3].widen());
    }
    for ((o, x), y) in o.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *o += v * (x.widen() * y.widen());
    }
}

/// Pair-blocked fiber walk over two mirror planes, restricted to the
/// `k`-range `[k0, k0 + out.len())` of every row — the shared core of
/// the interleaved serial kernel (`k0 = 0`, full width) and each
/// parallel worker (its own contiguous sub-range).
#[allow(clippy::too_many_arguments)]
fn fiber_accum_planes<T: MirrorElem>(
    coords: &[Coord],
    values: &[f64],
    pa: &[T],
    pb: &[T],
    ma: usize,
    mb: usize,
    stride: usize,
    k0: usize,
    out: &mut [f64],
) {
    let w = out.len();
    let n = coords.len();
    let mut i = 0;
    while i + 2 <= n {
        let (c0, c1) = (&coords[i], &coords[i + 1]);
        let a0 = c0.get(ma) as usize * stride + k0;
        let b0 = c0.get(mb) as usize * stride + k0;
        let a1 = c1.get(ma) as usize * stride + k0;
        let b1 = c1.get(mb) as usize * stride + k0;
        accum_pair(
            out,
            values[i],
            &pa[a0..a0 + w],
            &pb[b0..b0 + w],
            values[i + 1],
            &pa[a1..a1 + w],
            &pb[b1..b1 + w],
        );
        i += 2;
    }
    if i < n {
        let c = &coords[i];
        let a = c.get(ma) as usize * stride + k0;
        let b = c.get(mb) as usize * stride + k0;
        accum_single(out, values[i], &pa[a..a + w], &pb[b..b + w]);
    }
}

/// Collects the participating factor rows of one coordinate (all modes
/// but `skip`) into a stack array — one bounds-checked lookup per mode,
/// after which the product kernels run over plain slices.
#[inline]
fn gather_rows<'a>(
    factors: &'a [Mat],
    coord: &Coord,
    skip: usize,
) -> ([&'a [f64]; sns_tensor::MAX_ORDER], usize) {
    let mut rows: [&[f64]; sns_tensor::MAX_ORDER] = [&[]; sns_tensor::MAX_ORDER];
    let mut n = 0;
    for (m, f) in factors.iter().enumerate() {
        if m != skip {
            rows[n] = f.row(coord.get(m) as usize);
            n += 1;
        }
    }
    (rows, n)
}

/// `out[k] = Π_{n≠skip} factors[n](coord_n, k)` — the Khatri–Rao *row*
/// product for one coordinate. `O(M·R)`.
///
/// `out.len()` must equal the factor rank `R`. The ubiquitous
/// three-mode/one-skip case runs as a single fused element-wise multiply
/// (one pass over `out` instead of init + one pass per mode); products
/// accumulate in ascending-mode order in every case, so results are
/// bitwise independent of which path runs.
#[inline]
pub fn khatri_rao_row(factors: &[Mat], coord: &Coord, skip: usize, out: &mut [f64]) {
    debug_assert_rank(factors, out.len(), "khatri_rao_row");
    let (rows, n) = gather_rows(factors, coord, skip);
    match n {
        0 => out.iter_mut().for_each(|x| *x = 1.0),
        1 => out.copy_from_slice(rows[0]),
        2 => {
            out.iter_mut().zip(rows[0].iter().zip(rows[1])).for_each(|(o, (&a, &b))| *o = a * b);
        }
        _ => {
            out.iter_mut().zip(rows[0].iter().zip(rows[1])).for_each(|(o, (&a, &b))| *o = a * b);
            for row in &rows[2..n] {
                out.iter_mut().zip(*row).for_each(|(o, &v)| *o *= v);
            }
        }
    }
}

/// All `M` Khatri–Rao row products of one coordinate at once:
/// `rows[m·R + k] = Π_{n≠m} factors[n](coord_n, k)` for every mode `m`.
///
/// Uses prefix/suffix product caching: one backward sweep materializes
/// the suffix products `S_m = Π_{n≥m}`, then a forward sweep maintains
/// the running prefix `P_m = Π_{n<m}` and emits each mode's row as the
/// single element-wise multiply `P_m ∗ S_{m+1}` — `O(M·R)` total instead
/// of the `O(M²·R)` of `M` separate [`khatri_rao_row`] calls.
///
/// `scratch` is caller scratch of length `≥ (M+2)·R` (suffix products
/// plus the running prefix); `rows` has length `M·R` (mode `m`'s row at
/// `rows[m·R..(m+1)·R]`). Each row matches [`khatri_rao_row`] up to
/// floating-point reassociation (≤ 1e-12 relative; the factor rows
/// multiply in a different order).
///
/// # Errors
/// [`SnsError::KernelShape`] when `scratch` or `rows` is shorter than
/// the documented size.
pub fn khatri_rao_rows_all(
    factors: &[Mat],
    coord: &Coord,
    scratch: &mut [f64],
    rows: &mut [f64],
) -> Result<(), SnsError> {
    let m = factors.len();
    let r = factors[0].cols();
    check_rank(factors, r, "khatri_rao_rows_all(factors)")?;
    if scratch.len() < (m + 2) * r {
        return Err(SnsError::KernelShape {
            what: "khatri_rao_rows_all(scratch)",
            expected: (m + 2) * r,
            got: scratch.len(),
        });
    }
    if rows.len() != m * r {
        return Err(SnsError::KernelShape {
            what: "khatri_rao_rows_all(rows)",
            expected: m * r,
            got: rows.len(),
        });
    }
    let (suffix, prefix) = scratch.split_at_mut((m + 1) * r);
    let prefix = &mut prefix[..r];
    // Backward sweep: S_M = 1, S_n = row_n ∗ S_{n+1} (S_0 never read).
    suffix[m * r..(m + 1) * r].iter_mut().for_each(|x| *x = 1.0);
    for n in (1..m).rev() {
        let row = factors[n].row(coord.get(n) as usize);
        let (dst, src) = suffix[n * r..(n + 2) * r].split_at_mut(r);
        dst.iter_mut().zip(src.iter().zip(row)).for_each(|(d, (&s, &v))| *d = s * v);
    }
    // Forward sweep: rows_n = P ∗ S_{n+1}, then P ∗= row_n.
    for n in 0..m {
        let out = &mut rows[n * r..(n + 1) * r];
        let s = &suffix[(n + 1) * r..(n + 2) * r];
        if n == 0 {
            out.copy_from_slice(s); // P = 1
        } else {
            out.iter_mut().zip(s.iter().zip(&*prefix)).for_each(|(o, (&sv, &pv))| *o = sv * pv);
        }
        if n + 1 < m {
            let row = factors[n].row(coord.get(n) as usize);
            if n == 0 {
                prefix.copy_from_slice(row);
            } else {
                prefix.iter_mut().zip(row).for_each(|(p, &v)| *p *= v);
            }
        }
    }
    Ok(())
}

/// Full MTTKRP `U = X(m)·K(m) ∈ R^{N_m×R}` over all non-zeros of `x`.
/// `O(|X|·M·R)`.
pub fn mttkrp_full(x: &SparseTensor, factors: &[Mat], mode: usize) -> Mat {
    let rank = factors[0].cols();
    let mut u = Mat::zeros(x.shape().dim(mode), rank);
    let mut prod = vec![0.0; rank];
    for (coord, value) in x.iter() {
        khatri_rao_row(factors, coord, mode, &mut prod);
        let row = u.row_mut(coord.get(mode) as usize);
        row.iter_mut().zip(&prod).for_each(|(r, &p)| *r += value * p);
    }
    u
}

/// All-modes MTTKRP in one pass: `U(m) = X(m)·K(m)` for every mode `m`,
/// sharing each non-zero's Khatri–Rao rows via prefix/suffix caching
/// ([`khatri_rao_rows_all`]). `O(|X|·M·R)` total versus the
/// `O(|X|·M²·R)` of `M` separate [`mttkrp_full`] calls — the batch form
/// for Jacobi-style (all modes from the same factors) refreshes, and the
/// kernel the criterion suite benchmarks against the mode-at-a-time
/// path. Gauss–Seidel sweeps ([`crate::als::als_sweep`]) cannot use it:
/// they interleave factor updates between modes.
pub fn mttkrp_full_all(x: &SparseTensor, factors: &[Mat]) -> Vec<Mat> {
    let m = factors.len();
    let rank = factors[0].cols();
    let mut us: Vec<Mat> = (0..m).map(|n| Mat::zeros(x.shape().dim(n), rank)).collect();
    let mut scratch = vec![0.0; (m + 2) * rank];
    let mut rows = vec![0.0; m * rank];
    for (coord, value) in x.iter() {
        khatri_rao_rows_all(factors, coord, &mut scratch, &mut rows)
            .expect("internally sized buffers");
        for (n, u) in us.iter_mut().enumerate() {
            let dst = u.row_mut(coord.get(n) as usize);
            let src = &rows[n * rank..(n + 1) * rank];
            dst.iter_mut().zip(src).for_each(|(d, &p)| *d += value * p);
        }
    }
    us
}

/// Row MTTKRP over one fiber:
/// `out[k] = Σ_{J : J_mode = index} x_J · Π_{n≠mode} factors[n](J_n, k)`.
/// This is `(X)(m)(i,:)·K(m)` of Eq. (12). `O(deg·M·R)`.
///
/// Three-mode tensors (every Table-III dataset but one) run the
/// pair-blocked fast path: two fiber entries fuse into one pass over
/// `out`, halving the accumulator load/store traffic, with explicit
/// width-4 register blocks inside.
///
/// # Errors
/// [`SnsError::KernelShape`] when `out` or `scratch` does not match the
/// factor rank (see the module docs on rank invariants).
pub fn mttkrp_row(
    x: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    index: u32,
    out: &mut [f64],
    scratch: &mut [f64],
) -> Result<(), SnsError> {
    check_rank(factors, out.len(), "mttkrp_row(out)")?;
    check_rank(factors, scratch.len(), "mttkrp_row(scratch)")?;
    out.iter_mut().for_each(|v| *v = 0.0);
    let (coords, values) = x.fiber_slices(mode, index);
    if coords.is_empty() {
        return Ok(());
    }
    if factors.len() == 3 {
        let (ma, mb) = other_two(mode);
        let (fa, fb) = (&factors[ma], &factors[mb]);
        let r = out.len();
        let n = coords.len();
        let mut i = 0;
        while i + 2 <= n {
            let (c0, c1) = (&coords[i], &coords[i + 1]);
            accum_pair(
                out,
                values[i],
                &fa.row(c0.get(ma) as usize)[..r],
                &fb.row(c0.get(mb) as usize)[..r],
                values[i + 1],
                &fa.row(c1.get(ma) as usize)[..r],
                &fb.row(c1.get(mb) as usize)[..r],
            );
            i += 2;
        }
        if i < n {
            let c = &coords[i];
            accum_single(
                out,
                values[i],
                &fa.row(c.get(ma) as usize)[..r],
                &fb.row(c.get(mb) as usize)[..r],
            );
        }
    } else {
        for (coord, &value) in coords.iter().zip(values) {
            khatri_rao_row(factors, coord, mode, scratch);
            out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += value * p);
        }
    }
    Ok(())
}

/// Row MTTKRP over one fiber reading a [`FactorMirror`] instead of the
/// master factors — contiguous, block-aligned (optionally `f32`) rows.
/// Bitwise-identical to [`mttkrp_row`] for an `f64` mirror, and to the
/// master-factor walk for an `f32` mirror of f32-rounded masters
/// (widening is exact; accumulation is `f64` either way).
///
/// Three-mode tensors only — the callers'
/// [`FactorState`](crate::update::FactorState) dispatch falls back to
/// [`mttkrp_row`] for other orders.
///
/// # Errors
/// [`SnsError::KernelShape`] when `out` does not match the mirror's
/// rank or the tensor is not 3-mode.
pub fn mttkrp_row_interleaved(
    x: &SparseTensor,
    mirror: &FactorMirror,
    mode: usize,
    index: u32,
    out: &mut [f64],
) -> Result<(), SnsError> {
    mttkrp_row_par(x, mirror, mode, index, out, 1)
}

/// [`mttkrp_row_interleaved`] with the rank range split across `threads`
/// scoped worker threads. Each worker owns a contiguous `k`-range of
/// `out` and walks the whole fiber, so the per-`k` accumulation order —
/// and therefore the result, bit for bit — is independent of the thread
/// count. `threads ≤ 1` runs serially on the calling thread.
///
/// Spawning scoped threads costs microseconds, so callers gate this on
/// rank/work thresholds ([`crate::workspace::ParConfig`]) — at the
/// paper's default `R = 20` the dispatch never parallelizes.
///
/// # Errors
/// [`SnsError::KernelShape`] when `out` does not match the mirror's
/// rank or the tensor is not 3-mode.
pub fn mttkrp_row_par(
    x: &SparseTensor,
    mirror: &FactorMirror,
    mode: usize,
    index: u32,
    out: &mut [f64],
    threads: usize,
) -> Result<(), SnsError> {
    if out.len() != mirror.rank() {
        return Err(SnsError::KernelShape {
            what: "mttkrp_row_interleaved(out)",
            expected: mirror.rank(),
            got: out.len(),
        });
    }
    if x.order() != 3 {
        return Err(SnsError::KernelShape {
            what: "mttkrp_row_interleaved(order)",
            expected: 3,
            got: x.order(),
        });
    }
    out.iter_mut().for_each(|v| *v = 0.0);
    let (coords, values) = x.fiber_slices(mode, index);
    if coords.is_empty() {
        return Ok(());
    }
    let (ma, mb) = other_two(mode);
    let stride = mirror.stride();
    enum Planes<'a> {
        F64(&'a [f64], &'a [f64]),
        F32(&'a [f32], &'a [f32]),
    }
    let planes = match (mirror.f64_plane(ma), mirror.f32_plane(ma)) {
        (Some(pa), _) => Planes::F64(pa, mirror.f64_plane(mb).expect("planes share precision")),
        (_, Some(pa)) => Planes::F32(pa, mirror.f32_plane(mb).expect("planes share precision")),
        _ => unreachable!("a mirror plane is either f64 or f32"),
    };
    let workers = threads.max(1).min(out.len());
    if workers == 1 {
        match planes {
            Planes::F64(pa, pb) => {
                fiber_accum_planes(coords, values, pa, pb, ma, mb, stride, 0, out)
            }
            Planes::F32(pa, pb) => {
                fiber_accum_planes(coords, values, pa, pb, ma, mb, stride, 0, out)
            }
        }
        return Ok(());
    }
    let chunk = out.len().div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, piece) in out.chunks_mut(chunk).enumerate() {
            let k0 = ci * chunk;
            match planes {
                Planes::F64(pa, pb) => {
                    s.spawn(move || {
                        fiber_accum_planes(coords, values, pa, pb, ma, mb, stride, k0, piece)
                    });
                }
                Planes::F32(pa, pb) => {
                    s.spawn(move || {
                        fiber_accum_planes(coords, values, pa, pb, ma, mb, stride, k0, piece)
                    });
                }
            }
        }
    });
    Ok(())
}

/// Row MTTKRP over an explicit list of `(coord, value)` pairs (used for
/// the sampled correction `X̄ + ΔX` of Eq. (16) and Eq. (23)).
///
/// # Errors
/// [`SnsError::KernelShape`] when `out` or `scratch` does not match the
/// factor rank (see the module docs on rank invariants).
pub fn mttkrp_row_from_entries(
    entries: &[(Coord, f64)],
    factors: &[Mat],
    mode: usize,
    out: &mut [f64],
    scratch: &mut [f64],
) -> Result<(), SnsError> {
    check_rank(factors, out.len(), "mttkrp_row_from_entries(out)")?;
    check_rank(factors, scratch.len(), "mttkrp_row_from_entries(scratch)")?;
    out.iter_mut().for_each(|v| *v = 0.0);
    for (coord, value) in entries {
        khatri_rao_row(factors, coord, mode, scratch);
        out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += value * p);
    }
    Ok(())
}

/// The sampled-correction row MTTKRP of Eq. (16)/Eq. (23), fused:
/// `out[k] = Σ_{J ∈ samples} (x_J − x̃_J) · Π_{n≠mode} a(n)_{J_n k}`
/// (`out` is zeroed first; the caller appends the `ΔX` terms).
///
/// The residual `x̃_J = Σ_k λ_k Π_n a(n)_{J_n k}` shares its all-modes
/// product with the Khatri–Rao row: the kernel computes the skip-`mode`
/// row once and derives `x̃_J` from it with a single extra
/// multiply-accumulate against `a(mode)_{J_mode}` — one pass over the
/// factor rows instead of the separate `eval` + `khatri_rao_row` passes
/// (which is the prefix/suffix-caching idea applied to the sampled hot
/// path). Matches the unfused form to ≤ 1e-12: the model value
/// multiplies factors in a different order than
/// [`KruskalTensor::eval`].
///
/// # Errors
/// [`SnsError::KernelShape`] when `out` or `scratch` does not match the
/// factor rank (see the module docs on rank invariants).
pub fn mttkrp_row_sampled_residuals(
    window: &SparseTensor,
    kruskal: &KruskalTensor,
    mode: usize,
    samples: &[Coord],
    out: &mut [f64],
    scratch: &mut [f64],
) -> Result<(), SnsError> {
    check_rank(&kruskal.factors, out.len(), "mttkrp_row_sampled_residuals(out)")?;
    check_rank(&kruskal.factors, scratch.len(), "mttkrp_row_sampled_residuals(scratch)")?;
    out.iter_mut().for_each(|v| *v = 0.0);
    if kruskal.factors.len() == 3 {
        // Fast path for the ubiquitous 3-mode case: the Khatri–Rao row
        // is a single element-wise product (same ascending-mode order as
        // `khatri_rao_row`, so `scratch` is bitwise identical), and the
        // model evaluation fuses into the same register-blocked sweep.
        let (ma, mb) = other_two(mode);
        let (fa, fb) = (&kruskal.factors[ma], &kruskal.factors[mb]);
        let fm = &kruskal.factors[mode];
        let r = out.len();
        for coord in samples {
            let a = &fa.row(coord.get(ma) as usize)[..r];
            let b = &fb.row(coord.get(mb) as usize)[..r];
            let frow = &fm.row(coord.get(mode) as usize)[..r];
            let model = fused_model_pass(a, b, frow, &kruskal.lambda, scratch);
            let residual = window.get(coord) - model;
            out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += residual * p);
        }
    } else {
        for coord in samples {
            khatri_rao_row(&kruskal.factors, coord, mode, scratch);
            let frow = kruskal.factors[mode].row(coord.get(mode) as usize);
            let model: f64 = scratch
                .iter()
                .zip(frow.iter().zip(&kruskal.lambda))
                .map(|(&p, (&a, &l))| l * p * a)
                .sum();
            let residual = window.get(coord) - model;
            out.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += residual * p);
        }
    }
    Ok(())
}

/// One fused sample pass of the 3-mode sampled-residual kernel:
/// `scratch[k] = a[k]·b[k]` (the Khatri–Rao row) while accumulating the
/// model value `Σ_k λ[k]·scratch[k]·f[k]` in four independent lanes —
/// one register-blocked sweep instead of a product pass plus a dot pass.
/// The lane sums reduce as `((m0+m1)+(m2+m3))+tail` (≤ 1e-12 relative
/// reassociation versus the sequential sum).
#[inline]
fn fused_model_pass(
    a: &[f64],
    b: &[f64],
    frow: &[f64],
    lambda: &[f64],
    scratch: &mut [f64],
) -> f64 {
    let n = scratch.len();
    debug_assert!(a.len() == n && b.len() == n && frow.len() == n && lambda.len() >= n);
    let mut s = scratch.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    let mut fc = frow.chunks_exact(4);
    let mut lc = lambda[..n].chunks_exact(4);
    let (mut m0, mut m1, mut m2, mut m3) = (0.0f64, 0.0, 0.0, 0.0);
    for ((((s, x), y), f), l) in (&mut s).zip(&mut ac).zip(&mut bc).zip(&mut fc).zip(&mut lc) {
        s[0] = x[0] * y[0];
        s[1] = x[1] * y[1];
        s[2] = x[2] * y[2];
        s[3] = x[3] * y[3];
        m0 += l[0] * s[0] * f[0];
        m1 += l[1] * s[1] * f[1];
        m2 += l[2] * s[2] * f[2];
        m3 += l[3] * s[3] * f[3];
    }
    let mut tail = 0.0;
    for ((((s, &x), &y), &f), &l) in s
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
        .zip(fc.remainder())
        .zip(lc.remainder())
    {
        *s = x * y;
        tail += l * *s * f;
    }
    ((m0 + m1) + (m2 + m3)) + tail
}

/// Dense-oracle MTTKRP: materializes `X(m)` and the full Khatri–Rao
/// product and multiplies them. Small shapes only; used to pin the sparse
/// kernels in tests.
pub fn mttkrp_dense_oracle(x: &sns_tensor::DenseTensor, factors: &[Mat], mode: usize) -> Mat {
    use sns_linalg::ops::{khatri_rao_all, matmul};
    use sns_tensor::matricize::kr_ordering;
    let ordering = kr_ordering(factors.len(), mode);
    let parts: Vec<&Mat> = ordering.iter().map(|&n| &factors[n]).collect();
    let k = khatri_rao_all(&parts).expect("rank-consistent factors");
    matmul(&x.matricize(mode), &k).expect("shape-consistent MTTKRP")
}

/// Inner product `⟨X, X̃⟩ = Σ_{J non-zero} x_J · x̃_J`. `O(|X|·M·R)`.
pub fn inner_with_kruskal(x: &SparseTensor, k: &KruskalTensor) -> f64 {
    x.iter().map(|(c, v)| v * k.eval(c)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sns_tensor::{DenseTensor, Shape};

    fn random_sparse(rng: &mut StdRng, dims: &[usize], nnz: usize) -> SparseTensor {
        let mut x = SparseTensor::new(Shape::new(dims));
        for _ in 0..nnz {
            let coord: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            x.add(&Coord::new(&coord), rng.gen_range(1..5) as f64);
        }
        x
    }

    fn random_factors(rng: &mut StdRng, dims: &[usize], rank: usize) -> Vec<Mat> {
        dims.iter().map(|&n| Mat::random(rng, n, rank, 1.0)).collect()
    }

    #[test]
    fn khatri_rao_row_products() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = random_factors(&mut rng, &[3, 4, 2], 5);
        let c = Coord::new(&[2, 3, 1]);
        let mut out = vec![0.0; 5];
        khatri_rao_row(&f, &c, 1, &mut out);
        for k in 0..5 {
            let expect = f[0][(2, k)] * f[2][(1, k)];
            assert!((out[k] - expect).abs() < 1e-14);
        }
        // skip = every mode — result excludes exactly that factor.
        khatri_rao_row(&f, &c, 0, &mut out);
        for k in 0..5 {
            let expect = f[1][(3, k)] * f[2][(1, k)];
            assert!((out[k] - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn sparse_mttkrp_matches_dense_oracle_all_modes() {
        let mut rng = StdRng::seed_from_u64(2);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 25);
        let f = random_factors(&mut rng, &dims, 3);
        let dense = DenseTensor::from_sparse(&x);
        for mode in 0..3 {
            let fast = mttkrp_full(&x, &f, mode);
            let oracle = mttkrp_dense_oracle(&dense, &f, mode);
            assert_eq!(fast.shape(), oracle.shape());
            for i in 0..fast.rows() {
                for j in 0..fast.cols() {
                    assert!(
                        (fast[(i, j)] - oracle[(i, j)]).abs() < 1e-9,
                        "mode {mode} ({i},{j}): {} vs {}",
                        fast[(i, j)],
                        oracle[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn mttkrp_4mode_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        let dims = [3usize, 2, 4, 3];
        let x = random_sparse(&mut rng, &dims, 20);
        let f = random_factors(&mut rng, &dims, 2);
        let dense = DenseTensor::from_sparse(&x);
        for mode in 0..4 {
            let fast = mttkrp_full(&x, &f, mode);
            let oracle = mttkrp_dense_oracle(&dense, &f, mode);
            for i in 0..fast.rows() {
                for j in 0..fast.cols() {
                    assert!((fast[(i, j)] - oracle[(i, j)]).abs() < 1e-9, "mode {mode}");
                }
            }
        }
    }

    #[test]
    fn row_mttkrp_matches_full() {
        let mut rng = StdRng::seed_from_u64(4);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 30);
        let f = random_factors(&mut rng, &dims, 4);
        let mut out = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        for (mode, &dim) in dims.iter().enumerate() {
            let full = mttkrp_full(&x, &f, mode);
            for i in 0..dim as u32 {
                mttkrp_row(&x, &f, mode, i, &mut out, &mut scratch).unwrap();
                for k in 0..4 {
                    assert!((out[k] - full[(i as usize, k)]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn row_mttkrp_4mode_matches_full() {
        // The non-3-mode (scratch) path of mttkrp_row.
        let mut rng = StdRng::seed_from_u64(14);
        let dims = [3usize, 2, 4, 3];
        let x = random_sparse(&mut rng, &dims, 25);
        let f = random_factors(&mut rng, &dims, 3);
        let mut out = vec![0.0; 3];
        let mut scratch = vec![0.0; 3];
        for (mode, &dim) in dims.iter().enumerate() {
            let full = mttkrp_full(&x, &f, mode);
            for i in 0..dim as u32 {
                mttkrp_row(&x, &f, mode, i, &mut out, &mut scratch).unwrap();
                for k in 0..3 {
                    assert!((out[k] - full[(i as usize, k)]).abs() < 1e-10, "mode {mode} row {i}");
                }
            }
        }
    }

    #[test]
    fn interleaved_matches_row_major_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        let dims = [6usize, 5, 7];
        let x = random_sparse(&mut rng, &dims, 60);
        let f = random_factors(&mut rng, &dims, 5);
        let mirror = FactorMirror::new(&f, Precision::F64);
        let mut a = vec![0.0; 5];
        let mut b = vec![0.0; 5];
        let mut scratch = vec![0.0; 5];
        for (mode, &dim) in dims.iter().enumerate() {
            for i in 0..dim as u32 {
                mttkrp_row(&x, &f, mode, i, &mut a, &mut scratch).unwrap();
                mttkrp_row_interleaved(&x, &mirror, mode, i, &mut b).unwrap();
                for k in 0..5 {
                    assert_eq!(a[k].to_bits(), b[k].to_bits(), "mode {mode} row {i} k {k}");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(13);
        let dims = [5usize, 4, 6];
        let x = random_sparse(&mut rng, &dims, 80);
        let f = random_factors(&mut rng, &dims, 11);
        let mirror = FactorMirror::new(&f, Precision::F64);
        let mut serial = vec![0.0; 11];
        let mut par = vec![0.0; 11];
        for threads in [2, 3, 4, 7, 11, 16] {
            for (mode, &dim) in dims.iter().enumerate() {
                for i in 0..dim as u32 {
                    mttkrp_row_interleaved(&x, &mirror, mode, i, &mut serial).unwrap();
                    mttkrp_row_par(&x, &mirror, mode, i, &mut par, threads).unwrap();
                    for k in 0..11 {
                        assert_eq!(
                            serial[k].to_bits(),
                            par[k].to_bits(),
                            "threads {threads} mode {mode} row {i} k {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_shape_errors_are_typed_not_panics() {
        let mut rng = StdRng::seed_from_u64(15);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 10);
        let f = random_factors(&mut rng, &dims, 4);
        let mut short = vec![0.0; 3];
        let mut ok = vec![0.0; 4];
        assert!(matches!(
            mttkrp_row(&x, &f, 0, 0, &mut short, &mut ok),
            Err(SnsError::KernelShape { what: "mttkrp_row(out)", expected: 4, got: 3 })
        ));
        assert!(matches!(
            mttkrp_row(&x, &f, 0, 0, &mut ok, &mut short),
            Err(SnsError::KernelShape { what: "mttkrp_row(scratch)", .. })
        ));
        let mirror = FactorMirror::new(&f, Precision::F64);
        assert!(matches!(
            mttkrp_row_interleaved(&x, &mirror, 0, 0, &mut short),
            Err(SnsError::KernelShape { .. })
        ));
        let entries: Vec<(Coord, f64)> = vec![];
        assert!(mttkrp_row_from_entries(&entries, &f, 0, &mut short, &mut ok).is_err());
        let k = KruskalTensor::random(&mut rng, &dims, 4, 1.0);
        assert!(mttkrp_row_sampled_residuals(&x, &k, 0, &[], &mut short, &mut ok).is_err());
        let mut scratch = vec![0.0; 4]; // needs (M+2)·R = 20
        let mut rows = vec![0.0; 12];
        assert!(matches!(
            khatri_rao_rows_all(&f, &Coord::new(&[0, 0, 0]), &mut scratch, &mut rows),
            Err(SnsError::KernelShape { what: "khatri_rao_rows_all(scratch)", .. })
        ));
    }

    #[test]
    fn row_from_entries_matches_row() {
        let mut rng = StdRng::seed_from_u64(5);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 30);
        let f = random_factors(&mut rng, &dims, 4);
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        let entries: Vec<(Coord, f64)> = x.fiber_entries(0, 2).map(|(c, v)| (*c, v)).collect();
        mttkrp_row(&x, &f, 0, 2, &mut a, &mut scratch).unwrap();
        mttkrp_row_from_entries(&entries, &f, 0, &mut b, &mut scratch).unwrap();
        for k in 0..4 {
            assert!((a[k] - b[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_with_kruskal_matches_dense() {
        let mut rng = StdRng::seed_from_u64(6);
        let dims = [3usize, 4, 2];
        let x = random_sparse(&mut rng, &dims, 15);
        let k = KruskalTensor::random(&mut rng, &dims, 3, 1.0);
        let dense_x = DenseTensor::from_sparse(&x);
        let dense_k = k.reconstruct_dense();
        let brute: f64 =
            Shape::new(&dims).iter_coords().map(|c| dense_x.get(&c) * dense_k.get(&c)).sum();
        assert!((inner_with_kruskal(&x, &k) - brute).abs() < 1e-9);
    }

    #[test]
    fn prefix_suffix_rows_match_per_mode_kernel() {
        let mut rng = StdRng::seed_from_u64(8);
        for dims in [vec![4usize, 3, 5], vec![3, 2, 4, 3], vec![2, 5]] {
            let m = dims.len();
            let f = random_factors(&mut rng, &dims, 4);
            let coord: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            let c = Coord::new(&coord);
            let mut scratch = vec![0.0; (m + 2) * 4];
            let mut rows = vec![0.0; m * 4];
            khatri_rao_rows_all(&f, &c, &mut scratch, &mut rows).unwrap();
            let mut reference = vec![0.0; 4];
            for skip in 0..m {
                khatri_rao_row(&f, &c, skip, &mut reference);
                for k in 0..4 {
                    let got = rows[skip * 4 + k];
                    assert!(
                        (got - reference[k]).abs() <= 1e-12 * (1.0 + reference[k].abs()),
                        "order {m} skip {skip} k {k}: {got} vs {}",
                        reference[k]
                    );
                }
            }
        }
    }

    #[test]
    fn mttkrp_full_all_matches_per_mode_full() {
        let mut rng = StdRng::seed_from_u64(9);
        let dims = [3usize, 4, 2, 3];
        let x = random_sparse(&mut rng, &dims, 25);
        let f = random_factors(&mut rng, &dims, 3);
        let all = mttkrp_full_all(&x, &f);
        for (mode, got) in all.iter().enumerate() {
            let one = mttkrp_full(&x, &f, mode);
            assert_eq!(got.shape(), one.shape());
            for i in 0..one.rows() {
                for j in 0..one.cols() {
                    assert!(
                        (got[(i, j)] - one[(i, j)]).abs() <= 1e-12 * (1.0 + one[(i, j)].abs()),
                        "mode {mode} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_sampled_residuals_match_eval_route() {
        let mut rng = StdRng::seed_from_u64(10);
        let dims = [4usize, 3, 5];
        let x = random_sparse(&mut rng, &dims, 30);
        let k = KruskalTensor::random(&mut rng, &dims, 4, 1.0);
        let mode = 1;
        let samples: Vec<Coord> = (0..10)
            .map(|_| {
                let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
                Coord::new(&c)
            })
            .collect();
        let mut fused = vec![0.0; 4];
        let mut scratch = vec![0.0; 4];
        mttkrp_row_sampled_residuals(&x, &k, mode, &samples, &mut fused, &mut scratch).unwrap();
        // Unfused reference: residuals via eval, then the entry-list MTTKRP.
        let entries: Vec<(Coord, f64)> =
            samples.iter().map(|c| (*c, x.get(c) - k.eval(c))).collect();
        let mut reference = vec![0.0; 4];
        mttkrp_row_from_entries(&entries, &k.factors, mode, &mut reference, &mut scratch).unwrap();
        for j in 0..4 {
            assert!(
                (fused[j] - reference[j]).abs() <= 1e-12 * (1.0 + reference[j].abs()),
                "{} vs {}",
                fused[j],
                reference[j]
            );
        }
    }

    #[test]
    fn empty_tensor_gives_zero_mttkrp() {
        let mut rng = StdRng::seed_from_u64(7);
        let dims = [3usize, 3, 3];
        let x = SparseTensor::new(Shape::new(&dims));
        let f = random_factors(&mut rng, &dims, 2);
        let u = mttkrp_full(&x, &f, 0);
        assert_eq!(u.frob_norm(), 0.0);
        // Empty fibers also zero the row kernels.
        let mirror = FactorMirror::new(&f, Precision::F64);
        let mut out = vec![9.0; 2];
        mttkrp_row_interleaved(&x, &mirror, 0, 1, &mut out).unwrap();
        assert_eq!(out, vec![0.0; 2]);
    }
}
