//! Exact sparse fitness evaluation.
//!
//! Fitness (Section VI-A) is `1 − ‖X − X̃‖_F / ‖X‖_F`. For a sparse `X`
//! and a Kruskal `X̃` the residual norm expands as
//!
//! ```text
//! ‖X − X̃‖² = ‖X‖² − 2⟨X, X̃⟩ + ‖X̃‖²
//! ```
//!
//! where `‖X‖²` is maintained by the window, `⟨X, X̃⟩` costs `O(|X|·M·R)`,
//! and `‖X̃‖²` costs `O(M·R²)` via the Gram identity — no dense
//! reconstruction ever happens.

use crate::grams::compute_grams;
use crate::kruskal::KruskalTensor;
use crate::mttkrp::inner_with_kruskal;
use sns_linalg::Mat;
use sns_tensor::SparseTensor;

/// Fitness of `k` against `x`, recomputing Gram matrices from scratch.
pub fn fitness(x: &SparseTensor, k: &KruskalTensor) -> f64 {
    let grams = compute_grams(&k.factors);
    fitness_with_grams(x, k, &grams)
}

/// Fitness of `k` against `x`, reusing maintained Gram matrices.
///
/// Returns 1.0 for an empty window with a zero reconstruction and −∞-free
/// values otherwise (an empty window with a non-zero reconstruction gives
/// fitness −∞ in theory; we clamp the denominator instead and report the
/// conventional 0-denominator result of 1.0 only for exact matches).
pub fn fitness_with_grams(x: &SparseTensor, k: &KruskalTensor, grams: &[Mat]) -> f64 {
    let x_sq = x.norm_sq();
    let inner = inner_with_kruskal(x, k);
    let k_sq = k.norm_sq_from_grams(grams);
    let resid_sq = (x_sq - 2.0 * inner + k_sq).max(0.0);
    if x_sq == 0.0 {
        return if resid_sq == 0.0 { 1.0 } else { f64::NEG_INFINITY };
    }
    1.0 - (resid_sq.sqrt() / x_sq.sqrt())
}

/// Relative fitness (Section VI-A): `fitness_target / fitness_reference`,
/// where the reference is conventionally batch ALS on the same window.
/// Returns `NaN` when the reference fitness is zero.
pub fn relative_fitness(target: f64, reference: f64) -> f64 {
    target / reference
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sns_tensor::{Coord, DenseTensor, Shape};

    #[test]
    fn perfect_reconstruction_has_fitness_one() {
        // Rank-1 tensor reconstructed by its own factorization.
        let mut k = KruskalTensor::zeros(&[2, 2], 1);
        k.factors[0][(0, 0)] = 1.0;
        k.factors[0][(1, 0)] = 2.0;
        k.factors[1][(0, 0)] = 3.0;
        k.factors[1][(1, 0)] = 4.0;
        let dense = k.reconstruct_dense();
        let x = dense.to_sparse();
        assert!((fitness(&x, &k) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_reconstruction_has_fitness_zero() {
        let mut x = SparseTensor::new(Shape::new(&[2, 2]));
        x.add(&Coord::new(&[0, 0]), 3.0);
        let k = KruskalTensor::zeros(&[2, 2], 2);
        // ‖X − 0‖/‖X‖ = 1 → fitness 0.
        assert!((fitness(&x, &k)).abs() < 1e-12);
    }

    #[test]
    fn matches_dense_bruteforce() {
        let mut rng = StdRng::seed_from_u64(11);
        let dims = [3usize, 4, 2];
        let mut x = SparseTensor::new(Shape::new(&dims));
        for _ in 0..10 {
            let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            x.add(&Coord::new(&c), rng.gen_range(1..4) as f64);
        }
        let k = KruskalTensor::random(&mut rng, &dims, 3, 0.5);
        let dense_x = DenseTensor::from_sparse(&x);
        let dense_k = k.reconstruct_dense();
        let brute = 1.0 - dense_x.dist(&dense_k) / dense_x.norm();
        assert!((fitness(&x, &k) - brute).abs() < 1e-9);
    }

    #[test]
    fn empty_window_conventions() {
        let x = SparseTensor::new(Shape::new(&[2, 2]));
        let kz = KruskalTensor::zeros(&[2, 2], 1);
        assert_eq!(fitness(&x, &kz), 1.0);
        let mut rng = StdRng::seed_from_u64(12);
        let kr = KruskalTensor::random(&mut rng, &[2, 2], 1, 1.0);
        assert_eq!(fitness(&x, &kr), f64::NEG_INFINITY);
    }

    #[test]
    fn relative_fitness_ratio() {
        assert!((relative_fitness(0.36, 0.48) - 0.75).abs() < 1e-12);
        assert!(relative_fitness(0.1, 0.0).is_infinite() || relative_fitness(0.1, 0.0).is_nan());
    }

    #[test]
    fn fitness_with_grams_consistent() {
        let mut rng = StdRng::seed_from_u64(13);
        let dims = [3usize, 3, 3];
        let mut x = SparseTensor::new(Shape::new(&dims));
        for _ in 0..8 {
            let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            x.add(&Coord::new(&c), 1.0);
        }
        let k = KruskalTensor::random(&mut rng, &dims, 2, 1.0);
        let grams = compute_grams(&k.factors);
        assert!((fitness(&x, &k) - fitness_with_grams(&x, &k, &grams)).abs() < 1e-12);
    }
}
