//! Parity proptests pinning the PR-3 hot-path kernels against their
//! straightforward references: prefix/suffix Khatri–Rao products vs the
//! per-mode kernel, cached Cholesky solves vs fresh solves, the fused
//! sampled-residual MTTKRP vs the eval-then-multiply route, and
//! bitwise-identical engine math under workspace reuse.
//!
//! Test bodies live in plain functions returning `Result<(), String>`
//! (the vendored `proptest!` macro recurses per statement, so the macro
//! bodies stay one-liners).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sns_core::grams::{compute_grams, gram_row_update, hadamard_except};
use sns_core::kruskal::KruskalTensor;
use sns_core::mttkrp::{
    khatri_rao_row, khatri_rao_rows_all, mttkrp_full, mttkrp_full_all, mttkrp_row_from_entries,
    mttkrp_row_sampled_residuals,
};
use sns_core::update::common::update_row_exact;
use sns_core::update::FactorState;
use sns_core::workspace::{GramSolves, KernelWorkspace};
use sns_linalg::lstsq::solve_row_sym;
use sns_linalg::Mat;
use sns_tensor::{Coord, Shape, SparseTensor};

/// Random mode lengths (order 2–4), rank, and an RNG seed.
fn geometry() -> impl Strategy<Value = (Vec<usize>, usize, u64)> {
    (proptest::collection::vec(2usize..6, 2..5), 1usize..6, 0u64..u64::MAX)
}

fn random_factors(rng: &mut StdRng, dims: &[usize], rank: usize) -> Vec<Mat> {
    dims.iter().map(|&n| Mat::random(rng, n, rank, 1.0)).collect()
}

fn random_sparse(rng: &mut StdRng, dims: &[usize], nnz: usize) -> SparseTensor {
    let mut x = SparseTensor::new(Shape::new(dims));
    for _ in 0..nnz {
        let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
        x.add(&Coord::new(&c), rng.gen_range(1..5) as f64);
    }
    x
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

fn ensure(cond: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

/// The prefix/suffix all-modes Khatri–Rao rows must match the per-mode
/// kernel for every skip mode (≤ 1e-12: multiplication order differs).
fn check_prefix_suffix_kr(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = random_factors(&mut rng, dims, rank);
    let coord: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
    let c = Coord::new(&coord);
    let m = dims.len();
    let mut scratch = vec![0.0; (m + 2) * rank];
    let mut rows = vec![0.0; m * rank];
    khatri_rao_rows_all(&f, &c, &mut scratch, &mut rows);
    let mut reference = vec![0.0; rank];
    for skip in 0..m {
        khatri_rao_row(&f, &c, skip, &mut reference);
        for k in 0..rank {
            let got = rows[skip * rank + k];
            ensure(close(got, reference[k]), || {
                format!("skip {skip} k {k}: {got} vs {}", reference[k])
            })?;
        }
    }
    Ok(())
}

/// All-modes MTTKRP must equal the mode-at-a-time kernel on every mode.
fn check_mttkrp_full_all(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = random_factors(&mut rng, dims, rank);
    let x = random_sparse(&mut rng, dims, 20);
    let all = mttkrp_full_all(&x, &f);
    for (mode, got) in all.iter().enumerate() {
        let reference = mttkrp_full(&x, &f, mode);
        ensure(got.shape() == reference.shape(), || format!("mode {mode}: shape mismatch"))?;
        for i in 0..reference.rows() {
            for j in 0..reference.cols() {
                ensure(close(got[(i, j)], reference[(i, j)]), || {
                    format!("mode {mode} ({i},{j}): {} vs {}", got[(i, j)], reference[(i, j)])
                })?;
            }
        }
    }
    Ok(())
}

/// Cached H(m) Cholesky solves must track fresh `solve_row_sym` to 1e-12
/// across a random sequence of Gram row updates, including solves where
/// the cache is warm (same versions) and stale (bumped).
fn check_cached_gram_solves(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = random_factors(&mut rng, dims, rank);
    let mut grams = compute_grams(&factors);
    let mut versions = vec![1u64; dims.len()];
    let mut ws = GramSolves::new(dims.len(), rank);
    for step in 0..8 {
        let mode = rng.gen_range(0..dims.len());
        let u: Vec<f64> = (0..rank).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let mut cached = vec![0.0; rank];
        let mut fresh = vec![0.0; rank];
        ws.solve(&grams, &versions, mode, &u, &mut cached);
        let h = hadamard_except(&grams, mode, rank);
        solve_row_sym(&h, &u, &mut fresh);
        for k in 0..rank {
            ensure(close(cached[k], fresh[k]), || {
                format!("step {step} mode {mode} k {k}: {} vs {}", cached[k], fresh[k])
            })?;
        }
        // Re-solving with unchanged versions must reuse and agree bitwise.
        let mut warm = vec![0.0; rank];
        ws.solve(&grams, &versions, mode, &u, &mut warm);
        ensure(warm == cached, || format!("step {step}: warm solve diverged"))?;
        // Mutate one random factor row, updating the Gram + version.
        let vm = rng.gen_range(0..dims.len());
        let i = rng.gen_range(0..dims[vm]);
        let old: Vec<f64> = factors[vm].row(i).to_vec();
        let new: Vec<f64> = (0..rank).map(|_| rng.gen::<f64>()).collect();
        factors[vm].set_row(i, &new);
        gram_row_update(&mut grams[vm], &old, &new);
        versions[vm] += 1;
    }
    Ok(())
}

/// The fused sampled-residual kernel must match the unfused
/// eval-then-`mttkrp_row_from_entries` route to 1e-12.
fn check_fused_residuals(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k =
        KruskalTensor { factors: random_factors(&mut rng, dims, rank), lambda: vec![1.0; rank] };
    let x = random_sparse(&mut rng, dims, 25);
    let mode = rng.gen_range(0..dims.len());
    let samples: Vec<Coord> = (0..12)
        .map(|_| {
            let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            Coord::new(&c)
        })
        .collect();
    let mut fused = vec![0.0; rank];
    let mut scratch = vec![0.0; rank];
    mttkrp_row_sampled_residuals(&x, &k, mode, &samples, &mut fused, &mut scratch);
    let entries: Vec<(Coord, f64)> = samples.iter().map(|c| (*c, x.get(c) - k.eval(c))).collect();
    let mut unfused = vec![0.0; rank];
    mttkrp_row_from_entries(&entries, &k.factors, mode, &mut unfused, &mut scratch);
    for j in 0..rank {
        ensure(close(fused[j], unfused[j]), || format!("k {j}: {} vs {}", fused[j], unfused[j]))?;
    }
    Ok(())
}

/// One long-lived workspace must leave the factor state bitwise identical
/// to a fresh workspace per call: cache reuse may only skip redundant
/// work, never change results.
fn check_workspace_reuse(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = random_sparse(&mut rng, dims, 30);
    let mut shared_state = FactorState::random(dims, rank, 0.7, seed ^ 1);
    let mut fresh_state = shared_state.clone();
    let mut shared_ws = KernelWorkspace::new(dims.len(), rank);
    for step in 0..10 {
        let mode = rng.gen_range(0..dims.len());
        let index = rng.gen_range(0..dims[mode]) as u32;
        update_row_exact(&mut shared_state, &x, mode, index, &mut shared_ws);
        let mut fresh_ws = KernelWorkspace::new(dims.len(), rank);
        update_row_exact(&mut fresh_state, &x, mode, index, &mut fresh_ws);
        for m in 0..dims.len() {
            ensure(
                shared_state.kruskal.factors[m].as_slice()
                    == fresh_state.kruskal.factors[m].as_slice(),
                || format!("step {step}: factor {m} diverged"),
            )?;
            ensure(shared_state.grams[m].as_slice() == fresh_state.grams[m].as_slice(), || {
                format!("step {step}: gram {m} diverged")
            })?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prefix_suffix_kr_matches_per_mode(g in geometry()) {
        check_prefix_suffix_kr(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn mttkrp_full_all_matches_per_mode(g in geometry()) {
        check_mttkrp_full_all(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn cached_gram_solves_match_fresh(g in geometry()) {
        check_cached_gram_solves(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn fused_sampled_residuals_match_unfused(g in geometry()) {
        check_fused_residuals(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn workspace_reuse_is_bitwise_invisible(g in geometry()) {
        check_workspace_reuse(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }
}
