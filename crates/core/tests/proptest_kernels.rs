//! Parity proptests pinning the PR-3 hot-path kernels against their
//! straightforward references: prefix/suffix Khatri–Rao products vs the
//! per-mode kernel, cached Cholesky solves vs fresh solves, the fused
//! sampled-residual MTTKRP vs the eval-then-multiply route, and
//! bitwise-identical engine math under workspace reuse.
//!
//! Test bodies live in plain functions returning `Result<(), String>`
//! (the vendored `proptest!` macro recurses per statement, so the macro
//! bodies stay one-liners).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sns_core::config::Precision;
use sns_core::grams::{compute_grams, gram_row_update, hadamard_except};
use sns_core::kruskal::KruskalTensor;
use sns_core::mirror::{round_row_f32, FactorMirror};
use sns_core::mttkrp::{
    khatri_rao_row, khatri_rao_rows_all, mttkrp_full, mttkrp_full_all, mttkrp_row,
    mttkrp_row_from_entries, mttkrp_row_interleaved, mttkrp_row_par, mttkrp_row_sampled_residuals,
};
use sns_core::update::common::update_row_exact;
use sns_core::update::FactorState;
use sns_core::workspace::{GramSolves, KernelWorkspace};
use sns_linalg::lstsq::solve_row_sym;
use sns_linalg::Mat;
use sns_tensor::{Coord, Shape, SparseTensor};

/// Random mode lengths (order 2–4), rank, and an RNG seed.
fn geometry() -> impl Strategy<Value = (Vec<usize>, usize, u64)> {
    (proptest::collection::vec(2usize..6, 2..5), 1usize..6, 0u64..u64::MAX)
}

/// Three-mode geometry with ranks spanning the register-block width
/// (scalar tail, one block, several blocks) for the fiber kernels.
fn geometry3() -> impl Strategy<Value = (Vec<usize>, usize, u64)> {
    (proptest::collection::vec(2usize..7, 3..4), 1usize..25, 0u64..u64::MAX)
}

fn random_factors(rng: &mut StdRng, dims: &[usize], rank: usize) -> Vec<Mat> {
    dims.iter().map(|&n| Mat::random(rng, n, rank, 1.0)).collect()
}

fn random_sparse(rng: &mut StdRng, dims: &[usize], nnz: usize) -> SparseTensor {
    let mut x = SparseTensor::new(Shape::new(dims));
    for _ in 0..nnz {
        let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
        x.add(&Coord::new(&c), rng.gen_range(1..5) as f64);
    }
    x
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

fn ensure(cond: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

/// The prefix/suffix all-modes Khatri–Rao rows must match the per-mode
/// kernel for every skip mode (≤ 1e-12: multiplication order differs).
fn check_prefix_suffix_kr(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = random_factors(&mut rng, dims, rank);
    let coord: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
    let c = Coord::new(&coord);
    let m = dims.len();
    let mut scratch = vec![0.0; (m + 2) * rank];
    let mut rows = vec![0.0; m * rank];
    khatri_rao_rows_all(&f, &c, &mut scratch, &mut rows).map_err(|e| e.to_string())?;
    let mut reference = vec![0.0; rank];
    for skip in 0..m {
        khatri_rao_row(&f, &c, skip, &mut reference);
        for k in 0..rank {
            let got = rows[skip * rank + k];
            ensure(close(got, reference[k]), || {
                format!("skip {skip} k {k}: {got} vs {}", reference[k])
            })?;
        }
    }
    Ok(())
}

/// All-modes MTTKRP must equal the mode-at-a-time kernel on every mode.
fn check_mttkrp_full_all(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = random_factors(&mut rng, dims, rank);
    let x = random_sparse(&mut rng, dims, 20);
    let all = mttkrp_full_all(&x, &f);
    for (mode, got) in all.iter().enumerate() {
        let reference = mttkrp_full(&x, &f, mode);
        ensure(got.shape() == reference.shape(), || format!("mode {mode}: shape mismatch"))?;
        for i in 0..reference.rows() {
            for j in 0..reference.cols() {
                ensure(close(got[(i, j)], reference[(i, j)]), || {
                    format!("mode {mode} ({i},{j}): {} vs {}", got[(i, j)], reference[(i, j)])
                })?;
            }
        }
    }
    Ok(())
}

/// Cached H(m) Cholesky solves must track fresh `solve_row_sym` to 1e-12
/// across a random sequence of Gram row updates, including solves where
/// the cache is warm (same versions) and stale (bumped).
fn check_cached_gram_solves(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = random_factors(&mut rng, dims, rank);
    let mut grams = compute_grams(&factors);
    let mut versions = vec![1u64; dims.len()];
    let mut ws = GramSolves::new(dims.len(), rank);
    for step in 0..8 {
        let mode = rng.gen_range(0..dims.len());
        let u: Vec<f64> = (0..rank).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
        let mut cached = vec![0.0; rank];
        let mut fresh = vec![0.0; rank];
        ws.solve(&grams, &versions, mode, &u, &mut cached);
        let h = hadamard_except(&grams, mode, rank);
        solve_row_sym(&h, &u, &mut fresh);
        for k in 0..rank {
            ensure(close(cached[k], fresh[k]), || {
                format!("step {step} mode {mode} k {k}: {} vs {}", cached[k], fresh[k])
            })?;
        }
        // Re-solving with unchanged versions must reuse and agree bitwise.
        let mut warm = vec![0.0; rank];
        ws.solve(&grams, &versions, mode, &u, &mut warm);
        ensure(warm == cached, || format!("step {step}: warm solve diverged"))?;
        // Mutate one random factor row, updating the Gram + version.
        let vm = rng.gen_range(0..dims.len());
        let i = rng.gen_range(0..dims[vm]);
        let old: Vec<f64> = factors[vm].row(i).to_vec();
        let new: Vec<f64> = (0..rank).map(|_| rng.gen::<f64>()).collect();
        factors[vm].set_row(i, &new);
        gram_row_update(&mut grams[vm], &old, &new);
        versions[vm] += 1;
    }
    Ok(())
}

/// The fused sampled-residual kernel must match the unfused
/// eval-then-`mttkrp_row_from_entries` route to 1e-12.
fn check_fused_residuals(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k =
        KruskalTensor { factors: random_factors(&mut rng, dims, rank), lambda: vec![1.0; rank] };
    let x = random_sparse(&mut rng, dims, 25);
    let mode = rng.gen_range(0..dims.len());
    let samples: Vec<Coord> = (0..12)
        .map(|_| {
            let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
            Coord::new(&c)
        })
        .collect();
    let mut fused = vec![0.0; rank];
    let mut scratch = vec![0.0; rank];
    mttkrp_row_sampled_residuals(&x, &k, mode, &samples, &mut fused, &mut scratch)
        .map_err(|e| e.to_string())?;
    let entries: Vec<(Coord, f64)> = samples.iter().map(|c| (*c, x.get(c) - k.eval(c))).collect();
    let mut unfused = vec![0.0; rank];
    mttkrp_row_from_entries(&entries, &k.factors, mode, &mut unfused, &mut scratch)
        .map_err(|e| e.to_string())?;
    for j in 0..rank {
        ensure(close(fused[j], unfused[j]), || format!("k {j}: {} vs {}", fused[j], unfused[j]))?;
    }
    Ok(())
}

/// One long-lived workspace must leave the factor state bitwise identical
/// to a fresh workspace per call: cache reuse may only skip redundant
/// work, never change results.
fn check_workspace_reuse(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = random_sparse(&mut rng, dims, 30);
    let mut shared_state = FactorState::random(dims, rank, 0.7, seed ^ 1, Precision::F64);
    let mut fresh_state = shared_state.clone();
    let mut shared_ws = KernelWorkspace::new(dims.len(), rank);
    for step in 0..10 {
        let mode = rng.gen_range(0..dims.len());
        let index = rng.gen_range(0..dims[mode]) as u32;
        update_row_exact(&mut shared_state, &x, mode, index, &mut shared_ws);
        let mut fresh_ws = KernelWorkspace::new(dims.len(), rank);
        update_row_exact(&mut fresh_state, &x, mode, index, &mut fresh_ws);
        for m in 0..dims.len() {
            ensure(
                shared_state.kruskal.factors[m].as_slice()
                    == fresh_state.kruskal.factors[m].as_slice(),
                || format!("step {step}: factor {m} diverged"),
            )?;
            ensure(shared_state.grams[m].as_slice() == fresh_state.grams[m].as_slice(), || {
                format!("step {step}: gram {m} diverged")
            })?;
        }
    }
    Ok(())
}

/// The register-blocked 3-mode fiber kernel must match the per-entry
/// `khatri_rao_row` accumulation route to 1e-12 (the pair-blocked walk
/// reassociates the fiber sum).
fn check_blocked_fiber_row(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = random_factors(&mut rng, dims, rank);
    let x = random_sparse(&mut rng, dims, 30);
    let mode = rng.gen_range(0..dims.len());
    let index = rng.gen_range(0..dims[mode]) as u32;
    let mut got = vec![0.0; rank];
    let mut scratch = vec![0.0; rank];
    mttkrp_row(&x, &f, mode, index, &mut got, &mut scratch).map_err(|e| e.to_string())?;
    let (coords, values) = x.fiber_slices(mode, index);
    let mut reference = vec![0.0; rank];
    for (coord, &value) in coords.iter().zip(values) {
        khatri_rao_row(&f, coord, mode, &mut scratch);
        reference.iter_mut().zip(scratch.iter()).for_each(|(o, &p)| *o += value * p);
    }
    for k in 0..rank {
        ensure(close(got[k], reference[k]), || format!("k {k}: {} vs {}", got[k], reference[k]))?;
    }
    Ok(())
}

/// The interleaved-mirror fiber kernel must match the row-major walk
/// **bitwise**: both routes accumulate per-`k` in the identical order.
fn check_interleaved_bitwise(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = random_factors(&mut rng, dims, rank);
    let x = random_sparse(&mut rng, dims, 30);
    let mirror = FactorMirror::new(&f, Precision::F64);
    let mode = rng.gen_range(0..dims.len());
    let index = rng.gen_range(0..dims[mode]) as u32;
    let mut row_major = vec![0.0; rank];
    let mut scratch = vec![0.0; rank];
    mttkrp_row(&x, &f, mode, index, &mut row_major, &mut scratch).map_err(|e| e.to_string())?;
    let mut interleaved = vec![0.0; rank];
    mttkrp_row_interleaved(&x, &mirror, mode, index, &mut interleaved)
        .map_err(|e| e.to_string())?;
    ensure(interleaved == row_major, || {
        format!("interleaved diverged from row-major: {interleaved:?} vs {row_major:?}")
    })
}

/// Rank-split parallel MTTKRP must match the serial route **bitwise**
/// at every thread count: each worker owns a contiguous `k`-range and
/// walks the whole fiber, so per-`k` accumulation order never changes.
fn check_parallel_bitwise(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = random_factors(&mut rng, dims, rank);
    let x = random_sparse(&mut rng, dims, 40);
    let mirror = FactorMirror::new(&f, Precision::F64);
    let mode = rng.gen_range(0..dims.len());
    let index = rng.gen_range(0..dims[mode]) as u32;
    let mut serial = vec![0.0; rank];
    mttkrp_row_par(&x, &mirror, mode, index, &mut serial, 1).map_err(|e| e.to_string())?;
    for threads in [2usize, 3, 5, 9, 16] {
        let mut par = vec![0.0; rank];
        mttkrp_row_par(&x, &mirror, mode, index, &mut par, threads).map_err(|e| e.to_string())?;
        ensure(par == serial, || format!("threads {threads}: {par:?} vs {serial:?}"))?;
    }
    Ok(())
}

/// The `f32` speed profile's two contracts: (1) an `f32` mirror of
/// f32-rounded masters reproduces the master-factor walk **bitwise**
/// (widening is exact, accumulation is `f64` either way); (2) against
/// unrounded `f64` factors the result stays within the documented
/// f32-rounding tolerance.
fn check_f32_mirror(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f64_factors = random_factors(&mut rng, dims, rank);
    let x = random_sparse(&mut rng, dims, 30);
    let mode = rng.gen_range(0..dims.len());
    let index = rng.gen_range(0..dims[mode]) as u32;
    let mut rounded = f64_factors.clone();
    for m in &mut rounded {
        for i in 0..m.rows() {
            round_row_f32(m.row_mut(i));
        }
    }
    let mirror = FactorMirror::new(&rounded, Precision::F32);
    let mut scratch = vec![0.0; rank];
    let mut masters = vec![0.0; rank];
    mttkrp_row(&x, &rounded, mode, index, &mut masters, &mut scratch).map_err(|e| e.to_string())?;
    let mut via_f32 = vec![0.0; rank];
    mttkrp_row_interleaved(&x, &mirror, mode, index, &mut via_f32).map_err(|e| e.to_string())?;
    ensure(via_f32 == masters, || {
        format!("f32 mirror diverged from rounded masters: {via_f32:?} vs {masters:?}")
    })?;
    let mut full = vec![0.0; rank];
    mttkrp_row(&x, &f64_factors, mode, index, &mut full, &mut scratch)
        .map_err(|e| e.to_string())?;
    for k in 0..rank {
        // Fiber values are ≤ 5, ≤ 30 entries, factor entries O(1): the
        // f32 rounding of two multiplicands bounds the absolute error.
        ensure(
            (via_f32[k] - full[k]).abs() <= 1e-3 * (1.0 + via_f32[k].abs().max(full[k].abs())),
            || format!("k {k}: f32 route {} too far from f64 route {}", via_f32[k], full[k]),
        )?;
    }
    Ok(())
}

/// Updates on an `f32`-profile state must preserve its invariant: every
/// master factor entry stays exactly `f32`-representable, so the mirror
/// (widened) always equals the masters bit for bit.
fn check_f32_state_invariant(dims: &[usize], rank: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = random_sparse(&mut rng, dims, 30);
    let mut state = FactorState::random(dims, rank, 0.7, seed ^ 1, Precision::F32);
    let mut ws = KernelWorkspace::new(dims.len(), rank);
    for _ in 0..8 {
        let mode = rng.gen_range(0..dims.len());
        let index = rng.gen_range(0..dims[mode]) as u32;
        update_row_exact(&mut state, &x, mode, index, &mut ws);
    }
    for (m, &dim) in dims.iter().enumerate() {
        for &v in state.kruskal.factors[m].as_slice() {
            ensure(v == v as f32 as f64, || format!("mode {m}: {v} is not f32-representable"))?;
        }
        let plane = state.mirror().f32_plane(m).ok_or("f32 state lost its f32 mirror")?;
        let stride = state.mirror().stride();
        for i in 0..dim {
            let row = state.kruskal.factors[m].row(i);
            let mrow = &plane[i * stride..i * stride + rank];
            for k in 0..rank {
                ensure(mrow[k] as f64 == row[k], || {
                    format!("mode {m} row {i} k {k}: mirror {} vs master {}", mrow[k], row[k])
                })?;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prefix_suffix_kr_matches_per_mode(g in geometry()) {
        check_prefix_suffix_kr(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn mttkrp_full_all_matches_per_mode(g in geometry()) {
        check_mttkrp_full_all(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn cached_gram_solves_match_fresh(g in geometry()) {
        check_cached_gram_solves(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn fused_sampled_residuals_match_unfused(g in geometry()) {
        check_fused_residuals(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn workspace_reuse_is_bitwise_invisible(g in geometry()) {
        check_workspace_reuse(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn blocked_fiber_row_matches_per_entry_route(g in geometry3()) {
        check_blocked_fiber_row(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn interleaved_mirror_is_bitwise_row_major(g in geometry3()) {
        check_interleaved_bitwise(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn parallel_split_is_bitwise_serial(g in geometry3()) {
        check_parallel_bitwise(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn f32_mirror_is_exact_vs_rounded_and_close_vs_f64(g in geometry3()) {
        check_f32_mirror(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn f32_state_updates_preserve_representability(g in geometry()) {
        check_f32_state_invariant(&g.0, g.1, g.2).map_err(TestCaseError::fail)?;
    }
}
