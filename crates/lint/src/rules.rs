//! The six invariant rules. Each is a pure function over one file's
//! token stream; the engine handles allowlisting and aggregation.
//!
//! | rule id | invariant it mechanizes |
//! |---|---|
//! | `determinism/hash-iter` | no hash-ordered containers in state-capture/codec paths (snapshot and wire bytes must be pure functions of history) |
//! | `determinism/wall-clock` | no `Instant::now`/`SystemTime::now` outside the `sns-ops` clock seam (replay must not observe time) |
//! | `robustness/no-panic-in-lib` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test library code |
//! | `concurrency/nested-lock` | no lock acquired while another guard is live, unless the pair is registered in the lock-order table |
//! | `durability/sync-before-rename` | every `fs::rename` in `wal.rs`/`store.rs` is preceded by a sync in the same function (rename is the commit point) |
//! | `api/must-use-receipt` | receipt-like public types (`*Receipt`, `*Session`, `*Snapshot`, `Subscription`, `*Guard`, `*Ticket`) are `#[must_use]` |

use crate::config::Config;
use crate::scope::{fn_spans, has_attr};
use crate::tokenizer::{Token, TokenKind};

/// Hash-ordered container names [`HASH_ITER`] flags.
pub const HASH_CONTAINERS: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Type-name suffixes [`MUST_USE_RECEIPT`] requires `#[must_use]` on.
pub const RECEIPT_SUFFIXES: [&str; 6] =
    ["Receipt", "Session", "Snapshot", "Subscription", "Guard", "Ticket"];

/// Rule id of the hash-iteration determinism rule.
pub const HASH_ITER: &str = "determinism/hash-iter";
/// Rule id of the wall-clock determinism rule.
pub const WALL_CLOCK: &str = "determinism/wall-clock";
/// Rule id of the library panic-freedom rule.
pub const NO_PANIC: &str = "robustness/no-panic-in-lib";
/// Rule id of the nested-lock rule.
pub const NESTED_LOCK: &str = "concurrency/nested-lock";
/// Rule id of the sync-before-rename durability rule.
pub const SYNC_BEFORE_RENAME: &str = "durability/sync-before-rename";
/// Rule id of the must-use receipt rule.
pub const MUST_USE_RECEIPT: &str = "api/must-use-receipt";

/// All rule ids, in reporting order.
pub const ALL_RULES: [&str; 6] =
    [HASH_ITER, WALL_CLOCK, NO_PANIC, NESTED_LOCK, SYNC_BEFORE_RENAME, MUST_USE_RECEIPT];

/// One rule hit, before allowlist resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawViolation {
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

/// One file's lintable view.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// `true` for library code: a crate's `src/` tree minus `main.rs`
    /// and `src/bin/`. Binaries may panic and read clocks; libraries
    /// may not.
    pub is_lib: bool,
    /// The file's token stream.
    pub tokens: &'a [Token],
    /// Per-token test mask from [`crate::scope::test_mask`].
    pub test_mask: &'a [bool],
}

impl FileCtx<'_> {
    fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or(self.rel_path)
    }

    /// Tokens outside test regions, with their stream indices.
    fn live(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.test_mask.get(*i).copied().unwrap_or(false))
    }
}

/// Runs every rule over one file.
pub fn check_file(ctx: &FileCtx<'_>, config: &Config) -> Vec<RawViolation> {
    let mut out = Vec::new();
    hash_iter(ctx, &mut out);
    wall_clock(ctx, &mut out);
    no_panic_in_lib(ctx, &mut out);
    nested_lock(ctx, config, &mut out);
    sync_before_rename(ctx, &mut out);
    must_use_receipt(ctx, &mut out);
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// `determinism/hash-iter`: state-capture and codec paths must not
/// touch hash-ordered containers at all — iteration order leaks into
/// captured bytes, and "we only probe, never iterate" does not survive
/// refactoring. Scoped to `crates/codec/src/` plus any library file
/// whose name mentions snapshot/state/capture.
fn hash_iter(ctx: &FileCtx<'_>, out: &mut Vec<RawViolation>) {
    let name = ctx.file_name();
    let scoped = ctx.rel_path.starts_with("crates/codec/src/")
        || (ctx.is_lib
            && (name.contains("snapshot") || name.contains("state") || name.contains("capture")));
    if !scoped {
        return;
    }
    for (_, t) in ctx.live() {
        if t.kind == TokenKind::Ident && HASH_CONTAINERS.contains(&t.text.as_str()) {
            out.push(RawViolation {
                rule: HASH_ITER,
                line: t.line,
                message: format!(
                    "`{}` in a state-capture/codec path: iteration order is nondeterministic \
                     and leaks into captured bytes — use a BTreeMap/sorted index or an \
                     insertion-ordered structure",
                    t.text
                ),
            });
        }
    }
}

/// `determinism/wall-clock`: library code must route every clock read
/// through the `sns-ops` clock seam so replay and tests can reason
/// about the single place time enters the system.
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<RawViolation>) {
    if !ctx.is_lib {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in ctx.live() {
        let clock_type = t.is_ident("Instant") || t.is_ident("SystemTime");
        if clock_type
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(RawViolation {
                rule: WALL_CLOCK,
                line: t.line,
                message: format!(
                    "`{}::now()` in library code: wall-clock reads outside the `sns_ops::clock` \
                     seam make latency and replay behavior untestable — call the seam instead",
                    t.text
                ),
            });
        }
    }
}

/// `robustness/no-panic-in-lib`: a panic in a library crate kills a
/// pool worker (and with it every stream on the shard) where a typed
/// `SnsError` would have failed one batch. The only carve-out is the
/// poisoned-lock `expect("… poisoned")` idiom: a poisoned mutex means
/// another thread already panicked past this rule, and propagating
/// poison as `Result` everywhere would bury every metric read in
/// error plumbing.
fn no_panic_in_lib(ctx: &FileCtx<'_>, out: &mut Vec<RawViolation>) {
    if !ctx.is_lib {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in ctx.live() {
        // `.unwrap()` / `.expect(…)`
        if t.is_punct('.') {
            let Some(method) = toks.get(i + 1) else { continue };
            if method.is_ident("unwrap")
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                out.push(RawViolation {
                    rule: NO_PANIC,
                    line: method.line,
                    message: "`.unwrap()` in library code: a reachable panic kills the whole \
                              shard worker — return a typed `SnsError` (or `.expect(\"… \
                              poisoned\")` if this is a poisoned-lock read)"
                        .to_string(),
                });
            } else if method.is_ident("expect") && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                let poisoned = toks
                    .get(i + 3)
                    .is_some_and(|t| t.kind == TokenKind::Str && t.text.contains("poisoned"));
                if !poisoned {
                    out.push(RawViolation {
                        rule: NO_PANIC,
                        line: method.line,
                        message: "`.expect(…)` in library code: document the invariant in a typed \
                                  error instead (the poisoned-lock carve-out requires the message \
                                  to contain \"poisoned\")"
                            .to_string(),
                    });
                }
            }
            continue;
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        let is_macro =
            ["panic", "unreachable", "todo", "unimplemented"].iter().any(|m| t.is_ident(m))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if is_macro {
            out.push(RawViolation {
                rule: NO_PANIC,
                line: t.line,
                message: format!(
                    "`{}!` in library code: reachable panics kill the shard worker; encode the \
                     failure as a typed `SnsError` (protocol invariants: `SnsError::Internal`)",
                    t.text
                ),
            });
        }
    }
}

#[derive(Debug)]
struct Guard {
    /// Receiver name, e.g. `owners` in `self.owners.lock()`.
    receiver: String,
    /// `let` binding name, if the guard was bound.
    binding: Option<String>,
    /// Brace depth the guard lives at: the guard dies when depth drops
    /// below this.
    depth: usize,
    /// Temporaries die at the next `;`.
    temporary: bool,
}

/// `concurrency/nested-lock`: taking a second lock while a guard is
/// live is the deadlock shape PR 4 fixed by hand in the pool's
/// ownership map. Every such pair must either be restructured or be
/// registered (with a justification) in `lint.toml`'s `[[lock_order]]`
/// table. The tracker is lexical and intentionally conservative: a
/// guard bound by `let` lives to the end of its block, an unbound
/// guard to the end of its statement, and `drop(name)` releases early.
fn nested_lock(ctx: &FileCtx<'_>, config: &Config, out: &mut Vec<RawViolation>) {
    if !ctx.is_lib {
        return;
    }
    let toks = ctx.tokens;
    for span in fn_spans(toks) {
        if ctx.test_mask.get(span.kw).copied().unwrap_or(false) {
            continue;
        }
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0usize;
        let mut pending_let: Option<String> = None;
        let mut i = span.body_open;
        while i <= span.body_close && i < toks.len() {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
                pending_let = None;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                pending_let = None;
            } else if t.is_punct(';') {
                guards.retain(|g| !g.temporary);
                pending_let = None;
            } else if t.is_ident("let") {
                // `let [mut] name =` — destructuring patterns are skipped
                // (conservative: their guards are tracked as temporaries).
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                pending_let = match toks.get(j) {
                    Some(name)
                        if name.kind == TokenKind::Ident
                            && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                            // `let a = *x.lock()…` binds the deref'd
                            // value; the guard itself is a temporary.
                            && !toks.get(j + 2).is_some_and(|t| t.is_punct('*')) =>
                    {
                        Some(name.text.clone())
                    }
                    _ => None,
                };
            } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                    guards.retain(|g| g.binding.as_deref() != Some(name.text.as_str()));
                }
            } else if t.is_punct('.')
                && toks.get(i + 1).is_some_and(|m| {
                    m.is_ident("lock") || m.is_ident("read") || m.is_ident("write")
                })
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                let line = toks[i + 1].line;
                let receiver = toks[..i]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokenKind::Ident)
                    .map_or_else(|| "<expr>".to_string(), |t| t.text.clone());
                // Live-guard check before registering the new one.
                for g in &guards {
                    let registered = config.lock_order.iter().any(|pair| {
                        pair.first == g.receiver
                            && pair.second == receiver
                            && ctx.rel_path.starts_with(&pair.path)
                    });
                    if !registered {
                        out.push(RawViolation {
                            rule: NESTED_LOCK,
                            line,
                            message: format!(
                                "`{receiver}.{}()` acquired while a guard on `{}` is live — \
                                 restructure to drop the outer guard first, or register the \
                                 pair in lint.toml [[lock_order]] with a justification",
                                toks[i + 1].text,
                                g.receiver
                            ),
                        });
                    }
                }
                // Classify the new guard: skip the `()` plus any
                // `.unwrap()` / `.expect("…")` / `?` adapters.
                let mut j = i + 4;
                loop {
                    if toks.get(j).is_some_and(|t| t.is_punct('?')) {
                        j += 1;
                    } else if toks.get(j).is_some_and(|t| t.is_punct('.'))
                        && toks
                            .get(j + 1)
                            .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
                        && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
                    {
                        // Find the matching `)` of the adapter call.
                        let mut pdepth = 0usize;
                        let mut k = j + 2;
                        while k < toks.len() {
                            if toks[k].is_punct('(') {
                                pdepth += 1;
                            } else if toks[k].is_punct(')') {
                                pdepth -= 1;
                                if pdepth == 0 {
                                    break;
                                }
                            }
                            k += 1;
                        }
                        j = k + 1;
                    } else {
                        break;
                    }
                }
                let guard = match toks.get(j) {
                    // `let g = x.lock();` — lives to the end of the block.
                    Some(t) if t.is_punct(';') && pending_let.is_some() => {
                        Guard { receiver, binding: pending_let.take(), depth, temporary: false }
                    }
                    // `match x.lock() {` / `if let … = x.lock() {` —
                    // lives through the following block.
                    Some(t) if t.is_punct('{') => {
                        Guard { receiver, binding: None, depth: depth + 1, temporary: false }
                    }
                    // Chained or passed along — dies at statement end.
                    _ => Guard { receiver, binding: None, depth, temporary: true },
                };
                guards.push(guard);
                i += 4;
                continue;
            }
            i += 1;
        }
    }
}

/// `durability/sync-before-rename`: in the WAL and checkpoint store, a
/// rename is the commit point — on a crash the destination name must
/// only ever reveal fully durable bytes, so the data must be synced
/// first *in the same function* (lexical proximity is the reviewable
/// unit). Accepts `sync_all`, `sync_data`, or a `sync()` helper call.
fn sync_before_rename(ctx: &FileCtx<'_>, out: &mut Vec<RawViolation>) {
    let name = ctx.file_name();
    if name != "wal.rs" && name != "store.rs" {
        return;
    }
    let toks = ctx.tokens;
    for span in fn_spans(toks) {
        if ctx.test_mask.get(span.kw).copied().unwrap_or(false) {
            continue;
        }
        for i in span.body_open..=span.body_close.min(toks.len().saturating_sub(1)) {
            let is_rename = toks[i].is_ident("rename")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':');
            if !is_rename {
                continue;
            }
            let synced = toks[span.body_open..i]
                .iter()
                .any(|t| t.is_ident("sync_all") || t.is_ident("sync_data") || t.is_ident("sync"));
            if !synced {
                out.push(RawViolation {
                    rule: SYNC_BEFORE_RENAME,
                    line: toks[i].line,
                    message: "`fs::rename` without a preceding `sync_all`/`sync_data` in the \
                              same function: the rename publishes the file, so a crash may \
                              expose un-synced bytes under the committed name"
                        .to_string(),
                });
            }
        }
    }
}

/// `api/must-use-receipt`: receipt-like public types must be
/// `#[must_use]` at the *type declaration* — that covers every function
/// returning them, including through `Result` once unwrapped, which is
/// why the rule targets declarations rather than each `pub fn`.
fn must_use_receipt(ctx: &FileCtx<'_>, out: &mut Vec<RawViolation>) {
    if !ctx.is_lib {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in ctx.live() {
        if !t.is_ident("pub") {
            continue;
        }
        // `pub struct Name` / `pub enum Name` (skipping `pub(crate)` —
        // not public API).
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(kw) = toks.get(j).filter(|t| t.is_ident("struct") || t.is_ident("enum")) else {
            continue;
        };
        j += 1;
        let Some(name) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) else { continue };
        if !RECEIPT_SUFFIXES.iter().any(|s| name.text.ends_with(s)) {
            continue;
        }
        if !has_attr(toks, i, "must_use") {
            out.push(RawViolation {
                rule: MUST_USE_RECEIPT,
                line: name.line,
                message: format!(
                    "public {} `{}` looks like a receipt/handle (suffix match) but is not \
                     `#[must_use]`: dropping one silently discards an acknowledgment or \
                     closes a resource",
                    kw.text, name.text
                ),
            });
        }
    }
}
