//! `sns-lint` binary: lint the workspace, print `file:line: [rule]`
//! diagnostics, optionally write a JSON report, and exit non-zero on
//! any unallowlisted violation.
//!
//! ```text
//! sns-lint --workspace [--root DIR] [--config FILE] [--json FILE]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use sns_lint::Config;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: PathBuf::from("."), config: None, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {} // the only scan mode; accepted for clarity
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root requires a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config requires a file")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json requires a file")?));
            }
            "--help" | "-h" => {
                println!(
                    "sns-lint --workspace [--root DIR] [--config FILE] [--json FILE]\n\
                     Lints the workspace's library sources against the six invariant rules;\n\
                     exits non-zero on any violation not allowlisted in lint.toml."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sns-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let config = if config_path.is_file() {
        let text = match std::fs::read_to_string(&config_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sns-lint: cannot read {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        };
        match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("sns-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };
    let report = match sns_lint::run(&args.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sns-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.to_json()) {
            eprintln!("sns-lint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if report.violation_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
