//! `lint.toml` — the allowlist and lock-order table.
//!
//! The linter's exit status is the workspace's invariant gate, so every
//! exception must be *written down and justified*: an `[[allow]]` entry
//! without a non-empty `justification` is itself a fatal configuration
//! error. The parser is a deliberate TOML subset (array-of-tables with
//! string values, `#` comments) so the linter stays zero-dependency;
//! anything it does not understand is rejected loudly rather than
//! silently ignored.
//!
//! ```toml
//! [[allow]]
//! rule = "determinism/wall-clock"        # or "*" for every rule
//! path = "crates/bench/"                  # prefix match, `/`-normalized
//! contains = "Instant::now"               # optional line-text narrowing
//! justification = "bench measures wall time; that is its job"
//!
//! [[lock_order]]
//! first = "owners"
//! second = "cell"
//! path = "crates/runtime/src/pool.rs"
//! justification = "documented two-level ownership-map protocol"
//! ```

use std::fmt;

/// One allowlist entry: matching violations are reported but do not
/// affect the exit status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry silences, or `*` for all rules.
    pub rule: String,
    /// Path prefix (workspace-relative, `/` separators).
    pub path: String,
    /// When set, only lines whose source text contains this substring
    /// are silenced — lets an entry target one construct in a file.
    pub contains: Option<String>,
    /// Why this exception is sound. Mandatory and non-empty.
    pub justification: String,
}

/// A registered lock-order pair: acquiring `second` while a guard on
/// `first` is live, in files under `path`, is a declared (reviewed)
/// ordering rather than a hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderEntry {
    /// Receiver name of the outer guard.
    pub first: String,
    /// Receiver name of the inner acquisition.
    pub second: String,
    /// Path prefix the pair is registered for.
    pub path: String,
    /// Why the ordering is deadlock-free. Mandatory and non-empty.
    pub justification: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Allowlist entries, in file order.
    pub allow: Vec<AllowEntry>,
    /// Registered lock-order pairs.
    pub lock_order: Vec<LockOrderEntry>,
}

/// A fatal configuration problem (malformed TOML subset, missing
/// justification, unknown keys).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[derive(Debug, Default)]
struct Entry {
    header_line: usize,
    kind: String,
    keys: Vec<(String, String)>,
}

impl Entry {
    fn get(&self, key: &str) -> Option<&str> {
        self.keys.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<String, ConfigError> {
        self.get(key).map(str::to_owned).filter(|v| !v.is_empty()).ok_or_else(|| ConfigError {
            line: self.header_line,
            message: format!("[[{}]] entry is missing a non-empty `{key}`", self.kind),
        })
    }
}

impl Config {
    /// Parses the `lint.toml` text.
    ///
    /// # Errors
    /// [`ConfigError`] on any line the subset grammar does not cover,
    /// on unknown table names or keys, and on entries without a
    /// justification — configuration problems must never silently
    /// weaken the gate.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut entries: Vec<Entry> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                let name = name.trim();
                if name != "allow" && name != "lock_order" {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown table `[[{name}]]` (expected allow/lock_order)"),
                    });
                }
                entries.push(Entry {
                    header_line: lineno,
                    kind: name.to_string(),
                    keys: Vec::new(),
                });
                continue;
            }
            let Some((key, value)) = parse_assignment(line) else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("cannot parse `{line}` (expected `key = \"value\"`)"),
                });
            };
            let Some(entry) = entries.last_mut() else {
                return Err(ConfigError {
                    line: lineno,
                    message: "assignment outside any [[allow]]/[[lock_order]] entry".to_string(),
                });
            };
            let known: &[&str] = match entry.kind.as_str() {
                "allow" => &["rule", "path", "contains", "justification"],
                _ => &["first", "second", "path", "justification"],
            };
            if !known.contains(&key) {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown key `{key}` in [[{}]]", entry.kind),
                });
            }
            entry.keys.push((key.to_string(), value));
        }
        let mut config = Config::default();
        for entry in entries {
            match entry.kind.as_str() {
                "allow" => config.allow.push(AllowEntry {
                    rule: entry.required("rule")?,
                    path: entry.required("path")?,
                    contains: entry.get("contains").map(str::to_owned),
                    justification: entry.required("justification")?,
                }),
                _ => config.lock_order.push(LockOrderEntry {
                    first: entry.required("first")?,
                    second: entry.required("second")?,
                    path: entry.required("path")?,
                    justification: entry.required("justification")?,
                }),
            }
        }
        Ok(config)
    }
}

/// Strips a trailing `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '\\' if in_str => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parses `key = "value"`, unescaping `\"` and `\\`.
fn parse_assignment(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    let mut value = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('"') => value.push('"'),
                Some('\\') => value.push('\\'),
                Some(other) => {
                    value.push('\\');
                    value.push(other);
                }
                None => value.push('\\'),
            }
        } else {
            value.push(ch);
        }
    }
    Some((key.trim(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_requires_justification() {
        let cfg = Config::parse(
            "# top comment\n\
             [[allow]]\n\
             rule = \"determinism/wall-clock\"\n\
             path = \"crates/bench/\"  # measurement tooling\n\
             justification = \"benchmarks measure wall time\"\n\
             \n\
             [[lock_order]]\n\
             first = \"owners\"\n\
             second = \"cell\"\n\
             path = \"crates/runtime/src/pool.rs\"\n\
             justification = \"two-level protocol\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.lock_order.len(), 1);
        assert_eq!(cfg.allow[0].rule, "determinism/wall-clock");

        let missing = Config::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\n");
        assert!(missing.is_err(), "justification must be mandatory");
    }

    #[test]
    fn rejects_unknown_tables_and_keys() {
        assert!(Config::parse("[[nope]]\n").is_err());
        assert!(Config::parse("[[allow]]\nwhatever = \"x\"\n").is_err());
        assert!(Config::parse("orphan = \"x\"\n").is_err());
    }
}
