//! The driver: walks the workspace's library sources, runs every rule,
//! resolves the allowlist, and renders text and JSON reports.
//!
//! Scan set: `src/**` of the root crate plus `crates/*/src/**`, `.rs`
//! files only. `main.rs` and `src/bin/**` are scanned but marked as
//! binary code (binaries may panic and read clocks); everything else is
//! library code and gets the full rule set.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::rules::{check_file, FileCtx};
use crate::scope::test_mask;
use crate::tokenizer::tokenize;

/// One finished diagnostic: a rule hit plus its allowlist resolution.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path, `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id.
    pub rule: String,
    /// Human-readable message.
    pub message: String,
    /// `true` when an allowlist entry covers the hit — reported, but
    /// not counted against the exit status.
    pub allowed: bool,
    /// The covering entry's justification, when allowed.
    pub justification: Option<String>,
}

/// The outcome of one lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every rule hit, allowed or not, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Allowlist entries (rendered as `rule @ path`) that matched no
    /// diagnostic — stale exceptions that should be deleted.
    pub unused_allow: Vec<String>,
}

impl Report {
    /// Diagnostics not covered by the allowlist — the exit-status count.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| !d.allowed).count()
    }

    /// Renders the `file:line: [rule-id] message` text report.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if d.allowed {
                continue;
            }
            out.push_str(&format!("{}:{}: [{}] {}\n", d.path, d.line, d.rule, d.message));
        }
        let allowed = self.diagnostics.len() - self.violation_count();
        out.push_str(&format!(
            "sns-lint: {} file(s) scanned, {} violation(s), {} allowlisted\n",
            self.files_scanned,
            self.violation_count(),
            allowed,
        ));
        for stale in &self.unused_allow {
            out.push_str(&format!("sns-lint: warning: unused lint.toml allow entry: {stale}\n"));
        }
        out
    }

    /// Renders the machine-readable JSON report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"sns-lint\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"violations\": {},\n", self.violation_count()));
        out.push_str(&format!(
            "  \"allowed\": {},\n",
            self.diagnostics.len() - self.violation_count()
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"path\": {}, ", json_str(&d.path)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"rule\": {}, ", json_str(&d.rule)));
            out.push_str(&format!("\"allowed\": {}, ", d.allowed));
            if let Some(j) = &d.justification {
                out.push_str(&format!("\"justification\": {}, ", json_str(j)));
            }
            out.push_str(&format!("\"message\": {}", json_str(&d.message)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"unused_allow\": [");
        for (i, s) in self.unused_allow.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(s));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A source file queued for linting.
#[derive(Debug)]
struct SourceFile {
    abs: PathBuf,
    rel: String,
    is_lib: bool,
}

/// Lints every library source under `root` with the given config.
///
/// # Errors
/// Propagates I/O failures from the directory walk or file reads; the
/// linter never skips an unreadable file silently.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files = collect_sources(root)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));

    let mut report = Report::default();
    let mut used = vec![false; config.allow.len()];
    for file in &files {
        let src = fs::read_to_string(&file.abs)?;
        let tokens = tokenize(&src);
        let mask = test_mask(&tokens);
        let ctx =
            FileCtx { rel_path: &file.rel, is_lib: file.is_lib, tokens: &tokens, test_mask: &mask };
        let lines: Vec<&str> = src.lines().collect();
        for raw in check_file(&ctx, config) {
            let line_text = lines.get(raw.line.saturating_sub(1) as usize).copied().unwrap_or("");
            let hit = config.allow.iter().position(|e| {
                (e.rule == "*" || e.rule == raw.rule)
                    && file.rel.starts_with(&e.path)
                    && e.contains.as_deref().is_none_or(|c| line_text.contains(c))
            });
            if let Some(idx) = hit {
                used[idx] = true;
            }
            report.diagnostics.push(Diagnostic {
                path: file.rel.clone(),
                line: raw.line,
                rule: raw.rule.to_string(),
                message: raw.message,
                allowed: hit.is_some(),
                justification: hit.map(|i| config.allow[i].justification.clone()),
            });
        }
        report.files_scanned += 1;
    }
    for (idx, was_used) in used.iter().enumerate() {
        if !was_used {
            let e = &config.allow[idx];
            report.unused_allow.push(format!("{} @ {}", e.rule, e.path));
        }
    }
    Ok(report)
}

/// Gathers the scan set: `src/**` plus `crates/*/src/**`.
fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_src(&root_src, root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk_src(&src, root, &mut files)?;
            }
        }
    }
    Ok(files)
}

/// Recursively collects `.rs` files under one `src/` tree.
fn walk_src(src_root: &Path, workspace_root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut stack = vec![src_root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = rel_path(workspace_root, &path);
                let within = rel_path(src_root, &path);
                let is_bin = within == "main.rs" || within.starts_with("bin/");
                out.push(SourceFile { abs: path, rel, is_lib: !is_bin });
            }
        }
    }
    Ok(())
}

/// `/`-normalized path of `path` relative to `base`.
fn rel_path(base: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(base).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}
