//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The rules in [`crate::rules`] match on *token* sequences, never on
//! raw text, so occurrences of `unwrap`, `HashMap`, or `Instant::now`
//! inside comments, doc comments, string literals, and raw strings are
//! invisible to them. That property is what the tokenizer proptest
//! pins: content seeded into any comment or literal form must never
//! surface as an identifier token, and line numbers must survive every
//! multi-line construct (block comments, raw strings with embedded
//! newlines, nested comments).
//!
//! The lexer is lossy on purpose: whitespace and comments are dropped,
//! numeric literals are not classified beyond "number", and no attempt
//! is made to parse. What it does guarantee:
//!
//! - `//` line comments and *nested* `/* */` block comments are skipped;
//! - plain, byte, and C strings (`"…"`, `b"…"`, `c"…"`) with escape
//!   sequences, and raw strings with any hash depth (`r#"…"#`,
//!   `br##"…"##`) become single [`TokenKind::Str`] tokens;
//! - char literals (including `'\''` and `'\u{…}'`) are distinguished
//!   from lifetimes (`'a`) by lookahead;
//! - every token carries the 1-based line it starts on.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`, …).
    Ident,
    /// A lifetime (`'a`) — *not* a char literal.
    Lifetime,
    /// Any string literal form; `text` is the literal's *contents*
    /// (prefix, quotes, and raw-string hashes stripped, escapes kept
    /// verbatim).
    Str,
    /// A char literal; `text` is the contents between the quotes.
    Char,
    /// A numeric literal.
    Num,
    /// A single punctuation character (`.`, `(`, `{`, `!`, …).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification — see [`TokenKind`].
    pub kind: TokenKind,
    /// The token text (see [`TokenKind`] for what `Str`/`Char` carry).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// `true` when this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// Lexes `src` into a token stream. Total: any byte sequence produces
/// *some* tokenization (unterminated literals run to end of input
/// rather than erroring — a linter must not die on a syntax error the
/// compiler will report anyway).
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let line = self.line;
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'"' => {
                    self.pos += 1;
                    self.read_string(line);
                }
                b'\'' => self.read_char_or_lifetime(line),
                _ if b.is_ascii_digit() => self.read_number(line),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.read_ident(line),
                _ => {
                    self.out.push(Token {
                        kind: TokenKind::Punct,
                        text: (b as char).to_string(),
                        line,
                    });
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn skip_line_comment(&mut self) {
        while let Some(b) = self.src.get(self.pos) {
            if *b == b'\n' {
                break; // the newline itself is handled by `run`
            }
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Reads a non-raw string body; `pos` is just past the opening `"`.
    fn read_string(&mut self, line: u32) {
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2.min(self.src.len() - self.pos),
                b'"' => break,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text =
            String::from_utf8_lossy(&self.src[start..self.pos.min(self.src.len())]).into_owned();
        self.pos = (self.pos + 1).min(self.src.len()); // closing quote
        self.out.push(Token { kind: TokenKind::Str, text, line });
    }

    /// Reads a raw string body; `pos` is at the first `#` or `"` after
    /// the `r`. Returns `false` if this is not actually a raw string
    /// (e.g. `r#foo`, a raw identifier).
    fn read_raw_string(&mut self, line: u32) -> bool {
        let mut probe = self.pos;
        let mut hashes = 0usize;
        while self.src.get(probe) == Some(&b'#') {
            hashes += 1;
            probe += 1;
        }
        if self.src.get(probe) != Some(&b'"') {
            return false;
        }
        self.pos = probe + 1;
        let start = self.pos;
        let end;
        loop {
            match self.src.get(self.pos) {
                None => {
                    end = self.src.len();
                    break;
                }
                Some(b'"') => {
                    let mut tail = self.pos + 1;
                    let mut seen = 0usize;
                    while seen < hashes && self.src.get(tail) == Some(&b'#') {
                        seen += 1;
                        tail += 1;
                    }
                    if seen == hashes {
                        end = self.pos;
                        self.pos = tail;
                        break;
                    }
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.push(Token { kind: TokenKind::Str, text, line });
        true
    }

    fn read_char_or_lifetime(&mut self, line: u32) {
        // Lifetime when: 'ident NOT followed by a closing quote.
        // Char literal otherwise ('a', '\n', '\u{1F600}', '\'').
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                // Scan the would-be lifetime ident; a trailing ' makes
                // it a char literal like 'a'.
                let mut probe = self.pos + 2;
                while self.src.get(probe).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                    probe += 1;
                }
                self.src.get(probe) != Some(&b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            let start = self.pos;
            while self.src.get(self.pos).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.out.push(Token { kind: TokenKind::Lifetime, text, line });
            return;
        }
        // Char literal: consume until the closing quote, honoring \-escapes.
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2.min(self.src.len() - self.pos),
                b'\'' => break,
                b'\n' => {
                    // Stray quote (syntax error); bail as an empty char.
                    break;
                }
                _ => self.pos += 1,
            }
        }
        let text =
            String::from_utf8_lossy(&self.src[start..self.pos.min(self.src.len())]).into_owned();
        if self.src.get(self.pos) == Some(&b'\'') {
            self.pos += 1;
        }
        self.out.push(Token { kind: TokenKind::Char, text, line });
    }

    fn read_number(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.src.get(self.pos) {
            let cont = b.is_ascii_alphanumeric()
                || *b == b'_'
                // `1.5` continues the number; `1..3` and `1.method()` do not.
                || (*b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()));
            if !cont {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Token { kind: TokenKind::Num, text, line });
    }

    fn read_ident(&mut self, line: u32) {
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b >= 0x80)
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // String prefixes: r"…" / r#"…"# / b"…" / br#"…"# / c"…" / cr"…".
        if matches!(text.as_str(), "r" | "br" | "cr")
            && matches!(self.src.get(self.pos), Some(b'"' | b'#'))
            && self.read_raw_string(line)
        {
            return;
        }
        if matches!(text.as_str(), "b" | "c") && self.src.get(self.pos) == Some(&b'"') {
            self.pos += 1;
            self.read_string(line);
            return;
        }
        if text == "b" && self.src.get(self.pos) == Some(&b'\'') {
            // Byte char literal b'x'.
            self.read_char_or_lifetime(line);
            return;
        }
        self.out.push(Token { kind: TokenKind::Ident, text, line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src).into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // unwrap in a line comment
            /* unwrap in /* a nested */ block comment */
            let x = "unwrap inside a string";
            let y = r#"unwrap inside a raw " string"#;
            let z = b"unwrap bytes";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "real_ident"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| &t.text).collect();
        let chars: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Char).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(chars, ["x", "\\'"]);
    }

    #[test]
    fn lines_survive_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb\nr#\"raw\nstring\"#\nc";
        let toks = tokenize(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn method_calls_after_numbers_stay_separate() {
        let toks = tokenize("1.5f64 + 2.min(x) + 0..3");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Num && t.text == "1.5f64"));
        assert!(toks.iter().any(|t| t.is_ident("min")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Num && t.text == "3"));
    }
}
