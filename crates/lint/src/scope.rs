//! Structural views over a token stream: test-region masking, function
//! spans, and attribute lookup.
//!
//! The linter's panic-freedom and determinism rules apply to *library*
//! code only — `#[cfg(test)]` modules and `#[test]` functions are free
//! to unwrap. Rather than parse Rust, this module tracks brace depth
//! and attribute markers: an item introduced under an attribute whose
//! tokens mention `test` (and not `not`, so `#[cfg(not(test))]` stays
//! live code) is masked, together with everything nested inside it.

use crate::tokenizer::Token;

/// Returns, per token, whether it lies inside a test-only item
/// (`#[cfg(test)] mod …`, `#[test] fn …`, and anything nested there).
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = matching_bracket(tokens, i + 1);
            if attr_is_test(&tokens[i + 2..attr_end]) {
                // Mask from the attribute through the end of the item
                // it decorates (past any further attributes).
                let item_end = item_end(tokens, attr_end + 1);
                for m in mask.iter_mut().take(item_end.min(tokens.len())).skip(i) {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// `true` when attribute tokens mark a test item. Mentions of `test`
/// under `not(…)` do not count, so `#[cfg(not(test))]` is live code.
fn attr_is_test(attr: &[Token]) -> bool {
    attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"))
}

/// Index of the `]` matching the `[` at `open` (or the last token).
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Scans from the start of an item (just past its attributes) to the
/// token index one past its end: the matching `}` of its body, or the
/// `;` that terminates a body-less item (`use`, `const`, …). Further
/// attribute groups are skipped.
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        i = matching_bracket(tokens, i + 1) + 1;
    }
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return i + 1;
            }
            if t.is_punct('{') {
                return matching_brace(tokens, i) + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// One function's span in the token stream.
#[derive(Debug, Clone, Copy)]
pub struct FnSpan {
    /// Index of the `fn` keyword.
    pub kw: usize,
    /// Index of the body's opening `{` (one past `kw` for body-less
    /// trait-method declarations, which are reported with an empty body).
    pub body_open: usize,
    /// Index of the body's closing `}` (inclusive).
    pub body_close: usize,
}

/// Every `fn` item's body span, in source order. Nested functions and
/// closures inside a body are *not* split out — a rule scanning a span
/// sees the whole lexical function, which is the right granularity for
/// "held across" questions.
pub fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans: Vec<FnSpan> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            // Find the body's `{`, skipping parameter lists and where
            // clauses; a `;` first means a trait declaration (no body).
            let mut j = i + 1;
            let mut paren = 0isize;
            let mut found = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if paren == 0 && t.is_punct(';') {
                    break;
                } else if paren == 0 && t.is_punct('{') {
                    found = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(open) = found {
                // Skip spans nested inside the previous span: rules
                // iterate outer functions only.
                let nested = spans.last().is_some_and(|s| open <= s.body_close);
                if !nested {
                    spans.push(FnSpan {
                        kw: i,
                        body_open: open,
                        body_close: matching_brace(tokens, open),
                    });
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// `true` when the item whose first keyword token sits at `item` is
/// decorated (directly, through any stack of attributes) with an
/// attribute containing the identifier `name` — e.g. `must_use`.
pub fn has_attr(tokens: &[Token], item: usize, name: &str) -> bool {
    // Walk backwards over contiguous `# [ … ]` groups.
    let mut end = item; // exclusive end of the region to inspect
    while end >= 1 {
        // Find a `]` directly before the current position.
        let close = end - 1;
        if !tokens[close].is_punct(']') {
            break;
        }
        // Scan back to its matching `[` and the `#` before it.
        let mut depth = 0isize;
        let mut open = close;
        loop {
            if tokens[open].is_punct(']') {
                depth += 1;
            } else if tokens[open].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if open == 0 {
                return false;
            }
            open -= 1;
        }
        if open == 0 || !tokens[open - 1].is_punct('#') {
            break;
        }
        if tokens[open..close].iter().any(|t| t.is_ident(name)) {
            return true;
        }
        end = open - 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    #[test]
    fn cfg_test_mod_is_masked_and_live_code_is_not() {
        let src = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
            fn also_live() {}
        ";
        let toks = tokenize(src);
        let mask = test_mask(&toks);
        let masked_idents: Vec<&str> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, m)| **m && t.kind == crate::tokenizer::TokenKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked_idents.contains(&"y"));
        assert!(!masked_idents.contains(&"x"));
        assert!(!masked_idents.contains(&"also_live"));
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let toks = tokenize("#[cfg(not(test))] fn prod() { a.unwrap(); }");
        let mask = test_mask(&toks);
        assert!(mask.iter().all(|m| !m));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() { inner(); } impl X { fn b(&self) -> Y where Y: Z { body() } }";
        let toks = tokenize(src);
        let spans = fn_spans(&toks);
        assert_eq!(spans.len(), 2);
        for s in spans {
            assert!(toks[s.body_open].is_punct('{'));
            assert!(toks[s.body_close].is_punct('}'));
        }
    }

    #[test]
    fn has_attr_sees_stacked_attributes() {
        let src = "#[derive(Debug)] #[must_use] pub struct R;";
        let toks = tokenize(src);
        let item = toks.iter().position(|t| t.is_ident("pub")).unwrap();
        assert!(has_attr(&toks, item, "must_use"));
        assert!(!has_attr(&toks, item, "repr"));
    }
}
