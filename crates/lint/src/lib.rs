//! `sns-lint` — the workspace invariant checker.
//!
//! SliceNStitch's correctness story rests on mechanical guarantees:
//! pooled execution is bitwise-identical to serial, snapshots
//! round-trip to identical bytes, WAL replay reconstructs identical
//! state. Those proofs hold only while the code obeys a handful of
//! discipline rules — no hash-ordered iteration in capture paths, no
//! wall-clock reads outside the clock seam, no panics in library code,
//! no unregistered nested locking, sync before rename at durability
//! commit points, `#[must_use]` receipts. This crate enforces those
//! rules with a hand-rolled tokenizer (no `syn`, no dependencies at
//! all) so the gate builds and runs offline, before and independent of
//! the crates it checks.
//!
//! Layers:
//! - [`tokenizer`]: a lossy-but-honest Rust lexer — comments and
//!   string/char literals can never be mistaken for code.
//! - [`scope`]: test-region masking and function spans over tokens.
//! - [`config`]: the `lint.toml` allowlist, with mandatory
//!   justifications.
//! - [`rules`]: the six invariant rules.
//! - [`engine`]: the workspace walker, allowlist resolution, and the
//!   text/JSON reporters.

#![deny(missing_docs)]

pub mod config;
pub mod engine;
pub mod rules;
pub mod scope;
pub mod tokenizer;

pub use config::{AllowEntry, Config, ConfigError, LockOrderEntry};
pub use engine::{run, Diagnostic, Report};
pub use rules::{check_file, FileCtx, RawViolation};
