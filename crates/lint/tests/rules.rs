//! Fixture-driven rule tests: every rule has a fixture that trips it
//! and a sibling that exercises the same constructs in sanctioned form
//! and stays clean.

use sns_lint::config::Config;
use sns_lint::rules::{self, check_file, FileCtx};
use sns_lint::scope::test_mask;
use sns_lint::tokenizer::tokenize;

/// Lints fixture `src` as though it lived at `rel_path` in the
/// workspace, returning the rule ids that fired.
fn lint_as(src: &str, rel_path: &str, config: &Config) -> Vec<&'static str> {
    let tokens = tokenize(src);
    let mask = test_mask(&tokens);
    let ctx = FileCtx { rel_path, is_lib: true, tokens: &tokens, test_mask: &mask };
    check_file(&ctx, config).into_iter().map(|v| v.rule).collect()
}

fn count(rules: &[&str], rule: &str) -> usize {
    rules.iter().filter(|r| **r == rule).count()
}

const LIB_PATH: &str = "crates/runtime/src/fixture.rs";
const CODEC_PATH: &str = "crates/codec/src/fixture.rs";
const STORE_PATH: &str = "crates/codec/src/store.rs";

#[test]
fn hash_iter_trips_and_passes() {
    let cfg = Config::default();
    let bad = lint_as(include_str!("fixtures/hash_iter_bad.rs"), CODEC_PATH, &cfg);
    // Two declarations + two constructions + the use statement.
    assert!(count(&bad, rules::HASH_ITER) >= 4, "got {bad:?}");

    let good = lint_as(include_str!("fixtures/hash_iter_good.rs"), CODEC_PATH, &cfg);
    assert_eq!(count(&good, rules::HASH_ITER), 0, "got {good:?}");

    // The same source outside a codec/state-capture path is not scoped.
    let unscoped = lint_as(include_str!("fixtures/hash_iter_bad.rs"), LIB_PATH, &cfg);
    assert_eq!(count(&unscoped, rules::HASH_ITER), 0, "got {unscoped:?}");

    // …but a snapshot-named library file is.
    let snap =
        lint_as(include_str!("fixtures/hash_iter_bad.rs"), "crates/runtime/src/snapshot.rs", &cfg);
    assert!(count(&snap, rules::HASH_ITER) >= 4, "got {snap:?}");
}

#[test]
fn wall_clock_trips_and_passes() {
    let cfg = Config::default();
    let bad = lint_as(include_str!("fixtures/wall_clock_bad.rs"), LIB_PATH, &cfg);
    assert_eq!(count(&bad, rules::WALL_CLOCK), 2, "got {bad:?}");

    let good = lint_as(include_str!("fixtures/wall_clock_good.rs"), LIB_PATH, &cfg);
    assert_eq!(count(&good, rules::WALL_CLOCK), 0, "got {good:?}");
}

#[test]
fn no_panic_trips_and_passes() {
    let cfg = Config::default();
    let bad = lint_as(include_str!("fixtures/no_panic_bad.rs"), LIB_PATH, &cfg);
    // unwrap, expect, panic!, todo!, unreachable!.
    assert_eq!(count(&bad, rules::NO_PANIC), 5, "got {bad:?}");

    let good = lint_as(include_str!("fixtures/no_panic_good.rs"), LIB_PATH, &cfg);
    assert_eq!(count(&good, rules::NO_PANIC), 0, "got {good:?}");
}

#[test]
fn no_panic_ignores_binary_code() {
    let src = include_str!("fixtures/no_panic_bad.rs");
    let tokens = tokenize(src);
    let mask = test_mask(&tokens);
    let ctx = FileCtx {
        rel_path: "crates/bench/src/main.rs",
        is_lib: false,
        tokens: &tokens,
        test_mask: &mask,
    };
    let fired = check_file(&ctx, &Config::default());
    assert!(fired.is_empty(), "binaries may panic, got {fired:?}");
}

#[test]
fn nested_lock_trips_passes_and_respects_lock_order() {
    let cfg = Config::default();
    let bad = lint_as(include_str!("fixtures/nested_lock_bad.rs"), LIB_PATH, &cfg);
    assert_eq!(count(&bad, rules::NESTED_LOCK), 1, "got {bad:?}");

    let good = lint_as(include_str!("fixtures/nested_lock_good.rs"), LIB_PATH, &cfg);
    assert_eq!(count(&good, rules::NESTED_LOCK), 0, "got {good:?}");

    // Registering the pair (with a justification) silences the hazard.
    let registered = Config::parse(
        "[[lock_order]]\n\
         first = \"owners\"\n\
         second = \"cell\"\n\
         path = \"crates/runtime/src/\"\n\
         justification = \"owners-then-cell is the documented order\"\n",
    )
    .expect("valid lock-order table");
    let silenced = lint_as(include_str!("fixtures/nested_lock_bad.rs"), LIB_PATH, &registered);
    assert_eq!(count(&silenced, rules::NESTED_LOCK), 0, "got {silenced:?}");

    // The registration is ordered: cell-then-owners still trips.
    let reversed = Config::parse(
        "[[lock_order]]\n\
         first = \"cell\"\n\
         second = \"owners\"\n\
         path = \"crates/runtime/src/\"\n\
         justification = \"wrong direction on purpose\"\n",
    )
    .expect("valid lock-order table");
    let still_bad = lint_as(include_str!("fixtures/nested_lock_bad.rs"), LIB_PATH, &reversed);
    assert_eq!(count(&still_bad, rules::NESTED_LOCK), 1, "got {still_bad:?}");
}

#[test]
fn sync_before_rename_trips_and_passes() {
    let cfg = Config::default();
    let bad = lint_as(include_str!("fixtures/sync_rename_bad.rs"), STORE_PATH, &cfg);
    assert_eq!(count(&bad, rules::SYNC_BEFORE_RENAME), 1, "got {bad:?}");

    let good = lint_as(include_str!("fixtures/sync_rename_good.rs"), STORE_PATH, &cfg);
    assert_eq!(count(&good, rules::SYNC_BEFORE_RENAME), 0, "got {good:?}");

    // The rule is scoped to the durability files: the same code under
    // any other name is some other file's business.
    let elsewhere = lint_as(include_str!("fixtures/sync_rename_bad.rs"), CODEC_PATH, &cfg);
    assert_eq!(count(&elsewhere, rules::SYNC_BEFORE_RENAME), 0, "got {elsewhere:?}");
}

#[test]
fn must_use_receipt_trips_and_passes() {
    let cfg = Config::default();
    let bad = lint_as(include_str!("fixtures/must_use_bad.rs"), LIB_PATH, &cfg);
    assert_eq!(count(&bad, rules::MUST_USE_RECEIPT), 2, "got {bad:?}");

    let good = lint_as(include_str!("fixtures/must_use_good.rs"), LIB_PATH, &cfg);
    assert_eq!(count(&good, rules::MUST_USE_RECEIPT), 0, "got {good:?}");
}

#[test]
fn violations_report_real_lines() {
    let src = include_str!("fixtures/no_panic_bad.rs");
    let tokens = tokenize(src);
    let mask = test_mask(&tokens);
    let ctx = FileCtx { rel_path: LIB_PATH, is_lib: true, tokens: &tokens, test_mask: &mask };
    for v in check_file(&ctx, &Config::default()) {
        let line = src.lines().nth((v.line - 1) as usize).unwrap_or("");
        assert!(
            !line.is_empty() && v.line as usize <= src.lines().count(),
            "violation points at line {} which is empty or out of range",
            v.line
        );
    }
}
