//! Fixture: the restructurings that release the first guard before the
//! second acquisition. None should trip.

use std::sync::Mutex;

pub struct Two {
    owners: Mutex<u32>,
    cell: Mutex<u32>,
}

impl Two {
    pub fn scoped_block(&self) -> u32 {
        // The pool's claim-then-evict shape: the outer guard dies at the
        // inner block's closing brace before the second lock.
        let first = {
            let owners = self.owners.lock().expect("owners poisoned");
            *owners
        };
        let cell = self.cell.lock().expect("cell poisoned");
        first + *cell
    }

    pub fn explicit_drop(&self) -> u32 {
        let owners = self.owners.lock().expect("owners poisoned");
        let first = *owners;
        drop(owners);
        let cell = self.cell.lock().expect("cell poisoned");
        first + *cell
    }

    pub fn sequential_temporaries(&self) -> u32 {
        let a = *self.owners.lock().expect("owners poisoned");
        let b = *self.cell.lock().expect("cell poisoned");
        a + b
    }
}
