//! Fixture: hash-ordered containers in a codec path (linted under the
//! synthetic path `crates/codec/src/fixture.rs`). Both should trip.

use std::collections::{HashMap, HashSet};

pub struct Index {
    by_hash: HashMap<u64, Vec<usize>>,
    seen: HashSet<u64>,
}

pub fn build(keys: &[u64]) -> Index {
    let mut by_hash = HashMap::new();
    let mut seen = HashSet::new();
    for (i, &k) in keys.iter().enumerate() {
        by_hash.entry(k).or_insert_with(Vec::new).push(i);
        seen.insert(k);
    }
    Index { by_hash, seen }
}
