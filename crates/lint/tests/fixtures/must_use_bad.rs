//! Fixture: receipt-suffixed public types without `#[must_use]`.
//! Both should trip.

pub struct IngestReceipt {
    pub accepted: usize,
}

#[derive(Debug, Clone)]
pub enum CaptureSnapshot {
    Full(Vec<u8>),
    Delta(Vec<u8>),
}
