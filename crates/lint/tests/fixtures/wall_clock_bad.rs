//! Fixture: direct clock reads in library code. Both should trip.

use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}
