//! Fixture: the five panic shapes in live library code. All should trip.

pub fn five_ways(v: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("value must be present");
    if a > b {
        panic!("a exceeded b");
    }
    match a {
        0 => todo!(),
        1 => unreachable!("one is filtered upstream"),
        _ => a + b,
    }
}
