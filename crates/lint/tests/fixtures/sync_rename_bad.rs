//! Fixture: rename without a sync in the same function (linted under
//! the synthetic path `crates/codec/src/store.rs`). Should trip once.

use std::fs;
use std::io;
use std::path::Path;

pub fn publish_unsynced(tmp: &Path, dst: &Path, bytes: &[u8]) -> io::Result<()> {
    fs::write(tmp, bytes)?;
    fs::rename(tmp, dst)
}
