//! Fixture: a second lock acquired while a let-bound guard is live,
//! with no registered lock-order pair. Should trip once.

use std::sync::Mutex;

pub struct Two {
    owners: Mutex<u32>,
    cell: Mutex<u32>,
}

impl Two {
    pub fn nested(&self) -> u32 {
        let owners = self.owners.lock().expect("owners poisoned");
        let cell = self.cell.lock().expect("cell poisoned");
        *owners + *cell
    }
}
