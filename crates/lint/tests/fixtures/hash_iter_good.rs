//! Fixture: the deterministic equivalents pass, and mentions of the
//! banned names in comments, strings, and test code do not count.
//! A HashMap in this comment is fine.

use std::collections::{BTreeMap, BTreeSet};

pub struct Index {
    by_hash: BTreeMap<u64, Vec<usize>>,
    seen: BTreeSet<u64>,
}

pub fn describe() -> &'static str {
    "sorted Vec beats HashMap for a build-once probe-many index"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hash_containers() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}
