//! Fixture: clock reads through the seam, in strings, in comments, or
//! in test code are all fine. Instant::now() in this comment is fine.

pub fn through_the_seam() -> std::time::Instant {
    sns_ops::clock::now()
}

pub fn documented() -> &'static str {
    "call sns_ops::clock::now() instead of Instant::now()"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_the_clock() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 1_000);
    }
}
