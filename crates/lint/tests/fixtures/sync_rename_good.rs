//! Fixture: the write-sync-rename commit protocol. Should not trip.

use std::fs;
use std::io;
use std::io::Write as _;
use std::path::Path;

pub fn publish_synced(tmp: &Path, dst: &Path, bytes: &[u8]) -> io::Result<()> {
    {
        let mut f = fs::File::create(tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(tmp, dst)
}
