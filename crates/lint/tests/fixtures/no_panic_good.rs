//! Fixture: the poisoned-lock carve-out, test code, and panic words in
//! comments/strings all pass. Calling .unwrap() here in prose is fine.

use std::sync::Mutex;

pub fn poisoned_carveout(m: &Mutex<u32>) -> u32 {
    // The one sanctioned expect: a poisoned mutex means another thread
    // already panicked; propagating poison as Result everywhere would
    // bury every read in plumbing.
    *m.lock().expect("counter mutex poisoned")
}

pub fn typed_instead(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "value missing; do not panic!() over it".to_string())
}

pub fn unwrap_or_is_not_unwrap(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, ()> = Ok(4);
        assert_eq!(r.expect("test expects freely"), 4);
    }
}
