//! Fixture: `#[must_use]` receipts, non-public receipts, and unrelated
//! names all pass.

#[must_use = "a receipt is the only acknowledgment a batch gets"]
pub struct IngestReceipt {
    pub accepted: usize,
}

#[derive(Debug)]
#[must_use]
pub struct DrainGuard {
    depth: usize,
}

// Crate-private: not part of the public API contract.
pub(crate) struct InternalReceipt {
    pub accepted: usize,
}

// Suffix does not match the receipt family.
pub struct WindowModel {
    pub ticks: u64,
}
