//! Property tests for the tokenizer: source is assembled from random
//! sequences of constructs — comments, strings, raw strings, chars,
//! lifetimes, code — each either *hiding* or *exposing* a marker word.
//! The lexer must surface exactly the exposed markers as identifiers:
//! a needle hidden in any comment or literal form must never tokenize,
//! and an exposed one must never be swallowed.

use proptest::collection::vec;
use proptest::prelude::*;
use sns_lint::tokenizer::{tokenize, TokenKind};

const NEEDLE: &str = "zxqneedle";

/// One construct appended to the generated source. `hidden` says
/// whether its needle is inside a comment/literal (invisible to rules)
/// or in live code (must tokenize).
struct Piece {
    text: String,
    hidden: bool,
    contains_needle: bool,
}

/// Decodes one (kind, a, b) triple into a construct.
fn piece(kind: u8, a: u8, b: u8) -> Piece {
    let hashes = "#".repeat((a % 3) as usize);
    match kind % 12 {
        // Line comment hides the needle.
        0 => {
            Piece { text: format!("// says {NEEDLE} here\n"), hidden: true, contains_needle: true }
        }
        // Block comment, possibly nested, hides it.
        1 => Piece {
            text: format!("/* outer /* inner {NEEDLE} */ tail */ "),
            hidden: true,
            contains_needle: true,
        },
        // Plain string hides it, escapes included.
        2 => Piece {
            text: format!("let s = \"pre \\\" {NEEDLE} \\\\\"; "),
            hidden: true,
            contains_needle: true,
        },
        // Raw string with 0–2 hashes hides it.
        3 => Piece {
            text: format!("let r = r{hashes}\"raw {NEEDLE} \"{hashes}; "),
            hidden: true,
            contains_needle: true,
        },
        // Byte / C strings hide it.
        4 => {
            Piece { text: format!("let b = b\"{NEEDLE}\"; "), hidden: true, contains_needle: true }
        }
        // Char literal (no needle; checks char-vs-lifetime logic).
        5 => Piece {
            text: format!("let c = '{}'; ", (b'a' + (b % 26)) as char),
            hidden: true,
            contains_needle: false,
        },
        // Escaped char literal.
        6 => Piece { text: "let c = '\\n'; ".to_string(), hidden: true, contains_needle: false },
        // Lifetime (must lex as a lifetime, not an unterminated char).
        7 => Piece {
            text: format!("fn f{b}<'a>(x: &'a u32) -> &'a u32 {{ x }} "),
            hidden: true,
            contains_needle: false,
        },
        // Live code exposing the needle as an identifier.
        8 => Piece {
            text: format!("let {NEEDLE} = {}; ", u32::from(b)),
            hidden: false,
            contains_needle: true,
        },
        // Live code: needle as a method name.
        9 => Piece {
            text: format!("let y{b} = obj.{NEEDLE}(); "),
            hidden: false,
            contains_needle: true,
        },
        // Numbers with dots and suffixes (method-call disambiguation).
        10 => Piece {
            text: format!("let n{b} = {}.5f64 + 7.0e2; ", a % 10),
            hidden: true,
            contains_needle: false,
        },
        // Filler punctuation and brackets.
        _ => Piece {
            text: "while x < 3 { x += 1; } ".to_string(),
            hidden: true,
            contains_needle: false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Hidden needles never tokenize as identifiers; exposed needles
    /// always do, exactly once each.
    #[test]
    fn needles_surface_iff_exposed(
        pieces in vec((0u8..12, 0u8..=255, 0u8..=255), 1..25),
    ) {
        let mut src = String::new();
        let mut exposed = 0usize;
        for &(k, a, b) in &pieces {
            let p = piece(k, a, b);
            if !p.hidden && p.contains_needle {
                exposed += 1;
            }
            src.push_str(&p.text);
        }
        let tokens = tokenize(&src);
        let surfaced = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == NEEDLE)
            .count();
        prop_assert_eq!(
            surfaced, exposed,
            "source: {:?}", src
        );
    }

    /// Token line numbers are nondecreasing and within the file, no
    /// matter how multiline constructs interleave.
    #[test]
    fn line_numbers_monotone_and_bounded(
        pieces in vec((0u8..12, 0u8..=255, 0u8..=255), 1..25),
        newlines in vec(0u8..3, 0..25),
    ) {
        let mut src = String::new();
        for (i, &(k, a, b)) in pieces.iter().enumerate() {
            src.push_str(&piece(k, a, b).text);
            let extra = newlines.get(i).copied().unwrap_or(0);
            for _ in 0..extra {
                src.push('\n');
            }
        }
        let total_lines = src.lines().count().max(1) as u32;
        let tokens = tokenize(&src);
        let mut prev = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= prev, "line went backwards in {:?}", src);
            prop_assert!(t.line <= total_lines, "line beyond EOF in {:?}", src);
            prev = t.line;
        }
    }

    /// Tokenizing is total and deterministic: any byte soup of the
    /// pieces (including truncation mid-construct) yields the same
    /// tokens on every run and never panics.
    #[test]
    fn tokenize_is_total_and_deterministic(
        pieces in vec((0u8..12, 0u8..=255, 0u8..=255), 1..15),
        cut in 0u8..=255,
    ) {
        let mut src = String::new();
        for &(k, a, b) in &pieces {
            src.push_str(&piece(k, a, b).text);
        }
        // Truncate at an arbitrary char boundary: unterminated
        // comments/strings/chars must still lex to EOF without panic.
        let boundary = src
            .char_indices()
            .map(|(i, _)| i)
            .chain([src.len()])
            .nth((cut as usize) % (src.chars().count() + 1))
            .unwrap_or(src.len());
        let truncated = &src[..boundary];
        let first = tokenize(truncated);
        let second = tokenize(truncated);
        prop_assert_eq!(first.len(), second.len());
        for (x, y) in first.iter().zip(&second) {
            prop_assert_eq!(&x.text, &y.text);
            prop_assert_eq!(x.line, y.line);
        }
    }
}
