//! Small dense tensors — test oracles only.
//!
//! The streaming system never materializes dense tensors; these exist so
//! that every sparse kernel (MTTKRP, matricization, fitness) can be checked
//! against a brute-force dense computation on small shapes.

use crate::coord::Coord;
use crate::matricize::matricized_col;
use crate::shape::Shape;
use crate::sparse::SparseTensor;
use sns_linalg::Mat;

/// A dense tensor stored row-major (last mode varies fastest).
#[derive(Clone, Debug, PartialEq)]
pub struct DenseTensor {
    shape: Shape,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates a zero tensor.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.num_entries();
        DenseTensor { shape, data: vec![0.0; n] }
    }

    /// Materializes a sparse tensor densely.
    pub fn from_sparse(sparse: &SparseTensor) -> Self {
        let mut d = DenseTensor::zeros(sparse.shape().clone());
        for (c, v) in sparse.iter() {
            *d.get_mut(c) = v;
        }
        d
    }

    /// Converts to a sparse tensor (dropping zeros).
    pub fn to_sparse(&self) -> SparseTensor {
        SparseTensor::from_entries(
            self.shape.clone(),
            self.shape
                .iter_coords()
                .filter_map(|c| {
                    let v = self.get(&c);
                    (v != 0.0).then_some((c, v))
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    fn linear(&self, coord: &Coord) -> usize {
        debug_assert!(self.shape.contains(coord));
        let mut lin = 0usize;
        for m in 0..self.shape.order() {
            lin = lin * self.shape.dim(m) + coord.get(m) as usize;
        }
        lin
    }

    /// Value at `coord`.
    pub fn get(&self, coord: &Coord) -> f64 {
        self.data[self.linear(coord)]
    }

    /// Mutable value at `coord`.
    pub fn get_mut(&mut self, coord: &Coord) -> &mut f64 {
        let lin = self.linear(coord);
        &mut self.data[lin]
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Mode-`mode` matricization as a dense matrix
    /// (`N_mode × Π_{m≠mode} N_m`), Kolda–Bader column ordering.
    pub fn matricize(&self, mode: usize) -> Mat {
        let rows = self.shape.dim(mode);
        let cols = self.shape.num_entries_excluding(mode);
        let mut m = Mat::zeros(rows, cols);
        for c in self.shape.iter_coords() {
            let v = self.get(&c);
            if v != 0.0 {
                m[(c.get(mode) as usize, matricized_col(&self.shape, &c, mode))] = v;
            }
        }
        m
    }

    /// Element-wise difference norm `‖self − other‖_F`.
    pub fn dist(&self, other: &DenseTensor) -> f64 {
        assert_eq!(self.shape, other.shape, "dist: shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &[u32]) -> Coord {
        Coord::new(s)
    }

    #[test]
    fn zeros_and_get_set() {
        let mut d = DenseTensor::zeros(Shape::new(&[2, 3]));
        assert_eq!(d.get(&c(&[1, 2])), 0.0);
        *d.get_mut(&c(&[1, 2])) = 5.0;
        assert_eq!(d.get(&c(&[1, 2])), 5.0);
        assert_eq!(d.norm(), 5.0);
    }

    #[test]
    fn sparse_roundtrip() {
        let mut s = SparseTensor::new(Shape::new(&[3, 3, 2]));
        s.add(&c(&[0, 1, 0]), 2.0);
        s.add(&c(&[2, 2, 1]), -3.0);
        let d = DenseTensor::from_sparse(&s);
        assert_eq!(d.get(&c(&[0, 1, 0])), 2.0);
        assert_eq!(d.get(&c(&[2, 2, 1])), -3.0);
        let s2 = d.to_sparse();
        assert_eq!(s2.nnz(), 2);
        assert_eq!(s2.get(&c(&[0, 1, 0])), 2.0);
        assert!((s.norm() - d.norm()).abs() < 1e-12);
    }

    #[test]
    fn matricize_shapes_and_content() {
        let mut d = DenseTensor::zeros(Shape::new(&[2, 3, 4]));
        *d.get_mut(&c(&[1, 2, 3])) = 7.0;
        let m0 = d.matricize(0);
        assert_eq!(m0.shape(), (2, 12));
        assert_eq!(m0[(1, 2 + 3 * 3)], 7.0);
        let m1 = d.matricize(1);
        assert_eq!(m1.shape(), (3, 8));
        assert_eq!(m1[(2, 1 + 3 * 2)], 7.0);
        let m2 = d.matricize(2);
        assert_eq!(m2.shape(), (4, 6));
        assert_eq!(m2[(3, 1 + 2 * 2)], 7.0);
        // Matricization preserves the Frobenius norm.
        assert!((m0.frob_norm() - d.norm()).abs() < 1e-12);
    }

    #[test]
    fn dist_is_metric_like() {
        let mut a = DenseTensor::zeros(Shape::new(&[2, 2]));
        let mut b = DenseTensor::zeros(Shape::new(&[2, 2]));
        *a.get_mut(&c(&[0, 0])) = 3.0;
        *b.get_mut(&c(&[0, 0])) = 0.0;
        *b.get_mut(&c(&[1, 1])) = 4.0;
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }
}
