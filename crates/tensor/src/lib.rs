//! # sns-tensor
//!
//! Sparse tensor substrate for the SliceNStitch reproduction.
//!
//! The continuous tensor model maintains a *tensor window*
//! `X = D(t, W) ∈ R^{N₁×…×N_{M−1}×W}` under a stream of single-entry
//! changes, and the update algorithms need three operations to be cheap:
//!
//! 1. point updates `x_J += δ` (entries appear and disappear),
//! 2. *fiber* queries: all non-zeros whose mode-`m` index equals `i`
//!    (`deg(m, i)` in the paper) — used by the row update rules,
//! 3. uniform random sampling of `θ` non-zeros from a fiber — used by
//!    SNS_RND / SNS⁺_RND.
//!
//! [`SparseTensor`] supports all three in (amortized) constant time per
//! element by pairing a hash map of entries with one
//! [`indexed_set::IndexedCoordSet`] per `(mode, index)` pair.
//!
//! Supporting modules: [`coord`] (compact coordinates), [`shape`],
//! [`fxhash`] (fast non-cryptographic hashing, hand-rolled per the
//! workspace dependency policy), [`dense`] (small dense tensors used as
//! test oracles), and [`matricize`] (Kolda–Bader unfolding maps).

pub mod coord;
pub mod dense;
pub mod fxhash;
pub mod indexed_set;
pub mod matricize;
pub mod shape;
pub mod sparse;

pub use coord::{Coord, MAX_ORDER};
pub use dense::DenseTensor;
pub use fxhash::{FxHashMap, FxHashSet};
pub use indexed_set::IndexedCoordSet;
pub use shape::Shape;
pub use sparse::{SparseTensor, SparseTensorState};
