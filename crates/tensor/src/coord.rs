//! Compact tensor coordinates.
//!
//! A [`Coord`] stores up to [`MAX_ORDER`] mode indices inline (no heap
//! allocation), is `Copy`, and hashes quickly with the Fx hasher. The
//! paper's tensors have 3–4 modes; 6 leaves headroom.

use std::fmt;

/// Maximum tensor order supported by the inline coordinate type.
pub const MAX_ORDER: usize = 6;

/// A coordinate (multi-index) into a tensor of order ≤ [`MAX_ORDER`].
///
/// Invariant: slots `idx[order..]` are always zero, so derived `Eq`/`Hash`
/// over the whole array are consistent with logical equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    order: u8,
    idx: [u32; MAX_ORDER],
}

impl Coord {
    /// Creates a coordinate from a slice of indices.
    ///
    /// # Panics
    /// Panics if `indices.len() > MAX_ORDER`.
    #[inline]
    pub fn new(indices: &[u32]) -> Self {
        assert!(
            indices.len() <= MAX_ORDER,
            "tensor order {} exceeds MAX_ORDER={}",
            indices.len(),
            MAX_ORDER
        );
        let mut idx = [0u32; MAX_ORDER];
        idx[..indices.len()].copy_from_slice(indices);
        Coord { order: indices.len() as u8, idx }
    }

    /// Creates a coordinate from `usize` indices (convenience for tests).
    ///
    /// # Panics
    /// Panics if any index exceeds `u32::MAX` or the order exceeds
    /// [`MAX_ORDER`].
    pub fn from_usizes(indices: &[usize]) -> Self {
        let v: Vec<u32> =
            indices.iter().map(|&i| u32::try_from(i).expect("index fits in u32")).collect();
        Coord::new(&v)
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.order as usize
    }

    /// Index along mode `m`.
    #[inline]
    pub fn get(&self, m: usize) -> u32 {
        debug_assert!(m < self.order());
        self.idx[m]
    }

    /// Sets the index along mode `m`.
    #[inline]
    pub fn set(&mut self, m: usize, value: u32) {
        debug_assert!(m < self.order());
        self.idx[m] = value;
    }

    /// The used indices as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.idx[..self.order()]
    }

    /// Returns a copy with mode `m` replaced by `value`.
    ///
    /// The window maintenance code uses this to move an entry between two
    /// adjacent time indices.
    #[inline]
    pub fn with(&self, m: usize, value: u32) -> Self {
        let mut c = *self;
        c.set(m, value);
        c
    }

    /// Returns a copy extended by one trailing mode set to `value`
    /// (e.g. non-time coordinates extended by a time index).
    ///
    /// # Panics
    /// Panics if the coordinate is already at [`MAX_ORDER`].
    pub fn extended(&self, value: u32) -> Self {
        assert!(self.order() < MAX_ORDER, "cannot extend beyond MAX_ORDER");
        let mut c = *self;
        c.idx[self.order()] = value;
        c.order += 1;
        c
    }

    /// Returns a copy with the trailing mode removed.
    ///
    /// # Panics
    /// Panics on a zero-order coordinate.
    pub fn truncated(&self) -> Self {
        assert!(self.order() > 0, "cannot truncate empty coordinate");
        let mut c = *self;
        c.order -= 1;
        c.idx[c.order as usize] = 0; // maintain the trailing-zero invariant
        c
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, v) in self.as_slice().iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<&[u32]> for Coord {
    fn from(s: &[u32]) -> Self {
        Coord::new(s)
    }
}

impl<const N: usize> From<[u32; N]> for Coord {
    fn from(s: [u32; N]) -> Self {
        Coord::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn construction_and_access() {
        let c = Coord::new(&[3, 1, 4]);
        assert_eq!(c.order(), 3);
        assert_eq!(c.get(0), 3);
        assert_eq!(c.get(2), 4);
        assert_eq!(c.as_slice(), &[3, 1, 4]);
    }

    #[test]
    fn from_usizes_and_arrays() {
        let c = Coord::from_usizes(&[1, 2]);
        assert_eq!(c, Coord::from([1u32, 2u32]));
        let d: Coord = [5u32, 6, 7].into();
        assert_eq!(d.as_slice(), &[5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "MAX_ORDER")]
    fn rejects_too_many_modes() {
        let _ = Coord::new(&[0; MAX_ORDER + 1]);
    }

    #[test]
    fn with_replaces_single_mode() {
        let c = Coord::new(&[1, 2, 3]);
        let d = c.with(1, 9);
        assert_eq!(d.as_slice(), &[1, 9, 3]);
        assert_eq!(c.as_slice(), &[1, 2, 3]); // original untouched
    }

    #[test]
    fn extend_and_truncate_roundtrip() {
        let c = Coord::new(&[1, 2]);
        let e = c.extended(7);
        assert_eq!(e.as_slice(), &[1, 2, 7]);
        assert_eq!(e.truncated(), c);
    }

    #[test]
    fn truncate_maintains_zero_invariant() {
        // Equality/Hash must not see stale data after truncation.
        let a = Coord::new(&[1, 2, 9]).truncated();
        let b = Coord::new(&[1, 2]);
        assert_eq!(a, b);
        let hash = |c: &Coord| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn different_order_not_equal() {
        assert_ne!(Coord::new(&[1, 0]), Coord::new(&[1]));
    }

    #[test]
    fn set_mutates() {
        let mut c = Coord::new(&[0, 0]);
        c.set(1, 5);
        assert_eq!(c.get(1), 5);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Coord::new(&[1, 2, 3])), "(1,2,3)");
        assert_eq!(format!("{:?}", Coord::new(&[])), "()");
    }

    #[test]
    fn coord_is_small() {
        // Keep the hot type compact: order byte + 6×u32 = 28 bytes.
        assert!(std::mem::size_of::<Coord>() <= 32);
    }
}
