//! A set of coordinates (with cached entry values) supporting O(1)
//! insert, remove, value update, and uniform sampling.
//!
//! Each `(mode, index)` fiber of the sparse tensor keeps one of these so
//! that SNS_RND can draw `θ` non-zeros uniformly at random in O(θ) and the
//! row update rules can enumerate a fiber in O(deg). The member values are
//! stored *inline* (denormalized from the tensor's entry map): fiber
//! enumeration — the inner loop of every row MTTKRP — walks two dense
//! vectors with zero hash lookups, at the price of one extra O(1) update
//! per value change (per-event writes touch 1–2 entries; reads touch
//! whole fibers, so the trade is heavily read-biased).

use crate::coord::Coord;
use crate::fxhash::FxHashMap;
use rand::Rng;

/// A swap-remove indexed set: dense `Vec`s of members and their values
/// plus a position map.
#[derive(Clone, Default)]
pub struct IndexedCoordSet {
    members: Vec<Coord>,
    values: Vec<f64>,
    positions: FxHashMap<Coord, u32>,
}

impl IndexedCoordSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if `coord` is a member.
    #[inline]
    pub fn contains(&self, coord: &Coord) -> bool {
        self.positions.contains_key(coord)
    }

    /// Inserts `coord` with `value`; returns `true` if it was newly added
    /// (an existing member keeps its old value — use
    /// [`IndexedCoordSet::set_value`] to change it).
    pub fn insert(&mut self, coord: Coord, value: f64) -> bool {
        if self.positions.contains_key(&coord) {
            return false;
        }
        self.positions.insert(coord, self.members.len() as u32);
        self.members.push(coord);
        self.values.push(value);
        true
    }

    /// Updates the cached value of an existing member; returns `true` if
    /// `coord` was present.
    pub fn set_value(&mut self, coord: &Coord, value: f64) -> bool {
        match self.positions.get(coord) {
            Some(&pos) => {
                self.values[pos as usize] = value;
                true
            }
            None => false,
        }
    }

    /// Value of a member, `None` if absent.
    #[inline]
    pub fn get(&self, coord: &Coord) -> Option<f64> {
        self.positions.get(coord).map(|&pos| self.values[pos as usize])
    }

    /// Position of a member in [`IndexedCoordSet::as_slice`], if present.
    #[inline]
    pub fn position(&self, coord: &Coord) -> Option<u32> {
        self.positions.get(coord).copied()
    }

    /// Value at a position previously returned by
    /// [`IndexedCoordSet::position`].
    #[inline]
    pub fn value_at(&self, pos: u32) -> f64 {
        self.values[pos as usize]
    }

    /// Overwrites the value at a position previously returned by
    /// [`IndexedCoordSet::position`].
    #[inline]
    pub fn set_value_at(&mut self, pos: u32, value: f64) {
        self.values[pos as usize] = value;
    }

    /// Adds `delta` to a member's value, inserting it first if absent.
    /// Returns the new value.
    pub fn add_value(&mut self, coord: Coord, delta: f64) -> f64 {
        match self.positions.get(&coord) {
            Some(&pos) => {
                let v = &mut self.values[pos as usize];
                *v += delta;
                *v
            }
            None => {
                self.positions.insert(coord, self.members.len() as u32);
                self.members.push(coord);
                self.values.push(delta);
                delta
            }
        }
    }

    /// Removes and returns every `(member, value)` pair **in member
    /// order** — the deterministic order [`IndexedCoordSet::as_slice`]
    /// exposes, which state capture relies on.
    pub fn take_entries(&mut self) -> Vec<(Coord, f64)> {
        self.positions.clear();
        let values = std::mem::take(&mut self.values);
        std::mem::take(&mut self.members).into_iter().zip(values).collect()
    }

    /// Rebuilds a set with an **exact** member order (state restore): the
    /// resulting set iterates, samples, and swap-removes identically to
    /// the one the order was captured from. Fails on duplicate members or
    /// a member/value length mismatch.
    pub fn from_ordered_entries(members: Vec<Coord>, values: Vec<f64>) -> Result<Self, String> {
        if members.len() != values.len() {
            return Err(format!("{} members but {} values", members.len(), values.len()));
        }
        let mut positions = FxHashMap::default();
        for (pos, c) in members.iter().enumerate() {
            if positions.insert(*c, pos as u32).is_some() {
                return Err(format!("duplicate member {c:?}"));
            }
        }
        Ok(IndexedCoordSet { members, values, positions })
    }

    /// Removes `coord` by swapping with the last member; returns `true` if
    /// it was present.
    pub fn remove(&mut self, coord: &Coord) -> bool {
        let Some(pos) = self.positions.remove(coord) else {
            return false;
        };
        let pos = pos as usize;
        let last = self.members.len() - 1;
        if pos != last {
            let moved = self.members[last];
            self.members[pos] = moved;
            self.values[pos] = self.values[last];
            self.positions.insert(moved, pos as u32);
        }
        self.members.pop();
        self.values.pop();
        true
    }

    /// Iterates over the members (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Coord> + '_ {
        self.members.iter()
    }

    /// Iterates over `(member, value)` pairs (arbitrary order) — two
    /// dense vectors, no hashing.
    pub fn entries(&self) -> impl Iterator<Item = (&Coord, f64)> + '_ {
        self.members.iter().zip(self.values.iter().copied())
    }

    /// Members as a slice (arbitrary order, stable between mutations).
    #[inline]
    pub fn as_slice(&self) -> &[Coord] {
        &self.members
    }

    /// Values as a slice, parallel to [`IndexedCoordSet::as_slice`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Draws `k` distinct members uniformly at random (without
    /// replacement), appending them to `out`. If the set has ≤ `k`
    /// members, all of them are returned. O(k) expected time when
    /// `k ≪ len`, O(len) otherwise.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize, out: &mut Vec<Coord>) {
        let n = self.members.len();
        if n <= k {
            out.extend_from_slice(&self.members);
            return;
        }
        if k * 3 >= n {
            // Dense regime: partial Fisher–Yates over a scratch index list.
            let mut idx: Vec<u32> = (0..n as u32).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
                out.push(self.members[idx[i] as usize]);
            }
        } else {
            // Sparse regime: rejection-sample distinct positions.
            let mut chosen = crate::fxhash::fx_set();
            while chosen.len() < k {
                let j = rng.gen_range(0..n);
                if chosen.insert(j) {
                    out.push(self.members[j]);
                }
            }
        }
    }
}

impl std::fmt::Debug for IndexedCoordSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IndexedCoordSet({} members)", self.members.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(i: u32) -> Coord {
        Coord::new(&[i, i + 1])
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = IndexedCoordSet::new();
        assert!(s.is_empty());
        assert!(s.insert(c(1), 1.5));
        assert!(!s.insert(c(1), 9.9)); // duplicate keeps the old value
        assert!(s.insert(c(2), 2.5));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&c(1)));
        assert_eq!(s.entries().find(|(m, _)| **m == c(1)).unwrap().1, 1.5);
        assert!(s.remove(&c(1)));
        assert!(!s.remove(&c(1))); // already gone
        assert!(!s.contains(&c(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn values_follow_members_through_swap_removes() {
        let mut s = IndexedCoordSet::new();
        for i in 0..50 {
            s.insert(c(i), i as f64);
        }
        for i in (0..50).step_by(3) {
            assert!(s.remove(&c(i)));
        }
        assert!(s.set_value(&c(1), 100.0));
        assert!(!s.set_value(&c(0), 7.0)); // removed
        for (m, v) in s.entries() {
            let i = m.get(0);
            let expect = if i == 1 { 100.0 } else { i as f64 };
            assert_eq!(v, expect, "member {i}");
        }
        assert_eq!(s.as_slice().len(), s.values().len());
    }

    #[test]
    fn swap_remove_keeps_positions_consistent() {
        let mut s = IndexedCoordSet::new();
        for i in 0..100 {
            s.insert(c(i), 0.0);
        }
        // Remove from the middle repeatedly; membership must stay exact.
        for i in (0..100).step_by(3) {
            assert!(s.remove(&c(i)));
        }
        for i in 0..100 {
            assert_eq!(s.contains(&c(i)), i % 3 != 0, "i={i}");
        }
        // Each member is reachable through iteration exactly once.
        let seen: Vec<_> = s.iter().copied().collect();
        assert_eq!(seen.len(), s.len());
        let set: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(set.len(), seen.len());
    }

    #[test]
    fn sample_returns_all_when_small() {
        let mut s = IndexedCoordSet::new();
        for i in 0..5 {
            s.insert(c(i), 0.0);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        s.sample_distinct(&mut rng, 10, &mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn sample_distinct_no_duplicates_both_regimes() {
        let mut s = IndexedCoordSet::new();
        for i in 0..50 {
            s.insert(c(i), 0.0);
        }
        let mut rng = StdRng::seed_from_u64(2);
        // Dense regime: k*3 >= n
        let mut out = Vec::new();
        s.sample_distinct(&mut rng, 20, &mut out);
        assert_eq!(out.len(), 20);
        let uniq: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(uniq.len(), 20);
        // Sparse regime: k*3 < n
        let mut out = Vec::new();
        s.sample_distinct(&mut rng, 5, &mut out);
        assert_eq!(out.len(), 5);
        let uniq: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(uniq.len(), 5);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut s = IndexedCoordSet::new();
        for i in 0..10 {
            s.insert(c(i), 0.0);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..6000 {
            let mut out = Vec::new();
            s.sample_distinct(&mut rng, 1, &mut out);
            counts[out[0].get(0) as usize] += 1;
        }
        // Each of the 10 members expects 600 draws; allow wide slack.
        for (i, &n) in counts.iter().enumerate() {
            assert!((400..800).contains(&n), "member {i} drawn {n} times");
        }
    }

    #[test]
    fn debug_is_compact() {
        let s = IndexedCoordSet::new();
        assert!(format!("{s:?}").contains("0 members"));
    }
}
