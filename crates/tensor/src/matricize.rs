//! Mode-`n` matricization (unfolding) maps, Kolda–Bader convention.
//!
//! `X(n)` arranges the mode-`n` fibers of `X` as columns of an
//! `N_n × Π_{m≠n} N_m` matrix. Entry `(i₁,…,i_M)` lands in row `i_n` and
//! column
//!
//! ```text
//! j = Σ_{k≠n} i_k · J_k,   J_k = Π_{m<k, m≠n} N_m .
//! ```
//!
//! With this convention `[[A(1),…,A(M)]](n) = A(n)·(A(M)⊙…⊙A(n+1)⊙A(n−1)⊙…⊙A(1))ᵀ`
//! where `⊙` folds so that the *highest* mode index varies slowest. The
//! helper [`kr_ordering`] returns the factor order whose Khatri–Rao product
//! matches [`matricized_col`]; oracle tests in `sns-core` pin the two
//! together. Streaming algorithms never materialize these maps — they are
//! used by dense oracles and tests.

use crate::coord::Coord;
use crate::shape::Shape;

/// Column index of `coord` in the mode-`mode` unfolding of `shape`.
pub fn matricized_col(shape: &Shape, coord: &Coord, mode: usize) -> usize {
    debug_assert!(shape.contains(coord));
    debug_assert!(mode < shape.order());
    let mut col = 0usize;
    let mut stride = 1usize;
    for k in 0..shape.order() {
        if k == mode {
            continue;
        }
        col += coord.get(k) as usize * stride;
        stride *= shape.dim(k);
    }
    col
}

/// Inverse of [`matricized_col`]: reconstructs the full coordinate from a
/// `(row, col)` position of the mode-`mode` unfolding.
pub fn matricized_coord(shape: &Shape, row: usize, mut col: usize, mode: usize) -> Coord {
    debug_assert!(mode < shape.order());
    let mut idx = [0u32; crate::coord::MAX_ORDER];
    for (k, slot) in idx.iter_mut().enumerate().take(shape.order()) {
        if k == mode {
            *slot = row as u32;
            continue;
        }
        *slot = (col % shape.dim(k)) as u32;
        col /= shape.dim(k);
    }
    Coord::new(&idx[..shape.order()])
}

/// The factor ordering whose left-folded Khatri–Rao product
/// (`first ⊙ second ⊙ …`, first factor varying *slowest*) matches the
/// column indexing of [`matricized_col`] for mode `mode`: modes in
/// *descending* order, skipping `mode`.
pub fn kr_ordering(order: usize, mode: usize) -> Vec<usize> {
    (0..order).rev().filter(|&m| m != mode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_roundtrip_all_modes() {
        let shape = Shape::new(&[3, 4, 2, 5]);
        for mode in 0..4 {
            for coord in shape.iter_coords() {
                let col = matricized_col(&shape, &coord, mode);
                assert!(col < shape.num_entries_excluding(mode));
                let back = matricized_coord(&shape, coord.get(mode) as usize, col, mode);
                assert_eq!(back, coord, "mode {mode}");
            }
        }
    }

    #[test]
    fn col_is_bijective() {
        let shape = Shape::new(&[2, 3, 4]);
        for mode in 0..3 {
            let mut seen = vec![false; shape.num_entries_excluding(mode)];
            for coord in shape.iter_coords() {
                if coord.get(mode) != 0 {
                    continue;
                }
                let col = matricized_col(&shape, &coord, mode);
                assert!(!seen[col], "collision at mode {mode} col {col}");
                seen[col] = true;
            }
            assert!(seen.iter().all(|&b| b), "mode {mode} not surjective");
        }
    }

    #[test]
    fn known_small_example() {
        // Kolda–Bader: for shape (I,J,K), mode-0 column of (i,j,k) is j + k·J.
        let shape = Shape::new(&[2, 3, 4]);
        let c = Coord::new(&[1, 2, 3]);
        assert_eq!(matricized_col(&shape, &c, 0), 2 + 3 * 3);
        // mode-1 column: i + k·I
        assert_eq!(matricized_col(&shape, &c, 1), 1 + 3 * 2);
        // mode-2 column: i + j·I
        assert_eq!(matricized_col(&shape, &c, 2), 1 + 2 * 2);
    }

    #[test]
    fn kr_ordering_descends_and_skips() {
        assert_eq!(kr_ordering(4, 1), vec![3, 2, 0]);
        assert_eq!(kr_ordering(3, 2), vec![1, 0]);
        assert_eq!(kr_ordering(1, 0), Vec::<usize>::new());
    }
}
