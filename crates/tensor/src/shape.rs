//! Tensor shapes.

use crate::coord::{Coord, MAX_ORDER};
use std::fmt;

/// The shape (mode lengths) of a tensor of order ≤ [`MAX_ORDER`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from mode lengths.
    ///
    /// # Panics
    /// Panics if the order exceeds [`MAX_ORDER`] or any mode is empty.
    pub fn new(dims: &[usize]) -> Self {
        assert!(dims.len() <= MAX_ORDER, "order {} exceeds MAX_ORDER", dims.len());
        assert!(dims.iter().all(|&d| d > 0), "zero-length mode in shape {dims:?}");
        Shape { dims: dims.to_vec() }
    }

    /// Number of modes `M`.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Length `N_m` of mode `m`.
    #[inline]
    pub fn dim(&self, m: usize) -> usize {
        self.dims[m]
    }

    /// All mode lengths.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of positions `Π N_m`.
    pub fn num_entries(&self) -> usize {
        self.dims.iter().product()
    }

    /// Total number of positions excluding mode `skip` (`Π_{m≠skip} N_m`).
    pub fn num_entries_excluding(&self, skip: usize) -> usize {
        self.dims.iter().enumerate().filter(|&(m, _)| m != skip).map(|(_, &d)| d).product()
    }

    /// True if `coord` has the right order and every index is in bounds.
    pub fn contains(&self, coord: &Coord) -> bool {
        coord.order() == self.order()
            && coord.as_slice().iter().zip(&self.dims).all(|(&i, &d)| (i as usize) < d)
    }

    /// Iterates over every coordinate of the (small!) dense index space, in
    /// row-major order (last mode fastest). Intended for test oracles only.
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let total = self.num_entries();
        let order = self.order();
        (0..total).map(move |mut lin| {
            let mut idx = [0u32; MAX_ORDER];
            for m in (0..order).rev() {
                idx[m] = (lin % self.dims[m]) as u32;
                lin /= self.dims[m];
            }
            Coord::new(&idx[..order])
        })
    }

    /// Returns a copy with mode `m` replaced by `len`.
    pub fn with_dim(&self, m: usize, len: usize) -> Shape {
        let mut dims = self.dims.clone();
        dims[m] = len;
        Shape::new(&dims)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.order(), 3);
        assert_eq!(s.dim(1), 4);
        assert_eq!(s.dims(), &[3, 4, 5]);
        assert_eq!(s.num_entries(), 60);
        assert_eq!(s.num_entries_excluding(1), 15);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn rejects_empty_mode() {
        let _ = Shape::new(&[3, 0]);
    }

    #[test]
    fn contains_checks_bounds_and_order() {
        let s = Shape::new(&[2, 3]);
        assert!(s.contains(&Coord::new(&[1, 2])));
        assert!(!s.contains(&Coord::new(&[2, 0])));
        assert!(!s.contains(&Coord::new(&[0, 3])));
        assert!(!s.contains(&Coord::new(&[0])));
        assert!(!s.contains(&Coord::new(&[0, 0, 0])));
    }

    #[test]
    fn iter_coords_covers_space_in_order() {
        let s = Shape::new(&[2, 3]);
        let coords: Vec<Coord> = s.iter_coords().collect();
        assert_eq!(coords.len(), 6);
        assert_eq!(coords[0], Coord::new(&[0, 0]));
        assert_eq!(coords[1], Coord::new(&[0, 1])); // last mode fastest
        assert_eq!(coords[5], Coord::new(&[1, 2]));
        // All distinct.
        let set: std::collections::HashSet<_> = coords.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn with_dim_replaces_one_mode() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.with_dim(1, 7), Shape::new(&[2, 7]));
    }

    #[test]
    fn from_conversions() {
        let s: Shape = [1usize, 2].into();
        assert_eq!(s, Shape::new(&[1, 2]));
    }
}
