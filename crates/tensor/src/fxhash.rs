//! Fast non-cryptographic hashing for small integer keys.
//!
//! Coordinate lookups dominate the per-event cost of the tensor window, and
//! SipHash (the std default) is needlessly slow for 4-byte integer words.
//! This is the well-known "Fx" multiply-rotate-xor hash used by rustc and
//! Firefox, re-implemented here because the workspace's allowed dependency
//! set does not include `rustc-hash`. HashDoS resistance is irrelevant:
//! keys are tensor coordinates produced by our own generators.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Golden-ratio-derived odd multiplier (same constant as rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Hash-map with the Fx hasher; drop-in for `std::collections::HashMap`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hash-set with the Fx hasher; drop-in for `std::collections::HashSet`.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Convenience constructor (the `new()` inherent method is not available
/// for non-default hashers).
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor for sets.
pub fn fx_set<K>() -> FxHashSet<K> {
    FxHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let bh: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        bh.hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&[1u32, 2, 3]), hash_of(&[1u32, 2, 3]));
    }

    #[test]
    fn discriminates_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[0u32, 1]), hash_of(&[1u32, 0]));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn byte_writes_cover_tail() {
        // Lengths that are not multiples of 8 exercise the remainder path.
        for len in 0..20usize {
            let v1: Vec<u8> = (0..len as u8).collect();
            let mut v2 = v1.clone();
            let h1 = hash_of(&v1);
            assert_eq!(h1, hash_of(&v2));
            if len > 0 {
                v2[len - 1] ^= 0xff;
                assert_ne!(h1, hash_of(&v2), "len={len}");
            }
        }
    }

    #[test]
    fn map_and_set_work() {
        let mut m = fx_map();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);

        let mut s = fx_set();
        for i in 0..100u64 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn distribution_is_reasonable() {
        // Sequential keys should spread across buckets: count collisions in
        // the top byte; with 256 buckets and 4096 keys, a uniform hash puts
        // ~16 per bucket. Allow generous slack.
        let mut buckets = [0u32; 256];
        for i in 0..4096u64 {
            buckets[(hash_of(&i) >> 56) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 64, "suspiciously uneven distribution: max bucket {max}");
    }
}
