//! Fiber-indexed sparse tensor.
//!
//! [`SparseTensor`] is the tensor-window representation used by every
//! streaming algorithm in the workspace. Besides the entry map it maintains
//! one [`IndexedCoordSet`] per `(mode, index)` pair, so that
//!
//! - `deg(m, i)` — the paper's count of non-zeros with mode-`m` index `i` —
//!   is O(1),
//! - enumerating the non-zeros of a fiber is O(deg),
//! - sampling `θ` distinct non-zeros from a fiber is O(θ) expected,
//!
//! and it tracks `‖X‖²_F` incrementally so fitness evaluation never scans
//! the window.

use crate::coord::Coord;
use crate::fxhash::{fx_map, FxHashMap};
use crate::indexed_set::IndexedCoordSet;
use crate::shape::Shape;
use rand::Rng;

/// A sparse tensor with per-mode fiber indexes.
///
/// Entries are held in an **insertion-ordered** [`IndexedCoordSet`]
/// (dense member/value vectors + a position map), not a bare hash map:
/// [`SparseTensor::iter`] walks the dense vectors, so every float
/// summation over the non-zeros (MTTKRP, fitness inner products) runs in
/// a deterministic order that is a pure function of the tensor's
/// add/remove history — and that order is exactly what
/// [`SparseTensor::capture_state`] / [`SparseTensor::from_state`]
/// preserve, making a restored tensor *bitwise* indistinguishable from
/// the original in all downstream arithmetic.
#[derive(Clone)]
pub struct SparseTensor {
    shape: Shape,
    entries: IndexedCoordSet,
    /// `fibers[m][i]` = set of non-zero coordinates with mode-`m` index `i`.
    fibers: Vec<FxHashMap<u32, IndexedCoordSet>>,
    /// Incrementally maintained squared Frobenius norm.
    norm_sq: f64,
}

/// Captured raw state of a [`SparseTensor`]: entry and fiber member
/// orders are recorded exactly, so [`SparseTensor::from_state`] rebuilds
/// a tensor whose iteration, sampling, and swap-remove behaviour is
/// bitwise-identical to the captured one. Fiber members are stored as
/// positions into `coords` to keep snapshots compact.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensorState {
    /// Mode lengths.
    pub dims: Vec<usize>,
    /// Non-zero coordinates in entry-iteration order.
    pub coords: Vec<Coord>,
    /// Values parallel to `coords`.
    pub values: Vec<f64>,
    /// Per mode, sorted by fiber index: `(index, member positions into
    /// `coords` in fiber order)`.
    pub fibers: Vec<Vec<(u32, Vec<u32>)>>,
    /// The incrementally accumulated `‖X‖²_F` — preserved bitwise (it
    /// carries accumulated rounding that a recompute would not).
    pub norm_sq: f64,
}

impl SparseTensor {
    /// Creates an empty tensor of the given shape.
    pub fn new(shape: Shape) -> Self {
        let fibers = (0..shape.order()).map(|_| fx_map()).collect();
        SparseTensor { shape, entries: IndexedCoordSet::new(), fibers, norm_sq: 0.0 }
    }

    /// Captures the complete tensor state, including the exact entry and
    /// fiber iteration orders (see [`SparseTensorState`]).
    pub fn capture_state(&self) -> SparseTensorState {
        let fibers = self
            .fibers
            .iter()
            .map(|fiber| {
                let mut sets: Vec<(u32, Vec<u32>)> = fiber
                    .iter()
                    .map(|(&index, set)| {
                        let positions = set
                            .as_slice()
                            .iter()
                            .map(|c| self.entries.position(c).expect("fiber member is an entry"))
                            .collect();
                        (index, positions)
                    })
                    .collect();
                // The outer per-index map is never iterated by numeric
                // code; sort for a canonical byte encoding.
                sets.sort_unstable_by_key(|&(index, _)| index);
                sets
            })
            .collect();
        SparseTensorState {
            dims: self.shape.dims().to_vec(),
            coords: self.entries.as_slice().to_vec(),
            values: self.entries.values().to_vec(),
            fibers,
            norm_sq: self.norm_sq,
        }
    }

    /// Rebuilds a tensor from captured state, restoring entry and fiber
    /// orders exactly.
    ///
    /// # Errors
    /// Returns a description of the first internal inconsistency (length
    /// mismatches, out-of-bounds coordinates, fiber/entry disagreement) —
    /// decoded snapshots are validated rather than trusted.
    pub fn from_state(state: SparseTensorState) -> Result<Self, String> {
        let SparseTensorState { dims, coords, values, fibers, norm_sq } = state;
        if dims.is_empty() || dims.len() > crate::coord::MAX_ORDER || dims.contains(&0) {
            return Err(format!("invalid tensor dims {dims:?}"));
        }
        let shape = Shape::new(&dims);
        if coords.len() != values.len() {
            return Err(format!("{} coords but {} values", coords.len(), values.len()));
        }
        for (c, &v) in coords.iter().zip(&values) {
            if !shape.contains(c) {
                return Err(format!("coord {c:?} out of shape {dims:?}"));
            }
            if v == 0.0 {
                return Err(format!("stored zero at {c:?}"));
            }
        }
        if fibers.len() != shape.order() {
            return Err(format!("{} fiber modes for order {}", fibers.len(), shape.order()));
        }
        let entries = IndexedCoordSet::from_ordered_entries(coords, values)?;
        let mut built: Vec<FxHashMap<u32, IndexedCoordSet>> = Vec::with_capacity(fibers.len());
        for (m, sets) in fibers.into_iter().enumerate() {
            let mut fiber: FxHashMap<u32, IndexedCoordSet> = fx_map();
            let mut total = 0usize;
            for (index, positions) in sets {
                let mut members = Vec::with_capacity(positions.len());
                let mut vals = Vec::with_capacity(positions.len());
                for pos in positions {
                    let Some(&c) = entries.as_slice().get(pos as usize) else {
                        return Err(format!("fiber position {pos} out of range"));
                    };
                    if c.get(m) != index {
                        return Err(format!("coord {c:?} filed under mode {m} index {index}"));
                    }
                    members.push(c);
                    vals.push(entries.values()[pos as usize]);
                }
                if members.is_empty() {
                    return Err(format!("empty fiber set at mode {m} index {index}"));
                }
                total += members.len();
                let set = IndexedCoordSet::from_ordered_entries(members, vals)?;
                if fiber.insert(index, set).is_some() {
                    return Err(format!("duplicate fiber index {index} in mode {m}"));
                }
            }
            if total != entries.len() {
                return Err(format!("mode {m} indexes {total} of {} entries", entries.len()));
            }
            built.push(fiber);
        }
        Ok(SparseTensor { shape, entries, fibers: built, norm_sq })
    }

    /// Creates a tensor from `(coord, value)` pairs, summing duplicates.
    pub fn from_entries(shape: Shape, items: impl IntoIterator<Item = (Coord, f64)>) -> Self {
        let mut t = SparseTensor::new(shape);
        for (c, v) in items {
            t.add(&c, v);
        }
        t
    }

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Order `M`.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of non-zero entries `|X|`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of positions that are non-zero.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / self.shape.num_entries() as f64
    }

    /// Value at `coord` (zero when absent).
    #[inline]
    pub fn get(&self, coord: &Coord) -> f64 {
        debug_assert!(self.shape.contains(coord), "coord {coord:?} out of {:?}", self.shape);
        self.entries.get(coord).unwrap_or(0.0)
    }

    /// Adds `delta` to the entry at `coord`, returning the new value.
    /// Entries that reach exactly zero are removed from all indexes
    /// (stream values are counts, so cancellation is exact).
    pub fn add(&mut self, coord: &Coord, delta: f64) -> f64 {
        debug_assert!(self.shape.contains(coord), "coord {coord:?} out of {:?}", self.shape);
        if delta == 0.0 {
            return self.get(coord);
        }
        match self.entries.position(coord) {
            Some(pos) => {
                let old = self.entries.value_at(pos);
                let new = old + delta;
                self.norm_sq += new * new - old * old;
                if new == 0.0 {
                    self.entries.remove(coord);
                    self.unindex(coord);
                    0.0
                } else {
                    self.entries.set_value_at(pos, new);
                    // Keep the denormalized per-fiber values in sync.
                    for m in 0..self.order() {
                        if let Some(set) = self.fibers[m].get_mut(&coord.get(m)) {
                            set.set_value(coord, new);
                        }
                    }
                    new
                }
            }
            None => {
                self.entries.insert(*coord, delta);
                self.index(coord, delta);
                self.norm_sq += delta * delta;
                delta
            }
        }
    }

    /// Sets the entry at `coord` to `value` (removing it if zero).
    pub fn set(&mut self, coord: &Coord, value: f64) {
        let old = self.get(coord);
        self.add(coord, value - old);
    }

    fn index(&mut self, coord: &Coord, value: f64) {
        for m in 0..self.order() {
            self.fibers[m].entry(coord.get(m)).or_default().insert(*coord, value);
        }
    }

    fn unindex(&mut self, coord: &Coord) {
        for m in 0..self.order() {
            if let Some(set) = self.fibers[m].get_mut(&coord.get(m)) {
                set.remove(coord);
                if set.is_empty() {
                    self.fibers[m].remove(&coord.get(m));
                }
            }
        }
    }

    /// `deg(m, i)`: number of non-zeros whose mode-`m` index is `i`.
    #[inline]
    pub fn deg(&self, mode: usize, index: u32) -> usize {
        self.fibers[mode].get(&index).map_or(0, |s| s.len())
    }

    /// Iterates over the non-zero coordinates of the `(mode, index)` fiber.
    pub fn fiber_coords(&self, mode: usize, index: u32) -> impl Iterator<Item = &Coord> + '_ {
        self.fibers[mode].get(&index).map(|s| s.as_slice()).unwrap_or(&[]).iter()
    }

    /// Iterates over `(coord, value)` for the `(mode, index)` fiber —
    /// two dense vector walks, no per-entry hash lookup (the fiber sets
    /// cache entry values; see [`IndexedCoordSet::entries`]).
    pub fn fiber_entries(
        &self,
        mode: usize,
        index: u32,
    ) -> impl Iterator<Item = (&Coord, f64)> + '_ {
        self.fibers[mode].get(&index).into_iter().flat_map(|s| s.entries())
    }

    /// The `(mode, index)` fiber as parallel coordinate/value slices —
    /// the same entries, in the same deterministic order, as
    /// [`SparseTensor::fiber_entries`], exposed as slices so blocked
    /// kernels can walk entry *pairs* without iterator state. Both
    /// slices are empty when the fiber has no non-zeros.
    #[inline]
    pub fn fiber_slices(&self, mode: usize, index: u32) -> (&[Coord], &[f64]) {
        self.fibers[mode].get(&index).map_or((&[][..], &[][..]), |s| (s.as_slice(), s.values()))
    }

    /// Samples up to `k` distinct non-zero coordinates from the
    /// `(mode, index)` fiber, uniformly without replacement, appending to
    /// `out`. Coordinates present in `exclude` are dropped *after*
    /// sampling, so fewer than `k` results may be returned.
    pub fn sample_fiber<R: Rng + ?Sized>(
        &self,
        mode: usize,
        index: u32,
        k: usize,
        rng: &mut R,
        exclude: &[Coord],
        out: &mut Vec<Coord>,
    ) {
        let Some(set) = self.fibers[mode].get(&index) else {
            return;
        };
        let start = out.len();
        set.sample_distinct(rng, k, out);
        if !exclude.is_empty() {
            out.truncate_retain(start, |c| !exclude.contains(c));
        }
    }

    /// Samples up to `k` distinct *positions* (coordinates of the full
    /// index space, zero entries included) from the `(mode, index)` fiber,
    /// uniformly without replacement. This is the sampling SNS_RND's
    /// Eq. (16) requires — "θ indices **of X** … while fixing the m-th
    /// mode index": correcting the model at arbitrary positions (most of
    /// which are zeros of a sparse tensor) keeps the sampled objective an
    /// unbiased estimate of the full one; sampling non-zeros only would
    /// make the row fit the non-zeros and ignore the zeros entirely.
    ///
    /// Coordinates in `exclude` are dropped after sampling (footnote 2:
    /// "we ignore the indices of non-zeros in ΔX even if they are
    /// sampled"), so fewer than `k` results may be returned.
    pub fn sample_fiber_positions<R: Rng + ?Sized>(
        &self,
        mode: usize,
        index: u32,
        k: usize,
        rng: &mut R,
        exclude: &[Coord],
        out: &mut Vec<Coord>,
    ) {
        let order = self.order();
        debug_assert!(mode < order);
        let start = out.len();
        let total = self.shape.num_entries_excluding(mode);
        if total <= k {
            // Tiny fiber space: enumerate every position.
            let zeros = [0u32; crate::coord::MAX_ORDER];
            let mut stack = Coord::new(&zeros[..order]);
            stack.set(mode, index);
            enumerate_fiber(&self.shape, mode, 0, &mut stack, out);
        } else if k <= 64 {
            // Typical `θ` regime: dedup by scanning the freshly drawn
            // coordinates — O(k²) inline compares beat a heap-allocated
            // hash set at these sizes, and the per-event sampling path
            // stays allocation-free. Draw order and RNG consumption match
            // the hash-set branch exactly.
            let mut drawn = 0usize;
            while drawn < k {
                let c = self.draw_fiber_position(mode, index, rng);
                if !out[start..].contains(&c) {
                    out.push(c);
                    drawn += 1;
                }
            }
        } else {
            let mut seen = crate::fxhash::fx_set();
            while seen.len() < k {
                let c = self.draw_fiber_position(mode, index, rng);
                if seen.insert(c) {
                    out.push(c);
                }
            }
        }
        if !exclude.is_empty() {
            out.truncate_retain(start, |c| !exclude.contains(c));
        }
    }

    /// Draws one uniform position of the `(mode, index)` fiber space.
    #[inline]
    fn draw_fiber_position<R: Rng + ?Sized>(&self, mode: usize, index: u32, rng: &mut R) -> Coord {
        let order = self.order();
        let mut idx = [0u32; crate::coord::MAX_ORDER];
        for (m, slot) in idx.iter_mut().enumerate().take(order) {
            *slot = if m == mode { index } else { rng.gen_range(0..self.shape.dim(m) as u32) };
        }
        Coord::new(&idx[..order])
    }

    /// Iterates over all `(coord, value)` entries, in the tensor's
    /// deterministic entry order (two dense vector walks; the order is a
    /// pure function of the add/remove history and survives state
    /// capture bitwise).
    pub fn iter(&self) -> impl Iterator<Item = (&Coord, f64)> + '_ {
        self.entries.entries()
    }

    /// Squared Frobenius norm `‖X‖²_F` (incrementally maintained).
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        // Guard against tiny negative drift from cancellation.
        self.norm_sq.max(0.0)
    }

    /// Frobenius norm `‖X‖_F`.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Recomputes the squared norm from scratch (drift control for long
    /// streams); returns the absolute correction applied.
    pub fn recompute_norm(&mut self) -> f64 {
        let fresh: f64 = self.entries.values().iter().map(|v| v * v).sum();
        let drift = (fresh - self.norm_sq).abs();
        self.norm_sq = fresh;
        drift
    }

    /// Indices along `mode` that currently have at least one non-zero.
    pub fn used_indices(&self, mode: usize) -> impl Iterator<Item = u32> + '_ {
        self.fibers[mode].keys().copied()
    }

    /// Removes every entry, keeping the shape.
    pub fn clear(&mut self) {
        self.entries = IndexedCoordSet::new();
        for f in &mut self.fibers {
            f.clear();
        }
        self.norm_sq = 0.0;
    }

    /// Inner product `⟨X, Y⟩` with another sparse tensor of the same shape,
    /// iterating over the smaller operand.
    pub fn inner(&self, other: &SparseTensor) -> f64 {
        assert_eq!(self.shape, other.shape, "inner: shape mismatch");
        let (small, big) = if self.nnz() <= other.nnz() { (self, other) } else { (other, self) };
        small.iter().map(|(c, v)| v * big.get(c)).sum()
    }

    /// Debug-only invariant check: every entry is indexed in every mode,
    /// every fiber member exists, and the norm accumulator is accurate.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (c, v) in self.entries.entries() {
            if v == 0.0 {
                return Err(format!("stored zero at {c:?}"));
            }
            if !self.shape.contains(c) {
                return Err(format!("out-of-bounds coord {c:?}"));
            }
            for m in 0..self.order() {
                let ok = self.fibers[m].get(&c.get(m)).is_some_and(|s| s.contains(c));
                if !ok {
                    return Err(format!("coord {c:?} missing from fiber index mode {m}"));
                }
            }
        }
        let mut count = 0usize;
        for (m, fiber) in self.fibers.iter().enumerate() {
            for (i, set) in fiber {
                if set.is_empty() {
                    return Err(format!("empty fiber set kept at mode {m} index {i}"));
                }
                for (c, v) in set.entries() {
                    match self.entries.get(c) {
                        None => return Err(format!("fiber ghost {c:?} at mode {m}")),
                        Some(ev) if ev.to_bits() != v.to_bits() => {
                            return Err(format!(
                                "fiber value {v} at {c:?} mode {m} diverged from entry {ev}"
                            ));
                        }
                        Some(_) => {}
                    }
                }
                count += set.len();
            }
        }
        if count != self.entries.len() * self.order() {
            return Err(format!(
                "fiber cardinality {} != nnz*order {}",
                count,
                self.entries.len() * self.order()
            ));
        }
        let fresh: f64 = self.entries.values().iter().map(|v| v * v).sum();
        if (fresh - self.norm_sq).abs() > 1e-6 * (1.0 + fresh) {
            return Err(format!("norm drift: stored {} vs fresh {}", self.norm_sq, fresh));
        }
        Ok(())
    }
}

impl std::fmt::Debug for SparseTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SparseTensor{:?} nnz={} density={:.3e}",
            self.shape.dims(),
            self.nnz(),
            self.density()
        )
    }
}

/// Recursively enumerates every position of the `(mode, fixed)` fiber
/// (used only when the fiber space is smaller than the sample size).
fn enumerate_fiber(
    shape: &Shape,
    mode: usize,
    m: usize,
    current: &mut Coord,
    out: &mut Vec<Coord>,
) {
    if m == shape.order() {
        out.push(*current);
        return;
    }
    if m == mode {
        enumerate_fiber(shape, mode, m + 1, current, out);
        return;
    }
    for i in 0..shape.dim(m) as u32 {
        current.set(m, i);
        enumerate_fiber(shape, mode, m + 1, current, out);
    }
    current.set(m, 0);
}

/// Small extension trait: retain elements of the tail of a `Vec` starting
/// at `start` (used by fiber sampling exclusion).
trait TailRetain<T> {
    fn truncate_retain(&mut self, start: usize, keep: impl FnMut(&T) -> bool);
}

impl<T> TailRetain<T> for Vec<T> {
    fn truncate_retain(&mut self, start: usize, mut keep: impl FnMut(&T) -> bool) {
        let mut write = start;
        for read in start..self.len() {
            if keep(&self[read]) {
                self.swap(write, read);
                write += 1;
            }
        }
        self.truncate(write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(a: u32, b: u32, t: u32) -> Coord {
        Coord::new(&[a, b, t])
    }

    fn small() -> SparseTensor {
        SparseTensor::new(Shape::new(&[4, 5, 3]))
    }

    #[test]
    fn empty_tensor() {
        let t = small();
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.norm(), 0.0);
        assert_eq!(t.get(&c(0, 0, 0)), 0.0);
        assert_eq!(t.deg(0, 0), 0);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn add_get_set_roundtrip() {
        let mut t = small();
        assert_eq!(t.add(&c(1, 2, 0), 3.0), 3.0);
        assert_eq!(t.get(&c(1, 2, 0)), 3.0);
        assert_eq!(t.add(&c(1, 2, 0), -1.0), 2.0);
        t.set(&c(1, 2, 0), 7.0);
        assert_eq!(t.get(&c(1, 2, 0)), 7.0);
        assert_eq!(t.nnz(), 1);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn exact_cancellation_removes_entry() {
        let mut t = small();
        t.add(&c(1, 2, 0), 5.0);
        t.add(&c(1, 2, 0), -5.0);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.deg(0, 1), 0);
        assert_eq!(t.deg(1, 2), 0);
        assert_eq!(t.norm(), 0.0);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut t = small();
        t.add(&c(0, 0, 0), 0.0);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn degree_tracks_fibers() {
        let mut t = small();
        t.add(&c(1, 0, 0), 1.0);
        t.add(&c(1, 1, 0), 1.0);
        t.add(&c(1, 2, 1), 1.0);
        t.add(&c(2, 0, 1), 1.0);
        assert_eq!(t.deg(0, 1), 3);
        assert_eq!(t.deg(0, 2), 1);
        assert_eq!(t.deg(1, 0), 2);
        assert_eq!(t.deg(2, 0), 2);
        assert_eq!(t.deg(2, 1), 2);
        let fiber: Vec<_> = t.fiber_entries(0, 1).collect();
        assert_eq!(fiber.len(), 3);
        assert!(fiber.iter().all(|&(_, v)| v == 1.0));
    }

    #[test]
    fn norm_is_incremental_and_accurate() {
        let mut t = small();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let coord = c(
                rand::Rng::gen_range(&mut rng, 0..4),
                rand::Rng::gen_range(&mut rng, 0..5),
                rand::Rng::gen_range(&mut rng, 0..3),
            );
            let delta = if rand::Rng::gen_bool(&mut rng, 0.3) { -1.0 } else { 1.0 };
            t.add(&coord, delta);
        }
        let stored = t.norm_sq();
        let fresh: f64 = t.iter().map(|(_, v)| v * v).sum();
        assert!((stored - fresh).abs() < 1e-9);
        assert!(t.check_invariants().is_ok());
        let drift = t.recompute_norm();
        assert!(drift < 1e-9);
    }

    #[test]
    fn from_entries_sums_duplicates() {
        let t = SparseTensor::from_entries(
            Shape::new(&[2, 2]),
            vec![
                (Coord::new(&[0, 0]), 1.0),
                (Coord::new(&[0, 0]), 2.0),
                (Coord::new(&[1, 1]), -1.0),
            ],
        );
        assert_eq!(t.get(&Coord::new(&[0, 0])), 3.0);
        assert_eq!(t.get(&Coord::new(&[1, 1])), -1.0);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn sampling_respects_exclusion_and_bounds() {
        let mut t = small();
        for b in 0..5u32 {
            for k in 0..3u32 {
                t.add(&c(2, b, k), 1.0);
            }
        }
        assert_eq!(t.deg(0, 2), 15);
        let mut rng = StdRng::seed_from_u64(6);
        let mut out = Vec::new();
        t.sample_fiber(0, 2, 4, &mut rng, &[], &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|cc| cc.get(0) == 2));
        // Exclusion may shrink the sample but never includes the excluded.
        let excl = [c(2, 0, 0), c(2, 1, 1)];
        for _ in 0..50 {
            let mut out = Vec::new();
            t.sample_fiber(0, 2, 10, &mut rng, &excl, &mut out);
            assert!(out.len() <= 10);
            assert!(!out.iter().any(|cc| excl.contains(cc)));
        }
        // Sampling an empty fiber yields nothing.
        let mut out = Vec::new();
        t.sample_fiber(0, 3, 4, &mut rng, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn position_sampling_covers_zero_entries() {
        let mut t = small(); // shape 4×5×3
        t.add(&c(2, 0, 0), 1.0); // single non-zero in the fiber
        let mut rng = StdRng::seed_from_u64(8);
        // Fiber (0, 2) has 5·3 = 15 positions; ask for 10 distinct ones.
        let mut out = Vec::new();
        t.sample_fiber_positions(0, 2, 10, &mut rng, &[], &mut out);
        assert_eq!(out.len(), 10);
        let uniq: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(uniq.len(), 10);
        assert!(out.iter().all(|cc| cc.get(0) == 2));
        // Most sampled positions are zeros of X — that is the point.
        let zeros = out.iter().filter(|cc| t.get(cc) == 0.0).count();
        assert!(zeros >= 9);
        // Requesting at least the whole space enumerates it exactly.
        let mut all = Vec::new();
        t.sample_fiber_positions(0, 2, 15, &mut rng, &[], &mut all);
        assert_eq!(all.len(), 15);
        let uniq: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(uniq.len(), 15);
        // Exclusion applies after sampling.
        let mut excl = Vec::new();
        t.sample_fiber_positions(0, 2, 15, &mut rng, &[c(2, 0, 0)], &mut excl);
        assert_eq!(excl.len(), 14);
        assert!(!excl.contains(&c(2, 0, 0)));
    }

    #[test]
    fn inner_product_matches_bruteforce() {
        let mut a = small();
        let mut b = small();
        a.add(&c(0, 0, 0), 2.0);
        a.add(&c(1, 1, 1), 3.0);
        a.add(&c(2, 2, 2), 4.0);
        b.add(&c(1, 1, 1), 5.0);
        b.add(&c(3, 3, 0), 7.0);
        assert_eq!(a.inner(&b), 15.0);
        assert_eq!(b.inner(&a), 15.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = small();
        t.add(&c(0, 0, 0), 1.0);
        t.clear();
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.norm(), 0.0);
        assert_eq!(t.deg(0, 0), 0);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn used_indices_reflect_content() {
        let mut t = small();
        t.add(&c(1, 0, 0), 1.0);
        t.add(&c(3, 0, 2), 1.0);
        let mut used: Vec<u32> = t.used_indices(0).collect();
        used.sort_unstable();
        assert_eq!(used, vec![1, 3]);
        let mut used_t: Vec<u32> = t.used_indices(2).collect();
        used_t.sort_unstable();
        assert_eq!(used_t, vec![0, 2]);
    }

    #[test]
    fn state_round_trip_preserves_orders_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut t = small();
        // A history with removals, so swap-remove scrambles both the
        // entry order and the fiber orders away from insertion order.
        for _ in 0..600 {
            let coord = c(
                rand::Rng::gen_range(&mut rng, 0..4),
                rand::Rng::gen_range(&mut rng, 0..5),
                rand::Rng::gen_range(&mut rng, 0..3),
            );
            let delta = if rand::Rng::gen_bool(&mut rng, 0.4) { -1.0 } else { 1.0 };
            t.add(&coord, delta);
        }
        let state = t.capture_state();
        let restored = SparseTensor::from_state(state.clone()).unwrap();
        restored.check_invariants().unwrap();
        // Entry iteration order is identical, not merely set-equal.
        let a: Vec<_> = t.iter().map(|(c, v)| (*c, v.to_bits())).collect();
        let b: Vec<_> = restored.iter().map(|(c, v)| (*c, v.to_bits())).collect();
        assert_eq!(a, b);
        // Fiber orders are identical (MTTKRP summation order).
        for m in 0..3 {
            for i in 0..t.shape().dim(m) as u32 {
                let fa: Vec<_> = t.fiber_entries(m, i).map(|(c, v)| (*c, v.to_bits())).collect();
                let fb: Vec<_> =
                    restored.fiber_entries(m, i).map(|(c, v)| (*c, v.to_bits())).collect();
                assert_eq!(fa, fb, "mode {m} index {i}");
            }
        }
        assert_eq!(t.norm_sq().to_bits(), restored.norm_sq().to_bits());
        // Re-capture is canonical: identical state both times.
        assert_eq!(state, restored.capture_state());
    }

    #[test]
    fn from_state_rejects_inconsistencies() {
        let mut t = small();
        t.add(&c(1, 2, 0), 3.0);
        t.add(&c(0, 1, 1), 2.0);
        let good = t.capture_state();

        let mut bad = good.clone();
        bad.values.pop();
        assert!(SparseTensor::from_state(bad).is_err(), "length mismatch accepted");

        let mut bad = good.clone();
        bad.coords[0] = c(9, 0, 0);
        assert!(SparseTensor::from_state(bad).is_err(), "out-of-shape coord accepted");

        let mut bad = good.clone();
        bad.fibers[0][0].1.push(99);
        assert!(SparseTensor::from_state(bad).is_err(), "dangling fiber position accepted");

        let mut bad = good.clone();
        bad.fibers.pop();
        assert!(SparseTensor::from_state(bad).is_err(), "missing fiber mode accepted");

        let mut bad = good;
        bad.values[0] = 0.0;
        assert!(SparseTensor::from_state(bad).is_err(), "stored zero accepted");
    }

    #[test]
    fn invariant_checker_catches_corruption() {
        let mut t = small();
        t.add(&c(0, 0, 0), 1.0);
        // Corrupt the norm accumulator.
        t.norm_sq = 99.0;
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn density_small_tensor() {
        let mut t = small(); // 60 positions
        t.add(&c(0, 0, 0), 1.0);
        t.add(&c(1, 1, 1), 1.0);
        t.add(&c(2, 2, 2), 1.0);
        assert!((t.density() - 0.05).abs() < 1e-12);
    }
}
