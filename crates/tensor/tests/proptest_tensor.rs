//! Property-based tests for the sparse tensor substrate.
//!
//! The central invariant: after an arbitrary sequence of point updates, the
//! fiber indexes, degree counts, and the incrementally-maintained norm all
//! agree with a brute-force recomputation.

use proptest::prelude::*;
use sns_tensor::matricize::{matricized_col, matricized_coord};
use sns_tensor::{Coord, DenseTensor, Shape, SparseTensor};

/// A random edit: coordinate within a fixed 4×5×3 shape plus an integer delta.
fn edit_strategy() -> impl Strategy<Value = (Coord, f64)> {
    (0u32..4, 0u32..5, 0u32..3, -3i32..=3)
        .prop_map(|(a, b, t, d)| (Coord::new(&[a, b, t]), d as f64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sparse tensor state matches a dense shadow after arbitrary edits,
    /// and all internal invariants hold.
    #[test]
    fn edits_match_dense_shadow(edits in proptest::collection::vec(edit_strategy(), 0..200)) {
        let shape = Shape::new(&[4, 5, 3]);
        let mut sparse = SparseTensor::new(shape.clone());
        let mut dense = DenseTensor::zeros(shape.clone());
        for (c, d) in &edits {
            sparse.add(c, *d);
            *dense.get_mut(c) += *d;
        }
        prop_assert!(sparse.check_invariants().is_ok(), "{:?}", sparse.check_invariants());
        for c in shape.iter_coords() {
            prop_assert_eq!(sparse.get(&c), dense.get(&c));
        }
        // nnz agrees with dense count.
        let dense_nnz = shape.iter_coords().filter(|c| dense.get(c) != 0.0).count();
        prop_assert_eq!(sparse.nnz(), dense_nnz);
        // Norm agrees.
        prop_assert!((sparse.norm() - dense.norm()).abs() < 1e-9);
        // Degrees agree with brute force for every (mode, index).
        for mode in 0..3 {
            for i in 0..shape.dim(mode) as u32 {
                let brute = shape
                    .iter_coords()
                    .filter(|c| c.get(mode) == i && dense.get(c) != 0.0)
                    .count();
                prop_assert_eq!(sparse.deg(mode, i), brute, "mode {} index {}", mode, i);
            }
        }
    }

    /// Fiber enumeration returns exactly the non-zeros with that index.
    #[test]
    fn fibers_enumerate_exactly(edits in proptest::collection::vec(edit_strategy(), 0..100)) {
        let shape = Shape::new(&[4, 5, 3]);
        let mut sparse = SparseTensor::new(shape.clone());
        for (c, d) in &edits {
            sparse.add(c, *d);
        }
        for mode in 0..3 {
            for i in 0..shape.dim(mode) as u32 {
                let mut got: Vec<Coord> = sparse.fiber_coords(mode, i).copied().collect();
                got.sort_by_key(|c| c.as_slice().to_vec());
                let mut expect: Vec<Coord> = sparse
                    .iter()
                    .filter(|(c, _)| c.get(mode) == i)
                    .map(|(c, _)| *c)
                    .collect();
                expect.sort_by_key(|c| c.as_slice().to_vec());
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// Matricization maps are bijective for random shapes.
    #[test]
    fn matricize_bijection(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5, d3 in 1usize..4) {
        let shape = Shape::new(&[d0, d1, d2, d3]);
        for mode in 0..4 {
            for coord in shape.iter_coords() {
                let col = matricized_col(&shape, &coord, mode);
                let back = matricized_coord(&shape, coord.get(mode) as usize, col, mode);
                prop_assert_eq!(back, coord);
            }
        }
    }

    /// Sampling returns distinct in-fiber coordinates, and `min(k, deg)` of
    /// them when nothing is excluded.
    #[test]
    fn sampling_contract(edits in proptest::collection::vec(edit_strategy(), 1..150), k in 1usize..10, seed in 0u64..1000) {
        use rand::SeedableRng;
        let shape = Shape::new(&[4, 5, 3]);
        let mut sparse = SparseTensor::new(shape);
        for (c, d) in &edits {
            sparse.add(c, *d);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in 0..4u32 {
            let mut out = Vec::new();
            sparse.sample_fiber(0, i, k, &mut rng, &[], &mut out);
            prop_assert_eq!(out.len(), k.min(sparse.deg(0, i)));
            let uniq: std::collections::HashSet<_> = out.iter().map(|c| c.as_slice().to_vec()).collect();
            prop_assert_eq!(uniq.len(), out.len());
            prop_assert!(out.iter().all(|c| c.get(0) == i && sparse.get(c) != 0.0));
        }
    }

    /// Inner product is symmetric and matches the dense computation.
    #[test]
    fn inner_product_correct(e1 in proptest::collection::vec(edit_strategy(), 0..60),
                             e2 in proptest::collection::vec(edit_strategy(), 0..60)) {
        let shape = Shape::new(&[4, 5, 3]);
        let mut a = SparseTensor::new(shape.clone());
        let mut b = SparseTensor::new(shape.clone());
        for (c, d) in &e1 { a.add(c, *d); }
        for (c, d) in &e2 { b.add(c, *d); }
        let brute: f64 = shape.iter_coords().map(|c| a.get(&c) * b.get(&c)).sum();
        prop_assert!((a.inner(&b) - brute).abs() < 1e-9);
        prop_assert!((b.inner(&a) - brute).abs() < 1e-9);
    }
}
