//! Dataset descriptors: paper-reported statistics plus generation-scale
//! parameters.

use crate::generator::GeneratorConfig;

/// Everything known about one of the paper's datasets (Tables II–III) and
/// how we mirror it synthetically.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Short name used in harness output (matches the paper).
    pub name: &'static str,
    /// One-line description of the modes.
    pub description: &'static str,
    /// Stream tick unit, for display ("seconds", "minutes", "hours").
    pub tick_unit: &'static str,

    // ---- Table II (paper-reported, full-scale) ----
    /// Paper's mode lengths, time mode last.
    pub paper_dims: &'static [usize],
    /// Paper's non-zero count.
    pub paper_nnz: f64,
    /// Paper's density.
    pub paper_density: f64,

    // ---- Table III (paper defaults) ----
    /// CP rank `R`.
    pub rank: usize,
    /// Window length `W`.
    pub window: usize,
    /// Period `T` in ticks.
    pub period: u64,
    /// Sampling threshold `θ`.
    pub theta: usize,
    /// Clipping bound `η`.
    pub eta: f64,

    // ---- generation scale (ours) ----
    /// Categorical mode lengths for the synthetic twin (scaled down where
    /// the original is huge so experiments fit the session budget).
    pub base_dims: &'static [usize],
    /// Default number of events generated for experiments.
    pub default_events: usize,
    /// Latent component count of the generator.
    pub latent_rank: usize,
    /// Fraction of events drawn uniformly at random (unstructured noise).
    pub noise_fraction: f64,
    /// Zipf exponent of the categorical profiles (popularity skew).
    pub zipf_exponent: f64,
    /// Ticks per synthetic "day" (drives the diurnal activity profile).
    pub day_ticks: u64,
}

impl DatasetSpec {
    /// Total stream duration covering prefill (`W·T`) plus the paper's
    /// measured horizon (`5·W·T`).
    pub fn duration(&self) -> u64 {
        6 * self.window as u64 * self.period
    }

    /// Generator configuration scaled to `events` tuples (pass
    /// `self.default_events` for the standard runs).
    pub fn generator(&self, events: usize, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            base_dims: self.base_dims.to_vec(),
            n_components: self.latent_rank,
            events,
            duration: self.duration(),
            noise_fraction: self.noise_fraction,
            zipf_exponent: self.zipf_exponent,
            day_ticks: self.day_ticks,
            max_value: 3,
            seed,
        }
    }

    /// The paper's parameter count for conventional CPD at time-mode
    /// granularity `t_interval` (Fig. 1d): `R · (Σ N_m + span/t_interval)`,
    /// with the window spanning `W · period` ticks.
    pub fn conventional_parameters(&self, t_interval: u64) -> usize {
        let cat: usize = self.base_dims.iter().sum();
        let time_len = (self.window as u64 * self.period / t_interval.max(1)) as usize;
        self.rank * (cat + time_len.max(1))
    }

    /// Parameter count for the continuous model: `R · (Σ N_m + W)`.
    pub fn continuous_parameters(&self) -> usize {
        let cat: usize = self.base_dims.iter().sum();
        self.rank * (cat + self.window)
    }
}

#[cfg(test)]
mod tests {
    use crate::datasets::nytaxi_like;

    #[test]
    fn duration_covers_prefill_plus_measurement() {
        let d = nytaxi_like();
        assert_eq!(d.duration(), 6 * d.window as u64 * d.period);
    }

    #[test]
    fn parameter_counts() {
        let d = nytaxi_like();
        // Continuous: R(N1+N2+W)
        let cat: usize = d.base_dims.iter().sum();
        assert_eq!(d.continuous_parameters(), d.rank * (cat + d.window));
        // 1-second granularity blows the time mode up by T per unit; the
        // overall parameter ratio is diluted by the categorical modes
        // (Fig. 1d annotates 55×–256× on NY Taxi).
        let fine = d.conventional_parameters(1);
        let coarse = d.conventional_parameters(d.period);
        assert!(fine > coarse * 50, "fine {fine} vs coarse {coarse}");
        assert_eq!(coarse, d.rank * (cat + d.window));
    }

    #[test]
    fn generator_config_inherits_scale() {
        let d = nytaxi_like();
        let g = d.generator(1000, 42);
        assert_eq!(g.events, 1000);
        assert_eq!(g.base_dims, d.base_dims.to_vec());
        assert_eq!(g.duration, d.duration());
    }
}
