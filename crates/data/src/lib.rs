//! # sns-data
//!
//! Synthetic multi-aspect data streams mirroring the paper's four
//! real-world datasets (Table II), plus CSV stream I/O, the anomaly
//! injection of Section VI-G, and the [`mod@replay`] driver that pumps a
//! recorded trace through the pooled session runtime.
//!
//! ## Why synthetic
//!
//! The original traces (Divvy Bikes, Chicago Crime, New York Taxi, Ride
//! Austin) are not available in this environment. The generator in
//! [`generator`] reproduces the *structural* properties the SliceNStitch
//! algorithms are sensitive to:
//!
//! - the same mode structure (3-mode `src×dst×time`, 3-mode
//!   `community×type×time`, 4-mode `src×dst×color×time`),
//! - approximately low CP rank: events are drawn from latent components
//!   with Zipf-skewed categorical profiles — the "communities" that make
//!   real traffic matrices low-rank — plus a tunable fraction of
//!   unstructured noise,
//! - diurnal/weekly temporal activity (rush-hour bumps) so the time mode
//!   carries signal,
//! - comparable density regimes per window.
//!
//! Absolute fitness values will differ from the paper; orderings and
//! trends (who wins, how θ/η move the curves) are preserved because they
//! depend only on these structural knobs. See `DESIGN.md` §4.

pub mod csvio;
pub mod datasets;
pub mod generator;
pub mod inject;
pub mod replay;
pub mod spec;

pub use datasets::{all_datasets, chicago_crime_like, divvy_like, nytaxi_like, ride_austin_like};
pub use generator::{generate, GeneratorConfig};
pub use inject::{inject_anomalies, InjectedAnomaly};
pub use replay::{batch_spans, read_trace, replay, ReplayPlan, ReplayReport};
pub use spec::DatasetSpec;
