//! CSV serialization of multi-aspect data streams.
//!
//! Format (one event per line, header optional):
//! `time,i1,i2,…,value` — the same layout the original SliceNStitch
//! release consumes, so real traces can be dropped in when available.

use sns_stream::StreamTuple;
use sns_tensor::Coord;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse { line, content } => {
                write!(f, "csv parse error at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a stream as CSV (no header).
pub fn write_stream<W: Write>(writer: W, stream: &[StreamTuple]) -> Result<(), CsvError> {
    let mut out = BufWriter::new(writer);
    for tu in stream {
        write!(out, "{}", tu.time)?;
        for &i in tu.coords.as_slice() {
            write!(out, ",{i}")?;
        }
        writeln!(out, ",{}", tu.value)?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a stream from CSV. Blank lines and `#` comments are skipped; a
/// `time,…` header row is tolerated.
pub fn read_stream<R: Read>(reader: R) -> Result<Vec<StreamTuple>, CsvError> {
    let buf = BufReader::new(reader);
    let mut out = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if lineno == 0 && trimmed.starts_with("time") {
            continue; // header
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 3 {
            return Err(CsvError::Parse { line: lineno + 1, content: line.clone() });
        }
        let parse_err = || CsvError::Parse { line: lineno + 1, content: line.clone() };
        let time: u64 = fields[0].trim().parse().map_err(|_| parse_err())?;
        let value: f64 = fields[fields.len() - 1].trim().parse().map_err(|_| parse_err())?;
        let coords: Result<Vec<u32>, _> =
            fields[1..fields.len() - 1].iter().map(|f| f.trim().parse::<u32>()).collect();
        let coords = coords.map_err(|_| parse_err())?;
        out.push(StreamTuple::new(Coord::new(&coords), value, time));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StreamTuple> {
        vec![
            StreamTuple::new([1u32, 2], 1.0, 0),
            StreamTuple::new([3u32, 4], 2.5, 17),
            StreamTuple::new([0u32, 0], 1.0, 17),
        ]
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_stream(&mut buf, &sample()).unwrap();
        let back = read_stream(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn tolerates_header_comments_blanks() {
        let text = "time,src,dst,value\n# comment\n\n5,1,2,3.0\n";
        let s = read_stream(text.as_bytes()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].time, 5);
        assert_eq!(s[0].value, 3.0);
    }

    #[test]
    fn four_mode_rows() {
        let text = "0,1,2,3,4.0\n";
        let s = read_stream(text.as_bytes()).unwrap();
        assert_eq!(s[0].coords.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn reports_line_numbers_on_garbage() {
        let text = "0,1,2,1.0\nnot,a,row\n";
        match read_stream(text.as_bytes()) {
            Err(CsvError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(read_stream("1,2\n".as_bytes()).is_err()); // too few fields
    }
}
