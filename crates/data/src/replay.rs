//! Trace replay: drive a recorded event trace through a pooled
//! [`StreamSession`] with the paper's experiment protocol.
//!
//! The paper's headline application is real-time analytics over real
//! event streams — its experiments replay five real-world traces. This
//! module is the missing glue between a trace on disk (the CSV format of
//! [`crate::csvio`], the same layout the original SliceNStitch release
//! consumes) and the sharded session runtime:
//!
//! 1. [`read_trace`] loads the CSV,
//! 2. [`ReplayPlan`] describes the protocol — prefill horizon, ALS warm
//!    start, and how tuples are bucketed into time-indexed batches,
//! 3. [`replay`] pumps the batches through
//!    [`StreamSession::ingest_batch`], acknowledged and flow-controlled.
//!
//! ## Determinism
//!
//! Batching is a pure function of the tuple timestamps
//! ([`batch_spans`]): tuples are grouped by time bucket
//! (`time / bucket_ticks`) and long buckets are split at `max_batch`.
//! Because the pooled batch path is bitwise-identical to serial
//! ingestion, a replay through the pool reproduces a serial
//! [`StreamingCpd::ingest_all`](sns_runtime::StreamingCpd::ingest_all)
//! run **bitwise** — enforced by `tests/scenarios.rs`.

use crate::csvio::{read_stream, CsvError};
use crate::spec::DatasetSpec;
use sns_core::als::AlsOptions;
use sns_runtime::{BatchReceipt, StreamSession};
use sns_stream::{SnsError, StreamTuple};
use std::ops::Range;
use std::path::Path;

/// How a trace is fed to a session: protocol phases plus deterministic
/// batching geometry.
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    /// Tuples with `time <= prefill_until` are loaded via
    /// [`StreamSession::prefill_batch`] (no factor updates) — the paper's
    /// initial-window phase. `None` replays everything live.
    pub prefill_until: Option<u64>,
    /// Batch ALS options for the warm start installed after prefill;
    /// `None` skips the warm start.
    pub warm_start: Option<AlsOptions>,
    /// Width of one time bucket in stream ticks: a batch never spans two
    /// buckets, so batch boundaries align with the trace clock (use the
    /// dataset period for the paper's once-per-period batching). `0`
    /// disables time bucketing (only `max_batch` splits).
    pub bucket_ticks: u64,
    /// Hard cap on tuples per batch (dense buckets are split). Must be
    /// positive.
    pub max_batch: usize,
    /// After the last tuple, advance the stream clock here so due
    /// boundary work fires (end-of-trace flush). `None` leaves the clock
    /// at the last arrival.
    pub advance_to: Option<u64>,
}

impl ReplayPlan {
    /// Raw replay: no prefill, no warm start, batches of at most
    /// `max_batch` tuples split at `bucket_ticks` boundaries.
    pub fn raw(bucket_ticks: u64, max_batch: usize) -> Self {
        ReplayPlan {
            prefill_until: None,
            warm_start: None,
            bucket_ticks,
            max_batch,
            advance_to: None,
        }
    }

    /// The paper's protocol for a dataset: prefill the first full window
    /// `W·T`, warm-start with batch ALS, then replay one batch per period
    /// and flush the clock to the dataset's full duration.
    pub fn for_dataset(spec: &DatasetSpec, als: AlsOptions) -> Self {
        ReplayPlan {
            prefill_until: Some(spec.window as u64 * spec.period),
            warm_start: Some(als),
            bucket_ticks: spec.period,
            max_batch: 4096,
            advance_to: Some(spec.duration()),
        }
    }
}

/// What a replay accomplished, aggregated over all acknowledged batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Tuples loaded during the prefill phase.
    pub prefilled: usize,
    /// Tuples ingested live.
    pub ingested: usize,
    /// Live batches submitted (prefill batches not counted).
    pub batches: usize,
    /// Factor updates the live phase triggered (including the final
    /// clock advance, if any).
    pub updates: u64,
}

/// Deterministic batch boundaries over a chronological tuple slice:
/// consecutive tuples share a batch iff they fall in the same time bucket
/// (`time / bucket_ticks`, skipped when `bucket_ticks == 0`) and the
/// batch is shorter than `max_batch`. Concatenating the spans yields
/// exactly `0..tuples.len()`.
///
/// # Panics
/// Panics if `max_batch == 0`.
pub fn batch_spans(
    tuples: &[StreamTuple],
    bucket_ticks: u64,
    max_batch: usize,
) -> Vec<Range<usize>> {
    assert!(max_batch > 0, "max_batch must be positive");
    // `bucket_ticks == 0` disables time bucketing: everything shares
    // bucket "None" and only `max_batch` splits.
    let bucket_of = |t: u64| t.checked_div(bucket_ticks);
    let mut spans = Vec::new();
    let mut start = 0usize;
    for i in 1..tuples.len() {
        if i - start >= max_batch || bucket_of(tuples[i].time) != bucket_of(tuples[start].time) {
            spans.push(start..i);
            start = i;
        }
    }
    if start < tuples.len() {
        spans.push(start..tuples.len());
    }
    spans
}

/// Replays a chronological trace through one pooled session following
/// `plan`. Every batch is acknowledged ([`BatchReceipt`]) before the next
/// is submitted, so the shard queue is never flooded; errors propagate
/// typed (with the failing batch's progress inside
/// [`SnsError::BatchAborted`]).
pub fn replay(
    session: &mut StreamSession,
    tuples: &[StreamTuple],
    plan: &ReplayPlan,
) -> Result<ReplayReport, SnsError> {
    let cut = match plan.prefill_until {
        Some(horizon) => tuples.partition_point(|t| t.time <= horizon),
        None => 0,
    };
    let mut report = ReplayReport::default();
    for span in batch_spans(&tuples[..cut], plan.bucket_ticks, plan.max_batch) {
        report.prefilled += session.prefill_batch(&tuples[span])?.accepted;
    }
    if let Some(als) = &plan.warm_start {
        let _ = session.warm_start(als)?;
    }
    let live = &tuples[cut..];
    for span in batch_spans(live, plan.bucket_ticks, plan.max_batch) {
        let receipt: BatchReceipt = session.ingest_batch(&live[span])?;
        report.ingested += receipt.accepted;
        report.updates += receipt.updates;
        report.batches += 1;
    }
    if let Some(t) = plan.advance_to {
        report.updates += session.advance_to(t)?.updates;
    }
    Ok(report)
}

/// Reads a CSV trace from disk (see [`crate::csvio`] for the format).
pub fn read_trace<P: AsRef<Path>>(path: P) -> Result<Vec<StreamTuple>, CsvError> {
    read_stream(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::GeneratorConfig;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_runtime::pool::stream_seed;
    use sns_runtime::{EnginePool, EngineSpec, PoolConfig};

    fn tuples() -> Vec<StreamTuple> {
        generate(&GeneratorConfig {
            base_dims: vec![8, 6],
            n_components: 2,
            events: 400,
            duration: 1200,
            day_ticks: 40,
            seed: 3,
            ..Default::default()
        })
    }

    #[test]
    fn spans_partition_the_slice_and_respect_buckets() {
        let stream = tuples();
        for (bucket, cap) in [(0u64, 7usize), (50, 64), (25, 3), (10_000, 1000)] {
            let spans = batch_spans(&stream, bucket, cap);
            let mut expect = 0usize;
            for span in &spans {
                assert_eq!(span.start, expect, "spans must tile the slice");
                assert!(span.len() <= cap);
                if let Some(b0) = stream[span.start].time.checked_div(bucket) {
                    assert!(stream[span.clone()]
                        .iter()
                        .all(|t| t.time.checked_div(bucket) == Some(b0)));
                }
                expect = span.end;
            }
            assert_eq!(expect, stream.len());
        }
    }

    #[test]
    fn spans_are_deterministic_and_empty_input_is_empty() {
        let stream = tuples();
        assert_eq!(batch_spans(&stream, 50, 32), batch_spans(&stream, 50, 32));
        assert!(batch_spans(&[], 50, 32).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_rejected() {
        let _ = batch_spans(&tuples(), 10, 0);
    }

    #[test]
    fn replay_reports_protocol_phases() {
        let stream = tuples();
        let pool = EnginePool::new(PoolConfig {
            shards: 2,
            base_seed: 1,
            queue_depth: 16,
            ..Default::default()
        });
        let spec = EngineSpec::sns(
            &[8, 6],
            4,
            50,
            AlgorithmKind::PlusRnd,
            &SnsConfig { rank: 2, theta: 8, ..Default::default() },
        );
        let mut session = pool.open(5, spec).unwrap();
        let plan = ReplayPlan {
            prefill_until: Some(200),
            warm_start: Some(AlsOptions { max_iters: 5, ..Default::default() }),
            bucket_ticks: 50,
            max_batch: 64,
            advance_to: Some(1500),
        };
        let report = replay(&mut session, &stream, &plan).unwrap();
        assert_eq!(report.prefilled + report.ingested, stream.len());
        assert!(report.prefilled > 0, "prefill horizon covers the stream head");
        assert!(report.batches > 1, "bucketing must split the live phase");
        assert!(report.updates > report.ingested as u64, "advance must flush boundary events");
        let health = session.report().unwrap();
        assert_eq!(health.error, None);
        drop(session);
        pool.join();
    }

    #[test]
    fn replay_surfaces_typed_errors_with_progress() {
        let pool = EnginePool::new(PoolConfig {
            shards: 1,
            base_seed: 0,
            queue_depth: 8,
            ..Default::default()
        });
        let spec =
            EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusVec, &SnsConfig::with_rank(2));
        let mut session = pool.open(1, spec).unwrap();
        let bad = vec![
            StreamTuple::new([0u32, 0], 1.0, 5),
            StreamTuple::new([1u32, 1], 1.0, 9),
            StreamTuple::new([2u32, 2], 1.0, 4), // out of order
        ];
        let err = replay(&mut session, &bad, &ReplayPlan::raw(0, 16)).unwrap_err();
        assert_eq!(err.accepted(), Some(2), "{err}");
        assert!(matches!(err.root_cause(), SnsError::OutOfOrder { .. }));
    }

    #[test]
    fn plan_for_dataset_matches_the_protocol() {
        let spec = crate::datasets::nytaxi_like();
        let plan = ReplayPlan::for_dataset(&spec, AlsOptions::default());
        assert_eq!(plan.prefill_until, Some(spec.window as u64 * spec.period));
        assert_eq!(plan.bucket_ticks, spec.period);
        assert_eq!(plan.advance_to, Some(spec.duration()));
        assert!(plan.warm_start.is_some());
    }

    #[test]
    fn read_trace_round_trips_a_file() {
        let stream = tuples();
        let path = std::env::temp_dir().join("sns_replay_roundtrip_test.csv");
        crate::csvio::write_stream(std::fs::File::create(&path).unwrap(), &stream).unwrap();
        let back = read_trace(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, stream);
    }

    #[test]
    fn pooled_replay_matches_serial_ingest_all_bitwise() {
        let stream = tuples();
        let base_seed = 0xcafe;
        let id = 9u64;
        let spec = EngineSpec::sns(
            &[8, 6],
            4,
            50,
            AlgorithmKind::PlusRnd,
            &SnsConfig { rank: 3, theta: 6, ..Default::default() },
        );
        let plan = ReplayPlan {
            prefill_until: Some(200),
            warm_start: Some(AlsOptions { max_iters: 8, ..Default::default() }),
            bucket_ticks: 50,
            max_batch: 48,
            advance_to: Some(1400),
        };

        // Serial reference: same spec, same derived seed, one ingest_all.
        let mut serial = spec.clone().build(stream_seed(base_seed, id));
        let cut = stream.partition_point(|t| t.time <= 200);
        serial.prefill_all(&stream[..cut]).unwrap();
        serial.warm_start(&AlsOptions { max_iters: 8, ..Default::default() });
        serial.ingest_all(&stream[cut..]).unwrap();
        serial.advance_to(1400);

        let pool = EnginePool::new(PoolConfig {
            shards: 3,
            base_seed,
            queue_depth: 8,
            ..Default::default()
        });
        let mut session = pool.open(id, spec).unwrap();
        replay(&mut session, &stream, &plan).unwrap();
        let report = session.report().unwrap();
        assert_eq!(report.error, None);
        assert_eq!(report.fitness.to_bits(), serial.fitness().to_bits());
        assert_eq!(report.updates_applied, serial.updates_applied());
    }
}
