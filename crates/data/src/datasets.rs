//! The four dataset descriptors (Tables II–III of the paper) and their
//! synthetic twins.
//!
//! Paper-reported statistics are kept verbatim for the Table II harness;
//! `base_dims` / `default_events` are the scaled generation parameters
//! our experiments run at (see `DESIGN.md` §4 for the substitution
//! rationale).

use crate::spec::DatasetSpec;

/// Divvy Bikes: `sources × destinations × timestamps [minutes]`,
/// T = 1440 min (1 day).
pub fn divvy_like() -> DatasetSpec {
    DatasetSpec {
        name: "Divvy Bikes",
        description: "sources x destinations x timestamps [minutes]",
        tick_unit: "minutes",
        paper_dims: &[673, 673, 525_594],
        paper_nnz: 3.82e6,
        paper_density: 1.604e-5,
        rank: 20,
        window: 10,
        period: 1440,
        theta: 20,
        eta: 1000.0,
        base_dims: &[120, 120],
        default_events: 45_000,
        latent_rank: 8,
        noise_fraction: 0.15,
        zipf_exponent: 1.5,
        day_ticks: 1440,
    }
}

/// Chicago Crime: `communities × crime types × timestamps [hours]`,
/// T = 720 h (1 month).
pub fn chicago_crime_like() -> DatasetSpec {
    DatasetSpec {
        name: "Chicago Crime",
        description: "communities x crime types x timestamps [hours]",
        tick_unit: "hours",
        paper_dims: &[77, 32, 148_464],
        paper_nnz: 5.33e6,
        paper_density: 1.457e-2,
        rank: 20,
        window: 10,
        period: 720,
        theta: 20,
        eta: 1000.0,
        base_dims: &[77, 32],
        default_events: 40_000,
        latent_rank: 8,
        noise_fraction: 0.25,
        zipf_exponent: 1.2,
        day_ticks: 24,
    }
}

/// New York Taxi: `sources × destinations × timestamps [seconds]`,
/// T = 3600 s (1 hour). The paper's main running example (Figs. 1, 9).
pub fn nytaxi_like() -> DatasetSpec {
    DatasetSpec {
        name: "New York Taxi",
        description: "sources x destinations x timestamps [seconds]",
        tick_unit: "seconds",
        paper_dims: &[265, 265, 5_184_000],
        paper_nnz: 84.39e6,
        paper_density: 2.318e-4,
        rank: 20,
        window: 10,
        period: 3600,
        theta: 20,
        eta: 1000.0,
        base_dims: &[150, 150],
        default_events: 60_000,
        latent_rank: 6,
        noise_fraction: 0.08,
        zipf_exponent: 1.8,
        day_ticks: 86_400,
    }
}

/// Ride Austin: `sources × destinations × colors × timestamps [minutes]`,
/// T = 1440 min (1 day). The only 4-mode dataset.
pub fn ride_austin_like() -> DatasetSpec {
    DatasetSpec {
        name: "Ride Austin",
        description: "sources x destinations x colors x timestamps [minutes]",
        tick_unit: "minutes",
        paper_dims: &[219, 219, 24, 285_136],
        paper_nnz: 0.89e6,
        paper_density: 2.739e-6,
        rank: 20,
        window: 10,
        period: 1440,
        theta: 50,
        eta: 1000.0,
        base_dims: &[100, 100, 24],
        default_events: 30_000,
        latent_rank: 6,
        noise_fraction: 0.15,
        zipf_exponent: 1.6,
        day_ticks: 1440,
    }
}

/// All four datasets in the paper's presentation order.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![divvy_like(), chicago_crime_like(), nytaxi_like(), ride_austin_like()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn four_datasets_with_paper_defaults() {
        let all = all_datasets();
        assert_eq!(all.len(), 4);
        for d in &all {
            // Table III invariants.
            assert_eq!(d.rank, 20, "{}", d.name);
            assert_eq!(d.window, 10, "{}", d.name);
            assert!(d.theta == 20 || d.theta == 50);
            assert_eq!(d.eta, 1000.0);
            // Table II shape: time mode last, categorical dims positive.
            assert!(d.paper_dims.len() >= 3);
            assert!(d.paper_nnz > 0.0);
            assert!(d.base_dims.len() == d.paper_dims.len() - 1);
        }
    }

    #[test]
    fn ride_austin_is_4mode() {
        assert_eq!(ride_austin_like().base_dims.len(), 3);
        assert_eq!(divvy_like().base_dims.len(), 2);
    }

    #[test]
    fn periods_match_paper() {
        assert_eq!(divvy_like().period, 1440);
        assert_eq!(chicago_crime_like().period, 720);
        assert_eq!(nytaxi_like().period, 3600);
        assert_eq!(ride_austin_like().period, 1440);
    }

    #[test]
    fn generators_produce_valid_streams() {
        for d in all_datasets() {
            let s = generate(&d.generator(500, 7));
            assert_eq!(s.len(), 500, "{}", d.name);
            for tu in &s {
                assert_eq!(tu.coords.order(), d.base_dims.len());
                for (m, &n) in d.base_dims.iter().enumerate() {
                    assert!((tu.coords.get(m) as usize) < n);
                }
            }
        }
    }

    #[test]
    fn densities_span_paper_regimes() {
        // Table II spans 1e-2 (Crime) down to 1e-6 (Ride Austin).
        let all = all_datasets();
        let max = all.iter().map(|d| d.paper_density).fold(0.0, f64::max);
        let min = all.iter().map(|d| d.paper_density).fold(1.0, f64::min);
        assert!(max > 1e-2 && min < 1e-5);
    }
}
