//! Anomaly injection (Section VI-G).
//!
//! The paper injects "abnormally large changes (specifically, 15, which is
//! 5 times the maximum change in 1 second in the data stream) in 20
//! randomly chosen entries" of the New York Taxi stream, then checks how
//! fast and precisely each method surfaces them via error z-scores.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sns_stream::StreamTuple;
use sns_tensor::Coord;

/// Record of one injected anomaly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedAnomaly {
    /// When the spike was injected.
    pub time: u64,
    /// Categorical coordinates of the spike.
    pub coords: Coord,
    /// Spike value.
    pub value: f64,
}

/// Injects `count` spikes of `multiplier × max_normal_change` into the
/// stream at random positions within `[t_min, t_max)`, using random
/// categorical coordinates drawn from `base_dims`. Returns the modified
/// (still chronological) stream and the injection records.
pub fn inject_anomalies(
    stream: &[StreamTuple],
    base_dims: &[usize],
    count: usize,
    multiplier: f64,
    t_min: u64,
    t_max: u64,
    seed: u64,
) -> (Vec<StreamTuple>, Vec<InjectedAnomaly>) {
    assert!(t_min < t_max, "empty injection window");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_change = stream.iter().map(|t| t.value).fold(0.0_f64, f64::max).max(1.0);
    let spike = multiplier * max_change;

    let mut injected: Vec<InjectedAnomaly> = (0..count)
        .map(|_| {
            let coords: Vec<u32> = base_dims.iter().map(|&n| rng.gen_range(0..n as u32)).collect();
            InjectedAnomaly {
                time: rng.gen_range(t_min..t_max),
                coords: Coord::new(&coords),
                value: spike,
            }
        })
        .collect();
    injected.sort_by_key(|a| a.time);

    // Merge (both inputs sorted by time).
    let mut merged = Vec::with_capacity(stream.len() + count);
    let mut ai = 0;
    for tu in stream {
        while ai < injected.len() && injected[ai].time <= tu.time {
            let a = &injected[ai];
            merged.push(StreamTuple::new(a.coords, a.value, a.time));
            ai += 1;
        }
        merged.push(*tu);
    }
    for a in &injected[ai..] {
        merged.push(StreamTuple::new(a.coords, a.value, a.time));
    }
    (merged, injected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_stream(n: usize) -> Vec<StreamTuple> {
        (0..n).map(|i| StreamTuple::new([0u32, 0], 1.0, (i * 3) as u64)).collect()
    }

    #[test]
    fn injects_requested_count_with_correct_magnitude() {
        let s = base_stream(100);
        let (merged, injected) = inject_anomalies(&s, &[4, 4], 5, 5.0, 10, 200, 42);
        assert_eq!(injected.len(), 5);
        assert_eq!(merged.len(), 105);
        for a in &injected {
            assert_eq!(a.value, 5.0); // 5 × max normal change (1.0)
            assert!((10..200).contains(&a.time));
            assert!(a.coords.get(0) < 4 && a.coords.get(1) < 4);
        }
    }

    #[test]
    fn merged_stream_stays_chronological() {
        let s = base_stream(200);
        let (merged, _) = inject_anomalies(&s, &[4, 4], 20, 5.0, 0, 600, 7);
        for w in merged.windows(2) {
            assert!(w[0].time <= w[1].time, "{} > {}", w[0].time, w[1].time);
        }
    }

    #[test]
    fn injections_after_stream_end_are_appended() {
        let s = base_stream(10); // times 0..=27
        let (merged, injected) = inject_anomalies(&s, &[2, 2], 3, 2.0, 100, 200, 3);
        assert_eq!(merged.len(), 13);
        let tail: Vec<u64> = merged[10..].iter().map(|t| t.time).collect();
        let mut expect: Vec<u64> = injected.iter().map(|a| a.time).collect();
        expect.sort_unstable();
        assert_eq!(tail, expect);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = base_stream(50);
        let a = inject_anomalies(&s, &[4, 4], 5, 5.0, 0, 150, 9);
        let b = inject_anomalies(&s, &[4, 4], 5, 5.0, 0, 150, 9);
        assert_eq!(a.1, b.1);
    }
}
