//! CP-structured synthetic stream generator.
//!
//! Events are drawn from `n_components` latent components. Component `r`
//! owns one Zipf-skewed categorical profile per mode (its "community")
//! and a diurnal activity curve (two Gaussian rush-hour bumps over the
//! synthetic day plus a weekday/weekend modulation). A configurable
//! fraction of events is instead drawn uniformly — the unstructured tail
//! that keeps the tensor from being exactly low rank, which is what makes
//! the fitness trade-offs of the paper visible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sns_stream::StreamTuple;
use sns_tensor::Coord;

/// Configuration of the synthetic stream generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Categorical mode lengths `N₁,…,N_{M−1}`.
    pub base_dims: Vec<usize>,
    /// Number of latent components (the "true" CP rank of the signal).
    pub n_components: usize,
    /// Number of events to emit.
    pub events: usize,
    /// Stream duration in ticks; timestamps are spread over `[0, duration)`.
    pub duration: u64,
    /// Fraction of events drawn uniformly at random.
    pub noise_fraction: f64,
    /// Zipf exponent of the categorical profiles (higher = more skewed).
    pub zipf_exponent: f64,
    /// Ticks per synthetic day (diurnal activity period).
    pub day_ticks: u64,
    /// Values are `1 ..= max_value`, geometric-ish (1 dominates).
    pub max_value: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            base_dims: vec![50, 50],
            n_components: 8,
            events: 10_000,
            duration: 100_000,
            noise_fraction: 0.15,
            zipf_exponent: 1.1,
            day_ticks: 86_400,
            max_value: 3,
            seed: 0xda7a,
        }
    }
}

/// A categorical distribution sampled via its cumulative weights.
struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    fn from_weights(weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "categorical needs positive total weight");
        Categorical { cumulative }
    }

    /// Zipf weights over a random permutation of `0..n`.
    fn zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, exponent: f64) -> Self {
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut weights = vec![0.0; n];
        for (rank_pos, &idx) in perm.iter().enumerate() {
            weights[idx] = 1.0 / ((rank_pos + 1) as f64).powf(exponent);
        }
        Categorical::from_weights(&weights)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty categorical");
        let u = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

/// One latent component: a categorical profile per mode + temporal shape.
struct Component {
    profiles: Vec<Categorical>,
    /// Rush-hour bump centers as day fractions (e.g. 0.35 ≈ morning).
    bump_centers: [f64; 2],
    bump_width: f64,
    base_rate: f64,
}

impl Component {
    /// Relative activity at day fraction `f ∈ [0, 1)`.
    fn activity(&self, f: f64) -> f64 {
        let mut a = 0.15; // floor: activity never fully stops
        for &c in &self.bump_centers {
            // circular distance on the day
            let d = (f - c).abs().min(1.0 - (f - c).abs());
            a += (-0.5 * (d / self.bump_width).powi(2)).exp();
        }
        a * self.base_rate
    }
}

/// Generates a chronological synthetic multi-aspect data stream.
pub fn generate(cfg: &GeneratorConfig) -> Vec<StreamTuple> {
    assert!(!cfg.base_dims.is_empty(), "need at least one categorical mode");
    assert!(cfg.n_components > 0, "need at least one component");
    assert!(cfg.duration > 0, "duration must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let components: Vec<Component> = (0..cfg.n_components)
        .map(|_| Component {
            profiles: cfg
                .base_dims
                .iter()
                .map(|&n| Categorical::zipf(&mut rng, n, cfg.zipf_exponent))
                .collect(),
            bump_centers: [rng.gen_range(0.25..0.45), rng.gen_range(0.6..0.85)],
            bump_width: rng.gen_range(0.04..0.12),
            base_rate: 1.0 / ((1.0 + rng.gen::<f64>() * cfg.n_components as f64).sqrt()),
        })
        .collect();

    // Timestamps follow a diurnal intensity (two rush-hour bumps) via
    // rejection sampling, so the *event rate* itself carries the daily
    // texture of real traffic — not just the component mixture.
    let day = cfg.day_ticks.max(1);
    let intensity = |t: u64| -> f64 {
        let f = (t % day) as f64 / day as f64;
        let bump = |c: f64, w: f64| {
            let d = (f - c).abs().min(1.0 - (f - c).abs());
            (-0.5 * (d / w) * (d / w)).exp()
        };
        0.25 + bump(0.33, 0.07) + 0.8 * bump(0.74, 0.09)
    };
    let max_intensity = 2.05; // floor + both bumps can barely overlap
    let mut times: Vec<u64> = Vec::with_capacity(cfg.events);
    while times.len() < cfg.events {
        let t = rng.gen_range(0..cfg.duration);
        if rng.gen::<f64>() * max_intensity < intensity(t) {
            times.push(t);
        }
    }
    times.sort_unstable();

    let mut out = Vec::with_capacity(cfg.events);
    let mut weights = vec![0.0; cfg.n_components];
    for t in times {
        let value = sample_value(&mut rng, cfg.max_value);
        let coords: Vec<u32> = if rng.gen::<f64>() < cfg.noise_fraction {
            cfg.base_dims.iter().map(|&n| rng.gen_range(0..n as u32)).collect()
        } else {
            // Pick a component by its activity at this time of "day".
            let day_fraction = (t % cfg.day_ticks.max(1)) as f64 / cfg.day_ticks.max(1) as f64;
            // Weekend damping: every 6th and 7th synthetic day is quieter
            // for even components, busier for odd ones (weekly texture).
            let day_index = t / cfg.day_ticks.max(1);
            let weekend = day_index % 7 >= 5;
            for (r, comp) in components.iter().enumerate() {
                let mut w = comp.activity(day_fraction);
                if weekend {
                    w *= if r % 2 == 0 { 0.4 } else { 1.4 };
                }
                weights[r] = w;
            }
            let comp = &components[Categorical::from_weights(&weights).sample(&mut rng)];
            comp.profiles.iter().map(|p| p.sample(&mut rng) as u32).collect()
        };
        out.push(StreamTuple::new(Coord::new(&coords), value as f64, t));
    }
    out
}

fn sample_value<R: Rng + ?Sized>(rng: &mut R, max_value: u32) -> u32 {
    // Geometric-ish: 1 with prob ~0.8, then tail up to max_value.
    let mut v = 1;
    while v < max_value && rng.gen::<f64>() < 0.2 {
        v += 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig {
            base_dims: vec![20, 15],
            n_components: 4,
            events: 3000,
            duration: 30_000,
            day_ticks: 5_000,
            ..Default::default()
        }
    }

    #[test]
    fn emits_requested_count_chronologically_in_bounds() {
        let cfg = small_cfg();
        let s = generate(&cfg);
        assert_eq!(s.len(), 3000);
        for w in s.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for tu in &s {
            assert!(tu.time < cfg.duration);
            assert_eq!(tu.coords.order(), 2);
            assert!((tu.coords.get(0) as usize) < 20);
            assert!((tu.coords.get(1) as usize) < 15);
            assert!(tu.value >= 1.0 && tu.value <= cfg.max_value as f64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small_cfg();
        assert_eq!(generate(&cfg), generate(&cfg));
        let mut cfg2 = small_cfg();
        cfg2.seed += 1;
        assert_ne!(generate(&cfg), generate(&cfg2));
    }

    #[test]
    fn skewed_not_uniform() {
        // With Zipf profiles, the most popular source should receive far
        // more than the uniform share of events.
        let cfg = GeneratorConfig { noise_fraction: 0.0, ..small_cfg() };
        let s = generate(&cfg);
        let mut counts = [0usize; 20];
        for tu in &s {
            counts[tu.coords.get(0) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let uniform_share = s.len() / 20;
        assert!(max > 2 * uniform_share, "max {max} vs uniform {uniform_share}");
    }

    #[test]
    fn pure_noise_is_roughly_uniform() {
        let cfg = GeneratorConfig { noise_fraction: 1.0, events: 20_000, ..small_cfg() };
        let s = generate(&cfg);
        let mut counts = [0usize; 20];
        for tu in &s {
            counts[tu.coords.get(0) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "noise mode should be near-uniform: {counts:?}");
    }

    #[test]
    fn diurnal_structure_present() {
        // Activity at rush hours should exceed the floor markedly: compare
        // busiest vs quietest day-fraction deciles.
        let cfg = GeneratorConfig {
            noise_fraction: 0.0,
            events: 30_000,
            duration: 50_000,
            day_ticks: 10_000,
            ..small_cfg()
        };
        let s = generate(&cfg);
        let mut buckets = [0usize; 10];
        for tu in &s {
            let f = (tu.time % 10_000) as f64 / 10_000.0;
            buckets[(f * 10.0) as usize % 10] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max > min * 2, "no diurnal texture: {buckets:?}");
    }

    #[test]
    fn values_mostly_one() {
        let s = generate(&small_cfg());
        let ones = s.iter().filter(|t| t.value == 1.0).count();
        assert!(ones * 10 > s.len() * 7, "values should be mostly 1");
    }

    #[test]
    fn categorical_sampler_is_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = Categorical::from_weights(&[1.0, 0.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_weights_rejected() {
        let _ = Categorical::from_weights(&[0.0, 0.0]);
    }
}
