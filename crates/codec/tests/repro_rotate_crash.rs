use sns_codec::store::CheckpointStore;
use sns_codec::wal::{recover_pool_wal, WalSet};
use sns_core::config::{AlgorithmKind, SnsConfig};
use sns_runtime::{BatchJournal, EnginePool, EngineSpec, PoolConfig};
use sns_stream::StreamTuple;
use std::sync::Arc;

fn tuples(n: u64, from: u64) -> Vec<StreamTuple> {
    (from..from + n).map(|t| StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).collect()
}

#[test]
fn crash_right_after_rotation_then_recover_twice() {
    let dir = std::env::temp_dir().join(format!("sns-rotate-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal = Arc::new(WalSet::create(dir.join("wal")).unwrap());
    let store = CheckpointStore::create(dir.join("ckpt")).unwrap();
    let config = SnsConfig { rank: 2, theta: 2, ..Default::default() };
    let spec = EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
    let trace = tuples(60, 0);

    {
        let pool = EnginePool::new(PoolConfig {
            shards: 1,
            base_seed: 7,
            journal: Some(Arc::clone(&wal) as Arc<dyn BatchJournal>),
            ..Default::default()
        });
        let mut s = pool.open(5, spec.clone()).unwrap();
        let _ = s.ingest_batch(&trace[..40]).unwrap();
        let snapshots: Vec<_> =
            pool.checkpoint_all().into_iter().map(|(_, r)| r.unwrap()).collect();
        assert_eq!(snapshots[0].wal_seq, 40);
        let (gen, _) = store.save_incremental(&snapshots).unwrap();
        // Records 41..=50 land in g0 *before* the rotation (daemon race:
        // ingest continues while save_incremental runs).
        let _ = s.ingest_batch(&trace[40..50]).unwrap();
        wal.rotate(5, gen, snapshots[0].wal_seq).unwrap();
        // Crash immediately after rotation: g1 holds only its header.
        drop(s);
        pool.join();
    }
    drop(wal);

    // First recovery on a reopened WalSet.
    let wal = Arc::new(WalSet::create(dir.join("wal")).unwrap());
    {
        let pool = EnginePool::new(PoolConfig {
            shards: 1,
            base_seed: 7,
            journal: Some(Arc::clone(&wal) as Arc<dyn BatchJournal>),
            ..Default::default()
        });
        let (sessions, replayed) = recover_pool_wal(&pool, &store, &wal).unwrap();
        assert_eq!(replayed, 10);
        assert!(wal.error().is_none(), "wal error: {:?}", wal.error());
        drop(sessions);
        pool.join();
    }
    drop(wal);

    // Second crash + recovery: must also succeed.
    let wal = Arc::new(WalSet::create(dir.join("wal")).unwrap());
    let tail = wal.read_tail(5, 40);
    println!("second read_tail: {:?}", tail.as_ref().map(|t| t.len()));
    tail.expect("read_tail after rotate-crash-recover cycle must not report corruption");
    let _ = std::fs::remove_dir_all(&dir);
}
