//! # sns-codec
//!
//! Durable, portable engine state: a self-describing **versioned binary
//! format** for [`EngineSnapshot`]s plus a file-backed
//! [`CheckpointStore`](store::CheckpointStore) for pool-wide
//! checkpointing and crash recovery.
//!
//! The model state of a continuously maintained CP decomposition *is*
//! the product: losing it means re-prefilling `W·T` periods of stream
//! and desynchronizing the sampling RNGs that make the RND variants
//! reproducible. This crate turns the runtime's in-process
//! [`EngineState`](sns_runtime::EngineState) capture into bytes that can
//! cross processes, machines, and restarts — and back, **bitwise**: a
//! snapshot decoded from disk continues exactly the stream the captured
//! engine would have produced.
//!
//! ## Format
//!
//! Little-endian throughout; floats travel by bit pattern. The envelope:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SNSC"
//! 4       2     schema version (u16, currently 1)
//! 6       1     section count (3)
//! 7       …     sections: tag u8 | length u64 | payload
//!               tag 1 META  : stream_id u64 | seed u64
//!               tag 2 SPEC  : EngineSpec (see wire module)
//!               tag 3 STATE : EngineState (see wire module)
//! end−8   8     FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! Section lengths let a reader skip or validate sections without
//! understanding their contents; unknown *trailing* sections are
//! rejected (the section count is part of the schema). Decoding verifies
//! magic, version, section framing, and the checksum **before** parsing
//! any payload, and every failure is a typed
//! [`SnsError::Codec`] — truncation, corruption, and version
//! skew never panic.
//!
//! ## Schema-version policy
//!
//! Any change to the byte layout — a new field, a reordered field, a
//! different enum tag — must bump [`SCHEMA_VERSION`]. Old readers then
//! fail with [`CodecFault::UnsupportedVersion`](sns_error::CodecFault)
//! instead of misparsing. The checked-in golden fixture
//! (`tests/fixtures/`) makes silent drift a CI failure.
//!
//! No serde: the wire forms are hand-rolled like the rest of the
//! workspace's `vendor/` shims, keeping the dependency set closed.

pub mod bytes;
pub mod store;
pub mod wire;

use bytes::{fnv1a, Reader, Writer};
use sns_error::{CodecFault, SnsError};
use sns_runtime::EngineSnapshot;

/// Leading magic of every serialized snapshot.
pub const MAGIC: [u8; 4] = *b"SNSC";

/// Current schema version. Bump on **any** byte-layout change.
pub const SCHEMA_VERSION: u16 = 1;

const SECTION_META: u8 = 1;
const SECTION_SPEC: u8 = 2;
const SECTION_STATE: u8 = 3;

fn put_section(w: &mut Writer, tag: u8, body: impl FnOnce(&mut Writer)) {
    w.u8(tag);
    let len_at = w.len();
    w.u64(0); // patched below
    let start = w.len();
    body(w);
    let len = (w.len() - start) as u64;
    w.patch_u64(len_at, len);
}

/// Serializes a snapshot to the versioned binary format.
pub fn to_bytes(snapshot: &EngineSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.u16(SCHEMA_VERSION);
    w.u8(3);
    put_section(&mut w, SECTION_META, |w| {
        w.u64(snapshot.stream_id);
        w.u64(snapshot.seed);
    });
    put_section(&mut w, SECTION_SPEC, |w| wire::put_spec(w, &snapshot.spec));
    put_section(&mut w, SECTION_STATE, |w| wire::put_engine_state(w, &snapshot.state));
    let checksum = fnv1a(w.as_slice());
    w.u64(checksum);
    w.into_bytes()
}

/// Deserializes a snapshot, validating magic, version, section framing,
/// and checksum before touching any payload.
///
/// # Errors
/// [`SnsError::Codec`] with a precise [`CodecFault`]:
/// `Truncated` (bytes end early), `BadMagic`, `UnsupportedVersion`,
/// `Checksum` (content corrupted), or `Invalid` (well-framed bytes that
/// describe an inconsistent structure).
pub fn from_bytes(bytes: &[u8]) -> Result<EngineSnapshot, SnsError> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(4, "magic")?;
    if magic != MAGIC {
        return Err(SnsError::Codec {
            fault: CodecFault::BadMagic,
            offset: 0,
            detail: format!("got {magic:02x?}"),
        });
    }
    let version = r.u16("version")?;
    if version != SCHEMA_VERSION {
        return Err(SnsError::Codec {
            fault: CodecFault::UnsupportedVersion,
            offset: 4,
            detail: format!("snapshot v{version}, this build reads v{SCHEMA_VERSION}"),
        });
    }
    let sections = r.u8("section count")?;
    if sections != 3 {
        return Err(r.invalid(format!("expected 3 sections, header says {sections}")));
    }
    // Walk the section frames to find where the checksum must sit, then
    // verify it before parsing any payload.
    let mut spans: Vec<(u8, usize, usize)> = Vec::with_capacity(sections as usize);
    for _ in 0..sections {
        let tag = r.u8("section tag")?;
        let len = r.usize("section length")?;
        let start = r.pos();
        r.bytes(len, "section payload")?;
        spans.push((tag, start, len));
    }
    let body_end = r.pos();
    let stored = r.u64("checksum")?;
    r.expect_end("snapshot")?;
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(SnsError::Codec {
            fault: CodecFault::Checksum,
            offset: body_end,
            detail: format!("stored {stored:#018x}, computed {computed:#018x}"),
        });
    }

    let section = |want: u8, name: &str| -> Result<Reader<'_>, SnsError> {
        let &(tag, start, len) = spans
            .iter()
            .find(|&&(tag, _, _)| tag == want)
            .ok_or_else(|| r.invalid(format!("missing {name} section")))?;
        debug_assert_eq!(tag, want);
        Ok(Reader::new(&bytes[start..start + len]))
    };

    let mut meta = section(SECTION_META, "META")?;
    let stream_id = meta.u64("stream_id")?;
    let seed = meta.u64("seed")?;
    meta.expect_end("META")?;

    let mut spec_r = section(SECTION_SPEC, "SPEC")?;
    let spec = wire::get_spec(&mut spec_r)?;
    spec_r.expect_end("SPEC")?;

    let mut state_r = section(SECTION_STATE, "STATE")?;
    let state = wire::get_engine_state(&mut state_r)?;
    state_r.expect_end("STATE")?;

    Ok(EngineSnapshot { stream_id, spec, seed, state })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_core::engine::SnsEngine;
    use sns_runtime::{EngineSpec, StateCapture};
    use sns_stream::StreamTuple;

    fn snapshot() -> EngineSnapshot {
        let config = SnsConfig { rank: 2, theta: 2, seed: 5, ..Default::default() };
        let mut e = SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
        for t in 0..60u64 {
            e.ingest(StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).unwrap();
        }
        EngineSnapshot {
            stream_id: 11,
            spec: EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config),
            seed: 0xabc,
            state: e.capture().unwrap(),
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let bytes = to_bytes(&snapshot());
        let decoded = from_bytes(&bytes).unwrap();
        assert_eq!(decoded.stream_id, 11);
        assert_eq!(decoded.seed, 0xabc);
        assert_eq!(to_bytes(&decoded), bytes, "re-encode must be canonical");
    }

    #[test]
    fn truncation_at_every_length_yields_typed_errors() {
        let bytes = to_bytes(&snapshot());
        for cut in 0..bytes.len() {
            match from_bytes(&bytes[..cut]) {
                Err(SnsError::Codec { .. }) => {}
                Err(other) => panic!("cut {cut}: non-codec error {other:?}"),
                Ok(_) => panic!("cut {cut}: truncated snapshot decoded"),
            }
        }
    }

    #[test]
    fn corruption_is_detected_by_the_checksum() {
        let bytes = to_bytes(&snapshot());
        // Flip one bit somewhere in the body (past the header).
        for at in [7usize, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            match from_bytes(&bad) {
                Err(SnsError::Codec { fault, .. }) => {
                    assert!(
                        matches!(
                            fault,
                            sns_error::CodecFault::Checksum | sns_error::CodecFault::Truncated
                        ),
                        "byte {at}: fault {fault:?}"
                    );
                }
                other => panic!("byte {at}: {other:?}"),
            }
        }
        // Flip a checksum byte itself.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            from_bytes(&bad),
            Err(SnsError::Codec { fault: sns_error::CodecFault::Checksum, .. })
        ));
    }

    #[test]
    fn nested_decorator_bomb_is_rejected_not_a_stack_overflow() {
        // A well-framed, checksum-valid snapshot whose STATE payload is
        // thousands of repeated Anomaly tags must fail with a typed
        // Invalid error instead of recursing once per byte.
        let good = to_bytes(&snapshot());
        let mut w = Writer::new();
        w.bytes(&good[..7]); // magic + version + section count
        let mut r = Reader::new(&good[7..good.len() - 8]);
        for _ in 0..2 {
            let tag = r.u8("tag").unwrap();
            let len = r.usize("len").unwrap();
            let payload = r.bytes(len, "payload").unwrap();
            w.u8(tag);
            w.u64(len as u64);
            w.bytes(payload);
        }
        w.u8(3); // STATE section
        let bomb = vec![2u8; 100_000];
        w.u64(bomb.len() as u64);
        w.bytes(&bomb);
        let checksum = fnv1a(w.as_slice());
        w.u64(checksum);
        match from_bytes(&w.into_bytes()) {
            Err(SnsError::Codec { fault: CodecFault::Invalid, detail, .. }) => {
                assert!(detail.contains("nested"), "{detail}");
            }
            other => panic!("expected Invalid, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let bytes = to_bytes(&snapshot());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            from_bytes(&bad),
            Err(SnsError::Codec { fault: sns_error::CodecFault::BadMagic, .. })
        ));
        let mut future = bytes;
        future[4] = 0xfe;
        future[5] = 0xff;
        assert!(matches!(
            from_bytes(&future),
            Err(SnsError::Codec { fault: sns_error::CodecFault::UnsupportedVersion, .. })
        ));
    }

    /// An `f32`-profile snapshot round-trips byte-identically, carries a
    /// wire tag distinct from the `f64` encoding of the same engine, and
    /// restores to a bitwise-equal engine (the f32 invariant makes the
    /// rounded masters exactly representable).
    #[test]
    fn f32_profile_round_trips_with_a_distinct_wire_flag() {
        use sns_core::config::Precision;
        let mut encoded = Vec::new();
        for precision in [Precision::F64, Precision::F32] {
            let config = SnsConfig { rank: 3, theta: 2, seed: 9, precision, ..Default::default() };
            let mut e = SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusVec, &config);
            for t in 0..60u64 {
                e.ingest(StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).unwrap();
            }
            let snap = EngineSnapshot {
                stream_id: 7,
                spec: EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusVec, &config),
                seed: 0xf00d,
                state: e.capture().unwrap(),
            };
            let bytes = to_bytes(&snap);
            let decoded = from_bytes(&bytes).unwrap();
            assert_eq!(to_bytes(&decoded), bytes, "re-encode must be canonical");
            // The restored engine continues bitwise-identically to the
            // captured one.
            let mut restored = decoded.state.into_engine().unwrap();
            for t in 60..90u64 {
                let tu = StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t);
                restored.ingest(tu).unwrap();
                e.ingest(tu).unwrap();
            }
            assert_eq!(
                to_bytes(&EngineSnapshot {
                    stream_id: 7,
                    spec: decoded.spec.clone(),
                    seed: 0xf00d,
                    state: restored.snapshot().unwrap(),
                }),
                to_bytes(&EngineSnapshot {
                    stream_id: 7,
                    spec: snap.spec.clone(),
                    seed: 0xf00d,
                    state: e.capture().unwrap(),
                }),
                "{precision:?}: restored engine drifted from the original"
            );
            encoded.push(bytes);
        }
        assert_ne!(encoded[0], encoded[1], "f32 and f64 profiles must encode distinctly");
    }
}
