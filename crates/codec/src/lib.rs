//! # sns-codec
//!
//! Durable, portable engine state: a self-describing **versioned binary
//! format** for [`EngineSnapshot`]s, a file-backed
//! [`CheckpointStore`](store::CheckpointStore) with full **and delta**
//! checkpoints, a per-stream [write-ahead log](wal) of accepted
//! operations, and a [background checkpoint daemon](daemon) that ties
//! the three together.
//!
//! The model state of a continuously maintained CP decomposition *is*
//! the product: losing it means re-prefilling `W·T` periods of stream
//! and desynchronizing the sampling RNGs that make the RND variants
//! reproducible. This crate turns the runtime's in-process
//! [`EngineState`](sns_runtime::EngineState) capture into bytes that can
//! cross processes, machines, and restarts — and back, **bitwise**: a
//! snapshot decoded from disk continues exactly the stream the captured
//! engine would have produced. The WAL closes the gap *between*
//! checkpoints: recovery is "restore the newest checkpoint, replay the
//! bounded journal tail" (see [`wal::recover_pool_wal`]).
//!
//! ## Envelope format (v2)
//!
//! Little-endian throughout; floats travel by bit pattern:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SNSC"
//! 4       2     schema version (u16, currently 2)
//! 6       1     section count (3)
//! 7       …     sections: tag u8 | length u64 | payload
//!               tag 1 META  : stream_id u64 | seed u64 | wal_seq u64
//!               tag 2 SPEC  : EngineSpec (see wire module)
//!               tag 3 STATE : EngineState (see wire module), or
//!               tag 4 DELTA : base_crc u64 | state_len u64 | state_crc u64
//!                             | delta program rebuilding STATE from the
//!                             base snapshot's STATE payload (see delta)
//! end−8   8     FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! A snapshot carries exactly one of STATE (self-contained, "full") or
//! DELTA ("delta", decodable only next to its base via
//! [`from_bytes_with_base`]). Version 1 — identical except that META
//! has no `wal_seq` and DELTA does not exist — is still read by
//! [`from_bytes`] (`wal_seq` decodes as 0) and written by
//! [`to_bytes_v1`] for fixtures and downgrade paths. The normative
//! byte-level specification lives in `docs/DURABILITY.md`.
//!
//! Section lengths let a reader skip or validate sections without
//! understanding their contents; unknown *trailing* sections are
//! rejected (the section count is part of the schema). Decoding verifies
//! magic, version, section framing, and the checksum **before** parsing
//! any payload, and every failure is a typed
//! [`SnsError::Codec`] — truncation, corruption, and version
//! skew never panic.
//!
//! ## Schema-version policy
//!
//! Any change to the byte layout — a new field, a reordered field, a
//! different enum tag — must bump [`SCHEMA_VERSION`]. Readers keep
//! decoding **every** prior version (this build reads v1 and v2); a
//! version this build does not know fails with
//! [`CodecFault::UnsupportedVersion`](sns_error::CodecFault)
//! instead of misparsing. The checked-in golden fixtures
//! (`tests/fixtures/`) pin both the current and the v1 wire format, so
//! silent drift in either is a CI failure.
//!
//! No serde: the wire forms are hand-rolled like the rest of the
//! workspace's `vendor/` shims, keeping the dependency set closed.

#![deny(missing_docs)]

pub mod bytes;
pub mod daemon;
pub mod delta;
pub mod store;
pub mod wal;
pub mod wire;

use bytes::{fnv1a, Reader, Writer};
use sns_error::{CodecFault, SnsError};
use sns_runtime::EngineSnapshot;

/// Leading magic of every serialized snapshot.
pub const MAGIC: [u8; 4] = *b"SNSC";

/// Current schema version. Bump on **any** byte-layout change.
pub const SCHEMA_VERSION: u16 = 2;

const SECTION_META: u8 = 1;
const SECTION_SPEC: u8 = 2;
const SECTION_STATE: u8 = 3;
const SECTION_DELTA: u8 = 4;

fn put_section(w: &mut Writer, tag: u8, body: impl FnOnce(&mut Writer)) {
    w.u8(tag);
    let len_at = w.len();
    w.u64(0); // patched below
    let start = w.len();
    body(w);
    let len = (w.len() - start) as u64;
    w.patch_u64(len_at, len);
}

/// Serializes a snapshot to the current (v2) format, self-contained.
pub fn to_bytes(snapshot: &EngineSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.u16(SCHEMA_VERSION);
    w.u8(3);
    put_section(&mut w, SECTION_META, |w| {
        w.u64(snapshot.stream_id);
        w.u64(snapshot.seed);
        w.u64(snapshot.wal_seq);
    });
    put_section(&mut w, SECTION_SPEC, |w| wire::put_spec(w, &snapshot.spec));
    put_section(&mut w, SECTION_STATE, |w| wire::put_engine_state(w, &snapshot.state));
    let checksum = fnv1a(w.as_slice());
    w.u64(checksum);
    w.into_bytes()
}

/// Serializes a snapshot to the **legacy v1** format (no `wal_seq`, no
/// delta support) — for fixtures and for handing state to a v1-only
/// reader.
///
/// # Errors
/// [`SnsError::Codec`] (`Invalid`) if `snapshot.wal_seq != 0`: v1 has
/// no field for it, and silently dropping a live WAL cursor would break
/// the recovery contract.
pub fn to_bytes_v1(snapshot: &EngineSnapshot) -> Result<Vec<u8>, SnsError> {
    if snapshot.wal_seq != 0 {
        return Err(SnsError::Codec {
            fault: CodecFault::Invalid,
            offset: 0,
            detail: format!(
                "wal_seq {} is not representable in schema v1; checkpoint+WAL streams \
                 must stay on v2",
                snapshot.wal_seq
            ),
        });
    }
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.u16(1);
    w.u8(3);
    put_section(&mut w, SECTION_META, |w| {
        w.u64(snapshot.stream_id);
        w.u64(snapshot.seed);
    });
    put_section(&mut w, SECTION_SPEC, |w| wire::put_spec(w, &snapshot.spec));
    put_section(&mut w, SECTION_STATE, |w| wire::put_engine_state(w, &snapshot.state));
    let checksum = fnv1a(w.as_slice());
    w.u64(checksum);
    Ok(w.into_bytes())
}

/// Serializes a snapshot as a **delta** against `base_bytes` (a
/// previously encoded *full* snapshot of the same stream): the STATE
/// payload is replaced by a copy/insert program over the base's. The
/// result decodes only via [`from_bytes_with_base`] with the identical
/// base bytes.
///
/// Always succeeds in producing *a* delta; whether it is smaller than
/// [`to_bytes`] is for the caller to compare (see
/// [`store::CheckpointStore::save_incremental`]).
///
/// # Errors
/// [`SnsError::Codec`] if `base_bytes` is not a decodable full
/// snapshot.
pub fn to_bytes_delta(snapshot: &EngineSnapshot, base_bytes: &[u8]) -> Result<Vec<u8>, SnsError> {
    let base = Envelope::parse(base_bytes)?;
    let base_state = base.require_full_state("delta base")?;
    let mut sw = Writer::new();
    wire::put_engine_state(&mut sw, &snapshot.state);
    let target = sw.into_bytes();
    let ops = delta::encode(base_state, &target);
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.u16(SCHEMA_VERSION);
    w.u8(3);
    put_section(&mut w, SECTION_META, |w| {
        w.u64(snapshot.stream_id);
        w.u64(snapshot.seed);
        w.u64(snapshot.wal_seq);
    });
    put_section(&mut w, SECTION_SPEC, |w| wire::put_spec(w, &snapshot.spec));
    put_section(&mut w, SECTION_DELTA, |w| {
        w.u64(fnv1a(base_bytes));
        w.u64(target.len() as u64);
        w.u64(fnv1a(&target));
        delta::put_ops(w, &ops);
    });
    let checksum = fnv1a(w.as_slice());
    w.u64(checksum);
    Ok(w.into_bytes())
}

/// A validated envelope: magic, version, section framing, and trailing
/// checksum already verified; payloads not yet parsed.
struct Envelope<'a> {
    version: u16,
    spans: Vec<(u8, usize, usize)>,
    bytes: &'a [u8],
}

impl<'a> Envelope<'a> {
    fn parse(bytes: &'a [u8]) -> Result<Self, SnsError> {
        let mut r = Reader::new(bytes);
        let magic = r.bytes(4, "magic")?;
        if magic != MAGIC {
            return Err(SnsError::Codec {
                fault: CodecFault::BadMagic,
                offset: 0,
                detail: format!("got {magic:02x?}"),
            });
        }
        let version = r.u16("version")?;
        if !(1..=SCHEMA_VERSION).contains(&version) {
            return Err(SnsError::Codec {
                fault: CodecFault::UnsupportedVersion,
                offset: 4,
                detail: format!("snapshot v{version}, this build reads v1..=v{SCHEMA_VERSION}"),
            });
        }
        let sections = r.u8("section count")?;
        if sections != 3 {
            return Err(r.invalid(format!("expected 3 sections, header says {sections}")));
        }
        // Walk the section frames to find where the checksum must sit,
        // then verify it before parsing any payload.
        let mut spans: Vec<(u8, usize, usize)> = Vec::with_capacity(sections as usize);
        for _ in 0..sections {
            let tag = r.u8("section tag")?;
            let len = r.usize("section length")?;
            let start = r.pos();
            r.bytes(len, "section payload")?;
            spans.push((tag, start, len));
        }
        let body_end = r.pos();
        let stored = r.u64("checksum")?;
        r.expect_end("snapshot")?;
        let computed = fnv1a(&bytes[..body_end]);
        if stored != computed {
            return Err(SnsError::Codec {
                fault: CodecFault::Checksum,
                offset: body_end,
                detail: format!("stored {stored:#018x}, computed {computed:#018x}"),
            });
        }
        Ok(Envelope { version, spans, bytes })
    }

    fn payload(&self, want: u8) -> Option<&'a [u8]> {
        self.spans
            .iter()
            .find(|&&(tag, _, _)| tag == want)
            .map(|&(_, start, len)| &self.bytes[start..start + len])
    }

    fn section(&self, want: u8, name: &str) -> Result<Reader<'a>, SnsError> {
        self.payload(want).map(Reader::new).ok_or_else(|| SnsError::Codec {
            fault: CodecFault::Invalid,
            offset: 0,
            detail: format!("missing {name} section"),
        })
    }

    /// META fields; `wal_seq` decodes as 0 from v1 envelopes.
    fn meta(&self) -> Result<(u64, u64, u64), SnsError> {
        let mut meta = self.section(SECTION_META, "META")?;
        let stream_id = meta.u64("stream_id")?;
        let seed = meta.u64("seed")?;
        let wal_seq = if self.version >= 2 { meta.u64("wal_seq")? } else { 0 };
        meta.expect_end("META")?;
        Ok((stream_id, seed, wal_seq))
    }

    fn spec(&self) -> Result<sns_runtime::EngineSpec, SnsError> {
        let mut spec_r = self.section(SECTION_SPEC, "SPEC")?;
        let spec = wire::get_spec(&mut spec_r)?;
        spec_r.expect_end("SPEC")?;
        Ok(spec)
    }

    /// The raw STATE payload of a *full* snapshot; typed `Invalid` if
    /// this envelope is a delta (`what` names the role for the error).
    fn require_full_state(&self, what: &str) -> Result<&'a [u8], SnsError> {
        if self.payload(SECTION_DELTA).is_some() {
            return Err(SnsError::Codec {
                fault: CodecFault::Invalid,
                offset: 0,
                detail: format!("{what} must be a full snapshot, got a delta"),
            });
        }
        self.payload(SECTION_STATE).ok_or_else(|| SnsError::Codec {
            fault: CodecFault::Invalid,
            offset: 0,
            detail: format!("{what}: missing STATE section"),
        })
    }
}

fn state_from_payload(payload: &[u8]) -> Result<sns_runtime::EngineState, SnsError> {
    let mut state_r = Reader::new(payload);
    let state = wire::get_engine_state(&mut state_r)?;
    state_r.expect_end("STATE")?;
    Ok(state)
}

/// Deserializes a self-contained (v1 or v2 full) snapshot, validating
/// magic, version, section framing, and checksum before touching any
/// payload.
///
/// # Errors
/// [`SnsError::Codec`] with a precise [`CodecFault`]:
/// `Truncated` (bytes end early), `BadMagic`, `UnsupportedVersion`,
/// `Checksum` (content corrupted), or `Invalid` (well-framed bytes that
/// describe an inconsistent structure — including a **delta** snapshot,
/// which needs its base: use [`from_bytes_with_base`]).
pub fn from_bytes(bytes: &[u8]) -> Result<EngineSnapshot, SnsError> {
    let env = Envelope::parse(bytes)?;
    let (stream_id, seed, wal_seq) = env.meta()?;
    let spec = env.spec()?;
    if env.payload(SECTION_DELTA).is_some() {
        return Err(SnsError::Codec {
            fault: CodecFault::Invalid,
            offset: 0,
            detail: format!(
                "stream {stream_id} snapshot is a delta; decode it with \
                 from_bytes_with_base against its base snapshot"
            ),
        });
    }
    let state = state_from_payload(env.require_full_state("snapshot")?)?;
    Ok(EngineSnapshot { stream_id, spec, seed, wal_seq, state })
}

/// Deserializes a snapshot next to its base: full snapshots decode as
/// with [`from_bytes`] (the base is ignored); a **delta** snapshot is
/// reconstructed by replaying its copy/insert program over the base's
/// STATE payload. The base must be byte-identical to the one the delta
/// was encoded against (checked by checksum) and itself full.
///
/// # Errors
/// Everything [`from_bytes`] reports, plus `Invalid` for a wrong or
/// non-full base and `Checksum` if the reconstructed state does not
/// match the length/checksum the delta recorded.
pub fn from_bytes_with_base(bytes: &[u8], base_bytes: &[u8]) -> Result<EngineSnapshot, SnsError> {
    let env = Envelope::parse(bytes)?;
    if env.payload(SECTION_DELTA).is_none() {
        return from_bytes(bytes);
    }
    let (stream_id, seed, wal_seq) = env.meta()?;
    let spec = env.spec()?;
    let mut d = env.section(SECTION_DELTA, "DELTA")?;
    let base_crc = d.u64("delta base crc")?;
    // Plain u64, not a `len()` guard: this is the *reconstructed*
    // state's size, legitimately larger than the delta payload.
    // `delta::apply` caps its output at this value.
    let state_len = d.u64("delta state length")? as usize;
    let state_crc = d.u64("delta state crc")?;
    let ops = delta::get_ops(&mut d)?;
    d.expect_end("DELTA")?;
    let actual_base_crc = fnv1a(base_bytes);
    if actual_base_crc != base_crc {
        return Err(SnsError::Codec {
            fault: CodecFault::Invalid,
            offset: 0,
            detail: format!(
                "stream {stream_id} delta was encoded against base {base_crc:#018x}, \
                 given base is {actual_base_crc:#018x}"
            ),
        });
    }
    let base = Envelope::parse(base_bytes)?;
    let base_state = base.require_full_state("delta base")?;
    let state_bytes = delta::apply(base_state, &ops, state_len)?;
    let crc = fnv1a(&state_bytes);
    if state_bytes.len() != state_len || crc != state_crc {
        return Err(SnsError::Codec {
            fault: CodecFault::Checksum,
            offset: 0,
            detail: format!(
                "reconstructed state is {} bytes / crc {crc:#018x}, delta recorded \
                 {state_len} bytes / {state_crc:#018x}",
                state_bytes.len()
            ),
        });
    }
    let state = state_from_payload(&state_bytes)?;
    Ok(EngineSnapshot { stream_id, spec, seed, wal_seq, state })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_core::engine::SnsEngine;
    use sns_runtime::{EngineSpec, StateCapture};
    use sns_stream::StreamTuple;

    fn snapshot() -> EngineSnapshot {
        let config = SnsConfig { rank: 2, theta: 2, seed: 5, ..Default::default() };
        let mut e = SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
        for t in 0..60u64 {
            e.ingest(StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).unwrap();
        }
        EngineSnapshot {
            stream_id: 11,
            spec: EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config),
            seed: 0xabc,
            wal_seq: 0,
            state: e.capture().unwrap(),
        }
    }

    fn snapshot_at(ticks: u64) -> EngineSnapshot {
        let config = SnsConfig { rank: 2, theta: 2, seed: 5, ..Default::default() };
        let mut e = SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
        for t in 0..ticks {
            e.ingest(StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).unwrap();
        }
        EngineSnapshot {
            stream_id: 11,
            spec: EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config),
            seed: 0xabc,
            wal_seq: ticks,
            state: e.capture().unwrap(),
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let bytes = to_bytes(&snapshot());
        let decoded = from_bytes(&bytes).unwrap();
        assert_eq!(decoded.stream_id, 11);
        assert_eq!(decoded.seed, 0xabc);
        assert_eq!(to_bytes(&decoded), bytes, "re-encode must be canonical");
    }

    #[test]
    fn wal_seq_survives_the_round_trip_and_v1_reads_as_zero() {
        let mut snap = snapshot();
        snap.wal_seq = 1234;
        let decoded = from_bytes(&to_bytes(&snap)).unwrap();
        assert_eq!(decoded.wal_seq, 1234);

        let v1 = to_bytes_v1(&snapshot()).unwrap();
        let decoded = from_bytes(&v1).unwrap();
        assert_eq!(decoded.wal_seq, 0);
        assert_eq!(to_bytes_v1(&decoded).unwrap(), v1, "v1 re-encode must be canonical");
        // Upgrading a v1 snapshot is just re-encoding it.
        assert_eq!(to_bytes(&decoded), to_bytes(&snapshot()));

        assert!(matches!(
            to_bytes_v1(&snap),
            Err(SnsError::Codec { fault: CodecFault::Invalid, .. })
        ));
    }

    #[test]
    fn delta_round_trips_against_its_base_and_rejects_the_wrong_base() {
        let base_snap = snapshot_at(60);
        let base = to_bytes(&base_snap);
        let next = snapshot_at(75);
        let full = to_bytes(&next);
        let d = to_bytes_delta(&next, &base).unwrap();
        assert!(d.len() < full.len(), "60→75 ticks should share most state bytes");

        let decoded = from_bytes_with_base(&d, &base).unwrap();
        assert_eq!(decoded.wal_seq, 75);
        assert_eq!(to_bytes(&decoded), full, "delta must reconstruct the exact full encoding");

        // A full snapshot passes through with any base.
        assert_eq!(to_bytes(&from_bytes_with_base(&full, &base).unwrap()), full);

        // Typed failures: no base, wrong base, delta-as-base.
        assert!(matches!(from_bytes(&d), Err(SnsError::Codec { fault: CodecFault::Invalid, .. })));
        let wrong = to_bytes(&snapshot_at(61));
        assert!(matches!(
            from_bytes_with_base(&d, &wrong),
            Err(SnsError::Codec { fault: CodecFault::Invalid, .. })
        ));
        assert!(matches!(
            to_bytes_delta(&next, &d),
            Err(SnsError::Codec { fault: CodecFault::Invalid, .. })
        ));
    }

    #[test]
    fn truncation_at_every_length_yields_typed_errors() {
        let bytes = to_bytes(&snapshot());
        for cut in 0..bytes.len() {
            match from_bytes(&bytes[..cut]) {
                Err(SnsError::Codec { .. }) => {}
                Err(other) => panic!("cut {cut}: non-codec error {other:?}"),
                Ok(_) => panic!("cut {cut}: truncated snapshot decoded"),
            }
        }
    }

    #[test]
    fn corruption_is_detected_by_the_checksum() {
        let bytes = to_bytes(&snapshot());
        // Flip one bit somewhere in the body (past the header).
        for at in [7usize, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            match from_bytes(&bad) {
                Err(SnsError::Codec { fault, .. }) => {
                    assert!(
                        matches!(
                            fault,
                            sns_error::CodecFault::Checksum | sns_error::CodecFault::Truncated
                        ),
                        "byte {at}: fault {fault:?}"
                    );
                }
                other => panic!("byte {at}: {other:?}"),
            }
        }
        // Flip a checksum byte itself.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            from_bytes(&bad),
            Err(SnsError::Codec { fault: sns_error::CodecFault::Checksum, .. })
        ));
    }

    #[test]
    fn nested_decorator_bomb_is_rejected_not_a_stack_overflow() {
        // A well-framed, checksum-valid snapshot whose STATE payload is
        // thousands of repeated Anomaly tags must fail with a typed
        // Invalid error instead of recursing once per byte.
        let good = to_bytes(&snapshot());
        let mut w = Writer::new();
        w.bytes(&good[..7]); // magic + version + section count
        let mut r = Reader::new(&good[7..good.len() - 8]);
        for _ in 0..2 {
            let tag = r.u8("tag").unwrap();
            let len = r.usize("len").unwrap();
            let payload = r.bytes(len, "payload").unwrap();
            w.u8(tag);
            w.u64(len as u64);
            w.bytes(payload);
        }
        w.u8(3); // STATE section
        let bomb = vec![2u8; 100_000];
        w.u64(bomb.len() as u64);
        w.bytes(&bomb);
        let checksum = fnv1a(w.as_slice());
        w.u64(checksum);
        match from_bytes(&w.into_bytes()) {
            Err(SnsError::Codec { fault: CodecFault::Invalid, detail, .. }) => {
                assert!(detail.contains("nested"), "{detail}");
            }
            other => panic!("expected Invalid, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let bytes = to_bytes(&snapshot());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            from_bytes(&bad),
            Err(SnsError::Codec { fault: sns_error::CodecFault::BadMagic, .. })
        ));
        let mut future = bytes;
        future[4] = 0xfe;
        future[5] = 0xff;
        assert!(matches!(
            from_bytes(&future),
            Err(SnsError::Codec { fault: sns_error::CodecFault::UnsupportedVersion, .. })
        ));
    }

    /// An `f32`-profile snapshot round-trips byte-identically, carries a
    /// wire tag distinct from the `f64` encoding of the same engine, and
    /// restores to a bitwise-equal engine (the f32 invariant makes the
    /// rounded masters exactly representable).
    #[test]
    fn f32_profile_round_trips_with_a_distinct_wire_flag() {
        use sns_core::config::Precision;
        let mut encoded = Vec::new();
        for precision in [Precision::F64, Precision::F32] {
            let config = SnsConfig { rank: 3, theta: 2, seed: 9, precision, ..Default::default() };
            let mut e = SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusVec, &config);
            for t in 0..60u64 {
                e.ingest(StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).unwrap();
            }
            let snap = EngineSnapshot {
                stream_id: 7,
                spec: EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusVec, &config),
                seed: 0xf00d,
                wal_seq: 0,
                state: e.capture().unwrap(),
            };
            let bytes = to_bytes(&snap);
            let decoded = from_bytes(&bytes).unwrap();
            assert_eq!(to_bytes(&decoded), bytes, "re-encode must be canonical");
            // The restored engine continues bitwise-identically to the
            // captured one.
            let mut restored = decoded.state.into_engine().unwrap();
            for t in 60..90u64 {
                let tu = StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t);
                restored.ingest(tu).unwrap();
                e.ingest(tu).unwrap();
            }
            assert_eq!(
                to_bytes(&EngineSnapshot {
                    stream_id: 7,
                    spec: decoded.spec.clone(),
                    seed: 0xf00d,
                    wal_seq: 0,
                    state: restored.snapshot().unwrap(),
                }),
                to_bytes(&EngineSnapshot {
                    stream_id: 7,
                    spec: snap.spec.clone(),
                    seed: 0xf00d,
                    wal_seq: 0,
                    state: e.capture().unwrap(),
                }),
                "{precision:?}: restored engine drifted from the original"
            );
            encoded.push(bytes);
        }
        assert_ne!(encoded[0], encoded[1], "f32 and f64 profiles must encode distinctly");
    }
}
