//! Byte-level delta encoding between snapshot STATE payloads.
//!
//! A continuously maintained engine mutates only a sliver of its state
//! between checkpoints: the window tensor shifts, a few factor rows
//! move, the clocks advance — but the bulk of the factor matrices and
//! fiber indexes is byte-identical to the previous capture. Delta
//! checkpoints exploit that: instead of re-writing the full STATE
//! section, a v2 snapshot may carry a DELTA section that reconstructs
//! the new STATE payload from the previous (base) snapshot's.
//!
//! The encoding is a classic copy/insert program over the base bytes:
//!
//! - [`DeltaOp::Copy`] — take `len` bytes from the base at `offset`;
//! - [`DeltaOp::Insert`] — take the literal bytes that follow.
//!
//! [`encode`] finds copies with a Rabin–Karp rolling hash over
//! [`BLOCK`]-byte windows of the base (indexed at block stride), then
//! extends every verified match greedily in both byte directions, so
//! runs much longer than a block cost one op. The encoder guarantees
//! `apply(base, &encode(base, target)) == target` for **every** input
//! pair — in the worst case (nothing shared) the program degrades to a
//! single `Insert` of the whole target. [`apply`] is pure and
//! bounds-checked: a malformed program is a typed
//! [`SnsError::Codec`]/[`CodecFault::Invalid`](sns_error::CodecFault),
//! never a panic. Whether a delta is *worth storing* is the caller's
//! call (the store keeps deltas only when they undercut the full
//! encoding by 2×; see
//! [`CheckpointStore::save_incremental`](crate::store::CheckpointStore::save_incremental)).

use crate::bytes::{Reader, Writer};
use sns_error::SnsError;

/// Rolling-hash window (and base index stride) in bytes.
pub const BLOCK: usize = 64;

const OP_COPY: u8 = 0;
const OP_INSERT: u8 = 1;

/// One instruction of a delta program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes from the base, starting at `offset`.
    Copy {
        /// Byte offset into the base payload.
        offset: u64,
        /// Bytes to copy.
        len: u64,
    },
    /// Append these literal bytes.
    Insert(Vec<u8>),
}

const HASH_BASE: u64 = 0x0000_0100_0000_01b3; // FNV prime as the polynomial base

fn hash_block(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0u64, |h, &b| h.wrapping_mul(HASH_BASE).wrapping_add(u64::from(b)))
}

/// `HASH_BASE^(BLOCK-1)`, the coefficient of the byte that leaves the
/// window on each roll.
fn out_coefficient() -> u64 {
    let mut pow = 1u64;
    for _ in 0..BLOCK - 1 {
        pow = pow.wrapping_mul(HASH_BASE);
    }
    pow
}

/// Computes a copy/insert program that rewrites `base` into `target`.
/// Infallible: with no shared content the program is one big insert.
pub fn encode(base: &[u8], target: &[u8]) -> Vec<DeltaOp> {
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut pending = Vec::new(); // literal bytes awaiting the next op boundary
    if base.len() >= BLOCK && target.len() >= BLOCK {
        // Index the base at block stride: a sorted (hash, offset) table
        // probed by binary search. All offsets per hash are kept —
        // repeated blocks are common in zeroed factor regions and the
        // verify step picks whichever extends furthest backward. Sorted
        // by (hash, offset), candidate order is a pure function of the
        // base bytes, so identical inputs always produce the identical
        // delta program (a HashMap here would make encode output depend
        // on bucket order).
        let mut index: Vec<(u64, usize)> = Vec::with_capacity((base.len() - BLOCK) / BLOCK + 1);
        for off in (0..=base.len() - BLOCK).step_by(BLOCK) {
            index.push((hash_block(&base[off..off + BLOCK]), off));
        }
        index.sort_unstable();
        let out_coef = out_coefficient();
        let mut i = 0usize;
        let mut rolling = hash_block(&target[0..BLOCK]);
        let mut rolled_to = 0usize; // `rolling` covers target[rolled_to..rolled_to+BLOCK]
        while i + BLOCK <= target.len() {
            if rolled_to < i {
                // Re-seat the window after a copy jumped `i` forward.
                rolling = hash_block(&target[i..i + BLOCK]);
                rolled_to = i;
            }
            let lo = index.partition_point(|&(h, _)| h < rolling);
            let hi = index[lo..].partition_point(|&(h, _)| h == rolling) + lo;
            let candidates = &index[lo..hi];
            let mut best: Option<(usize, usize, usize)> = None; // (base_start, tgt_start, len)
            for &(_, cand) in candidates {
                if base[cand..cand + BLOCK] != target[i..i + BLOCK] {
                    continue; // hash collision
                }
                // Extend backward into the pending literals …
                let back = base[..cand]
                    .iter()
                    .rev()
                    .zip(target[..i].iter().rev().take(pending.len()))
                    .take_while(|(a, b)| a == b)
                    .count();
                // … and forward past the block.
                let fwd = base[cand + BLOCK..]
                    .iter()
                    .zip(target[i + BLOCK..].iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                let len = back + BLOCK + fwd;
                if best.is_none_or(|(_, _, l)| len > l) {
                    best = Some((cand - back, i - back, len));
                }
            }
            if let Some((base_start, tgt_start, len)) = best {
                pending.truncate(pending.len() - (i - tgt_start));
                if !pending.is_empty() {
                    ops.push(DeltaOp::Insert(std::mem::take(&mut pending)));
                }
                ops.push(DeltaOp::Copy { offset: base_start as u64, len: len as u64 });
                i = tgt_start + len;
                continue;
            }
            pending.push(target[i]);
            if i + BLOCK < target.len() {
                rolling = rolling
                    .wrapping_sub(u64::from(target[i]).wrapping_mul(out_coef))
                    .wrapping_mul(HASH_BASE)
                    .wrapping_add(u64::from(target[i + BLOCK]));
                rolled_to = i + 1;
            }
            i += 1;
        }
        pending.extend_from_slice(&target[i..]);
    } else {
        pending.extend_from_slice(target);
    }
    if !pending.is_empty() {
        ops.push(DeltaOp::Insert(pending));
    }
    ops
}

/// Replays a delta program against `base`, producing the target bytes.
///
/// # Errors
/// [`SnsError::Codec`] (`Invalid`) if a copy reaches outside the base
/// or the reconstruction would exceed `max_len` bytes (malformed or
/// hostile programs must not balloon memory).
pub fn apply(base: &[u8], ops: &[DeltaOp], max_len: usize) -> Result<Vec<u8>, SnsError> {
    let invalid = |detail: String| SnsError::Codec {
        fault: sns_error::CodecFault::Invalid,
        offset: 0,
        detail,
    };
    let mut out = Vec::new();
    for op in ops {
        match op {
            DeltaOp::Copy { offset, len } => {
                let (offset, len) = (*offset as usize, *len as usize);
                let end =
                    offset.checked_add(len).filter(|&e| e <= base.len()).ok_or_else(|| {
                        invalid(format!(
                            "delta copy {offset}+{len} outside base of {} bytes",
                            base.len()
                        ))
                    })?;
                out.extend_from_slice(&base[offset..end]);
            }
            DeltaOp::Insert(bytes) => out.extend_from_slice(bytes),
        }
        if out.len() > max_len {
            return Err(invalid(format!("delta output exceeds declared target length {max_len}")));
        }
    }
    Ok(out)
}

/// Serializes a delta program (op count, then tagged ops).
pub fn put_ops(w: &mut Writer, ops: &[DeltaOp]) {
    w.u64(ops.len() as u64);
    for op in ops {
        match op {
            DeltaOp::Copy { offset, len } => {
                w.u8(OP_COPY);
                w.u64(*offset);
                w.u64(*len);
            }
            DeltaOp::Insert(bytes) => {
                w.u8(OP_INSERT);
                w.u64(bytes.len() as u64);
                w.bytes(bytes);
            }
        }
    }
}

/// Deserializes a delta program.
///
/// # Errors
/// [`SnsError::Codec`] on truncation or an unknown op tag.
pub fn get_ops(r: &mut Reader) -> Result<Vec<DeltaOp>, SnsError> {
    let count = r.len(1, "delta op count")?;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        match r.u8("delta op tag")? {
            OP_COPY => {
                let offset = r.u64("delta copy offset")?;
                let len = r.u64("delta copy len")?;
                ops.push(DeltaOp::Copy { offset, len });
            }
            OP_INSERT => {
                let len = r.len(1, "delta insert len")?;
                ops.push(DeltaOp::Insert(r.bytes(len, "delta insert bytes")?.to_vec()));
            }
            tag => return Err(r.invalid(format!("unknown delta op tag {tag}"))),
        }
    }
    Ok(ops)
}

/// Serialized size of a program without materializing it.
pub fn encoded_len(ops: &[DeltaOp]) -> usize {
    8 + ops
        .iter()
        .map(|op| match op {
            DeltaOp::Copy { .. } => 1 + 16,
            DeltaOp::Insert(b) => 1 + 8 + b.len(),
        })
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(base: &[u8], target: &[u8]) -> Vec<DeltaOp> {
        let ops = encode(base, target);
        assert_eq!(apply(base, &ops, target.len()).unwrap(), target, "reconstruction differs");
        let mut w = Writer::new();
        put_ops(&mut w, &ops);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = get_ops(&mut r).unwrap();
        r.expect_end("ops").unwrap();
        assert_eq!(decoded, ops);
        assert_eq!(encoded_len(&ops), bytes.len());
        ops
    }

    #[test]
    fn identical_inputs_become_one_copy() {
        let base: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let ops = round_trip(&base, &base);
        assert_eq!(ops, vec![DeltaOp::Copy { offset: 0, len: base.len() as u64 }]);
    }

    #[test]
    fn small_edit_in_a_large_payload_stays_small() {
        let base: Vec<u8> =
            (0..20_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let mut target = base.clone();
        target[7000] ^= 0xff;
        target.splice(12_000..12_000, [1, 2, 3]);
        let ops = round_trip(&base, &target);
        assert!(
            encoded_len(&ops) < base.len() / 10,
            "3-byte insert + 1-byte flip encoded as {} bytes",
            encoded_len(&ops)
        );
    }

    #[test]
    fn disjoint_inputs_degrade_to_one_insert() {
        let base = vec![0u8; 500];
        let target = vec![0xabu8; 500];
        // All-zero base blocks do match nothing in an all-0xab target.
        let ops = round_trip(&base, &target);
        assert!(ops.iter().all(|op| matches!(op, DeltaOp::Insert(_))));
    }

    #[test]
    fn short_inputs_below_one_block_round_trip() {
        round_trip(b"tiny", b"other");
        round_trip(b"", b"nonempty");
        round_trip(b"nonempty", b"");
    }

    #[test]
    fn apply_rejects_out_of_range_copies_and_oversized_output() {
        let base = vec![7u8; 10];
        let oob = [DeltaOp::Copy { offset: 8, len: 8 }];
        assert!(matches!(apply(&base, &oob, 100), Err(SnsError::Codec { .. })));
        let overflow = [DeltaOp::Copy { offset: u64::MAX - 2, len: 8 }];
        assert!(matches!(apply(&base, &overflow, 100), Err(SnsError::Codec { .. })));
        let huge = vec![DeltaOp::Insert(vec![0u8; 64])];
        assert!(matches!(apply(&base, &huge, 10), Err(SnsError::Codec { .. })));
    }

    proptest::proptest! {
        #[test]
        fn encode_apply_is_identity_on_arbitrary_pairs(
            base in proptest::collection::vec(0u8..=255, 0..600),
            target in proptest::collection::vec(0u8..=255, 0..600),
        ) {
            let ops = encode(&base, &target);
            proptest::prop_assert_eq!(apply(&base, &ops, target.len()).unwrap(), target);
        }

        #[test]
        fn encode_apply_is_identity_on_mutated_copies(
            base in proptest::collection::vec(0u8..=255, 200..800),
            edits in proptest::collection::vec((0usize..usize::MAX, 0u8..=255), 0..10),
        ) {
            let mut target = base.clone();
            for (at, v) in edits {
                let i = at % target.len();
                target[i] = v;
            }
            let ops = encode(&base, &target);
            proptest::prop_assert_eq!(apply(&base, &ops, target.len()).unwrap(), target);
        }
    }
}
