//! Little-endian byte-level reader/writer with typed failure reporting.
//!
//! Hand-rolled on purpose (the workspace dependency policy excludes
//! serde): every primitive has exactly one wire form, the reader tracks
//! its offset, and every failure is a typed
//! [`SnsError::Codec`] — truncation and corruption surface as data, not
//! panics.

use sns_error::{CodecFault, SnsError};

/// FNV-1a 64-bit checksum (the trailing integrity word of the snapshot
/// envelope). Not cryptographic — it guards against truncation, bit rot,
/// and partial writes, which is what a checkpoint store needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only little-endian writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Immutable view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (exact, including NaN payloads).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends `Some`/`None` as a tag byte plus payload.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Overwrites 8 bytes at `at` with a little-endian `u64` (length
    /// back-patching for sections).
    pub fn patch_u64(&mut self, at: usize, v: u64) {
        self.buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Typed codec error at the current offset.
    pub fn err(&self, fault: CodecFault, detail: impl Into<String>) -> SnsError {
        SnsError::Codec { fault, offset: self.pos, detail: detail.into() }
    }

    /// Typed [`CodecFault::Invalid`] error at the current offset.
    pub fn invalid(&self, detail: impl Into<String>) -> SnsError {
        self.err(CodecFault::Invalid, detail)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnsError> {
        if self.remaining() < n {
            return Err(self.err(
                CodecFault::Truncated,
                format!("{what}: need {n} bytes, {} left", self.remaining()),
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnsError> {
        self.take(n, what)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, SnsError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &str) -> Result<u16, SnsError> {
        let arr: [u8; 2] = self
            .take(2, what)?
            .try_into()
            .map_err(|_| self.invalid(format!("{what}: short u16 read")))?;
        Ok(u16::from_le_bytes(arr))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, SnsError> {
        let arr: [u8; 4] = self
            .take(4, what)?
            .try_into()
            .map_err(|_| self.invalid(format!("{what}: short u32 read")))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, SnsError> {
        let arr: [u8; 8] = self
            .take(8, what)?
            .try_into()
            .map_err(|_| self.invalid(format!("{what}: short u64 read")))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a `u64` and converts to `usize`.
    pub fn usize(&mut self, what: &str) -> Result<usize, SnsError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| self.invalid(format!("{what}: {v} exceeds usize")))
    }

    /// Reads a length prefix, sanity-bounded so corrupted lengths fail
    /// fast instead of attempting absurd allocations. `unit` is the
    /// minimum encoded size of one element.
    pub fn len(&mut self, unit: usize, what: &str) -> Result<usize, SnsError> {
        let n = self.usize(what)?;
        if n.saturating_mul(unit.max(1)) > self.remaining() {
            return Err(self.err(
                CodecFault::Truncated,
                format!("{what}: {n} elements cannot fit in {} bytes", self.remaining()),
            ));
        }
        Ok(n)
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64, SnsError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a bool byte (0 or 1).
    pub fn bool(&mut self, what: &str) -> Result<bool, SnsError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.invalid(format!("{what}: bool byte {b}"))),
        }
    }

    /// Reads an optional `u64` (tag byte + payload).
    pub fn opt_u64(&mut self, what: &str) -> Result<Option<u64>, SnsError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            b => Err(self.invalid(format!("{what}: option tag {b}"))),
        }
    }

    /// Fails unless the reader consumed every byte.
    pub fn expect_end(&self, what: &str) -> Result<(), SnsError> {
        if self.remaining() != 0 {
            return Err(self.invalid(format!("{what}: {} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 3);
        w.f64(-0.125);
        w.bool(true);
        w.opt_u64(None);
        w.opt_u64(Some(42));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 300);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 3);
        assert_eq!(r.f64("e").unwrap(), -0.125);
        assert!(r.bool("f").unwrap());
        assert_eq!(r.opt_u64("g").unwrap(), None);
        assert_eq!(r.opt_u64("h").unwrap(), Some(42));
        r.expect_end("tail").unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = Writer::new();
        w.u64(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        match r.u64("x") {
            Err(SnsError::Codec { fault: CodecFault::Truncated, .. }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.len(8, "vec").is_err());
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let a = fnv1a(b"slicenstitch");
        assert_eq!(a, fnv1a(b"slicenstitch"));
        assert_ne!(a, fnv1a(b"slicenstitcH"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
