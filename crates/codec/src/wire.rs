//! Wire forms of every captured domain type.
//!
//! One encode/decode pair per type, kept adjacent so the two halves
//! cannot drift apart silently (the golden-fixture test catches drift
//! that slips through review without a schema-version bump).
//!
//! All integers are little-endian; floats travel by bit pattern, so
//! accumulated rounding (e.g. the window's incrementally maintained
//! `‖X‖²`) survives exactly. Enums are one tag byte plus fields.

use crate::bytes::{Reader, Writer};
use sns_baselines::{BaselineAlgoState, BaselineEngineState};
use sns_core::anomaly::{DetectorState, ScoredEvent};
use sns_core::config::{AlgorithmKind, Precision};
use sns_core::engine::SnsEngineState;
use sns_core::kruskal::KruskalTensor;
use sns_core::update::UpdaterState;
use sns_error::SnsError;
use sns_linalg::Mat;
use sns_runtime::anomaly::{AnomalyConfig, AnomalyState};
use sns_runtime::chaos::{ChaosConfig, ChaosState};
use sns_runtime::{BaselineKind, EngineSpec, EngineState};
use sns_stream::{ContinuousWindowState, DiscreteWindowState, ScheduledEvent, StreamTuple};
use sns_tensor::{Coord, SparseTensorState, MAX_ORDER};

// ---- coordinates, tuples, matrices ---------------------------------------

/// Encodes a coordinate as order byte + one `u32` per mode.
pub fn put_coord(w: &mut Writer, c: &Coord) {
    w.u8(c.order() as u8);
    for &i in c.as_slice() {
        w.u32(i);
    }
}

/// Decodes a coordinate, rejecting orders beyond [`MAX_ORDER`].
pub fn get_coord(r: &mut Reader) -> Result<Coord, SnsError> {
    let order = r.u8("coord order")? as usize;
    if order > MAX_ORDER {
        return Err(r.invalid(format!("coord order {order} exceeds {MAX_ORDER}")));
    }
    let mut idx = [0u32; MAX_ORDER];
    for slot in idx.iter_mut().take(order) {
        *slot = r.u32("coord index")?;
    }
    Ok(Coord::new(&idx[..order]))
}

/// Encodes a stream tuple: coordinate, value bits, arrival time.
pub fn put_tuple(w: &mut Writer, t: &StreamTuple) {
    put_coord(w, &t.coords);
    w.f64(t.value);
    w.u64(t.time);
}

/// Decodes a stream tuple written by [`put_tuple`].
pub fn get_tuple(r: &mut Reader) -> Result<StreamTuple, SnsError> {
    let coords = get_coord(r)?;
    let value = r.f64("tuple value")?;
    let time = r.u64("tuple time")?;
    Ok(StreamTuple { coords, value, time })
}

/// Encodes a dense matrix: dims then row-major `f64` bit patterns.
pub fn put_mat(w: &mut Writer, m: &Mat) {
    w.usize(m.rows());
    w.usize(m.cols());
    for &v in m.as_slice() {
        w.f64(v);
    }
}

/// Decodes a matrix, bounding the claimed size by the bytes actually
/// present (resource-bomb guard).
pub fn get_mat(r: &mut Reader) -> Result<Mat, SnsError> {
    let rows = r.usize("mat rows")?;
    let cols = r.usize("mat cols")?;
    let n = rows.checked_mul(cols).ok_or_else(|| r.invalid("mat size overflow"))?;
    if n.saturating_mul(8) > r.remaining() {
        return Err(r.err(
            sns_error::CodecFault::Truncated,
            format!("mat {rows}x{cols} cannot fit in {} bytes", r.remaining()),
        ));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.f64("mat entry")?);
    }
    Ok(Mat::from_vec(rows, cols, data))
}

/// Encodes a factor-matrix list (count + each matrix).
pub fn put_mats(w: &mut Writer, mats: &[Mat]) {
    w.usize(mats.len());
    for m in mats {
        put_mat(w, m);
    }
}

/// Decodes a factor-matrix list written by [`put_mats`].
pub fn get_mats(r: &mut Reader) -> Result<Vec<Mat>, SnsError> {
    let n = r.len(16, "mat count")?;
    (0..n).map(|_| get_mat(r)).collect()
}

/// Encodes a Kruskal (CP-factorized) tensor: factors then lambda.
pub fn put_kruskal(w: &mut Writer, k: &KruskalTensor) {
    put_mats(w, &k.factors);
    w.usize(k.lambda.len());
    for &l in &k.lambda {
        w.f64(l);
    }
}

/// Decodes a Kruskal tensor, checking every factor agrees on the rank.
pub fn get_kruskal(r: &mut Reader) -> Result<KruskalTensor, SnsError> {
    let factors = get_mats(r)?;
    let rank = r.len(8, "lambda len")?;
    let lambda = (0..rank).map(|_| r.f64("lambda")).collect::<Result<Vec<_>, _>>()?;
    for (m, f) in factors.iter().enumerate() {
        if f.cols() != rank {
            return Err(r.invalid(format!("mode {m} factor has {} cols, rank {rank}", f.cols())));
        }
    }
    Ok(KruskalTensor { factors, lambda })
}

// ---- sparse tensor state -------------------------------------------------

/// Encodes sparse-tensor state including fiber indexes and the
/// incrementally maintained `‖X‖²` (bit-exact).
pub fn put_tensor(w: &mut Writer, t: &SparseTensorState) {
    w.usize(t.dims.len());
    for &d in &t.dims {
        w.usize(d);
    }
    w.usize(t.coords.len());
    for c in &t.coords {
        put_coord(w, c);
    }
    for &v in &t.values {
        w.f64(v);
    }
    for mode in &t.fibers {
        w.usize(mode.len());
        for (index, positions) in mode {
            w.u32(*index);
            w.usize(positions.len());
            for &p in positions {
                w.u32(p);
            }
        }
    }
    w.f64(t.norm_sq);
}

/// Decodes sparse-tensor state written by [`put_tensor`].
pub fn get_tensor(r: &mut Reader) -> Result<SparseTensorState, SnsError> {
    let order = r.len(8, "tensor order")?;
    let dims = (0..order).map(|_| r.usize("tensor dim")).collect::<Result<Vec<_>, _>>()?;
    let nnz = r.len(1, "tensor nnz")?;
    let coords = (0..nnz).map(|_| get_coord(r)).collect::<Result<Vec<_>, _>>()?;
    let values = (0..nnz).map(|_| r.f64("tensor value")).collect::<Result<Vec<_>, _>>()?;
    let mut fibers = Vec::with_capacity(order);
    for _ in 0..order {
        let sets = r.len(8, "fiber set count")?;
        let mut mode = Vec::with_capacity(sets);
        for _ in 0..sets {
            let index = r.u32("fiber index")?;
            let members = r.len(4, "fiber member count")?;
            let positions =
                (0..members).map(|_| r.u32("fiber position")).collect::<Result<Vec<_>, _>>()?;
            mode.push((index, positions));
        }
        fibers.push(mode);
    }
    let norm_sq = r.f64("tensor norm")?;
    Ok(SparseTensorState { dims, coords, values, fibers, norm_sq })
}

// ---- window states -------------------------------------------------------

/// Encodes the continuous (event-scheduled) window state.
pub fn put_continuous_window(w: &mut Writer, s: &ContinuousWindowState) {
    put_tensor(w, &s.tensor);
    w.u64(s.period);
    w.usize(s.window);
    w.usize(s.events.len());
    for ev in &s.events {
        w.u64(ev.due);
        w.u64(ev.seq);
        w.u32(ev.w);
        put_tuple(w, &ev.tuple);
    }
    w.u64(s.next_seq);
    w.u64(s.now);
    w.opt_u64(s.last_arrival);
    w.u64(s.events_processed);
}

/// Decodes the continuous window state written by
/// [`put_continuous_window`].
pub fn get_continuous_window(r: &mut Reader) -> Result<ContinuousWindowState, SnsError> {
    let tensor = get_tensor(r)?;
    let period = r.u64("window period")?;
    let window = r.usize("window W")?;
    let n = r.len(21, "event count")?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let due = r.u64("event due")?;
        let seq = r.u64("event seq")?;
        let wb = r.u32("event w")?;
        let tuple = get_tuple(r)?;
        events.push(ScheduledEvent { due, seq, w: wb, tuple });
    }
    let next_seq = r.u64("next_seq")?;
    let now = r.u64("now")?;
    let last_arrival = r.opt_u64("last_arrival")?;
    let events_processed = r.u64("events_processed")?;
    Ok(ContinuousWindowState {
        tensor,
        period,
        window,
        events,
        next_seq,
        now,
        last_arrival,
        events_processed,
    })
}

/// Encodes the discrete (period-boundary) window state.
pub fn put_discrete_window(w: &mut Writer, s: &DiscreteWindowState) {
    put_tensor(w, &s.tensor);
    w.u64(s.period);
    w.usize(s.window);
    w.u64(s.boundary);
    w.usize(s.pending.len());
    for (c, v) in &s.pending {
        put_coord(w, c);
        w.f64(*v);
    }
    w.opt_u64(s.last_arrival);
    w.u64(s.periods_completed);
}

/// Decodes the discrete window state written by
/// [`put_discrete_window`].
pub fn get_discrete_window(r: &mut Reader) -> Result<DiscreteWindowState, SnsError> {
    let tensor = get_tensor(r)?;
    let period = r.u64("window period")?;
    let window = r.usize("window W")?;
    let boundary = r.u64("boundary")?;
    let n = r.len(9, "pending count")?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        let c = get_coord(r)?;
        let v = r.f64("pending value")?;
        pending.push((c, v));
    }
    let last_arrival = r.opt_u64("last_arrival")?;
    let periods_completed = r.u64("periods_completed")?;
    Ok(DiscreteWindowState {
        tensor,
        period,
        window,
        boundary,
        pending,
        last_arrival,
        periods_completed,
    })
}

// ---- algorithm kinds and specs -------------------------------------------

/// Decoder cap on decorator nesting (`Anomaly` around `Anomaly` around
/// …). Legitimate snapshots nest one or two levels; without a cap, a
/// crafted payload of repeated decorator tags would recurse once per
/// byte and overflow the stack — an abort, which the codec's
/// never-panic contract forbids.
const MAX_NESTING: usize = 8;

fn check_depth(r: &Reader, depth: usize, what: &str) -> Result<(), SnsError> {
    if depth >= MAX_NESTING {
        return Err(r.invalid(format!("{what} nested deeper than {MAX_NESTING}")));
    }
    Ok(())
}

fn kind_tag(kind: AlgorithmKind) -> u8 {
    match kind {
        AlgorithmKind::Mat => 0,
        AlgorithmKind::Vec => 1,
        AlgorithmKind::Rnd => 2,
        AlgorithmKind::PlusVec => 3,
        AlgorithmKind::PlusRnd => 4,
    }
}

fn kind_from_tag(r: &Reader, tag: u8) -> Result<AlgorithmKind, SnsError> {
    Ok(match tag {
        0 => AlgorithmKind::Mat,
        1 => AlgorithmKind::Vec,
        2 => AlgorithmKind::Rnd,
        3 => AlgorithmKind::PlusVec,
        4 => AlgorithmKind::PlusRnd,
        t => return Err(r.invalid(format!("algorithm tag {t}"))),
    })
}

fn precision_tag(p: Precision) -> u8 {
    match p {
        Precision::F64 => 0,
        Precision::F32 => 1,
    }
}

fn precision_from_tag(r: &Reader, tag: u8) -> Result<Precision, SnsError> {
    Ok(match tag {
        0 => Precision::F64,
        1 => Precision::F32,
        t => return Err(r.invalid(format!("precision tag {t}"))),
    })
}

/// Encodes an engine spec (tagged by engine family and precision).
pub fn put_spec(w: &mut Writer, spec: &EngineSpec) {
    match spec {
        // Tag 0 is the legacy f64 layout (byte-identical to pre-precision
        // snapshots); the f32 profile travels under its own tag 3 with an
        // explicit precision byte, so old decoders reject rather than
        // silently misread it.
        EngineSpec::Sns {
            base_dims,
            window,
            period,
            kind,
            rank,
            theta,
            eta,
            init_scale,
            precision,
            seed,
        } => {
            w.u8(if *precision == Precision::F64 { 0 } else { 3 });
            w.usize(base_dims.len());
            for &d in base_dims {
                w.usize(d);
            }
            w.usize(*window);
            w.u64(*period);
            w.u8(kind_tag(*kind));
            if *precision != Precision::F64 {
                w.u8(precision_tag(*precision));
            }
            w.usize(*rank);
            w.usize(*theta);
            w.f64(*eta);
            w.f64(*init_scale);
            w.opt_u64(*seed);
        }
        EngineSpec::Baseline { base_dims, window, period, rank, algo, seed } => {
            w.u8(1);
            w.usize(base_dims.len());
            for &d in base_dims {
                w.usize(d);
            }
            w.usize(*window);
            w.u64(*period);
            w.usize(*rank);
            match algo {
                BaselineKind::AlsPeriodic { sweeps } => {
                    w.u8(0);
                    w.usize(*sweeps);
                }
                BaselineKind::OnlineScp => w.u8(1),
                BaselineKind::CpStream { decay, iters } => {
                    w.u8(2);
                    w.f64(*decay);
                    w.usize(*iters);
                }
                BaselineKind::NeCpd { epochs } => {
                    w.u8(3);
                    w.usize(*epochs);
                }
            }
            w.opt_u64(*seed);
        }
        EngineSpec::Anomaly { inner, config } => {
            w.u8(2);
            put_spec(w, inner);
            put_anomaly_config(w, config);
        }
        EngineSpec::Chaos { inner, config } => {
            w.u8(4);
            put_spec(w, inner);
            put_chaos_config(w, config);
        }
    }
}

/// Decodes an engine spec written by [`put_spec`].
pub fn get_spec(r: &mut Reader) -> Result<EngineSpec, SnsError> {
    get_spec_at(r, 0)
}

fn get_spec_at(r: &mut Reader, depth: usize) -> Result<EngineSpec, SnsError> {
    match r.u8("spec tag")? {
        tag @ (0 | 3) => {
            let n = r.len(8, "base dims")?;
            let base_dims = (0..n).map(|_| r.usize("base dim")).collect::<Result<Vec<_>, _>>()?;
            let window = r.usize("window")?;
            let period = r.u64("period")?;
            let kind = {
                let tag = r.u8("kind")?;
                kind_from_tag(r, tag)?
            };
            let precision = if tag == 3 {
                let p = r.u8("precision")?;
                precision_from_tag(r, p)?
            } else {
                Precision::F64
            };
            let rank = r.usize("rank")?;
            let theta = r.usize("theta")?;
            let eta = r.f64("eta")?;
            let init_scale = r.f64("init_scale")?;
            let seed = r.opt_u64("seed")?;
            Ok(EngineSpec::Sns {
                base_dims,
                window,
                period,
                kind,
                rank,
                theta,
                eta,
                init_scale,
                precision,
                seed,
            })
        }
        1 => {
            let n = r.len(8, "base dims")?;
            let base_dims = (0..n).map(|_| r.usize("base dim")).collect::<Result<Vec<_>, _>>()?;
            let window = r.usize("window")?;
            let period = r.u64("period")?;
            let rank = r.usize("rank")?;
            let algo = match r.u8("baseline tag")? {
                0 => BaselineKind::AlsPeriodic { sweeps: r.usize("sweeps")? },
                1 => BaselineKind::OnlineScp,
                2 => BaselineKind::CpStream { decay: r.f64("decay")?, iters: r.usize("iters")? },
                3 => BaselineKind::NeCpd { epochs: r.usize("epochs")? },
                t => return Err(r.invalid(format!("baseline tag {t}"))),
            };
            let seed = r.opt_u64("seed")?;
            Ok(EngineSpec::Baseline { base_dims, window, period, rank, algo, seed })
        }
        2 => {
            check_depth(r, depth, "anomaly spec")?;
            let inner = Box::new(get_spec_at(r, depth + 1)?);
            let config = get_anomaly_config(r)?;
            Ok(EngineSpec::Anomaly { inner, config })
        }
        4 => {
            check_depth(r, depth, "chaos spec")?;
            let inner = Box::new(get_spec_at(r, depth + 1)?);
            let config = get_chaos_config(r)?;
            Ok(EngineSpec::Chaos { inner, config })
        }
        t => Err(r.invalid(format!("spec tag {t}"))),
    }
}

fn put_anomaly_config(w: &mut Writer, c: &AnomalyConfig) {
    w.f64(c.threshold);
    w.usize(c.max_events);
}

fn get_anomaly_config(r: &mut Reader) -> Result<AnomalyConfig, SnsError> {
    let threshold = r.f64("threshold")?;
    let max_events = r.usize("max_events")?;
    Ok(AnomalyConfig { threshold, max_events })
}

fn put_chaos_config(w: &mut Writer, c: &ChaosConfig) {
    w.f64(c.poison_value);
    w.u64(c.delay_micros);
}

fn get_chaos_config(r: &mut Reader) -> Result<ChaosConfig, SnsError> {
    let poison_value = r.f64("poison_value")?;
    let delay_micros = r.u64("delay_micros")?;
    Ok(ChaosConfig { poison_value, delay_micros })
}

// ---- updater / engine states ---------------------------------------------

fn put_rng(w: &mut Writer, s: &[u64; 4]) {
    for &word in s {
        w.u64(word);
    }
}

fn get_rng(r: &mut Reader) -> Result<[u64; 4], SnsError> {
    Ok([r.u64("rng")?, r.u64("rng")?, r.u64("rng")?, r.u64("rng")?])
}

/// Tag offset for f32-profile updater states. The payload layout is
/// identical to the f64 tags 0–4; only the tag differs, so f64 snapshots
/// stay byte-identical to the legacy format and old decoders reject f32
/// snapshots instead of silently dropping the profile.
const F32_TAG_OFFSET: u8 = 16;

/// Encodes the SliceNStitch updater state (tagged by algorithm).
pub fn put_updater(w: &mut Writer, u: &UpdaterState) {
    let offset = if u.precision() == Precision::F32 { F32_TAG_OFFSET } else { 0 };
    match u {
        UpdaterState::Mat { factors, grams } => {
            w.u8(0);
            put_kruskal(w, factors);
            put_mats(w, grams);
        }
        UpdaterState::Vec { factors, grams, precision: _, diverged } => {
            w.u8(1 + offset);
            put_kruskal(w, factors);
            put_mats(w, grams);
            w.bool(*diverged);
        }
        UpdaterState::Rnd { factors, grams, precision: _, theta, rng, diverged } => {
            w.u8(2 + offset);
            put_kruskal(w, factors);
            put_mats(w, grams);
            w.usize(*theta);
            put_rng(w, rng);
            w.bool(*diverged);
        }
        UpdaterState::PlusVec { factors, grams, precision: _, eta } => {
            w.u8(3 + offset);
            put_kruskal(w, factors);
            put_mats(w, grams);
            w.f64(*eta);
        }
        UpdaterState::PlusRnd { factors, grams, precision: _, theta, eta, rng } => {
            w.u8(4 + offset);
            put_kruskal(w, factors);
            put_mats(w, grams);
            w.usize(*theta);
            w.f64(*eta);
            put_rng(w, rng);
        }
    }
}

/// Decodes the updater state written by [`put_updater`].
pub fn get_updater(r: &mut Reader) -> Result<UpdaterState, SnsError> {
    let tag = r.u8("updater tag")?;
    let (base, precision) = if tag >= F32_TAG_OFFSET {
        (tag - F32_TAG_OFFSET, Precision::F32)
    } else {
        (tag, Precision::F64)
    };
    match base {
        0 if precision == Precision::F64 => {
            Ok(UpdaterState::Mat { factors: get_kruskal(r)?, grams: get_mats(r)? })
        }
        1 => Ok(UpdaterState::Vec {
            factors: get_kruskal(r)?,
            grams: get_mats(r)?,
            precision,
            diverged: r.bool("diverged")?,
        }),
        2 => Ok(UpdaterState::Rnd {
            factors: get_kruskal(r)?,
            grams: get_mats(r)?,
            precision,
            theta: r.usize("theta")?,
            rng: get_rng(r)?,
            diverged: r.bool("diverged")?,
        }),
        3 => Ok(UpdaterState::PlusVec {
            factors: get_kruskal(r)?,
            grams: get_mats(r)?,
            precision,
            eta: r.f64("eta")?,
        }),
        4 => Ok(UpdaterState::PlusRnd {
            factors: get_kruskal(r)?,
            grams: get_mats(r)?,
            precision,
            theta: r.usize("theta")?,
            eta: r.f64("eta")?,
            rng: get_rng(r)?,
        }),
        _ => Err(r.invalid(format!("updater tag {tag}"))),
    }
}

/// Encodes a baseline algorithm's state (tagged by baseline kind).
pub fn put_baseline_algo(w: &mut Writer, s: &BaselineAlgoState) {
    match s {
        BaselineAlgoState::AlsPeriodic { kruskal, grams, sweeps } => {
            w.u8(0);
            put_kruskal(w, kruskal);
            put_mats(w, grams);
            w.usize(*sweeps);
        }
        BaselineAlgoState::OnlineScp { kruskal, grams } => {
            w.u8(1);
            put_kruskal(w, kruskal);
            put_mats(w, grams);
        }
        BaselineAlgoState::CpStream { kruskal, grams, p_hist, g_hist, mu, inner_iters } => {
            w.u8(2);
            put_kruskal(w, kruskal);
            put_mats(w, grams);
            put_mats(w, p_hist);
            put_mats(w, g_hist);
            w.f64(*mu);
            w.usize(*inner_iters);
        }
        BaselineAlgoState::NeCpd { kruskal, grams, epochs, periods_seen, rng } => {
            w.u8(3);
            put_kruskal(w, kruskal);
            put_mats(w, grams);
            w.usize(*epochs);
            w.u64(*periods_seen);
            put_rng(w, rng);
        }
    }
}

/// Decodes a baseline algorithm's state written by
/// [`put_baseline_algo`].
pub fn get_baseline_algo(r: &mut Reader) -> Result<BaselineAlgoState, SnsError> {
    match r.u8("baseline algo tag")? {
        0 => Ok(BaselineAlgoState::AlsPeriodic {
            kruskal: get_kruskal(r)?,
            grams: get_mats(r)?,
            sweeps: r.usize("sweeps")?,
        }),
        1 => Ok(BaselineAlgoState::OnlineScp { kruskal: get_kruskal(r)?, grams: get_mats(r)? }),
        2 => Ok(BaselineAlgoState::CpStream {
            kruskal: get_kruskal(r)?,
            grams: get_mats(r)?,
            p_hist: get_mats(r)?,
            g_hist: get_mats(r)?,
            mu: r.f64("mu")?,
            inner_iters: r.usize("inner_iters")?,
        }),
        3 => Ok(BaselineAlgoState::NeCpd {
            kruskal: get_kruskal(r)?,
            grams: get_mats(r)?,
            epochs: r.usize("epochs")?,
            periods_seen: r.u64("periods_seen")?,
            rng: get_rng(r)?,
        }),
        t => Err(r.invalid(format!("baseline algo tag {t}"))),
    }
}

fn put_detector(w: &mut Writer, d: &DetectorState) {
    w.u64(d.count);
    w.f64(d.mean);
    w.f64(d.m2);
    w.usize(d.events.len());
    for ev in &d.events {
        w.u64(ev.time);
        put_coord(w, &ev.coord);
        w.f64(ev.error);
        w.f64(ev.z);
    }
    // usize::MAX is the "unbounded" sentinel; u64::MAX round-trips it.
    w.u64(d.max_events as u64);
}

fn get_detector(r: &mut Reader) -> Result<DetectorState, SnsError> {
    let count = r.u64("detector count")?;
    let mean = r.f64("detector mean")?;
    let m2 = r.f64("detector m2")?;
    let n = r.len(25, "detector events")?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let time = r.u64("event time")?;
        let coord = get_coord(r)?;
        let error = r.f64("event error")?;
        let z = r.f64("event z")?;
        events.push(ScoredEvent { time, coord, error, z });
    }
    let max_events = r.u64("max_events")?;
    let max_events = usize::try_from(max_events).unwrap_or(usize::MAX);
    Ok(DetectorState { count, mean, m2, events, max_events })
}

/// Encodes a full engine state — the STATE section payload of a
/// snapshot envelope.
pub fn put_engine_state(w: &mut Writer, s: &EngineState) {
    match s {
        EngineState::Sns(e) => {
            w.u8(0);
            put_continuous_window(w, &e.window);
            put_updater(w, &e.updater);
            w.u64(e.updates_applied);
        }
        EngineState::Baseline(e) => {
            w.u8(1);
            put_discrete_window(w, &e.window);
            put_baseline_algo(w, &e.algo);
            w.u64(e.periods);
        }
        EngineState::Anomaly(a) => {
            w.u8(2);
            put_engine_state(w, &a.inner);
            put_detector(w, &a.detector);
            put_anomaly_config(w, &a.config);
            w.u64(a.flagged);
            w.f64(a.max_z);
            w.f64(a.error_sum);
            w.opt_u64(a.last_time);
        }
        EngineState::Chaos(c) => {
            w.u8(3);
            put_engine_state(w, &c.inner);
            put_chaos_config(w, &c.config);
        }
    }
}

/// Decodes a full engine state written by [`put_engine_state`].
pub fn get_engine_state(r: &mut Reader) -> Result<EngineState, SnsError> {
    get_engine_state_at(r, 0)
}

fn get_engine_state_at(r: &mut Reader, depth: usize) -> Result<EngineState, SnsError> {
    match r.u8("engine state tag")? {
        0 => {
            let window = get_continuous_window(r)?;
            let updater = get_updater(r)?;
            let updates_applied = r.u64("updates_applied")?;
            Ok(EngineState::Sns(Box::new(SnsEngineState { window, updater, updates_applied })))
        }
        1 => {
            let window = get_discrete_window(r)?;
            let algo = get_baseline_algo(r)?;
            let periods = r.u64("periods")?;
            Ok(EngineState::Baseline(Box::new(BaselineEngineState { window, algo, periods })))
        }
        2 => {
            check_depth(r, depth, "anomaly state")?;
            let inner = get_engine_state_at(r, depth + 1)?;
            let detector = get_detector(r)?;
            let config = get_anomaly_config(r)?;
            let flagged = r.u64("flagged")?;
            let max_z = r.f64("max_z")?;
            let error_sum = r.f64("error_sum")?;
            let last_time = r.opt_u64("last_time")?;
            Ok(EngineState::Anomaly(Box::new(AnomalyState {
                inner,
                detector,
                config,
                flagged,
                max_z,
                error_sum,
                last_time,
            })))
        }
        3 => {
            check_depth(r, depth, "chaos state")?;
            let inner = get_engine_state_at(r, depth + 1)?;
            let config = get_chaos_config(r)?;
            Ok(EngineState::Chaos(Box::new(ChaosState { inner, config })))
        }
        t => Err(r.invalid(format!("engine state tag {t}"))),
    }
}
