//! File-backed checkpoint store: one snapshot file per stream plus a
//! manifest, with pool-wide checkpoint/recover helpers.
//!
//! ## Layout
//!
//! ```text
//! <dir>/
//!   MANIFEST.sns            - text manifest (see below)
//!   stream-<id>.snsc        - one versioned binary snapshot per stream
//! ```
//!
//! The manifest is line-oriented text, written atomically **after** all
//! snapshot files:
//!
//! ```text
//! sns-checkpoint v1
//! streams <count>
//! stream <id> file <name> bytes <len> crc <fnv1a-hex>
//! ```
//!
//! Loading is manifest-driven: a missing or size/checksum-mismatched
//! file is a typed error, never a silently shorter fleet. Snapshot files
//! are written to a temporary name and renamed into place, so a crash
//! mid-checkpoint leaves the previous manifest (and therefore the
//! previous consistent checkpoint) intact.

use crate::bytes::fnv1a;
use crate::{from_bytes, to_bytes};
use sns_error::SnsError;
use sns_runtime::{EnginePool, EngineSnapshot, StreamSession};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Manifest file name inside a checkpoint directory.
pub const MANIFEST: &str = "MANIFEST.sns";

fn io_err(path: &Path, e: impl std::fmt::Display) -> SnsError {
    SnsError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// One manifest row: a stream's snapshot file and its integrity data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The stream id.
    pub stream_id: u64,
    /// File name inside the store directory.
    pub file: String,
    /// Expected file size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 of the file contents.
    pub crc: u64,
}

/// A directory of per-stream snapshot files plus a manifest.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    /// [`SnsError::Io`] if the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, SnsError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(CheckpointStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST)
    }

    fn file_name(stream_id: u64) -> String {
        format!("stream-{stream_id}.snsc")
    }

    /// Writes one file per snapshot plus the manifest (last, atomically
    /// via rename), replacing any previous checkpoint in this directory.
    ///
    /// # Errors
    /// [`SnsError::Io`] on the first filesystem failure.
    pub fn save(&self, snapshots: &[EngineSnapshot]) -> Result<Vec<ManifestEntry>, SnsError> {
        let mut entries = Vec::with_capacity(snapshots.len());
        for snapshot in snapshots {
            let bytes = to_bytes(snapshot);
            let file = Self::file_name(snapshot.stream_id);
            let path = self.dir.join(&file);
            let tmp = self.dir.join(format!("{file}.tmp"));
            {
                // Each snapshot file is synced before the manifest is
                // renamed into place: the manifest is the commit point,
                // so everything it references must already be durable.
                let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
                f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
                f.sync_all().map_err(|e| io_err(&tmp, e))?;
            }
            fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
            entries.push(ManifestEntry {
                stream_id: snapshot.stream_id,
                file,
                bytes: bytes.len() as u64,
                crc: fnv1a(&bytes),
            });
        }
        entries.sort_by_key(|e| e.stream_id);
        let mut manifest = String::new();
        manifest.push_str("sns-checkpoint v1\n");
        manifest.push_str(&format!("streams {}\n", entries.len()));
        for e in &entries {
            manifest.push_str(&format!(
                "stream {} file {} bytes {} crc {:016x}\n",
                e.stream_id, e.file, e.bytes, e.crc
            ));
        }
        let tmp = self.dir.join(format!("{MANIFEST}.tmp"));
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(manifest.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        let path = self.manifest_path();
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(entries)
    }

    /// Parses the manifest.
    ///
    /// # Errors
    /// [`SnsError::Io`] if it is missing or malformed.
    pub fn manifest(&self) -> Result<Vec<ManifestEntry>, SnsError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        let mut lines = text.lines();
        if lines.next() != Some("sns-checkpoint v1") {
            return Err(io_err(&path, "not a v1 checkpoint manifest"));
        }
        let count: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("streams "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| io_err(&path, "missing stream count"))?;
        let mut entries = Vec::with_capacity(count);
        for line in lines {
            let parts: Vec<&str> = line.split_whitespace().collect();
            let [kw, id, fkw, file, bkw, bytes, ckw, crc] = parts.as_slice() else {
                return Err(io_err(&path, format!("malformed manifest line: {line}")));
            };
            if (*kw, *fkw, *bkw, *ckw) != ("stream", "file", "bytes", "crc") {
                return Err(io_err(&path, format!("malformed manifest line: {line}")));
            }
            entries.push(ManifestEntry {
                stream_id: id.parse().map_err(|e| io_err(&path, e))?,
                file: (*file).to_string(),
                bytes: bytes.parse().map_err(|e| io_err(&path, e))?,
                crc: u64::from_str_radix(crc, 16).map_err(|e| io_err(&path, e))?,
            });
        }
        if entries.len() != count {
            return Err(io_err(
                &path,
                format!("manifest promises {count} streams, lists {}", entries.len()),
            ));
        }
        Ok(entries)
    }

    /// Loads every snapshot listed in the manifest, verifying file size
    /// and checksum before decoding, in manifest (stream id) order.
    ///
    /// # Errors
    /// [`SnsError::Io`] for missing/mismatched files,
    /// [`SnsError::Codec`] for undecodable snapshots.
    pub fn load(&self) -> Result<Vec<EngineSnapshot>, SnsError> {
        let mut snapshots = Vec::new();
        for entry in self.manifest()? {
            let path = self.dir.join(&entry.file);
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            if bytes.len() as u64 != entry.bytes {
                return Err(io_err(
                    &path,
                    format!("{} bytes on disk, manifest says {}", bytes.len(), entry.bytes),
                ));
            }
            let crc = fnv1a(&bytes);
            if crc != entry.crc {
                return Err(io_err(
                    &path,
                    format!("crc {crc:016x} on disk, manifest says {:016x}", entry.crc),
                ));
            }
            let snapshot = from_bytes(&bytes)?;
            if snapshot.stream_id != entry.stream_id {
                return Err(io_err(
                    &path,
                    format!(
                        "file holds stream {}, manifest says {}",
                        snapshot.stream_id, entry.stream_id
                    ),
                ));
            }
            snapshots.push(snapshot);
        }
        Ok(snapshots)
    }
}

/// Pool-wide durability: checkpoint every stream of `pool` into `store`.
/// All-or-nothing — a stream whose engine cannot be captured fails the
/// checkpoint (a checkpoint that silently omits streams is worse than
/// none), and the previous manifest stays in place.
///
/// # Errors
/// The first capture error, or [`SnsError::Io`] from the store.
pub fn checkpoint_pool(
    pool: &EnginePool,
    store: &CheckpointStore,
) -> Result<Vec<ManifestEntry>, SnsError> {
    let mut snapshots = Vec::new();
    for (_, result) in pool.checkpoint_all() {
        snapshots.push(result?);
    }
    store.save(&snapshots)
}

/// Pool-wide recovery: rebuild every checkpointed stream from `store`
/// onto `pool`, returning the live sessions in stream-id order. Each
/// restored engine continues **bitwise-identically** from its
/// checkpoint.
///
/// # Errors
/// Store/codec errors, or the first snapshot the pool cannot restore.
pub fn recover_pool(
    pool: &EnginePool,
    store: &CheckpointStore,
) -> Result<Vec<StreamSession>, SnsError> {
    pool.recover_all(store.load()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_runtime::{EngineSpec, PoolConfig};
    use sns_stream::StreamTuple;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sns-codec-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> EngineSpec {
        let config = SnsConfig { rank: 2, theta: 4, ..Default::default() };
        EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config)
    }

    fn tuples(id: u64) -> Vec<StreamTuple> {
        (0..80u64)
            .map(|t| StreamTuple::new([((t + id) % 4) as u32, ((t * 3) % 3) as u32], 1.0, t))
            .collect()
    }

    #[test]
    fn checkpoint_then_recover_round_trips_a_pool() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::create(&dir).unwrap();
        let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 9, ..Default::default() });
        let ids = [3u64, 1, 7];
        let mut sessions: Vec<_> = ids.iter().map(|&id| pool.open(id, spec()).unwrap()).collect();
        for (s, &id) in sessions.iter_mut().zip(&ids) {
            s.ingest_batch(&tuples(id)[..40]).unwrap();
        }
        let entries = checkpoint_pool(&pool, &store).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries.windows(2).all(|w| w[0].stream_id < w[1].stream_id));
        assert!(store.manifest_path().exists());
        drop(sessions);
        pool.join(); // crash

        let fresh = EnginePool::new(PoolConfig { shards: 2, base_seed: 9, ..Default::default() });
        let mut recovered = recover_pool(&fresh, &store).unwrap();
        assert_eq!(recovered.len(), 3);
        // Sessions come back in stream-id order and keep working.
        let sorted: Vec<u64> = recovered.iter().map(|s| s.stream_id()).collect();
        assert_eq!(sorted, vec![1, 3, 7]);
        for s in &mut recovered {
            let id = s.stream_id();
            s.ingest_batch(&tuples(id)[40..]).unwrap();
            assert_eq!(s.report().unwrap().error, None);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_tampered_files_and_missing_manifest() {
        let dir = temp_dir("tamper");
        let store = CheckpointStore::create(&dir).unwrap();
        assert!(matches!(store.load(), Err(SnsError::Io { .. })), "no manifest yet");

        let pool = EnginePool::new(PoolConfig { shards: 1, base_seed: 1, ..Default::default() });
        let mut s = pool.open(5, spec()).unwrap();
        s.ingest_batch(&tuples(5)[..20]).unwrap();
        checkpoint_pool(&pool, &store).unwrap();

        // Corrupt the snapshot file: the manifest crc catches it.
        let file = dir.join("stream-5.snsc");
        let mut bytes = fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&file, &bytes).unwrap();
        assert!(matches!(store.load(), Err(SnsError::Io { .. })));

        // Delete it: missing file is typed, not a shorter fleet.
        fs::remove_file(&file).unwrap();
        assert!(matches!(store.load(), Err(SnsError::Io { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
