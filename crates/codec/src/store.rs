//! File-backed checkpoint store: snapshot files per stream plus a
//! manifest, with full **and delta** checkpoints and pool-wide
//! checkpoint/recover helpers.
//!
//! ## Layout
//!
//! ```text
//! <dir>/
//!   MANIFEST.sns            - text manifest (see below)
//!   stream-<id>.snsc        - full snapshot (legacy save())
//!   stream-<id>.g<G>.snsc   - full snapshot committed at generation G
//!   stream-<id>.g<G>.snsd   - delta snapshot committed at generation G
//! ```
//!
//! The manifest is line-oriented text, written atomically **after** all
//! snapshot files:
//!
//! ```text
//! sns-checkpoint v2
//! checkpoint <generation>
//! streams <count>
//! stream <id> file <name> bytes <len> crc <fnv1a-hex> kind <full|delta> base <file|->
//! ```
//!
//! v1 manifests (no `checkpoint` line, rows without `kind`/`base`) are
//! still parsed — every row reads as a full snapshot at generation 0.
//!
//! Loading is manifest-driven: a missing or size/checksum-mismatched
//! file is a typed error, never a silently shorter fleet. Snapshot files
//! are written to a temporary name and renamed into place, so a crash
//! mid-checkpoint leaves the previous manifest (and therefore the
//! previous consistent checkpoint) intact. Delta rows name their `base`
//! file, which [`CheckpointStore::save_incremental`] keeps on disk for
//! as long as any delta references it.

use crate::bytes::fnv1a;
use crate::{from_bytes, from_bytes_with_base, to_bytes, to_bytes_delta};
use sns_error::{CodecFault, SnsError};
use sns_runtime::{EnginePool, EngineSnapshot, StreamSession};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Manifest file name inside a checkpoint directory.
pub const MANIFEST: &str = "MANIFEST.sns";

fn io_err(path: &Path, e: impl std::fmt::Display) -> SnsError {
    SnsError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// How a manifest row's snapshot file is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Self-contained snapshot (decodes with [`from_bytes`]).
    Full,
    /// Delta against the row's `base` file (decodes with
    /// [`from_bytes_with_base`]).
    Delta,
}

impl SnapshotKind {
    /// Manifest token for the kind.
    pub fn label(&self) -> &'static str {
        match self {
            SnapshotKind::Full => "full",
            SnapshotKind::Delta => "delta",
        }
    }
}

/// One manifest row: a stream's snapshot file and its integrity data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The stream id.
    pub stream_id: u64,
    /// File name inside the store directory.
    pub file: String,
    /// Expected file size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 of the file contents.
    pub crc: u64,
    /// Whether the file is a full snapshot or a delta.
    pub kind: SnapshotKind,
    /// For deltas: the full snapshot file the delta was encoded
    /// against. `None` for full snapshots.
    pub base: Option<String>,
}

/// A directory of per-stream snapshot files plus a manifest.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    /// [`SnsError::Io`] if the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, SnsError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(CheckpointStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST)
    }

    fn file_name(stream_id: u64) -> String {
        format!("stream-{stream_id}.snsc")
    }

    fn write_file_atomic(&self, file: &str, bytes: &[u8]) -> Result<(), SnsError> {
        let path = self.dir.join(file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        {
            // Each snapshot file is synced before the manifest is
            // renamed into place: the manifest is the commit point,
            // so everything it references must already be durable.
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))
    }

    fn write_manifest(&self, generation: u64, entries: &[ManifestEntry]) -> Result<(), SnsError> {
        let mut manifest = String::new();
        manifest.push_str("sns-checkpoint v2\n");
        manifest.push_str(&format!("checkpoint {generation}\n"));
        manifest.push_str(&format!("streams {}\n", entries.len()));
        for e in entries {
            manifest.push_str(&format!(
                "stream {} file {} bytes {} crc {:016x} kind {} base {}\n",
                e.stream_id,
                e.file,
                e.bytes,
                e.crc,
                e.kind.label(),
                e.base.as_deref().unwrap_or("-"),
            ));
        }
        let tmp = self.dir.join(format!("{MANIFEST}.tmp"));
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(manifest.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        let path = self.manifest_path();
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))
    }

    /// Writes one **full** file per snapshot plus the manifest (last,
    /// atomically via rename), replacing any previous checkpoint in
    /// this directory. For checkpoint-over-checkpoint workloads prefer
    /// [`CheckpointStore::save_incremental`], which keeps unchanged
    /// streams and writes deltas.
    ///
    /// # Errors
    /// [`SnsError::Io`] on the first filesystem failure.
    pub fn save(&self, snapshots: &[EngineSnapshot]) -> Result<Vec<ManifestEntry>, SnsError> {
        let generation = self.generation().unwrap_or(0) + 1;
        let mut entries = Vec::with_capacity(snapshots.len());
        for snapshot in snapshots {
            let bytes = to_bytes(snapshot);
            let file = Self::file_name(snapshot.stream_id);
            self.write_file_atomic(&file, &bytes)?;
            entries.push(ManifestEntry {
                stream_id: snapshot.stream_id,
                file,
                bytes: bytes.len() as u64,
                crc: fnv1a(&bytes),
                kind: SnapshotKind::Full,
                base: None,
            });
        }
        entries.sort_by_key(|e| e.stream_id);
        self.write_manifest(generation, &entries)?;
        Ok(entries)
    }

    /// Commits a new checkpoint **generation** on top of the existing
    /// manifest: rows for streams in `snapshots` are replaced, rows for
    /// other streams are kept — which is what lets a background daemon
    /// checkpoint one shard at a time without forgetting the rest of
    /// the fleet. Each snapshot is written as a **delta** against the
    /// stream's current full base when that undercuts the full encoding
    /// by 2×, and as a fresh full file otherwise. Snapshot files no
    /// longer referenced by any row (as `file` or `base`) are pruned.
    ///
    /// Returns the committed generation and the merged manifest.
    ///
    /// # Errors
    /// [`SnsError::Io`] on the first filesystem failure (the previous
    /// manifest stays in place); [`SnsError::Codec`] if an existing
    /// base file is unreadable.
    pub fn save_incremental(
        &self,
        snapshots: &[EngineSnapshot],
    ) -> Result<(u64, Vec<ManifestEntry>), SnsError> {
        let previous = if self.manifest_path().exists() { self.manifest()? } else { Vec::new() };
        let generation = self.generation().unwrap_or(0) + 1;
        let prev_by_stream: BTreeMap<u64, &ManifestEntry> =
            previous.iter().map(|e| (e.stream_id, e)).collect();
        let mut merged: BTreeMap<u64, ManifestEntry> =
            previous.iter().map(|e| (e.stream_id, e.clone())).collect();
        for snapshot in snapshots {
            let full = to_bytes(snapshot);
            // The stream's standing full base: the previous row itself
            // when full, or the base its delta chain hangs off.
            let base_file = match prev_by_stream.get(&snapshot.stream_id) {
                None => None,
                Some(prev) => match prev.kind {
                    SnapshotKind::Full => Some(prev.file.clone()),
                    // A delta row without a base is a corrupt manifest
                    // (hand-edited or torn by a foreign writer), not a
                    // code bug — report it, don't panic over it.
                    SnapshotKind::Delta => match &prev.base {
                        Some(base) => Some(base.clone()),
                        None => {
                            return Err(SnsError::Codec {
                                fault: CodecFault::Invalid,
                                offset: 0,
                                detail: format!(
                                    "manifest delta row for stream {} names no base",
                                    snapshot.stream_id
                                ),
                            })
                        }
                    },
                },
            };
            let delta = match &base_file {
                Some(base) => {
                    let base_path = self.dir.join(base);
                    let base_bytes = fs::read(&base_path).map_err(|e| io_err(&base_path, e))?;
                    let d = to_bytes_delta(snapshot, &base_bytes)?;
                    (d.len() * 2 < full.len()).then_some(d)
                }
                None => None,
            };
            let entry = match delta {
                Some(bytes) => {
                    let file = format!("stream-{}.g{generation}.snsd", snapshot.stream_id);
                    self.write_file_atomic(&file, &bytes)?;
                    ManifestEntry {
                        stream_id: snapshot.stream_id,
                        file,
                        bytes: bytes.len() as u64,
                        crc: fnv1a(&bytes),
                        kind: SnapshotKind::Delta,
                        base: base_file,
                    }
                }
                None => {
                    let file = format!("stream-{}.g{generation}.snsc", snapshot.stream_id);
                    self.write_file_atomic(&file, &full)?;
                    ManifestEntry {
                        stream_id: snapshot.stream_id,
                        file,
                        bytes: full.len() as u64,
                        crc: fnv1a(&full),
                        kind: SnapshotKind::Full,
                        base: None,
                    }
                }
            };
            merged.insert(snapshot.stream_id, entry);
        }
        let mut entries: Vec<ManifestEntry> = merged.into_values().collect();
        entries.sort_by_key(|e| e.stream_id);
        self.write_manifest(generation, &entries)?;
        self.prune(&entries)?;
        Ok((generation, entries))
    }

    /// Deletes snapshot files no new manifest row references (as `file`
    /// or `base`). WAL segments and foreign files are untouched.
    fn prune(&self, entries: &[ManifestEntry]) -> Result<(), SnsError> {
        let live: std::collections::BTreeSet<&str> = entries
            .iter()
            .flat_map(|e| [Some(e.file.as_str()), e.base.as_deref()])
            .flatten()
            .collect();
        for dirent in fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))? {
            let dirent = dirent.map_err(|e| io_err(&self.dir, e))?;
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            let is_snapshot =
                name.starts_with("stream-") && (name.ends_with(".snsc") || name.ends_with(".snsd"));
            if is_snapshot && !live.contains(name) {
                fs::remove_file(dirent.path()).map_err(|e| io_err(&dirent.path(), e))?;
            }
        }
        Ok(())
    }

    fn parse_manifest(&self) -> Result<(u64, Vec<ManifestEntry>), SnsError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        let mut lines = text.lines();
        let version = match lines.next() {
            Some("sns-checkpoint v1") => 1,
            Some("sns-checkpoint v2") => 2,
            _ => return Err(io_err(&path, "not a v1/v2 checkpoint manifest")),
        };
        let generation = if version >= 2 {
            lines
                .next()
                .and_then(|l| l.strip_prefix("checkpoint "))
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| io_err(&path, "missing checkpoint generation"))?
        } else {
            0
        };
        let count: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("streams "))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| io_err(&path, "missing stream count"))?;
        let mut entries = Vec::with_capacity(count);
        for line in lines {
            let parts: Vec<&str> = line.split_whitespace().collect();
            let malformed = || io_err(&path, format!("malformed manifest line: {line}"));
            let (core, kind, base) = match (version, parts.as_slice()) {
                (1, [kw, id, fkw, file, bkw, bytes, ckw, crc]) => {
                    if (*kw, *fkw, *bkw, *ckw) != ("stream", "file", "bytes", "crc") {
                        return Err(malformed());
                    }
                    ((*id, *file, *bytes, *crc), SnapshotKind::Full, None)
                }
                (2, [kw, id, fkw, file, bkw, bytes, ckw, crc, kkw, kind, bakw, base]) => {
                    if (*kw, *fkw, *bkw, *ckw, *kkw, *bakw)
                        != ("stream", "file", "bytes", "crc", "kind", "base")
                    {
                        return Err(malformed());
                    }
                    let kind = match *kind {
                        "full" => SnapshotKind::Full,
                        "delta" => SnapshotKind::Delta,
                        _ => return Err(malformed()),
                    };
                    let base = (*base != "-").then(|| (*base).to_string());
                    if (kind == SnapshotKind::Delta) != base.is_some() {
                        return Err(malformed());
                    }
                    ((*id, *file, *bytes, *crc), kind, base)
                }
                _ => return Err(malformed()),
            };
            let (id, file, bytes, crc) = core;
            entries.push(ManifestEntry {
                stream_id: id.parse().map_err(|e| io_err(&path, e))?,
                file: file.to_string(),
                bytes: bytes.parse().map_err(|e| io_err(&path, e))?,
                crc: u64::from_str_radix(crc, 16).map_err(|e| io_err(&path, e))?,
                kind,
                base,
            });
        }
        if entries.len() != count {
            return Err(io_err(
                &path,
                format!("manifest promises {count} streams, lists {}", entries.len()),
            ));
        }
        Ok((generation, entries))
    }

    /// Parses the manifest's rows.
    ///
    /// # Errors
    /// [`SnsError::Io`] if it is missing or malformed.
    pub fn manifest(&self) -> Result<Vec<ManifestEntry>, SnsError> {
        self.parse_manifest().map(|(_, entries)| entries)
    }

    /// The manifest's checkpoint generation (0 for legacy v1
    /// manifests).
    ///
    /// # Errors
    /// [`SnsError::Io`] if the manifest is missing or malformed.
    pub fn generation(&self) -> Result<u64, SnsError> {
        self.parse_manifest().map(|(generation, _)| generation)
    }

    fn read_verified(&self, entry: &ManifestEntry) -> Result<Vec<u8>, SnsError> {
        let path = self.dir.join(&entry.file);
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        if bytes.len() as u64 != entry.bytes {
            return Err(io_err(
                &path,
                format!("{} bytes on disk, manifest says {}", bytes.len(), entry.bytes),
            ));
        }
        let crc = fnv1a(&bytes);
        if crc != entry.crc {
            return Err(io_err(
                &path,
                format!("crc {crc:016x} on disk, manifest says {:016x}", entry.crc),
            ));
        }
        Ok(bytes)
    }

    /// Loads every snapshot listed in the manifest — deltas are
    /// reconstructed against their base files — verifying each file's
    /// size and checksum before decoding, in manifest (stream id)
    /// order.
    ///
    /// # Errors
    /// [`SnsError::Io`] for missing/mismatched files,
    /// [`SnsError::Codec`] for undecodable snapshots or base
    /// mismatches.
    pub fn load(&self) -> Result<Vec<EngineSnapshot>, SnsError> {
        let mut snapshots = Vec::new();
        for entry in self.manifest()? {
            let bytes = self.read_verified(&entry)?;
            let snapshot = match (&entry.kind, &entry.base) {
                (SnapshotKind::Full, _) => from_bytes(&bytes)?,
                (SnapshotKind::Delta, Some(base)) => {
                    let base_path = self.dir.join(base);
                    let base_bytes = fs::read(&base_path).map_err(|e| io_err(&base_path, e))?;
                    from_bytes_with_base(&bytes, &base_bytes)?
                }
                (SnapshotKind::Delta, None) => {
                    return Err(io_err(
                        &self.dir.join(&entry.file),
                        "delta manifest row without a base file",
                    ));
                }
            };
            if snapshot.stream_id != entry.stream_id {
                return Err(io_err(
                    &self.dir.join(&entry.file),
                    format!(
                        "file holds stream {}, manifest says {}",
                        snapshot.stream_id, entry.stream_id
                    ),
                ));
            }
            snapshots.push(snapshot);
        }
        Ok(snapshots)
    }
}

/// Pool-wide durability: checkpoint every stream of `pool` into `store`.
/// All-or-nothing — a stream whose engine cannot be captured fails the
/// checkpoint (a checkpoint that silently omits streams is worse than
/// none), and the previous manifest stays in place.
///
/// # Errors
/// The first capture error, or [`SnsError::Io`] from the store.
pub fn checkpoint_pool(
    pool: &EnginePool,
    store: &CheckpointStore,
) -> Result<Vec<ManifestEntry>, SnsError> {
    let mut snapshots = Vec::new();
    for (_, result) in pool.checkpoint_all() {
        snapshots.push(result?);
    }
    store.save(&snapshots)
}

/// Pool-wide recovery: rebuild every checkpointed stream from `store`
/// onto `pool`, returning the live sessions in stream-id order. Each
/// restored engine continues **bitwise-identically** from its
/// checkpoint. For checkpoint+WAL deployments use
/// [`recover_pool_wal`](crate::wal::recover_pool_wal), which also
/// replays the journal tail.
///
/// # Errors
/// Store/codec errors, or the first snapshot the pool cannot restore.
pub fn recover_pool(
    pool: &EnginePool,
    store: &CheckpointStore,
) -> Result<Vec<StreamSession>, SnsError> {
    pool.recover_all(store.load()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_runtime::{EngineSpec, PoolConfig};
    use sns_stream::StreamTuple;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sns-codec-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> EngineSpec {
        let config = SnsConfig { rank: 2, theta: 4, ..Default::default() };
        EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config)
    }

    fn tuples(id: u64) -> Vec<StreamTuple> {
        (0..80u64)
            .map(|t| StreamTuple::new([((t + id) % 4) as u32, ((t * 3) % 3) as u32], 1.0, t))
            .collect()
    }

    #[test]
    fn checkpoint_then_recover_round_trips_a_pool() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::create(&dir).unwrap();
        let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 9, ..Default::default() });
        let ids = [3u64, 1, 7];
        let mut sessions: Vec<_> = ids.iter().map(|&id| pool.open(id, spec()).unwrap()).collect();
        for (s, &id) in sessions.iter_mut().zip(&ids) {
            let _ = s.ingest_batch(&tuples(id)[..40]).unwrap();
        }
        let entries = checkpoint_pool(&pool, &store).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries.windows(2).all(|w| w[0].stream_id < w[1].stream_id));
        assert!(store.manifest_path().exists());
        drop(sessions);
        pool.join(); // crash

        let fresh = EnginePool::new(PoolConfig { shards: 2, base_seed: 9, ..Default::default() });
        let mut recovered = recover_pool(&fresh, &store).unwrap();
        assert_eq!(recovered.len(), 3);
        // Sessions come back in stream-id order and keep working.
        let sorted: Vec<u64> = recovered.iter().map(|s| s.stream_id()).collect();
        assert_eq!(sorted, vec![1, 3, 7]);
        for s in &mut recovered {
            let id = s.stream_id();
            let _ = s.ingest_batch(&tuples(id)[40..]).unwrap();
            assert_eq!(s.report().unwrap().error, None);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_tampered_files_and_missing_manifest() {
        let dir = temp_dir("tamper");
        let store = CheckpointStore::create(&dir).unwrap();
        assert!(matches!(store.load(), Err(SnsError::Io { .. })), "no manifest yet");

        let pool = EnginePool::new(PoolConfig { shards: 1, base_seed: 1, ..Default::default() });
        let mut s = pool.open(5, spec()).unwrap();
        let _ = s.ingest_batch(&tuples(5)[..20]).unwrap();
        checkpoint_pool(&pool, &store).unwrap();

        // Corrupt the snapshot file: the manifest crc catches it.
        let file = dir.join("stream-5.snsc");
        let mut bytes = fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&file, &bytes).unwrap();
        assert!(matches!(store.load(), Err(SnsError::Io { .. })));

        // Delete it: missing file is typed, not a shorter fleet.
        fs::remove_file(&file).unwrap();
        assert!(matches!(store.load(), Err(SnsError::Io { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_manifests_still_parse_as_full_rows() {
        let dir = temp_dir("v1manifest");
        let store = CheckpointStore::create(&dir).unwrap();
        fs::write(
            store.manifest_path(),
            "sns-checkpoint v1\nstreams 1\nstream 5 file stream-5.snsc bytes 10 crc 00000000000000ff\n",
        )
        .unwrap();
        let entries = store.manifest().unwrap();
        assert_eq!(store.generation().unwrap(), 0);
        assert_eq!(
            entries,
            vec![ManifestEntry {
                stream_id: 5,
                file: "stream-5.snsc".into(),
                bytes: 10,
                crc: 0xff,
                kind: SnapshotKind::Full,
                base: None,
            }]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_saves_write_deltas_merge_streams_and_prune() {
        let dir = temp_dir("incremental");
        let store = CheckpointStore::create(&dir).unwrap();
        let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 9, ..Default::default() });
        let mut a = pool.open(1, spec()).unwrap();
        let mut b = pool.open(2, spec()).unwrap();
        let _ = a.ingest_batch(&tuples(1)[..40]).unwrap();
        let _ = b.ingest_batch(&tuples(2)[..40]).unwrap();

        // Gen 1: both streams, necessarily full (no bases yet).
        let snaps = |s: &mut sns_runtime::StreamSession| s.snapshot().unwrap();
        let (g1, m1) = store.save_incremental(&[snaps(&mut a), snaps(&mut b)]).unwrap();
        assert_eq!((g1, m1.len()), (1, 2));
        assert!(m1.iter().all(|e| e.kind == SnapshotKind::Full));

        // Gen 2: stream 1 is re-committed barely changed (the idle-
        // stream case background commits hit constantly) — its row
        // becomes a delta against the gen-1 full file; stream 2's row
        // is carried over untouched.
        let (g2, m2) = store.save_incremental(&[snaps(&mut a)]).unwrap();
        assert_eq!((g2, m2.len()), (2, 2));
        let row1 = m2.iter().find(|e| e.stream_id == 1).unwrap();
        let row2 = m2.iter().find(|e| e.stream_id == 2).unwrap();
        assert_eq!(row1.kind, SnapshotKind::Delta);
        assert_eq!(row1.base.as_deref(), Some("stream-1.g1.snsc"));
        assert!(row1.bytes * 2 < row2.bytes, "delta must be much smaller than a full snapshot");
        assert_eq!(row2.kind, SnapshotKind::Full);
        assert!(dir.join("stream-1.g1.snsc").exists(), "delta bases survive pruning");

        // Gen 3: stream 1 again — the old delta file gets pruned, the
        // base stays, and the loaded fleet matches the live one.
        let (g3, _) = store.save_incremental(&[snaps(&mut a)]).unwrap();
        assert_eq!(g3, 3);
        assert!(!dir.join("stream-1.g2.snsd").exists(), "superseded delta pruned");
        assert!(dir.join("stream-1.g1.snsc").exists());

        // Gen 4: heavy movement — window slices rotate and the factors
        // shift, so block matching collapses and the store falls back
        // to a fresh full file, retiring the old base and delta.
        let _ = a.ingest_batch(&tuples(1)[40..]).unwrap();
        let (g4, m4) = store.save_incremental(&[snaps(&mut a)]).unwrap();
        assert_eq!(g4, 4);
        let row1 = m4.iter().find(|e| e.stream_id == 1).unwrap();
        assert_eq!(row1.kind, SnapshotKind::Full);
        assert!(!dir.join("stream-1.g1.snsc").exists(), "unreferenced base pruned");
        assert!(!dir.join("stream-1.g3.snsd").exists(), "superseded delta pruned");

        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(to_bytes(&loaded[0]), to_bytes(&snaps(&mut a)));
        assert_eq!(to_bytes(&loaded[1]), to_bytes(&snaps(&mut b)));
        let _ = fs::remove_dir_all(&dir);
    }
}
