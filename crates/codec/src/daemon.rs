//! Background checkpoint daemon: turns "someone should checkpoint
//! periodically" into a policy-driven service thread.
//!
//! The [`Checkpointer`] subscribes to the pool's lifecycle bus and uses
//! [`BatchApplied`](sns_ops::PoolEvent::BatchApplied) events purely as
//! **wakeups** — the bus is drop-oldest, so the trigger decision is
//! re-derived from the exact [`MetricsRegistry`] counters on every
//! wakeup rather than by counting (possibly evicted) events. When a
//! shard has accumulated at least `min_batches` acknowledged batches
//! since its last commit, the daemon:
//!
//! 1. captures that shard's streams via
//!    [`EnginePool::checkpoint_shard`] (one shard at a time — the rest
//!    of the pool keeps ingesting),
//! 2. commits them with [`CheckpointStore::save_incremental`] (delta
//!    checkpoints against each stream's standing base), and
//! 3. rotates each stream's WAL segment via [`WalSet::rotate`],
//!    pruning journal history the new checkpoint has made redundant.
//!
//! At most one shard commits per wakeup (amortized round-robin), so the
//! ingest pause a checkpoint induces is bounded by the busiest single
//! shard, never the whole fleet. Errors are **sticky** and surfaced via
//! [`Checkpointer::error`] — a durability daemon must degrade to "stop
//! making progress and say so", not take live traffic down with it.

use crate::store::CheckpointStore;
use crate::wal::WalSet;
use sns_error::SnsError;
use sns_ops::MetricsRegistry;
use sns_runtime::EnginePool;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// When the background daemon commits a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Acknowledged batches a shard must accumulate since its last
    /// commit before it is checkpointed again.
    pub min_batches: u64,
    /// Fallback wakeup interval: the daemon re-evaluates triggers at
    /// least this often even if no bus event arrives (the bus is
    /// drop-oldest, so events are a latency optimization, not the
    /// source of truth).
    pub poll: Duration,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { min_batches: 64, poll: Duration::from_millis(200) }
    }
}

/// Progress counters for a running (or stopped) [`Checkpointer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoint generations committed by the daemon.
    pub commits: u64,
    /// Stream snapshots written across all commits.
    pub streams: u64,
}

struct DaemonShared {
    stop: AtomicBool,
    commits: AtomicU64,
    streams: AtomicU64,
    error: Mutex<Option<SnsError>>,
}

/// Handle to the background checkpoint thread.
///
/// Dropping the handle without [`Checkpointer::stop`] detaches the
/// thread (it keeps checkpointing until the process exits); tests and
/// orderly shutdowns should call `stop`, which does **not** flush a
/// final commit — un-checkpointed work is exactly what the WAL tail is
/// for.
pub struct Checkpointer {
    shared: Arc<DaemonShared>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("stats", &self.stats())
            .field("error", &self.error())
            .finish()
    }
}

/// Sums acknowledged batches per shard from the live registry.
fn batches_by_shard(metrics: &MetricsRegistry) -> Vec<u64> {
    let mut sums = vec![0u64; metrics.shards()];
    for id in metrics.stream_ids() {
        let m = metrics.stream(id);
        let shard = m.shard.load(Ordering::Relaxed);
        if let Some(slot) = sums.get_mut(shard) {
            *slot += m.batches.load(Ordering::Relaxed);
        }
    }
    sums
}

impl Checkpointer {
    /// Spawns the daemon thread against `pool`, committing into `store`
    /// and rotating segments of `wal` (the same [`WalSet`] attached as
    /// the pool's journal) under `policy`.
    ///
    /// # Errors
    /// [`SnsError::Io`] if the OS refuses to spawn the daemon thread
    /// (resource exhaustion) — durability would silently stop if this
    /// were swallowed, so it surfaces to the caller.
    pub fn start(
        pool: Arc<EnginePool>,
        store: CheckpointStore,
        wal: Arc<WalSet>,
        policy: CheckpointPolicy,
    ) -> Result<Checkpointer, SnsError> {
        let shared = Arc::new(DaemonShared {
            stop: AtomicBool::new(false),
            commits: AtomicU64::new(0),
            streams: AtomicU64::new(0),
            error: Mutex::new(None),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sns-checkpointer".into())
            .spawn(move || run(pool, store, wal, policy, worker))
            .map_err(|e| SnsError::Io {
                path: "sns-checkpointer".to_string(),
                message: format!("cannot spawn checkpoint daemon thread: {e}"),
            })?;
        Ok(Checkpointer { shared, handle: Some(handle) })
    }

    /// Commit counters so far.
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            commits: self.shared.commits.load(Ordering::Relaxed),
            streams: self.shared.streams.load(Ordering::Relaxed),
        }
    }

    /// First error the daemon hit, if any. A set error means the daemon
    /// has stopped committing — the operator's cue to intervene; live
    /// ingest was never touched.
    pub fn error(&self) -> Option<SnsError> {
        self.shared.error.lock().expect("daemon error lock poisoned").clone()
    }

    /// Signals the daemon and joins it. No final flush-commit: work
    /// past the last checkpoint stays recoverable from the WAL tail.
    pub fn stop(mut self) -> CheckpointStats {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        // Detach (see type docs); join would risk blocking an unwind.
        self.shared.stop.store(true, Ordering::Release);
    }
}

fn run(
    pool: Arc<EnginePool>,
    store: CheckpointStore,
    wal: Arc<WalSet>,
    policy: CheckpointPolicy,
    shared: Arc<DaemonShared>,
) {
    let mut sub = pool.ops().subscribe();
    let mut committed = vec![0u64; pool.shards()];
    let mut cursor = 0usize;
    while !shared.stop.load(Ordering::Acquire) {
        // Sleep until traffic (or the poll deadline) wakes us; the
        // event content is irrelevant, counters below are the truth.
        let _ = sub.next_timeout(policy.poll);
        let _ = sub.drain();
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let sums = batches_by_shard(pool.ops().metrics());
        let shards = sums.len();
        // Round-robin scan from the cursor; commit at most one shard
        // per wakeup so checkpoint pauses stay amortized.
        let eligible = (0..shards)
            .map(|i| (cursor + i) % shards)
            .find(|&s| sums[s].saturating_sub(committed[s]) >= policy.min_batches.max(1));
        let Some(shard) = eligible else { continue };
        cursor = (shard + 1) % shards;
        match commit_shard(&pool, &store, &wal, shard) {
            Ok(streams) => {
                committed[shard] = sums[shard];
                if streams > 0 {
                    shared.commits.fetch_add(1, Ordering::Relaxed);
                    shared.streams.fetch_add(streams, Ordering::Relaxed);
                }
            }
            Err(e) => {
                let mut slot = shared.error.lock().expect("daemon error lock poisoned");
                slot.get_or_insert(e);
                return; // sticky: stop committing, leave ingest alone
            }
        }
    }
}

/// Capture → incremental save → WAL rotation for one shard. Returns the
/// number of streams committed.
fn commit_shard(
    pool: &EnginePool,
    store: &CheckpointStore,
    wal: &WalSet,
    shard: usize,
) -> Result<u64, SnsError> {
    let mut snapshots = Vec::new();
    for (_, result) in pool.checkpoint_shard(shard)? {
        snapshots.push(result?);
    }
    if snapshots.is_empty() {
        return Ok(0);
    }
    let (generation, _) = store.save_incremental(&snapshots)?;
    for snapshot in &snapshots {
        wal.rotate(snapshot.stream_id, generation, snapshot.wal_seq)?;
    }
    Ok(snapshots.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::recover_pool_wal;
    use crate::{from_bytes, to_bytes};
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_runtime::{BatchJournal, EngineSpec, PoolConfig};
    use sns_stream::StreamTuple;
    use std::path::PathBuf;
    use std::time::Instant;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sns-daemon-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> EngineSpec {
        let config = SnsConfig { rank: 2, theta: 4, ..Default::default() };
        EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config)
    }

    fn tuples(id: u64, n: u64) -> Vec<StreamTuple> {
        (0..n)
            .map(|t| StreamTuple::new([((t + id) % 4) as u32, ((t * 3) % 3) as u32], 1.0, t))
            .collect()
    }

    #[test]
    fn daemon_commits_in_background_and_recovery_replays_only_the_tail() {
        let dir = temp_dir("commits");
        let wal = Arc::new(WalSet::create(dir.join("wal")).unwrap());
        let store = CheckpointStore::create(dir.join("ckpt")).unwrap();
        let journal: Arc<dyn BatchJournal> = Arc::clone(&wal) as _;
        let pool = Arc::new(EnginePool::new(PoolConfig {
            shards: 2,
            base_seed: 7,
            journal: Some(journal),
            ..Default::default()
        }));
        let mut a = pool.open(1, spec()).unwrap();
        let mut b = pool.open(2, spec()).unwrap();

        let policy = CheckpointPolicy { min_batches: 4, poll: Duration::from_millis(10) };
        let daemon =
            Checkpointer::start(Arc::clone(&pool), store.clone(), Arc::clone(&wal), policy)
                .unwrap();

        // Enough batches to trip the policy on both shards.
        for chunk in tuples(1, 60).chunks(5) {
            let _ = a.ingest_batch(chunk).unwrap();
        }
        for chunk in tuples(2, 60).chunks(5) {
            let _ = b.ingest_batch(chunk).unwrap();
        }
        // Wait for the daemon to cover both streams.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let covered = store
                .manifest()
                .map(|m| m.iter().map(|e| e.stream_id).collect::<Vec<_>>())
                .unwrap_or_default();
            if covered.contains(&1) && covered.contains(&2) {
                break;
            }
            assert!(Instant::now() < deadline, "daemon never covered both streams");
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = daemon.stop();
        assert!(stats.commits >= 1, "daemon committed nothing: {stats:?}");
        assert!(stats.streams >= 2);

        // Work past the last commit lives only in the WAL.
        let _ = a.ingest_batch(&tuples(1, 70)[60..]).unwrap();
        let _ = b.ingest_batch(&tuples(2, 70)[60..]).unwrap();
        let want_a = to_bytes(&a.snapshot().unwrap());
        let want_b = to_bytes(&b.snapshot().unwrap());
        let total_units_a = from_bytes(&want_a).unwrap().wal_seq;
        drop((a, b));
        match Arc::try_unwrap(pool) {
            Ok(p) => p.join(),
            Err(_) => panic!("daemon kept a pool handle after stop"),
        }

        let fresh = EnginePool::new(PoolConfig {
            shards: 2,
            base_seed: 7,
            journal: Some(Arc::clone(&wal) as _),
            ..Default::default()
        });
        let (mut sessions, replayed) = recover_pool_wal(&fresh, &store, &wal).unwrap();
        assert!(replayed > 0, "crash after the last checkpoint must leave a WAL tail");
        assert!(
            replayed < 2 * total_units_a,
            "replay must be bounded by the tail, not the whole history (replayed {replayed})"
        );
        sessions.sort_by_key(|s| s.stream_id());
        assert_eq!(to_bytes(&sessions[0].snapshot().unwrap()), want_a);
        assert_eq!(to_bytes(&sessions[1].snapshot().unwrap()), want_b);
        assert!(wal.error().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
