//! Per-stream write-ahead log: append-only, checksummed, torn-tail
//! tolerant segments of accepted stream operations.
//!
//! Checkpoints alone bound recovery loss to "everything since the last
//! checkpoint". The WAL closes that gap: a pool configured with a
//! [`WalSet`] as its [`BatchJournal`]
//! appends every acknowledged state-changing operation — prefill and
//! ingest batches, clock advances, warm starts — to a per-stream
//! segment file, and recovery becomes "restore the newest checkpoint,
//! replay the journal tail with `seq >` the snapshot's
//! [`wal_seq`](sns_runtime::EngineSnapshot::wal_seq)"
//! ([`recover_pool_wal`]). Replay is deterministic by the workspace's
//! core invariant, so the recovered fleet is **bitwise-identical** to
//! one that never crashed.
//!
//! ## Segment format
//!
//! One file per stream and checkpoint generation,
//! `stream-<id>.g<gen>.wal`:
//!
//! ```text
//! header   magic "SNSW" | version u16 (1) | stream_id u64 | gen u64
//! record*  payload_len u32 | fnv1a64(payload) u64 | payload
//! payload  seq u64 | ticket u64 | op u8 | body
//!          op 0 Prefill   : count u64 | tuple*      (wire::put_tuple)
//!          op 1 Ingest    : count u64 | tuple*
//!          op 2 AdvanceTo : t u64
//!          op 3 WarmStart : max_iters u64 | tol f64 | seed u64 | init_scale f64
//! ```
//!
//! Sequence numbers are **strictly increasing within a segment** — a
//! repeat or regression is typed corruption
//! ([`CodecFault::Invalid`](sns_error::CodecFault)), which is how
//! duplicated or reordered replay input is caught. A record cut short
//! by a crash (length, checksum, or bytes missing) is a **torn tail**:
//! the reader stops there and reports what it has, no error — that is
//! the expected shape of the file the crash left behind. The writer
//! truncates a torn tail before appending, and appends idempotently
//! (a record whose `seq` is not beyond the segment's last is skipped),
//! so recovery replay — which flows through the journaled pool again —
//! never duplicates records.
//!
//! ## Durability window
//!
//! Appends go straight to the file (no user-space buffer) but are
//! fsynced only on [`WalSet::rotate`] and drop: an acknowledged batch
//! survives a process crash, while an OS crash may cost the last few
//! records. The ack therefore *precedes* durability by design — the
//! hot path never waits on a disk flush (see
//! [`sns_runtime::journal`] for the contract, `docs/DURABILITY.md`
//! for the rationale).

use crate::bytes::{fnv1a, Reader, Writer};
use crate::store::CheckpointStore;
use sns_core::als::AlsOptions;
use sns_error::{CodecFault, SnsError};
use sns_runtime::{BatchJournal, EnginePool, JournalEntry, JournalOp, StreamSession};
use sns_stream::StreamTuple;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// Leading magic of every WAL segment.
pub const WAL_MAGIC: [u8; 4] = *b"SNSW";

/// WAL segment format version.
pub const WAL_VERSION: u16 = 1;

const OP_PREFILL: u8 = 0;
const OP_INGEST: u8 = 1;
const OP_ADVANCE_TO: u8 = 2;
const OP_WARM_START: u8 = 3;

/// One replayable operation read back from the log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Tuples loaded into the window without factor updates.
    Prefill(Vec<StreamTuple>),
    /// Tuples ingested live.
    Ingest(Vec<StreamTuple>),
    /// Clock advance to this time.
    AdvanceTo(u64),
    /// Batch ALS warm start with these options.
    WarmStart(AlsOptions),
}

impl WalOp {
    /// WAL sequence units this operation spans (mirrors
    /// [`sns_runtime::JournalOp::units`]).
    pub fn units(&self) -> u64 {
        match self {
            WalOp::Prefill(t) | WalOp::Ingest(t) => t.len() as u64,
            WalOp::AdvanceTo(_) | WalOp::WarmStart(_) => 1,
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Stream WAL sequence after the operation.
    pub seq: u64,
    /// Session ticket the operation was acknowledged under.
    pub ticket: u64,
    /// The operation.
    pub op: WalOp,
}

/// Everything a segment readback yields.
#[derive(Debug)]
pub struct SegmentRecords {
    /// The segment's checkpoint generation (from the header).
    pub gen: u64,
    /// Fully validated records, in append order.
    pub records: Vec<WalRecord>,
    /// Whether the segment ended in a torn record (crash artifact).
    pub truncated: bool,
    /// Bytes up to and including the last valid record — the append
    /// point after discarding the torn tail.
    pub valid_len: usize,
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> SnsError {
    SnsError::Io { path: path.display().to_string(), message: e.to_string() }
}

fn invalid(detail: String) -> SnsError {
    SnsError::Codec { fault: CodecFault::Invalid, offset: 0, detail }
}

fn encode_record(seq: u64, ticket: u64, op: &JournalOp<'_>) -> Vec<u8> {
    let mut p = Writer::new();
    p.u64(seq);
    p.u64(ticket);
    match op {
        JournalOp::Prefill(tuples) => {
            p.u8(OP_PREFILL);
            p.u64(tuples.len() as u64);
            for t in *tuples {
                crate::wire::put_tuple(&mut p, t);
            }
        }
        JournalOp::Ingest(tuples) => {
            p.u8(OP_INGEST);
            p.u64(tuples.len() as u64);
            for t in *tuples {
                crate::wire::put_tuple(&mut p, t);
            }
        }
        JournalOp::AdvanceTo(t) => {
            p.u8(OP_ADVANCE_TO);
            p.u64(*t);
        }
        JournalOp::WarmStart(opts) => {
            p.u8(OP_WARM_START);
            p.u64(opts.max_iters as u64);
            p.f64(opts.tol);
            p.u64(opts.seed);
            p.f64(opts.init_scale);
        }
    }
    let payload = p.into_bytes();
    let mut w = Writer::new();
    w.u32(payload.len() as u32);
    w.u64(fnv1a(&payload));
    w.bytes(&payload);
    w.into_bytes()
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, SnsError> {
    let mut r = Reader::new(payload);
    let seq = r.u64("wal seq")?;
    let ticket = r.u64("wal ticket")?;
    let op = match r.u8("wal op")? {
        kind @ (OP_PREFILL | OP_INGEST) => {
            let count = r.len(1, "wal tuple count")?;
            let mut tuples = Vec::with_capacity(count);
            for _ in 0..count {
                tuples.push(crate::wire::get_tuple(&mut r)?);
            }
            if kind == OP_PREFILL {
                WalOp::Prefill(tuples)
            } else {
                WalOp::Ingest(tuples)
            }
        }
        OP_ADVANCE_TO => WalOp::AdvanceTo(r.u64("wal advance t")?),
        OP_WARM_START => WalOp::WarmStart(AlsOptions {
            max_iters: r.u64("wal max_iters")? as usize,
            tol: r.f64("wal tol")?,
            seed: r.u64("wal seed")?,
            init_scale: r.f64("wal init_scale")?,
        }),
        tag => return Err(r.invalid(format!("unknown wal op tag {tag}"))),
    };
    r.expect_end("wal record")?;
    Ok(WalRecord { seq, ticket, op })
}

fn segment_header(stream_id: u64, gen: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&WAL_MAGIC);
    w.u16(WAL_VERSION);
    w.u64(stream_id);
    w.u64(gen);
    w.into_bytes()
}

/// Parses one WAL segment. Torn tails (crash artifacts) are reported
/// in-band via [`SegmentRecords::truncated`]; *structural* corruption —
/// bad magic, a duplicate or regressing sequence number, a crc-valid
/// record that fails to parse — is a typed error.
///
/// # Errors
/// [`SnsError::Codec`]: `BadMagic`/`UnsupportedVersion` for a file
/// that is not this stream's segment, `Invalid` for duplicate or
/// out-of-order sequence numbers and malformed crc-valid records.
pub fn read_segment(bytes: &[u8], expect_stream: Option<u64>) -> Result<SegmentRecords, SnsError> {
    let header_len = 4 + 2 + 8 + 8;
    if bytes.len() < header_len {
        // A crash between file creation and the header write.
        return Ok(SegmentRecords { gen: 0, records: Vec::new(), truncated: true, valid_len: 0 });
    }
    let mut r = Reader::new(bytes);
    let magic = r.bytes(4, "wal magic")?;
    if magic != WAL_MAGIC {
        return Err(SnsError::Codec {
            fault: CodecFault::BadMagic,
            offset: 0,
            detail: format!("got {magic:02x?}"),
        });
    }
    let version = r.u16("wal version")?;
    if version != WAL_VERSION {
        return Err(SnsError::Codec {
            fault: CodecFault::UnsupportedVersion,
            offset: 4,
            detail: format!("wal segment v{version}, this build reads v{WAL_VERSION}"),
        });
    }
    let stream_id = r.u64("wal stream_id")?;
    if let Some(expect) = expect_stream {
        if stream_id != expect {
            return Err(invalid(format!("segment holds stream {stream_id}, expected {expect}")));
        }
    }
    let gen = r.u64("wal gen")?;
    let mut records = Vec::new();
    let mut truncated = false;
    let mut valid_len = header_len;
    let mut last_seq = 0u64;
    loop {
        if r.remaining() == 0 {
            break;
        }
        let Ok(len) = r.u32("record length") else {
            truncated = true;
            break;
        };
        let (Ok(crc), Ok(payload)) =
            (r.u64("record checksum"), r.bytes(len as usize, "record payload"))
        else {
            truncated = true;
            break;
        };
        if fnv1a(payload) != crc {
            truncated = true;
            break;
        }
        let record = decode_payload(payload)?;
        if record.seq <= last_seq {
            return Err(invalid(format!(
                "stream {stream_id} wal seq {} after {} — duplicated or reordered records",
                record.seq, last_seq
            )));
        }
        last_seq = record.seq;
        records.push(record);
        valid_len = r.pos();
    }
    Ok(SegmentRecords { gen, records, truncated, valid_len })
}

fn segment_file_name(stream_id: u64, gen: u64) -> String {
    format!("stream-{stream_id}.g{gen}.wal")
}

fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("stream-")?.strip_suffix(".wal")?;
    let (id, gen) = rest.split_once(".g")?;
    Some((id.parse().ok()?, gen.parse().ok()?))
}

/// One stream's open segment: current file, generation, last sequence.
#[derive(Debug)]
struct StreamWal {
    gen: u64,
    path: PathBuf,
    file: fs::File,
    last_seq: u64,
}

impl StreamWal {
    /// Opens the stream's highest-generation segment for append
    /// (truncating a torn tail), or creates generation 0.
    fn open(dir: &Path, stream_id: u64) -> Result<StreamWal, SnsError> {
        let segments = list_segments(dir, stream_id)?;
        let (gen, path) = match segments.last() {
            Some((gen, path)) => (*gen, path.clone()),
            None => (0, dir.join(segment_file_name(stream_id, 0))),
        };
        // The append cursor must cover records in EVERY surviving
        // segment, not just the newest: a crash right after rotation
        // leaves the fresh segment header-only while the uncommitted
        // records sit in the previous one (rotation keeps segments
        // whose tail exceeds the committed seq). Recovery replays
        // those records through `append` again; a cursor derived from
        // the newest segment alone would re-journal them into the new
        // segment and corrupt the cross-segment sequence order.
        let mut floor_seq = 0u64;
        for (seg_gen, seg_path) in &segments {
            if *seg_gen == gen {
                continue;
            }
            let bytes = fs::read(seg_path).map_err(|e| io_err(seg_path, e))?;
            let parsed = read_segment(&bytes, Some(stream_id))?;
            floor_seq = floor_seq.max(parsed.records.last().map_or(0, |r| r.seq));
        }
        if !path.exists() {
            let mut file = fs::File::create(&path).map_err(|e| io_err(&path, e))?;
            file.write_all(&segment_header(stream_id, gen)).map_err(|e| io_err(&path, e))?;
            return Ok(StreamWal { gen, path, file, last_seq: floor_seq });
        }
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        let parsed = read_segment(&bytes, Some(stream_id))?;
        let file = fs::OpenOptions::new().write(true).open(&path).map_err(|e| io_err(&path, e))?;
        if parsed.valid_len < bytes.len() {
            // Drop the torn tail so appended records stay reachable.
            file.set_len(parsed.valid_len as u64).map_err(|e| io_err(&path, e))?;
        }
        let last_seq = parsed.records.last().map_or(0, |r| r.seq).max(floor_seq);
        let mut wal = StreamWal { gen, path, file, last_seq };
        if parsed.valid_len == 0 {
            // The crash beat even the header; rewrite it.
            wal.file
                .write_all(&segment_header(stream_id, gen))
                .map_err(|e| io_err(&wal.path, e))?;
        } else {
            use std::io::Seek as _;
            wal.file
                .seek(std::io::SeekFrom::Start(parsed.valid_len as u64))
                .map_err(|e| io_err(&wal.path, e))?;
        }
        Ok(wal)
    }

    /// Appends one record; idempotently skips sequences already in the
    /// segment (recovery replay flows through the journal again).
    fn append(&mut self, seq: u64, ticket: u64, op: &JournalOp<'_>) -> Result<(), SnsError> {
        if seq <= self.last_seq {
            return Ok(());
        }
        let record = encode_record(seq, ticket, op);
        self.file.write_all(&record).map_err(|e| io_err(&self.path, e))?;
        self.last_seq = seq;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), SnsError> {
        self.file.sync_all().map_err(|e| io_err(&self.path, e))
    }
}

fn list_segments(dir: &Path, stream_id: u64) -> Result<Vec<(u64, PathBuf)>, SnsError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((id, gen)) = parse_segment_name(name) {
            if id == stream_id {
                out.push((gen, entry.path()));
            }
        }
    }
    out.sort_by_key(|&(gen, _)| gen);
    Ok(out)
}

/// A directory of per-stream WAL segments, usable directly as the
/// pool's [`BatchJournal`]. Appends are per-stream serialized (streams
/// never contend with each other — one stream's records come from one
/// shard worker anyway); I/O failures are **sticky** and surfaced via
/// [`WalSet::error`] instead of failing live traffic, per the journal
/// contract.
#[derive(Debug)]
pub struct WalSet {
    dir: PathBuf,
    streams: RwLock<BTreeMap<u64, Arc<Mutex<StreamWal>>>>,
    error: Mutex<Option<SnsError>>,
}

impl WalSet {
    /// Opens (creating if needed) a WAL directory.
    ///
    /// # Errors
    /// [`SnsError::Io`] if the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, SnsError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(WalSet { dir, streams: RwLock::new(BTreeMap::new()), error: Mutex::new(None) })
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The first append failure since creation, if any. A non-`None`
    /// value means the log is incomplete from that point on — the
    /// operator's cue to fail over; live ingest was never blocked.
    pub fn error(&self) -> Option<SnsError> {
        self.error.lock().expect("wal error lock poisoned").clone()
    }

    fn stream(&self, stream_id: u64) -> Result<Arc<Mutex<StreamWal>>, SnsError> {
        if let Some(s) = self.streams.read().expect("wal map poisoned").get(&stream_id) {
            return Ok(Arc::clone(s));
        }
        let mut map = self.streams.write().expect("wal map poisoned");
        if let Some(s) = map.get(&stream_id) {
            return Ok(Arc::clone(s));
        }
        let wal = StreamWal::open(&self.dir, stream_id)?;
        let wal = Arc::new(Mutex::new(wal));
        map.insert(stream_id, Arc::clone(&wal));
        Ok(wal)
    }

    /// Stream ids with at least one segment on disk, ascending.
    ///
    /// # Errors
    /// [`SnsError::Io`] if the directory cannot be listed.
    pub fn streams(&self) -> Result<Vec<u64>, SnsError> {
        let mut ids: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))? {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            if let Some((id, _)) = entry.file_name().to_str().and_then(parse_segment_name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    /// Reads a stream's journal tail: every record with
    /// `seq > after_seq`, across all of its segments, in sequence
    /// order. This is the recovery read
    /// (`after_seq` = the restored snapshot's `wal_seq`).
    ///
    /// # Errors
    /// [`SnsError::Io`] on unreadable files; [`SnsError::Codec`] on
    /// structural corruption (torn tails are *not* errors).
    pub fn read_tail(&self, stream_id: u64, after_seq: u64) -> Result<Vec<WalRecord>, SnsError> {
        // Flush nothing: appends are unbuffered, the file is current.
        let mut out: Vec<WalRecord> = Vec::new();
        for (_, path) in list_segments(&self.dir, stream_id)? {
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            let parsed = read_segment(&bytes, Some(stream_id))?;
            for record in parsed.records {
                if record.seq <= after_seq {
                    continue;
                }
                match out.last() {
                    Some(last) if record.seq <= last.seq => {
                        return Err(invalid(format!(
                            "stream {stream_id} wal seq {} across segments after {} — \
                             duplicated or reordered records",
                            record.seq, last.seq
                        )));
                    }
                    _ => out.push(record),
                }
            }
        }
        Ok(out)
    }

    /// Rotates a stream onto a fresh `gen` segment after a checkpoint
    /// committed `committed_seq`: the current segment is fsynced and
    /// closed, and older segments that hold **only** committed records
    /// (max seq ≤ `committed_seq`) are deleted — the checkpoint already
    /// owns their contents. Bounds both the tail replayed at recovery
    /// and the disk the log occupies.
    ///
    /// # Errors
    /// [`SnsError::Io`] on filesystem failures; [`SnsError::Codec`] if
    /// an old segment is structurally corrupt.
    pub fn rotate(&self, stream_id: u64, gen: u64, committed_seq: u64) -> Result<(), SnsError> {
        let stream = self.stream(stream_id)?;
        let mut wal = stream.lock().expect("stream wal poisoned");
        if gen <= wal.gen {
            return Ok(()); // stale rotation (checkpoint raced a newer one)
        }
        wal.sync()?;
        let path = self.dir.join(segment_file_name(stream_id, gen));
        let mut file = fs::File::create(&path).map_err(|e| io_err(&path, e))?;
        file.write_all(&segment_header(stream_id, gen)).map_err(|e| io_err(&path, e))?;
        let last_seq = wal.last_seq;
        *wal = StreamWal { gen, path, file, last_seq };
        for (seg_gen, seg_path) in list_segments(&self.dir, stream_id)? {
            if seg_gen >= gen {
                continue;
            }
            let bytes = fs::read(&seg_path).map_err(|e| io_err(&seg_path, e))?;
            let parsed = read_segment(&bytes, Some(stream_id))?;
            let max_seq = parsed.records.last().map_or(0, |r| r.seq);
            if max_seq <= committed_seq {
                fs::remove_file(&seg_path).map_err(|e| io_err(&seg_path, e))?;
            }
        }
        Ok(())
    }

    /// Fsyncs every open segment (used at orderly shutdown; crash
    /// recovery does not require it).
    ///
    /// # Errors
    /// [`SnsError::Io`] on the first segment that fails to sync.
    pub fn sync(&self) -> Result<(), SnsError> {
        let streams: Vec<Arc<Mutex<StreamWal>>> =
            self.streams.read().expect("wal map poisoned").values().cloned().collect();
        for stream in streams {
            stream.lock().expect("stream wal poisoned").sync()?;
        }
        Ok(())
    }
}

impl BatchJournal for WalSet {
    fn record(&self, entry: JournalEntry<'_>) {
        let result = self.stream(entry.stream_id).and_then(|s| {
            s.lock().expect("stream wal poisoned").append(entry.seq, entry.ticket, &entry.op)
        });
        if let Err(e) = result {
            self.error.lock().expect("wal error lock poisoned").get_or_insert(e);
        }
    }
}

/// Checkpoint + WAL recovery: restores every stream of the newest
/// checkpoint in `store` onto `pool`, then replays each stream's
/// journal tail (`seq >` its snapshot's `wal_seq`) through the live
/// session. Returns the sessions in stream-id order plus the total WAL
/// units replayed — by determinism, the recovered fleet is
/// bitwise-identical to one that never crashed, and the replay cost is
/// bounded by the journal written since the last checkpoint.
///
/// Tuple-batch replay outcomes are not propagated: a journaled batch
/// reproduces its original result, including a typed error that was
/// already acknowledged in the first life. Clock/warm-start replays
/// were journaled only on success, so their failure *is* propagated —
/// it means divergence.
///
/// If `pool` is configured with the same [`WalSet`] as its journal
/// (the normal arrangement), replayed operations flow through the
/// journal again and are idempotently skipped by sequence number.
///
/// # Errors
/// Store/codec/WAL read errors, the first snapshot the pool cannot
/// restore, or a diverging clock/warm-start replay.
pub fn recover_pool_wal(
    pool: &EnginePool,
    store: &CheckpointStore,
    wal: &WalSet,
) -> Result<(Vec<StreamSession>, u64), SnsError> {
    let mut sessions = Vec::new();
    let mut replayed = 0u64;
    for snapshot in store.load()? {
        let stream_id = snapshot.stream_id;
        let after_seq = snapshot.wal_seq;
        let shard = pool.shard_of(stream_id);
        let mut session = pool.restore(snapshot, shard)?;
        for record in wal.read_tail(stream_id, after_seq)? {
            replayed += record.op.units();
            match record.op {
                WalOp::Prefill(tuples) => {
                    let _ = session.prefill_batch(&tuples);
                }
                WalOp::Ingest(tuples) => {
                    let _ = session.ingest_batch(&tuples);
                }
                WalOp::AdvanceTo(t) => {
                    let _ = session.advance_to(t)?;
                }
                WalOp::WarmStart(opts) => {
                    let _ = session.warm_start(&opts)?;
                }
            }
        }
        sessions.push(session);
    }
    Ok((sessions, replayed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_runtime::{EngineSpec, PoolConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sns-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tuples(n: u64, from: u64) -> Vec<StreamTuple> {
        (from..from + n)
            .map(|t| StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t))
            .collect()
    }

    fn journal_all(wal: &WalSet, stream_id: u64, records: &[(u64, JournalOp<'_>)]) {
        for (seq, op) in records {
            wal.record(JournalEntry { stream_id, seq: *seq, ticket: *seq, op: *op });
        }
        assert_eq!(wal.error().map(|e| e.to_string()), None);
    }

    #[test]
    fn append_read_round_trip_with_all_op_kinds() {
        let dir = temp_dir("roundtrip");
        let wal = WalSet::create(&dir).unwrap();
        let batch = tuples(5, 0);
        let opts = AlsOptions { max_iters: 7, tol: 1e-3, seed: 42, init_scale: 0.5 };
        journal_all(
            &wal,
            3,
            &[
                (5, JournalOp::Prefill(&batch)),
                (6, JournalOp::WarmStart(&opts)),
                (11, JournalOp::Ingest(&batch)),
                (12, JournalOp::AdvanceTo(99)),
            ],
        );
        let tail = wal.read_tail(3, 0).unwrap();
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].op, WalOp::Prefill(batch.clone()));
        assert_eq!(tail[1].op, WalOp::WarmStart(opts));
        assert_eq!(tail[2].op, WalOp::Ingest(batch));
        assert_eq!(tail[3].op, WalOp::AdvanceTo(99));
        assert_eq!(wal.read_tail(3, 6).unwrap().len(), 2, "tail filter is seq > after_seq");
        assert_eq!(wal.read_tail(3, 12).unwrap().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_at_every_byte_offset_is_tolerated_and_truncated_on_reopen() {
        let dir = temp_dir("torn");
        let wal = WalSet::create(&dir).unwrap();
        let batch = tuples(3, 0);
        journal_all(&wal, 1, &[(3, JournalOp::Ingest(&batch)), (4, JournalOp::AdvanceTo(7))]);
        drop(wal);
        let path = dir.join(segment_file_name(1, 0));
        let full = fs::read(&path).unwrap();
        let whole = read_segment(&full, Some(1)).unwrap();
        assert_eq!(whole.records.len(), 2);
        assert!(!whole.truncated);
        let first_end = {
            let after_header = &full[22..];
            let len = u32::from_le_bytes(after_header[..4].try_into().unwrap()) as usize;
            22 + 4 + 8 + len
        };
        // Cut the file at every byte inside the *second* record: the
        // first record must always survive, the tear must never error.
        for cut in first_end..full.len() {
            let parsed = read_segment(&full[..cut], Some(1)).unwrap();
            assert_eq!(parsed.records.len(), 1, "cut at {cut}");
            assert_eq!(parsed.truncated, cut != first_end, "cut at {cut}");
            assert_eq!(parsed.valid_len, first_end, "cut at {cut}");
        }
        // Reopen-for-append after a tear: the tail is discarded, the
        // next record lands right after the surviving one.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let wal = WalSet::create(&dir).unwrap();
        journal_all(&wal, 1, &[(5, JournalOp::AdvanceTo(8))]);
        let tail = wal.read_tail(1, 0).unwrap();
        assert_eq!(
            tail.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 5],
            "torn record 4 dropped, record 5 appended cleanly"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_and_out_of_order_sequences_are_typed_corruption() {
        let dir = temp_dir("dup");
        let wal = WalSet::create(&dir).unwrap();
        journal_all(&wal, 9, &[(1, JournalOp::AdvanceTo(1)), (2, JournalOp::AdvanceTo(2))]);
        drop(wal);
        let path = dir.join(segment_file_name(9, 0));
        let bytes = fs::read(&path).unwrap();
        // Duplicate the last record on disk (simulates a buggy writer —
        // the idempotent append cannot produce this).
        let second_start = {
            let len = u32::from_le_bytes(bytes[22..26].try_into().unwrap()) as usize;
            22 + 4 + 8 + len
        };
        let mut dup = bytes.clone();
        dup.extend_from_slice(&bytes[second_start..]);
        match read_segment(&dup, Some(9)) {
            Err(SnsError::Codec { fault: CodecFault::Invalid, detail, .. }) => {
                assert!(detail.contains("duplicated or reordered"), "{detail}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Writer-side idempotence: re-recording an old seq is a no-op.
        let wal = WalSet::create(&dir).unwrap();
        wal.record(JournalEntry { stream_id: 9, seq: 2, ticket: 0, op: JournalOp::AdvanceTo(9) });
        wal.record(JournalEntry { stream_id: 9, seq: 1, ticket: 0, op: JournalOp::AdvanceTo(9) });
        assert_eq!(wal.error().map(|e| e.to_string()), None);
        assert_eq!(wal.read_tail(9, 0).unwrap().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_starts_a_new_generation_and_prunes_committed_segments() {
        let dir = temp_dir("rotate");
        let wal = WalSet::create(&dir).unwrap();
        journal_all(&wal, 4, &[(1, JournalOp::AdvanceTo(1)), (2, JournalOp::AdvanceTo(2))]);
        wal.rotate(4, 1, 2).unwrap();
        assert!(!dir.join(segment_file_name(4, 0)).exists(), "fully committed g0 pruned");
        journal_all(&wal, 4, &[(3, JournalOp::AdvanceTo(3))]);
        wal.rotate(4, 2, 2).unwrap();
        assert!(dir.join(segment_file_name(4, 1)).exists(), "g1 holds uncommitted seq 3");
        let tail = wal.read_tail(4, 2).unwrap();
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3]);
        // Stale rotation (gen going backwards) is a no-op.
        wal.rotate(4, 1, 99).unwrap();
        assert_eq!(wal.read_tail(4, 0).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_pool_checkpoint_wal_recovery_is_bitwise_identical() {
        let dir = temp_dir("pool");
        let wal = Arc::new(WalSet::create(dir.join("wal")).unwrap());
        let store = CheckpointStore::create(dir.join("ckpt")).unwrap();
        let config = SnsConfig { rank: 2, theta: 2, ..Default::default() };
        let spec = EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
        let trace = tuples(90, 0);

        // Reference: an uninterrupted journaled run.
        let reference = {
            let wal = Arc::new(WalSet::create(dir.join("ref-wal")).unwrap());
            let pool = EnginePool::new(PoolConfig {
                shards: 1,
                base_seed: 7,
                journal: Some(wal),
                ..Default::default()
            });
            let mut s = pool.open(5, spec.clone()).unwrap();
            let _ = s.ingest_batch(&trace).unwrap();
            crate::to_bytes(&s.snapshot().unwrap())
        };

        // Doomed run: checkpoint at tuple 40, journal through 60, crash.
        {
            let pool = EnginePool::new(PoolConfig {
                shards: 1,
                base_seed: 7,
                journal: Some(Arc::clone(&wal) as _),
                ..Default::default()
            });
            let mut s = pool.open(5, spec.clone()).unwrap();
            let _ = s.ingest_batch(&trace[..40]).unwrap();
            let snapshots: Vec<_> =
                pool.checkpoint_all().into_iter().map(|(_, r)| r.unwrap()).collect();
            assert_eq!(snapshots[0].wal_seq, 40);
            let (gen, _) = store.save_incremental(&snapshots).unwrap();
            wal.rotate(5, gen, snapshots[0].wal_seq).unwrap();
            let _ = s.ingest_batch(&trace[40..60]).unwrap();
            drop(s);
            pool.join(); // crash: tuples 40..60 exist only in the WAL
        }

        // Recover on a fresh pool sharing the same WAL, then finish.
        let pool = EnginePool::new(PoolConfig {
            shards: 1,
            base_seed: 7,
            journal: Some(Arc::clone(&wal) as _),
            ..Default::default()
        });
        let (mut sessions, replayed) = recover_pool_wal(&pool, &store, &wal).unwrap();
        assert_eq!(replayed, 20, "exactly the journal tail since the checkpoint");
        assert_eq!(wal.error().map(|e| e.to_string()), None);
        let s = &mut sessions[0];
        let _ = s.ingest_batch(&trace[60..]).unwrap();
        assert_eq!(
            crate::to_bytes(&s.snapshot().unwrap()),
            reference,
            "recovered stream diverged from the uninterrupted run"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
