//! # sns-runtime
//!
//! The unified drive layer of the SliceNStitch workspace: one interface
//! over every engine, and a sharded, session-based runtime that serves
//! many independent tensor streams from a single process.
//!
//! ## Why this crate exists
//!
//! The paper's central observation is that the continuous per-event loop
//! (SliceNStitch) and the conventional once-per-period loop differ only
//! in *when* factors update — yet the workspace used to implement that
//! drive loop separately for `SnsEngine`, `BaselineEngine`, and again
//! inside the benchmark runner. This crate collapses all of them behind
//! the [`StreamingCpd`] trait: feed tuples in, read an always-current CP
//! decomposition out, regardless of the update cadence behind it.
//!
//! ## Design principles
//!
//! - **One seam:** every consumer (benchmark runner, examples, the
//!   multi-stream pool, future ingestion services) drives engines only
//!   through `dyn StreamingCpd`. New update rules plug in by implementing
//!   the trait, not by teaching each driver a new loop.
//! - **Declarative construction:** engines are described by a plain-data
//!   [`EngineSpec`] (shape, window, algorithm, hyperparameters) and
//!   materialized with [`EngineSpec::build`]`(seed)` — inspectable,
//!   comparable, and rebuildable, unlike the opaque closures the pool
//!   used to take.
//! - **Deterministic by construction:** nothing in this crate draws
//!   randomness of its own. [`EnginePool`] derives per-stream seeds with
//!   [`pool::stream_seed`] and pins each stream to exactly one worker, so
//!   a pooled run is bitwise-identical to driving the same engines
//!   serially — batched or per-tuple.
//! - **Bounded by construction:** every shard queue is bounded
//!   ([`PoolConfig::queue_depth`]); producers either block
//!   ([`StreamSession::ingest_batch`]) or observe typed
//!   [`SnsError::Backpressure`] ([`StreamSession::try_ingest_batch`]).
//!   Memory never grows with producer speed.
//! - **Typed end to end:** every fallible operation reports the
//!   workspace-wide [`SnsError`]; batch failures carry exactly how far
//!   the batch got.
//! - **No external broker:** the pool is plain `std::thread` + bounded
//!   channels, in-process. The same command protocol can later be backed
//!   by a socket or queue without touching engine code.
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`streaming`] | the [`StreamingCpd`] trait (single-tuple + batch methods) + impls for `SnsEngine` and `BaselineEngine` |
//! | [`spec`] | declarative [`EngineSpec`] / [`BaselineKind`] engine descriptions |
//! | [`pool`] | [`EnginePool`] + [`StreamSession`]: sharded, backpressured multi-stream runtime |
//! | [`snapshot`] | [`EngineSnapshot`] / [`EngineState`]: bitwise-faithful capture for shard migration |
//! | [`anomaly`] | [`AnomalyCpd`]: anomaly scoring as a transparent `StreamingCpd` decorator |
//! | [`chaos`] | [`ChaosCpd`]: deterministic fault injection (poison panics, apply-path delays) for soak tests |
//! | [`ops`] | [`PoolOps`]: the pool's operability surface — event bus, metrics registry, dead-letter queue |
//!
//! ## Quick tour: the session API
//!
//! ```
//! use sns_core::als::AlsOptions;
//! use sns_core::config::{AlgorithmKind, SnsConfig};
//! use sns_runtime::{EnginePool, EngineSpec, PoolConfig, SnsError};
//! use sns_stream::StreamTuple;
//!
//! let pool = EnginePool::new(PoolConfig { shards: 2, queue_depth: 64, ..Default::default() });
//!
//! // Declarative engine description; the engine is built on the
//! // stream's worker with a deterministic per-stream seed.
//! let config = SnsConfig { rank: 3, theta: 10, ..Default::default() };
//! let spec = EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
//! let mut session = pool.open(42, spec).expect("engine builds");
//!
//! // Initialization protocol, batched and acknowledged.
//! let prefill: Vec<StreamTuple> =
//!     (0..30u64).map(|t| StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).collect();
//! let receipt = session.prefill_batch(&prefill).expect("chronological");
//! assert_eq!(receipt.accepted, 30);
//! session.warm_start(&AlsOptions { max_iters: 10, ..Default::default() }).unwrap();
//!
//! // Live ingestion: blocking (flow control by waiting) …
//! let live: Vec<StreamTuple> =
//!     (31..60u64).map(|t| StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).collect();
//! let receipt = session.ingest_batch(&live).expect("chronological");
//! assert!(receipt.updates >= receipt.accepted as u64);
//!
//! // … or pipelined: non-blocking submit, typed backpressure, receipts
//! // collected asynchronously.
//! match session.try_ingest_batch(&[StreamTuple::new([0u32, 0], 1.0, 61)]) {
//!     Ok(_ticket) => {}
//!     Err(SnsError::Backpressure { .. }) => { /* shed load or retry */ }
//!     Err(e) => panic!("{e}"),
//! }
//! while let Some(receipt) = session.recv_receipt() {
//!     receipt.expect("chronological");
//! }
//!
//! // Model health, and a complete state capture for live migration.
//! let report = session.report().unwrap();
//! assert!(report.fitness.is_finite());
//! let snapshot = session.snapshot().unwrap();
//! session.close();
//! let mut migrated = pool.restore(snapshot, 1).expect("shard in range");
//! migrated.ingest_batch(&[StreamTuple::new([1u32, 1], 1.0, 70)]).unwrap();
//! # drop(migrated);
//! # pool.join();
//! ```

#![deny(missing_docs)]

pub mod anomaly;
pub mod chaos;
pub mod journal;
pub mod ops;
pub mod pool;
pub mod snapshot;
pub mod spec;
pub mod streaming;

pub use anomaly::{AnomalyConfig, AnomalyCpd, AnomalyState, AnomalySummary};
pub use chaos::{ChaosConfig, ChaosCpd, ChaosState, POISON_VALUE};
pub use journal::{BatchJournal, JournalEntry, JournalOp};
pub use ops::{PoolDeadLetter, PoolDlq, PoolEventBus, PoolOps, QuarantinePolicy};
pub use pool::{BatchReceipt, EnginePool, PoolConfig, StreamReport, StreamSession};
pub use snapshot::{EngineSnapshot, EngineState, StateCapture};
pub use sns_error::SnsError;
pub use sns_ops::{EvictReason, PoolEvent};
pub use spec::{BaselineKind, EngineSpec};
pub use streaming::{BatchOutcome, StreamingCpd};
