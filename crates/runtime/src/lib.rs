//! # sns-runtime
//!
//! The unified drive layer of the SliceNStitch workspace: one interface
//! over every engine, and a sharded runtime that serves many independent
//! tensor streams from a single process.
//!
//! ## Why this crate exists
//!
//! The paper's central observation is that the continuous per-event loop
//! (SliceNStitch) and the conventional once-per-period loop differ only
//! in *when* factors update — yet the workspace used to implement that
//! drive loop separately for `SnsEngine`, `BaselineEngine`, and again
//! inside the benchmark runner. This crate collapses all of them behind
//! the [`StreamingCpd`] trait: feed tuples in, read an always-current CP
//! decomposition out, regardless of the update cadence behind it.
//!
//! ## Design principles
//!
//! - **One seam:** every consumer (benchmark runner, examples, the
//!   multi-stream pool, future ingestion services) drives engines only
//!   through `dyn StreamingCpd`. New update rules plug in by implementing
//!   the trait, not by teaching each driver a new loop.
//! - **Deterministic by construction:** nothing in this crate draws
//!   randomness of its own. Engines are built from explicit seeds;
//!   [`pool::EnginePool`] derives per-stream seeds with
//!   [`pool::stream_seed`] and pins each stream to exactly one worker, so
//!   a pooled run is bitwise-identical to driving the same engines
//!   serially.
//! - **No external broker:** the pool is plain `std::thread` + channels,
//!   in-process. The same command protocol can later be backed by a
//!   socket or queue without touching engine code.
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`streaming`] | the [`StreamingCpd`] trait + impls for `SnsEngine` and `BaselineEngine` |
//! | [`pool`] | [`pool::EnginePool`]: sharded multi-stream runtime with per-stream reports |
//!
//! ## Quick tour
//!
//! ```
//! use sns_core::als::AlsOptions;
//! use sns_core::config::{AlgorithmKind, SnsConfig};
//! use sns_core::engine::SnsEngine;
//! use sns_runtime::StreamingCpd;
//! use sns_stream::StreamTuple;
//!
//! // Any engine behind the one interface.
//! let config = SnsConfig { rank: 2, seed: 7, ..Default::default() };
//! let mut engine: Box<dyn StreamingCpd> =
//!     Box::new(SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config));
//! for t in 0..40u64 {
//!     engine.prefill(StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).unwrap();
//! }
//! engine.warm_start(&AlsOptions { max_iters: 10, ..Default::default() });
//! engine.ingest(StreamTuple::new([0u32, 0], 1.0, 41)).unwrap();
//! assert!(engine.fitness().is_finite());
//! ```

pub mod pool;
pub mod streaming;

pub use pool::{EnginePool, PoolConfig, StreamReport};
pub use streaming::StreamingCpd;
