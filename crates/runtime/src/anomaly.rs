//! [`AnomalyCpd`]: anomaly scoring as a [`StreamingCpd`] decorator.
//!
//! The paper's application experiment (Section VI-G) scores each arriving
//! change by the z-score of its reconstruction error — the continuous
//! model flags a spike *at its own arrival event* instead of waiting for
//! a period boundary. This module packages that behaviour as a decorator
//! around **any** engine: wrap a `Box<dyn StreamingCpd>` in [`AnomalyCpd`]
//! and every ingested tuple is scored through
//! [`sns_core::anomaly`]'s [`ZScoreTracker`]/[`AnomalyDetector`] *before*
//! it is delegated to the wrapped engine.
//!
//! ## Zero perturbation
//!
//! Scoring only *reads* the wrapped engine (window tensor + current
//! factors); the delegated calls are untouched. A decorated engine
//! therefore produces **bitwise-identical** factors, fitness, and update
//! counts to an undecorated one driven with the same inputs — enforced by
//! `tests/scenarios.rs`.
//!
//! ## Pooled use
//!
//! [`EngineSpec::with_anomaly`](crate::spec::EngineSpec::with_anomaly)
//! describes a decorated engine declaratively, so pool workers build the
//! decoration on their own thread, and the per-stream
//! [`StreamReport`](crate::pool::StreamReport) carries the
//! [`AnomalySummary`] back to the session.

use crate::snapshot::{EngineState, StateCapture};
use crate::streaming::{BatchOutcome, StreamingCpd};
use sns_core::als::{AlsOptions, AlsResult};
use sns_core::anomaly::{AnomalyDetector, DetectorState, ScoredEvent, ZScoreTracker};
use sns_core::kruskal::KruskalTensor;
use sns_error::CodecFault;
use sns_stream::{SnsError, StreamTuple};
use sns_tensor::SparseTensor;

/// Declarative configuration of an [`AnomalyCpd`] decorator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Z-score at or above which a scored event counts as flagged.
    pub threshold: f64,
    /// How many recent scored events the detector retains (the summary
    /// statistics stay exact regardless). Keeps decorated engines
    /// bounded-memory on indefinite streams.
    pub max_events: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig { threshold: 3.0, max_events: 1024 }
    }
}

/// Roll-up of a decorated stream's anomaly activity, cheap enough to ship
/// on every [`StreamReport`](crate::pool::StreamReport).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalySummary {
    /// Arrivals scored so far.
    pub scored: u64,
    /// Scored events with `z >= threshold`.
    pub flagged: u64,
    /// Largest z-score observed (0 until two events have been scored).
    pub max_z: f64,
    /// Mean reconstruction error across all scored events.
    pub mean_error: f64,
    /// The threshold `flagged` was counted against.
    pub threshold: f64,
}

/// Anomaly-scoring decorator around any [`StreamingCpd`] engine.
///
/// Each chronological arrival is scored before delegation via the
/// engine's read-only
/// [`arrival_residual`](StreamingCpd::arrival_residual) hook: the
/// arrival is compared against the model state it is *about to update* —
/// `observed` is the engine's current value at the cell the arrival
/// lands in plus the arrival's value, `predicted` is the current
/// factorization's reconstruction — and the residual is z-scored against
/// all previously scored arrivals. Both sides are read before the engine
/// processes the arrival (including any boundary work that arrival
/// triggers); that is what keeps decoration bitwise-invisible. The first
/// arrivals after a window boundary are therefore measured against the
/// not-yet-stitched window — consistent, since the factors were also
/// last updated before that boundary.
///
/// Tuples the wrapped engine would reject (stale timestamps, bad
/// coordinates) are not scored, so the detector sees exactly the
/// accepted stream and error behaviour is unchanged.
pub struct AnomalyCpd {
    inner: Box<dyn StreamingCpd>,
    detector: AnomalyDetector,
    config: AnomalyConfig,
    flagged: u64,
    max_z: f64,
    error_sum: f64,
    /// Largest *arrival* timestamp accepted so far — the same quantity
    /// the window models validate against — used to skip scoring of
    /// tuples the engine will reject as out of order.
    last_time: Option<u64>,
}

impl AnomalyCpd {
    /// Wraps `inner`, scoring every subsequent arrival.
    pub fn new(inner: Box<dyn StreamingCpd>, config: AnomalyConfig) -> Self {
        AnomalyCpd {
            inner,
            detector: AnomalyDetector::bounded(config.max_events.max(1)),
            config,
            flagged: 0,
            max_z: 0.0,
            error_sum: 0.0,
            last_time: None,
        }
    }

    /// The detector with the retained scored events (top-k ranking,
    /// precision scoring).
    pub fn detector(&self) -> &AnomalyDetector {
        &self.detector
    }

    /// The streaming mean/variance the scores are computed against.
    pub fn tracker(&self) -> &ZScoreTracker {
        self.detector.tracker()
    }

    /// The decoration's configuration.
    pub fn config(&self) -> &AnomalyConfig {
        &self.config
    }

    /// Current anomaly roll-up.
    pub fn summary(&self) -> AnomalySummary {
        let scored = self.detector.scored();
        AnomalySummary {
            scored,
            flagged: self.flagged,
            max_z: self.max_z,
            mean_error: if scored == 0 { 0.0 } else { self.error_sum / scored as f64 },
            threshold: self.config.threshold,
        }
    }

    /// Unwraps the decorator, discarding the detector.
    pub fn into_inner(self) -> Box<dyn StreamingCpd> {
        self.inner
    }

    /// Captures the decorator's complete live state: the wrapped
    /// engine's state plus the detector (streaming statistics, retained
    /// events) and the roll-up counters. A restored decorator scores and
    /// delegates bitwise-identically.
    ///
    /// # Errors
    /// Propagates the wrapped engine's
    /// [`SnsError::SnapshotUnsupported`] if it has no capture path.
    pub fn capture_state(&self) -> Result<AnomalyState, SnsError> {
        Ok(AnomalyState {
            inner: self.inner.snapshot()?,
            detector: self.detector.capture_state(),
            config: self.config,
            flagged: self.flagged,
            max_z: self.max_z,
            error_sum: self.error_sum,
            last_time: self.last_time,
        })
    }

    /// Rebuilds a decorator from captured state.
    ///
    /// # Errors
    /// [`SnsError::Codec`] if the state is internally inconsistent.
    pub fn from_state(state: AnomalyState) -> Result<Self, SnsError> {
        let AnomalyState { inner, detector, config, flagged, max_z, error_sum, last_time } = state;
        let detector = AnomalyDetector::from_state(detector).map_err(|detail| SnsError::Codec {
            fault: CodecFault::Invalid,
            offset: 0,
            detail,
        })?;
        Ok(AnomalyCpd {
            inner: inner.into_engine()?,
            detector,
            config,
            flagged,
            max_z,
            error_sum,
            last_time,
        })
    }

    /// Scores one arrival against the wrapped engine's *current* model
    /// state, returning the event (`None` when the tuple does not fit
    /// the window and will be rejected by the engine anyway).
    fn score_arrival(&mut self, tuple: &StreamTuple) -> Option<ScoredEvent> {
        if self.last_time.is_some_and(|prev| tuple.time < prev) {
            return None; // out of order — the engine rejects it unscored
        }
        let shape = self.inner.window().shape();
        let time_mode = shape.order() - 1;
        if tuple.coords.order() != time_mode {
            return None;
        }
        for m in 0..time_mode {
            if tuple.coords.get(m) as usize >= shape.dim(m) {
                return None;
            }
        }
        // Events are keyed by the newest-unit cell; the residual itself
        // is the engine family's own definition (continuous: newest
        // window unit; conventional: the pending unit's accumulation).
        let coord = tuple.coords.extended(shape.dim(time_mode) as u32 - 1);
        let error = self.inner.arrival_residual(tuple);
        let ev = self.detector.record(&coord, tuple.time, error);
        self.error_sum += error;
        if ev.z >= self.config.threshold {
            self.flagged += 1;
        }
        if ev.z > self.max_z {
            self.max_z = ev.z;
        }
        Some(ev)
    }
}

impl StreamingCpd for AnomalyCpd {
    fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()> {
        // Initialization phase: no factors worth scoring against yet.
        self.inner.prefill(tuple)?;
        self.last_time = Some(self.last_time.map_or(tuple.time, |t| t.max(tuple.time)));
        Ok(())
    }

    fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult {
        self.inner.warm_start(opts)
    }

    fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
        self.score_arrival(&tuple);
        let n = self.inner.ingest(tuple)?;
        self.last_time = Some(self.last_time.map_or(tuple.time, |t| t.max(tuple.time)));
        Ok(n)
    }

    fn advance_to(&mut self, t: u64) -> usize {
        self.inner.advance_to(t)
    }

    fn window(&self) -> &SparseTensor {
        self.inner.window()
    }

    fn kruskal(&self) -> &KruskalTensor {
        self.inner.kruskal()
    }

    fn fitness(&self) -> f64 {
        self.inner.fitness()
    }

    fn diverged(&self) -> bool {
        self.inner.diverged()
    }

    fn updates_applied(&self) -> u64 {
        self.inner.updates_applied()
    }

    fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }

    fn name(&self) -> String {
        format!("Anomaly({})", self.inner.name())
    }

    fn ingest_all(&mut self, tuples: &[StreamTuple]) -> Result<BatchOutcome, SnsError> {
        // Per-tuple loop on purpose: every arrival must be scored against
        // the factors *as of its own arrival*, so the wrapped engine's
        // amortized batch path cannot be used. Outcomes (accepted counts,
        // update totals, `BatchAborted` progress) are identical.
        let mut updates = 0u64;
        for (i, tu) in tuples.iter().enumerate() {
            match self.ingest(*tu) {
                Ok(n) => updates += n as u64,
                Err(e) => return Err(e.aborted_at(i, updates)),
            }
        }
        Ok(BatchOutcome { accepted: tuples.len(), updates })
    }

    fn snapshot(&self) -> Result<EngineState, SnsError> {
        StateCapture::capture(self)
    }

    fn anomalies(&self) -> Option<AnomalySummary> {
        Some(self.summary())
    }

    fn arrival_residual(&self, tuple: &StreamTuple) -> f64 {
        // Nested decoration keeps the innermost engine's definition.
        self.inner.arrival_residual(tuple)
    }
}

/// Captured state of an [`AnomalyCpd`] decorator: the wrapped engine's
/// state plus the detector and roll-up counters (see
/// [`AnomalyCpd::capture_state`]).
#[derive(Clone)]
pub struct AnomalyState {
    /// The wrapped engine's captured state.
    pub inner: EngineState,
    /// The detector: streaming statistics + retained scored events.
    pub detector: DetectorState,
    /// Threshold and retention configuration.
    pub config: AnomalyConfig,
    /// Events flagged at or above the threshold.
    pub flagged: u64,
    /// Largest z-score observed.
    pub max_z: f64,
    /// Sum of all scored reconstruction errors.
    pub error_sum: f64,
    /// Largest accepted arrival timestamp.
    pub last_time: Option<u64>,
}

impl std::fmt::Debug for AnomalyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AnomalyState(scored={}, flagged={}, inner={:?})",
            self.detector.count, self.flagged, self.inner
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_core::engine::SnsEngine;

    fn engine() -> Box<dyn StreamingCpd> {
        let config = SnsConfig { rank: 2, theta: 4, seed: 11, ..Default::default() };
        Box::new(SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config))
    }

    fn tuples() -> Vec<StreamTuple> {
        (0..150u64).map(|t| StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).collect()
    }

    #[test]
    fn decoration_is_invisible_to_the_model() {
        let mut plain = engine();
        let mut wrapped = AnomalyCpd::new(engine(), AnomalyConfig::default());
        let stream = tuples();
        plain.prefill_all(&stream[..50]).unwrap();
        wrapped.prefill_all(&stream[..50]).unwrap();
        plain.warm_start(&AlsOptions::default());
        wrapped.warm_start(&AlsOptions::default());
        let a = plain.ingest_all(&stream[50..]).unwrap();
        let b = wrapped.ingest_all(&stream[50..]).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.fitness().to_bits(), wrapped.fitness().to_bits());
        for m in 0..3 {
            assert_eq!(plain.kruskal().factors[m], wrapped.kruskal().factors[m], "mode {m}");
        }
        // …while the decorator actually scored the live phase.
        let s = wrapped.summary();
        assert_eq!(s.scored, 100);
        assert!(s.mean_error > 0.0);
        assert_eq!(wrapped.name(), "Anomaly(SNS+_RND)");
    }

    #[test]
    fn spike_is_flagged_with_a_high_zscore() {
        let mut wrapped = AnomalyCpd::new(engine(), AnomalyConfig::default());
        let stream = tuples();
        wrapped.prefill_all(&stream[..50]).unwrap();
        wrapped.warm_start(&AlsOptions::default());
        wrapped.ingest_all(&stream[50..120]).unwrap();
        let before = wrapped.summary();
        wrapped.ingest(StreamTuple::new([0u32, 0], 500.0, 121)).unwrap();
        let after = wrapped.summary();
        assert_eq!(after.scored, before.scored + 1);
        assert!(after.flagged > before.flagged, "spike not flagged: {after:?}");
        assert!(after.max_z > 3.0, "spike z = {}", after.max_z);
        let top = wrapped.detector().top_k(1);
        assert_eq!(top[0].time, 121);
    }

    #[test]
    fn rejected_tuples_are_not_scored() {
        let mut wrapped = AnomalyCpd::new(engine(), AnomalyConfig::default());
        wrapped.ingest(StreamTuple::new([0u32, 0], 1.0, 50)).unwrap();
        // Out of order: rejected by the engine, invisible to the detector.
        assert!(wrapped.ingest(StreamTuple::new([1u32, 1], 1.0, 10)).is_err());
        // Bad coordinates: likewise.
        assert!(wrapped.ingest(StreamTuple::new([9u32, 0], 1.0, 60)).is_err());
        assert!(wrapped.ingest(StreamTuple::new([0u32], 1.0, 60)).is_err());
        assert_eq!(wrapped.summary().scored, 1);
    }

    #[test]
    fn snapshot_restores_detector_and_engine_bitwise() {
        let mut original = AnomalyCpd::new(engine(), AnomalyConfig::default());
        let stream = tuples();
        original.prefill_all(&stream[..50]).unwrap();
        original.warm_start(&AlsOptions::default());
        original.ingest_all(&stream[50..100]).unwrap();
        original.ingest(StreamTuple::new([0u32, 0], 300.0, 100)).unwrap();

        let state = original.snapshot().unwrap();
        assert!(matches!(state, EngineState::Anomaly(_)));
        let mut restored = state.into_engine().unwrap();
        assert_eq!(restored.name(), "Anomaly(SNS+_RND)");
        assert_eq!(restored.anomalies(), original.anomalies());

        // Both continue identically: scores, flags, and model state.
        for tu in &stream[100..] {
            original.ingest(*tu).unwrap();
            restored.ingest(*tu).unwrap();
        }
        assert_eq!(restored.anomalies(), original.anomalies());
        assert_eq!(original.fitness().to_bits(), restored.fitness().to_bits());
        for m in 0..3 {
            assert_eq!(original.kruskal().factors[m], restored.kruskal().factors[m], "mode {m}");
        }
    }

    #[test]
    fn capture_propagates_inner_opt_out() {
        // An engine without a capture path keeps the decorator honest:
        // migrating only the detector would silently drop the model.
        struct NoCapture(Box<dyn StreamingCpd>);
        impl StreamingCpd for NoCapture {
            fn prefill(&mut self, t: StreamTuple) -> sns_stream::Result<()> {
                self.0.prefill(t)
            }
            fn warm_start(&mut self, o: &AlsOptions) -> sns_core::als::AlsResult {
                self.0.warm_start(o)
            }
            fn ingest(&mut self, t: StreamTuple) -> sns_stream::Result<usize> {
                self.0.ingest(t)
            }
            fn advance_to(&mut self, t: u64) -> usize {
                self.0.advance_to(t)
            }
            fn window(&self) -> &SparseTensor {
                self.0.window()
            }
            fn kruskal(&self) -> &KruskalTensor {
                self.0.kruskal()
            }
            fn fitness(&self) -> f64 {
                self.0.fitness()
            }
            fn diverged(&self) -> bool {
                self.0.diverged()
            }
            fn updates_applied(&self) -> u64 {
                self.0.updates_applied()
            }
            fn num_parameters(&self) -> usize {
                self.0.num_parameters()
            }
            fn name(&self) -> String {
                "opaque".to_string()
            }
        }
        let wrapped = AnomalyCpd::new(Box::new(NoCapture(engine())), AnomalyConfig::default());
        match wrapped.snapshot() {
            Err(SnsError::SnapshotUnsupported { engine }) => assert_eq!(engine, "opaque"),
            other => panic!("expected SnapshotUnsupported, got {:?}", other.map(|_| ())),
        }
    }
}
