//! Universal engine state capture.
//!
//! A captured [`EngineState`] is **plain data** — window tensor (with
//! exact iteration orders), pending events, factor matrices, Gram
//! matrices, accumulators, sampling RNG states, and clocks — so a
//! restored engine continues **bitwise-identically** to the original.
//! This is stronger than "factors + window": replaying tuples into a
//! freshly built engine would desynchronize the sampling RNGs of the RND
//! variants, the FIFO tie-breaking of the event queue, and the float
//! summation orders of the fiber indexes.
//!
//! Every engine family in the workspace implements [`StateCapture`]: the
//! continuous [`SnsEngine`], all four conventional baselines behind
//! [`BaselineEngine`](sns_baselines::BaselineEngine), and the
//! [`AnomalyCpd`](crate::anomaly::AnomalyCpd) decorator (detector
//! included). Because the state is structural rather than a live object,
//! it can leave the process: `sns-codec` serializes an
//! [`EngineSnapshot`] to a self-describing versioned binary and back,
//! which is what pool-wide checkpointing and crash recovery are built
//! on.

use crate::spec::EngineSpec;
use crate::streaming::StreamingCpd;
use sns_baselines::BaselineEngineState;
use sns_core::engine::{SnsEngine, SnsEngineState};
use sns_error::{CodecFault, SnsError};

pub use crate::anomaly::AnomalyState;
pub use crate::chaos::ChaosState;

/// Captured engine state, by engine family. Plain `Send + Clone` data;
/// see the module docs for the fidelity contract.
#[derive(Clone)]
pub enum EngineState {
    /// A continuous SliceNStitch engine.
    Sns(Box<SnsEngineState>),
    /// A conventional once-per-period baseline engine.
    Baseline(Box<BaselineEngineState>),
    /// An anomaly-scoring decorator around another captured engine.
    Anomaly(Box<AnomalyState>),
    /// A fault-injecting chaos decorator around another captured
    /// engine. Captured with its wrapper so a quarantine rollback
    /// restores the *decorated* engine (the fault plan survives).
    Chaos(Box<ChaosState>),
}

/// State capture: freeze a live engine into an [`EngineState`].
///
/// The inverse is [`EngineState::into_engine`]. The round trip is
/// bitwise-faithful: the restored engine produces identical factors,
/// fitness, receipts, and anomaly scores for any subsequent input.
pub trait StateCapture {
    /// Captures the engine's complete live state.
    ///
    /// # Errors
    /// [`SnsError::SnapshotUnsupported`] only for engines that opt out
    /// explicitly (e.g. a decorator around an external engine without a
    /// capture path).
    fn capture(&self) -> Result<EngineState, SnsError>;
}

impl StateCapture for SnsEngine {
    fn capture(&self) -> Result<EngineState, SnsError> {
        Ok(EngineState::Sns(Box::new(self.capture_state())))
    }
}

impl<B: sns_baselines::PeriodicCpd> StateCapture for sns_baselines::BaselineEngine<B> {
    fn capture(&self) -> Result<EngineState, SnsError> {
        Ok(EngineState::Baseline(Box::new(self.capture_state()?)))
    }
}

impl StateCapture for crate::anomaly::AnomalyCpd {
    fn capture(&self) -> Result<EngineState, SnsError> {
        Ok(EngineState::Anomaly(Box::new(self.capture_state()?)))
    }
}

fn invalid(detail: String) -> SnsError {
    SnsError::Codec { fault: CodecFault::Invalid, offset: 0, detail }
}

impl EngineState {
    /// Turns the captured state back into a live engine, which continues
    /// bitwise-identically to the captured one.
    ///
    /// # Errors
    /// [`SnsError::Codec`] with [`CodecFault::Invalid`] if the state is
    /// internally inconsistent (states decoded from bytes are validated,
    /// not trusted).
    pub fn into_engine(self) -> Result<Box<dyn StreamingCpd>, SnsError> {
        match self {
            EngineState::Sns(state) => {
                SnsEngine::from_state(*state).map(|e| Box::new(e) as _).map_err(invalid)
            }
            EngineState::Baseline(state) => {
                state.into_engine().map(|e| Box::new(e) as _).map_err(invalid)
            }
            EngineState::Anomaly(state) => {
                crate::anomaly::AnomalyCpd::from_state(*state).map(|e| Box::new(e) as _)
            }
            EngineState::Chaos(state) => {
                crate::chaos::ChaosCpd::from_state(*state).map(|e| Box::new(e) as _)
            }
        }
    }

    /// Display name of the captured engine (matches
    /// [`StreamingCpd::name`]).
    pub fn name(&self) -> String {
        match self {
            EngineState::Sns(s) => s.kind().name().to_string(),
            EngineState::Baseline(s) => s.algo.name(),
            EngineState::Anomaly(s) => format!("Anomaly({})", s.inner.name()),
            EngineState::Chaos(s) => format!("Chaos({})", s.inner.name()),
        }
    }

    /// Factor updates the captured engine had applied.
    pub fn updates_applied(&self) -> u64 {
        match self {
            EngineState::Sns(s) => s.updates_applied,
            EngineState::Baseline(s) => s.periods,
            EngineState::Anomaly(s) => s.inner.updates_applied(),
            EngineState::Chaos(s) => s.inner.updates_applied(),
        }
    }

    /// The captured engine's clock (largest time it has observed —
    /// advanced to for continuous engines, last arrival for baselines).
    pub fn clock(&self) -> u64 {
        match self {
            EngineState::Sns(s) => s.clock(),
            EngineState::Baseline(s) => s.window.last_arrival.unwrap_or(0),
            EngineState::Anomaly(s) => s.inner.clock(),
            EngineState::Chaos(s) => s.inner.clock(),
        }
    }

    /// Mode lengths of the captured model.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            EngineState::Sns(s) => s.updater.factors().dims(),
            EngineState::Baseline(s) => s.algo.kruskal().dims(),
            EngineState::Anomaly(s) => s.inner.dims(),
            EngineState::Chaos(s) => s.inner.dims(),
        }
    }
}

/// Compact by design: pool error logs print snapshots, and dumping
/// entire factor matrices and windows there made them unreadable.
impl std::fmt::Debug for EngineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EngineState({}, dims={:?}, clock={}, updates={})",
            self.name(),
            self.dims(),
            self.clock(),
            self.updates_applied()
        )
    }
}

/// A migratable, serializable snapshot of one pooled stream: the
/// captured engine state plus the spec and seed the engine was
/// originally built from, so the receiving side can verify or rebuild
/// from scratch.
#[derive(Clone)]
#[must_use = "a snapshot exists to be restored, serialized, or verified"]
pub struct EngineSnapshot {
    /// The stream the snapshot was taken from.
    pub stream_id: u64,
    /// The spec the engine was built from.
    pub spec: EngineSpec,
    /// The seed the engine was built with (already derived/pinned).
    pub seed: u64,
    /// The stream's WAL sequence at capture time: cumulative journaled
    /// units (see [`crate::journal`]). Always `0` on pools without a
    /// configured [`BatchJournal`](crate::BatchJournal); when a journal
    /// is attached, recovery restores the snapshot and replays journal
    /// records with `seq > wal_seq`.
    pub wal_seq: u64,
    /// The captured state.
    pub state: EngineState,
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EngineSnapshot(stream={}, seed={:#x}, wal_seq={}, {:?})",
            self.stream_id, self.seed, self.wal_seq, self.state
        )
    }
}

// Snapshots must be able to cross worker threads.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<EngineSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_stream::StreamTuple;

    #[test]
    fn state_round_trips_through_into_engine() {
        let config = SnsConfig { rank: 2, theta: 2, seed: 5, ..Default::default() };
        let mut e = SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
        for t in 0..50u64 {
            e.ingest(StreamTuple::new([(t % 3) as u32, ((t * 2) % 3) as u32], 1.0, t)).unwrap();
        }
        let state = e.capture().unwrap();
        assert_eq!(state.updates_applied(), e.updates_applied());
        assert_eq!(state.clock(), e.now());
        let mut restored = state.into_engine().unwrap();
        let tu = StreamTuple::new([1u32, 1], 1.0, 60);
        let a = SnsEngine::ingest(&mut e, tu).unwrap();
        let b = restored.ingest(tu).unwrap();
        assert_eq!(a, b);
        assert_eq!(e.fitness().to_bits(), restored.fitness().to_bits());
    }

    #[test]
    fn debug_stays_compact_for_large_engines() {
        let config = SnsConfig { rank: 20, seed: 5, ..Default::default() };
        let mut e = SnsEngine::new(&[40, 30], 10, 10, AlgorithmKind::PlusVec, &config);
        for t in 0..400u64 {
            e.ingest(StreamTuple::new([(t % 40) as u32, (t % 30) as u32], 1.0, t)).unwrap();
        }
        let state = e.capture().unwrap();
        let dbg = format!("{state:?}");
        assert!(dbg.len() < 160, "EngineState debug must not dump factors: {dbg}");
        let snapshot = EngineSnapshot {
            stream_id: 7,
            spec: EngineSpec::sns(&[40, 30], 10, 10, AlgorithmKind::PlusVec, &config),
            seed: 0xbeef,
            wal_seq: 0,
            state,
        };
        let dbg = format!("{snapshot:?}");
        assert!(dbg.contains("stream=7") && dbg.len() < 240, "{dbg}");
    }
}
