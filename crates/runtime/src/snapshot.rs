//! Engine state capture for live-stream migration.
//!
//! A snapshot is a *deep copy* of a running engine — window tensor,
//! pending boundary events, factor matrices, Gram matrices, the sampling
//! RNG mid-stream state, and the clock — so a restored engine continues
//! **bitwise-identically** to the original. This is stronger than
//! "factors + window": replaying tuples into a freshly built engine
//! would desynchronize the sampling RNG of the RND variants and the FIFO
//! tie-breaking of the event queue.
//!
//! Snapshots are plain `Send` data: they can cross worker threads, which
//! is what [`EnginePool::restore`](crate::pool::EnginePool::restore)
//! does to migrate a stream to another shard.

use crate::spec::EngineSpec;
use crate::streaming::StreamingCpd;
use sns_core::engine::SnsEngine;

/// Captured engine state, by engine family.
///
/// Currently only the continuous [`SnsEngine`] supports capture; the
/// conventional baselines keep algorithm-internal accumulators that have
/// no snapshot path yet and report
/// [`SnsError::SnapshotUnsupported`](sns_error::SnsError::SnapshotUnsupported).
#[derive(Clone)]
pub enum EngineState {
    /// A complete continuous-engine state.
    Sns(Box<SnsEngine>),
}

impl EngineState {
    /// Turns the captured state back into a live engine.
    pub fn into_engine(self) -> Box<dyn StreamingCpd> {
        match self {
            EngineState::Sns(engine) => engine,
        }
    }

    /// Factor updates the captured engine had applied.
    pub fn updates_applied(&self) -> u64 {
        match self {
            EngineState::Sns(e) => e.updates_applied(),
        }
    }

    /// The captured engine's clock (largest time it has advanced to).
    pub fn clock(&self) -> u64 {
        match self {
            EngineState::Sns(e) => e.now(),
        }
    }
}

impl std::fmt::Debug for EngineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineState::Sns(e) => write!(f, "EngineState::Sns({e:?})"),
        }
    }
}

/// A migratable snapshot of one pooled stream: the captured engine state
/// plus the spec and seed the engine was originally built from, so the
/// receiving side can verify or rebuild from scratch.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The stream the snapshot was taken from.
    pub stream_id: u64,
    /// The spec the engine was built from.
    pub spec: EngineSpec,
    /// The seed the engine was built with (already derived/pinned).
    pub seed: u64,
    /// The captured state.
    pub state: EngineState,
}

// Snapshots must be able to cross worker threads.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<EngineSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_stream::StreamTuple;

    #[test]
    fn state_round_trips_through_into_engine() {
        let config = SnsConfig { rank: 2, theta: 2, seed: 5, ..Default::default() };
        let mut e = SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::PlusRnd, &config);
        for t in 0..50u64 {
            e.ingest(StreamTuple::new([(t % 3) as u32, ((t * 2) % 3) as u32], 1.0, t)).unwrap();
        }
        let state = EngineState::Sns(Box::new(e.clone()));
        assert_eq!(state.updates_applied(), e.updates_applied());
        assert_eq!(state.clock(), e.now());
        let mut restored = state.into_engine();
        let tu = StreamTuple::new([1u32, 1], 1.0, 60);
        let a = e.ingest(tu).unwrap();
        let b = restored.ingest(tu).unwrap();
        assert_eq!(a, b);
        assert_eq!(e.fitness().to_bits(), restored.fitness().to_bits());
    }
}
