//! The pool's operability surface: `sns-ops` instantiated for the
//! runtime.
//!
//! [`PoolOps`] bundles the three `sns-ops` layers the
//! [`EnginePool`](crate::pool::EnginePool) publishes into — the
//! [`PoolEvent`] bus, the [`MetricsRegistry`], and the
//! [`EngineSpec`]-typed dead-letter queue — behind one cheaply clonable
//! handle. The pool creates it, workers and sessions write into it, and
//! operators read from it ([`PoolOps::subscribe`], [`PoolOps::dump`])
//! without ever touching a worker thread.

use crate::spec::EngineSpec;
use sns_ops::{DeadLetter, DeadLetterQueue, EventBus, MetricsRegistry, PoolEvent, Subscription};

/// The pool's event bus, carrying [`PoolEvent`]s.
pub type PoolEventBus = EventBus<PoolEvent>;

/// The pool's dead-letter queue; letters carry the stream's
/// [`EngineSpec`] for repair tooling.
pub type PoolDlq = DeadLetterQueue<EngineSpec>;

/// One quarantined batch of a pooled stream.
pub type PoolDeadLetter = DeadLetter<EngineSpec>;

/// What happens to a stream whose batch panics its engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuarantinePolicy {
    /// Roll the engine back to its pre-batch captured state, record the
    /// batch to the dead-letter queue, and keep serving: later batches
    /// divert to the DLQ (in order) until
    /// [`StreamSession::replay_quarantined`](crate::pool::StreamSession::replay_quarantined)
    /// re-drives them. Costs one state capture per batch on streams of
    /// capture-supporting engines; engines without capture fall back to
    /// [`QuarantinePolicy::Disabled`] behaviour (the letter is still
    /// recorded).
    #[default]
    Rollback,
    /// Pre-PR-7 behaviour: the engine is dropped and the stream keeps
    /// reporting [`SnsError::EnginePanicked`](sns_error::SnsError)
    /// forever. No per-batch capture cost; the panicking batch is still
    /// recorded to the DLQ for post-mortems.
    Disabled,
}

/// Cheaply clonable handle to the pool's event bus, metrics registry,
/// and dead-letter queue. All clones share state.
#[derive(Clone)]
pub struct PoolOps {
    bus: PoolEventBus,
    metrics: MetricsRegistry,
    dlq: PoolDlq,
}

impl PoolOps {
    pub(crate) fn new(shards: usize, queue_capacity: usize, bus_capacity: usize) -> Self {
        PoolOps {
            bus: PoolEventBus::new(bus_capacity),
            metrics: MetricsRegistry::new(shards, queue_capacity),
            dlq: PoolDlq::new(),
        }
    }

    /// The lifecycle event bus.
    pub fn bus(&self) -> &PoolEventBus {
        &self.bus
    }

    /// The metrics registry (per-stream / per-shard counters, latency
    /// histograms, queue gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The dead-letter queue of quarantined batches.
    pub fn dlq(&self) -> &PoolDlq {
        &self.dlq
    }

    /// Subscribes to lifecycle events from "now" on. Lag-tolerant:
    /// a slow subscriber drops oldest events, never blocks workers.
    pub fn subscribe(&self) -> Subscription<PoolEvent> {
        self.bus.subscribe()
    }

    /// Full operational JSON dump: shards, streams, event-bus counters,
    /// DLQ counters. Safe to call mid-traffic.
    pub fn dump(&self) -> String {
        self.metrics.dump_with(Some(self.bus.stats()), Some(self.dlq.stats()))
    }

    /// Human-oriented plain-text rendering of the metrics.
    pub fn render_text(&self) -> String {
        self.metrics.render_text()
    }
}

impl std::fmt::Debug for PoolOps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bus = self.bus.stats();
        let dlq = self.dlq.stats();
        write!(
            f,
            "PoolOps(events={}/{} dropped, dlq={} pending/{} total)",
            bus.published, bus.dropped, dlq.pending, dlq.quarantined_total
        )
    }
}
