//! A sharded multi-stream runtime: many independent tensor streams, one
//! process, `N` worker threads, session-based clients.
//!
//! ## Model
//!
//! Every stream (a tenant's sensor feed, one city's traffic matrix, …)
//! is an independent [`StreamingCpd`] engine identified by a `u64`
//! stream id. [`EnginePool::open`] pins the id to one worker thread
//! (`shard = hash(id) % workers`), builds its engine *on* that worker
//! from a declarative [`EngineSpec`], and hands back a [`StreamSession`]
//! — the only way to talk to the stream:
//!
//! - commands for one stream execute **in submission order** on one
//!   thread — no locks around engine state, no cross-thread movement of
//!   live engines;
//! - different streams proceed **concurrently** across workers;
//! - every shard's command queue is **bounded**
//!   ([`PoolConfig::queue_depth`]): [`StreamSession::ingest_batch`]
//!   blocks when the shard is saturated,
//!   [`StreamSession::try_ingest_batch`] surfaces
//!   [`SnsError::Backpressure`] instead — memory stays bounded either
//!   way;
//! - ingestion is **batched** and **acknowledged**: each batch yields a
//!   [`BatchReceipt`] reporting tuples accepted and factor updates
//!   applied, and failures are typed [`SnsError`]s carrying how far the
//!   batch got;
//! - the command pipeline is **zero-alloc and coalescing** at steady
//!   state: batch buffers recycle through a per-shard freelist
//!   (sessions take on submit, the worker returns on ack), and a shard
//!   worker drains every consecutively queued batch for a stream in
//!   one channel acquisition, driving them through a single engine
//!   call — bitwise-identical to per-batch execution because the
//!   per-tuple update sequence is untouched;
//! - a live stream can **migrate**: [`StreamSession::snapshot`] captures
//!   the complete engine state ([`EngineSnapshot`]) and
//!   [`EnginePool::restore`] resumes it on any shard (or another pool),
//!   bitwise-identically;
//! - failures stay **per-stream**: an engine error is returned on that
//!   batch's receipt and recorded in the stream's [`StreamReport`]; an
//!   engine that *panics* is quarantined while every other stream on the
//!   shard keeps running.
//!
//! ## Determinism contract
//!
//! A stream's engine is built from `spec.build(seed)` with
//! `seed = `[`stream_seed`]`(base_seed, id)` — a pure function,
//! independent of shard count and worker scheduling. A serial reference
//! run that builds its engines from the same specs and derived seeds
//! reproduces pooled results exactly, batched or not (see
//! `tests/engine_pool.rs`).

use crate::anomaly::AnomalySummary;
use crate::journal::{BatchJournal, JournalEntry, JournalOp};
use crate::ops::{PoolDeadLetter, PoolOps, QuarantinePolicy};
use crate::snapshot::EngineSnapshot;
use crate::spec::EngineSpec;
use crate::streaming::{BatchOutcome, StreamingCpd};
use sns_core::als::AlsOptions;
use sns_ops::{EvictReason, PoolEvent, QuarantinedOp, StreamMetrics};
use sns_stream::{SnsError, StreamTuple};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::mpsc::{TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pool sizing, seeding, and flow control.
#[derive(Clone)]
pub struct PoolConfig {
    /// Worker (shard) count. Streams are hashed across workers.
    pub shards: usize,
    /// Base seed that per-stream seeds are derived from.
    pub base_seed: u64,
    /// Bound of each shard's command queue, in commands. Sessions block
    /// ([`StreamSession::ingest_batch`]) or see
    /// [`SnsError::Backpressure`] ([`StreamSession::try_ingest_batch`])
    /// once their shard has this many commands in flight.
    pub queue_depth: usize,
    /// Ring capacity of the lifecycle event bus
    /// ([`EnginePool::ops`]`().bus()`), in events. Slow subscribers lag
    /// (drop-oldest) past this bound; publishers never block.
    pub bus_capacity: usize,
    /// What happens to a stream whose batch panics its engine — see
    /// [`QuarantinePolicy`].
    pub quarantine: QuarantinePolicy,
    /// Write-ahead-log sink. When set, shard workers call
    /// [`BatchJournal::record`] after every acknowledged state-changing
    /// command and stamp snapshots with the stream's WAL sequence (see
    /// [`crate::journal`]). `None` (the default) costs nothing on the
    /// batch path.
    pub journal: Option<Arc<dyn BatchJournal>>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        PoolConfig {
            shards,
            base_seed: 0x5eed,
            queue_depth: 512,
            bus_capacity: 1024,
            quarantine: QuarantinePolicy::Rollback,
            journal: None,
        }
    }
}

impl std::fmt::Debug for PoolConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolConfig")
            .field("shards", &self.shards)
            .field("base_seed", &self.base_seed)
            .field("queue_depth", &self.queue_depth)
            .field("bus_capacity", &self.bus_capacity)
            .field("quarantine", &self.quarantine)
            .field("journal", &self.journal.as_ref().map(|_| "attached"))
            .finish()
    }
}

/// Deterministic per-stream seed: a SplitMix64 mix of the pool's base
/// seed and the stream id. Pure — independent of shard count, worker
/// scheduling, and stream open order.
pub fn stream_seed(base_seed: u64, stream_id: u64) -> u64 {
    let mut z = base_seed ^ stream_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What a pool-level checkpoint yields: per stream id, either its
/// captured snapshot or the typed error that stream produced instead.
pub type CheckpointResults = Vec<(u64, Result<EngineSnapshot, SnsError>)>;

/// Acknowledgment for one session command: what the engine actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a receipt is the only acknowledgment a batch gets; check it"]
pub struct BatchReceipt {
    /// The stream the batch went to.
    pub stream_id: u64,
    /// The session-local ticket this receipt acknowledges (the value
    /// [`StreamSession::try_ingest_batch`] returned).
    pub ticket: u64,
    /// Tuples accepted by the engine.
    pub accepted: usize,
    /// Factor updates the batch triggered (events for continuous
    /// engines, periods for baselines).
    pub updates: u64,
    /// Enqueue→ack latency as observed by the session: from the moment
    /// the command entered the shard queue to the moment the session
    /// pulled this receipt. Stamped session-side; also recorded into the
    /// stream's latency histogram
    /// ([`EnginePool::ops`]`().metrics()`).
    pub latency: Duration,
}

/// Snapshot of one stream's model health, produced on its worker.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The stream id the report describes.
    pub stream_id: u64,
    /// Engine display name.
    pub name: String,
    /// Fitness against the stream's current window.
    pub fitness: f64,
    /// Factor updates applied so far.
    pub updates_applied: u64,
    /// Model parameter count.
    pub num_parameters: usize,
    /// Whether the model diverged.
    pub diverged: bool,
    /// Anomaly roll-up, when the stream's engine scores its input (an
    /// [`AnomalyCpd`](crate::anomaly::AnomalyCpd) decoration).
    pub anomalies: Option<AnomalySummary>,
    /// First command error observed on this stream, if any.
    pub error: Option<SnsError>,
}

enum Command {
    Open {
        id: u64,
        token: u64,
        ticket: u64,
        seed: u64,
        spec: EngineSpec,
        replies: Sender<SessionReply>,
    },
    Restore {
        id: u64,
        token: u64,
        ticket: u64,
        snapshot: Box<EngineSnapshot>,
        replies: Sender<SessionReply>,
    },
    Prefill {
        id: u64,
        token: u64,
        ticket: u64,
        tuples: Vec<StreamTuple>,
    },
    WarmStart {
        id: u64,
        token: u64,
        ticket: u64,
        opts: AlsOptions,
    },
    Ingest {
        id: u64,
        token: u64,
        ticket: u64,
        tuples: Vec<StreamTuple>,
    },
    AdvanceTo {
        id: u64,
        token: u64,
        ticket: u64,
        t: u64,
    },
    Report {
        id: u64,
        token: u64,
        ticket: u64,
    },
    Snapshot {
        id: u64,
        token: u64,
        ticket: u64,
    },
    Close {
        id: u64,
        token: u64,
    },
    /// Lifts a stream's quarantine (and clears its sticky error) so
    /// repaired dead-letter batches can be re-driven. Sent by
    /// [`StreamSession::replay_quarantined`] *before* the replayed
    /// batches; FIFO ordering makes the release visible first.
    Release {
        id: u64,
        token: u64,
        ticket: u64,
    },
    /// Pool-wide checkpoint: snapshot every live slot on this shard
    /// (after draining all previously enqueued commands) and reply on a
    /// dedicated channel. Per-stream consistency follows from command
    /// ordering; sessions stay open and unaffected.
    CheckpointShard {
        replies: Sender<Vec<(u64, Result<EngineSnapshot, SnsError>)>>,
    },
    /// Unconditional slot removal (any token): open/restore send this to
    /// the shard that previously owned the stream id (per the pool's
    /// ownership map) so the id lives on at most one shard. Ordering is
    /// guaranteed by the per-stream ownership lock: an `Evict` is always
    /// enqueued after the install command that made its target shard the
    /// owner, so it can never remove a newer slot.
    Evict {
        id: u64,
    },
    Shutdown,
}

enum ReplyBody {
    Receipt(Result<BatchReceipt, SnsError>),
    Report(Box<StreamReport>),
    Snapshot(Box<Result<EngineSnapshot, SnsError>>),
}

struct SessionReply {
    ticket: u64,
    body: ReplyBody,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string())
}

/// Per-shard freelist of recycled batch tuple buffers.
///
/// A session `take`s a buffer to carry a batch's tuples to its shard
/// worker; the worker `put`s the buffer back once the batch has been
/// acknowledged and journaled (batches diverted to the dead-letter
/// queue keep their buffer — the letter owns those tuples). At steady
/// state pooled ingest therefore cycles a small set of allocations
/// instead of allocating a fresh `Vec` per batch; `bench resources
/// --pooled` measures the resulting allocs/event.
///
/// Buffers are cleared on `put`, so a recycled buffer can never leak
/// one stream's tuples into another stream's batch, and the freelist
/// is bounded so a burst cannot pin memory. The mutex is leaf-level:
/// `take`/`put` are O(1) under the lock and never run while another
/// lock is held.
#[derive(Clone)]
struct BufferPool {
    inner: Arc<Mutex<Vec<Vec<StreamTuple>>>>,
}

impl BufferPool {
    /// Freelist bound: deeper than any queue's worth of in-flight
    /// batches needs, small enough that a burst's buffers are released.
    const MAX_POOLED: usize = 64;

    fn new() -> Self {
        BufferPool { inner: Arc::new(Mutex::new(Vec::new())) }
    }

    /// A buffer holding a copy of `tuples` — a recycled allocation when
    /// one is pooled (and large enough from past use), fresh otherwise.
    fn take(&self, tuples: &[StreamTuple]) -> Vec<StreamTuple> {
        let mut buf =
            self.inner.lock().expect("buffer freelist poisoned").pop().unwrap_or_default();
        debug_assert!(buf.is_empty(), "pooled buffer not cleared on put");
        buf.extend_from_slice(tuples);
        buf
    }

    /// Returns a buffer to the freelist, cleared.
    fn put(&self, mut buf: Vec<StreamTuple>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let mut pool = self.inner.lock().expect("buffer freelist poisoned");
        if pool.len() < Self::MAX_POOLED {
            pool.push(buf);
        }
    }
}

struct StreamSlot {
    name: String,
    /// Session epoch: commands from a replaced (stale) session carry an
    /// older token and are dropped instead of mutating the new engine.
    token: u64,
    spec: EngineSpec,
    seed: u64,
    /// `None` only when a panic could not be rolled back (no pre-batch
    /// capture — [`QuarantinePolicy::Disabled`] or an engine without
    /// snapshot support); the slot then keeps reporting the error.
    engine: Option<Box<dyn StreamingCpd>>,
    error: Option<SnsError>,
    /// Set when a batch panicked and the engine was rolled back: batches
    /// divert to the dead-letter queue until a `Release` arrives.
    quarantined: bool,
    /// High-water mark of the engine's flagged-anomaly counter, for
    /// edge-triggered [`PoolEvent::AnomalyFlagged`] events.
    last_flagged: u64,
    /// Cumulative WAL sequence (journaled units — see
    /// [`crate::journal`]). Advances only on pools with a configured
    /// journal, so journal-less pools snapshot `wal_seq == 0`
    /// everywhere.
    wal_seq: u64,
    metrics: Arc<StreamMetrics>,
    replies: Sender<SessionReply>,
}

impl StreamSlot {
    /// Runs an engine command with panic isolation: an engine that
    /// returns `Err` records the (first) error and passes it through; an
    /// engine that *panics* is quarantined (dropped) and the panic
    /// recorded — the worker thread, its other streams, and the calling
    /// session all survive.
    fn guard<T>(
        &mut self,
        id: u64,
        f: impl FnOnce(&mut dyn StreamingCpd) -> Result<T, SnsError>,
    ) -> Result<T, SnsError> {
        let Some(engine) = self.engine.as_mut() else {
            return Err(self.error.clone().unwrap_or(SnsError::StreamClosed { stream_id: id }));
        };
        match catch_unwind(AssertUnwindSafe(|| f(engine.as_mut()))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => {
                self.error.get_or_insert(e.clone());
                Err(e)
            }
            Err(payload) => {
                let e = SnsError::EnginePanicked { stream_id: id, message: panic_message(payload) };
                self.error.get_or_insert(e.clone());
                self.engine = None;
                Err(e)
            }
        }
    }

    /// Sends a batch acknowledgment; the session may have hung up.
    /// Latency is stamped session-side when the receipt is pulled.
    fn acknowledge(&self, id: u64, ticket: u64, outcome: Result<BatchOutcome, SnsError>) {
        let receipt = outcome.map(|o| BatchReceipt {
            stream_id: id,
            ticket,
            accepted: o.accepted,
            updates: o.updates,
            latency: Duration::ZERO,
        });
        let _ = self.replies.send(SessionReply { ticket, body: ReplyBody::Receipt(receipt) });
    }

    fn report(&mut self, id: u64) -> StreamReport {
        let metrics = self
            .guard(id, |e| {
                Ok((
                    e.fitness(),
                    e.updates_applied(),
                    e.num_parameters(),
                    e.diverged(),
                    e.anomalies(),
                ))
            })
            .ok();
        let (fitness, updates_applied, num_parameters, diverged, anomalies) =
            metrics.unwrap_or((f64::NAN, 0, 0, false, None));
        StreamReport {
            stream_id: id,
            name: self.name.clone(),
            fitness,
            updates_applied,
            num_parameters,
            diverged,
            anomalies,
            error: self.error.clone(),
        }
    }
}

/// Records a batch to the dead-letter queue and publishes the
/// quarantine event.
#[allow(clippy::too_many_arguments)]
fn divert_to_dlq(
    ops: &PoolOps,
    s: &StreamSlot,
    shard: usize,
    id: u64,
    ticket: u64,
    op: QuarantinedOp,
    tuples: Vec<StreamTuple>,
    error: SnsError,
) {
    let count = tuples.len();
    ops.dlq().quarantine(id, shard, ticket, op, tuples, error, s.spec.clone());
    s.metrics.quarantined.fetch_add(1, Ordering::Relaxed);
    if ops.bus().has_subscribers() {
        ops.bus().publish(PoolEvent::TupleQuarantined {
            stream_id: id,
            shard,
            ticket,
            tuples: count,
        });
    }
}

/// Applies one tuple batch (prefill or ingest) with quarantine
/// semantics: under [`QuarantinePolicy::Rollback`] a panicking batch is
/// rolled back to its pre-batch captured state and quarantined, and
/// later batches divert to the DLQ in order until the session releases
/// the stream. Typed engine errors pass through unchanged.
#[allow(clippy::too_many_arguments)]
fn apply_batch(
    ops: &PoolOps,
    policy: QuarantinePolicy,
    journal: Option<&Arc<dyn BatchJournal>>,
    buffers: &BufferPool,
    shard: usize,
    s: &mut StreamSlot,
    id: u64,
    ticket: u64,
    op: QuarantinedOp,
    tuples: Vec<StreamTuple>,
) {
    if s.quarantined {
        let err = SnsError::StreamQuarantined { stream_id: id, pending: ops.dlq().pending(id) + 1 };
        divert_to_dlq(ops, s, shard, id, ticket, op, tuples, err.clone());
        s.acknowledge(id, ticket, Err(err));
        return;
    }
    let Some(engine) = s.engine.as_mut() else {
        let err = s.error.clone().unwrap_or(SnsError::StreamClosed { stream_id: id });
        buffers.put(tuples);
        s.acknowledge(id, ticket, Err(err));
        return;
    };
    let pre = match policy {
        QuarantinePolicy::Rollback => engine.snapshot().ok(),
        QuarantinePolicy::Disabled => None,
    };
    let applied = catch_unwind(AssertUnwindSafe(|| match op {
        QuarantinedOp::Prefill => {
            engine.prefill_all(&tuples).map(|n| BatchOutcome { accepted: n, updates: 0 })
        }
        QuarantinedOp::Ingest => engine.ingest_all(&tuples),
    }));
    match applied {
        Ok(Ok(outcome)) => {
            let flagged = engine.anomalies().map(|a| a.flagged);
            s.metrics.batches.fetch_add(1, Ordering::Relaxed);
            s.metrics.tuples.fetch_add(outcome.accepted as u64, Ordering::Relaxed);
            s.metrics.updates.fetch_add(outcome.updates, Ordering::Relaxed);
            if let Some(flagged) = flagged.filter(|&f| f > s.last_flagged) {
                s.last_flagged = flagged;
                if ops.bus().has_subscribers() {
                    ops.bus().publish(PoolEvent::AnomalyFlagged { stream_id: id, shard, flagged });
                }
            }
            s.acknowledge(id, ticket, Ok(outcome));
            let jop = match op {
                QuarantinedOp::Prefill => JournalOp::Prefill(&tuples),
                QuarantinedOp::Ingest => JournalOp::Ingest(&tuples),
            };
            journal_op(ops, journal, s, shard, id, ticket, jop);
            buffers.put(tuples);
        }
        Ok(Err(e)) => {
            s.metrics.errors.fetch_add(1, Ordering::Relaxed);
            s.error.get_or_insert(e.clone());
            s.acknowledge(id, ticket, Err(e));
            // The engine applied the batch's accepted prefix, so the
            // batch is journaled in full: deterministic replay of the
            // same tuples reproduces exactly that prefix (and error).
            let jop = match op {
                QuarantinedOp::Prefill => JournalOp::Prefill(&tuples),
                QuarantinedOp::Ingest => JournalOp::Ingest(&tuples),
            };
            journal_op(ops, journal, s, shard, id, ticket, jop);
            buffers.put(tuples);
        }
        Err(payload) => {
            ops.metrics().shard(shard).panics.fetch_add(1, Ordering::Relaxed);
            s.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let e = SnsError::EnginePanicked { stream_id: id, message: panic_message(payload) };
            s.error.get_or_insert(e.clone());
            match pre.and_then(|state| state.into_engine().ok()) {
                Some(rolled_back) => {
                    // The batch never happened as far as the model is
                    // concerned; the stream keeps serving.
                    s.engine = Some(rolled_back);
                    s.quarantined = true;
                }
                // No pre-batch capture: the engine state is no longer
                // trustworthy and the slot goes dark (the letter is
                // still recorded for post-mortems).
                None => s.engine = None,
            }
            divert_to_dlq(ops, s, shard, id, ticket, op, tuples, e.clone());
            s.acknowledge(id, ticket, Err(e));
        }
    }
}

/// Applies a coalesced run of ingest batches ("segments") for one
/// stream in a single engine acquisition.
///
/// Observable behavior is identical to driving each segment through
/// [`apply_batch`] in submission order: every segment still runs the
/// engine's own per-tuple `ingest_all` path, so update order — and the
/// RNG draw order the `_RND` families depend on — is untouched and the
/// results stay **bitwise** equal to per-batch (and to serial)
/// execution. What the grouping amortizes is the per-batch overhead:
/// one rollback snapshot, one anomaly probe per segment instead of a
/// snapshot per segment, one stream-metrics flush, and one slot lookup
/// per group.
///
/// Panic recovery preserves the serial contract exactly: a panic at
/// segment `k` rolls the engine back to the group's pre-state and
/// deterministically re-applies the `k` completed segments (engines
/// are deterministic, so this reconstructs bitwise the state serial
/// per-batch execution would have left), then quarantines the stream,
/// diverts the panicking segment to the DLQ, and diverts/fails the
/// remainder with the same per-segment errors serial execution
/// produces.
#[allow(clippy::too_many_arguments)]
fn apply_ingest_group(
    ops: &PoolOps,
    policy: QuarantinePolicy,
    journal: Option<&Arc<dyn BatchJournal>>,
    buffers: &BufferPool,
    shard: usize,
    s: &mut StreamSlot,
    id: u64,
    group: &mut Vec<(u64, Vec<StreamTuple>)>,
) {
    if s.quarantined {
        for (ticket, tuples) in group.drain(..) {
            let err =
                SnsError::StreamQuarantined { stream_id: id, pending: ops.dlq().pending(id) + 1 };
            divert_to_dlq(ops, s, shard, id, ticket, QuarantinedOp::Ingest, tuples, err.clone());
            s.acknowledge(id, ticket, Err(err));
        }
        return;
    }
    let Some(engine) = s.engine.as_mut() else {
        let err = s.error.clone().unwrap_or(SnsError::StreamClosed { stream_id: id });
        for (ticket, tuples) in group.drain(..) {
            buffers.put(tuples);
            s.acknowledge(id, ticket, Err(err.clone()));
        }
        return;
    };
    let pre = match policy {
        QuarantinePolicy::Rollback => engine.snapshot().ok(),
        QuarantinePolicy::Disabled => None,
    };
    // Drive every segment inside one panic guard, collecting each
    // outcome plus the post-segment anomaly counter (read per segment
    // so edge-triggered AnomalyFlagged events match serial execution).
    let mut outcomes: Vec<(Result<BatchOutcome, SnsError>, Option<u64>)> =
        Vec::with_capacity(group.len());
    let panic_payload = {
        let outcomes = &mut outcomes;
        catch_unwind(AssertUnwindSafe(|| {
            for (_, tuples) in group.iter() {
                let r = engine.ingest_all(tuples);
                let flagged = engine.anomalies().map(|a| a.flagged);
                outcomes.push((r, flagged));
            }
        }))
        .err()
    };
    let completed = outcomes.len();
    let panic_err = panic_payload.map(|payload| {
        ops.metrics().shard(shard).panics.fetch_add(1, Ordering::Relaxed);
        let e = SnsError::EnginePanicked { stream_id: id, message: panic_message(payload) };
        // Roll back to the group's pre-state and re-apply the completed
        // prefix before its buffers are journaled and recycled below.
        match pre.and_then(|state| state.into_engine().ok()) {
            Some(mut rolled_back) => {
                let replay = catch_unwind(AssertUnwindSafe(|| {
                    for (_, tuples) in &group[..completed] {
                        // Outcomes (including typed errors and their
                        // accepted prefixes) are deterministic; results
                        // were captured above and are re-produced, not
                        // re-reported.
                        let _ = rolled_back.ingest_all(tuples);
                    }
                }));
                match replay {
                    Ok(()) => {
                        s.engine = Some(rolled_back);
                        s.quarantined = true;
                    }
                    // A replay of batches that just succeeded cannot
                    // panic on a deterministic engine; if it somehow
                    // does, the state is untrustworthy — go dark.
                    Err(_) => s.engine = None,
                }
            }
            // No pre-group capture: the engine state is no longer
            // trustworthy and the slot goes dark.
            None => s.engine = None,
        }
        e
    });
    // Per-segment post-processing, in ticket order — acks, journal
    // entries, and first-error recording exactly as per-batch execution
    // produces them; the counter deltas are flushed once at the end.
    let mut batches = 0u64;
    let mut tuples_total = 0u64;
    let mut updates = 0u64;
    let mut errors = 0u64;
    let mut segments = group.drain(..);
    for ((outcome, flagged), (ticket, tuples)) in outcomes.into_iter().zip(&mut segments) {
        match outcome {
            Ok(outcome) => {
                batches += 1;
                tuples_total += outcome.accepted as u64;
                updates += outcome.updates;
                if let Some(flagged) = flagged.filter(|&f| f > s.last_flagged) {
                    s.last_flagged = flagged;
                    if ops.bus().has_subscribers() {
                        ops.bus().publish(PoolEvent::AnomalyFlagged {
                            stream_id: id,
                            shard,
                            flagged,
                        });
                    }
                }
                s.acknowledge(id, ticket, Ok(outcome));
                journal_op(ops, journal, s, shard, id, ticket, JournalOp::Ingest(&tuples));
                buffers.put(tuples);
            }
            Err(e) => {
                errors += 1;
                s.error.get_or_insert(e.clone());
                s.acknowledge(id, ticket, Err(e));
                // Journaled in full: the accepted prefix is what a
                // deterministic replay of the same tuples reproduces.
                journal_op(ops, journal, s, shard, id, ticket, JournalOp::Ingest(&tuples));
                buffers.put(tuples);
            }
        }
    }
    if let (Some(e), Some((ticket, tuples))) = (panic_err, segments.next()) {
        errors += 1;
        s.error.get_or_insert(e.clone());
        divert_to_dlq(ops, s, shard, id, ticket, QuarantinedOp::Ingest, tuples, e.clone());
        s.acknowledge(id, ticket, Err(e));
        for (ticket, tuples) in segments {
            if s.quarantined {
                let err = SnsError::StreamQuarantined {
                    stream_id: id,
                    pending: ops.dlq().pending(id) + 1,
                };
                divert_to_dlq(
                    ops,
                    s,
                    shard,
                    id,
                    ticket,
                    QuarantinedOp::Ingest,
                    tuples,
                    err.clone(),
                );
                s.acknowledge(id, ticket, Err(err));
            } else {
                // The slot went dark (no rollback capture): no divert,
                // the recorded error is the acknowledgment — exactly
                // the per-batch darkened-slot path.
                let err = s.error.clone().unwrap_or(SnsError::StreamClosed { stream_id: id });
                buffers.put(tuples);
                s.acknowledge(id, ticket, Err(err));
            }
        }
    }
    if batches > 0 {
        s.metrics.batches.fetch_add(batches, Ordering::Relaxed);
        s.metrics.tuples.fetch_add(tuples_total, Ordering::Relaxed);
        s.metrics.updates.fetch_add(updates, Ordering::Relaxed);
    }
    if errors > 0 {
        s.metrics.errors.fetch_add(errors, Ordering::Relaxed);
    }
}

/// Journals an operation that reached the engine (called **after** the
/// ack, on the worker) and publishes the matching
/// [`PoolEvent::BatchApplied`] event. A no-op on journal-less pools and
/// for empty batches (they change no state and carry no sequence).
fn journal_op(
    ops: &PoolOps,
    journal: Option<&Arc<dyn BatchJournal>>,
    s: &mut StreamSlot,
    shard: usize,
    id: u64,
    ticket: u64,
    op: JournalOp<'_>,
) {
    let Some(journal) = journal else { return };
    let units = op.units();
    if units == 0 {
        return;
    }
    s.wal_seq += units;
    journal.record(JournalEntry { stream_id: id, seq: s.wal_seq, ticket, op });
    if ops.bus().has_subscribers() {
        ops.bus().publish(PoolEvent::BatchApplied { stream_id: id, shard, units, seq: s.wal_seq });
    }
}

fn publish_evicted(ops: &PoolOps, id: u64, shard: usize, reason: EvictReason) {
    if ops.bus().has_subscribers() {
        ops.bus().publish(PoolEvent::StreamEvicted { stream_id: id, shard, reason });
    }
}

fn worker_loop(
    shard: usize,
    rx: Receiver<Command>,
    ops: PoolOps,
    policy: QuarantinePolicy,
    journal: Option<Arc<dyn BatchJournal>>,
    buffers: BufferPool,
) {
    let mut slots: HashMap<u64, StreamSlot> = HashMap::new();
    // Commands from a replaced session (stale token) are dropped: the
    // stale session's reply channel is already disconnected, so its
    // blocked calls observe `StreamClosed` rather than hanging.
    fn live(slots: &mut HashMap<u64, StreamSlot>, id: u64, token: u64) -> Option<&mut StreamSlot> {
        slots.get_mut(&id).filter(|s| s.token == token)
    }
    // A command pulled while coalescing an ingest group that belongs to
    // a different stream/kind; processed (already counted) next turn.
    let mut carry: Option<Command> = None;
    // Reusable (ticket, tuples) scratch for coalesced ingest groups.
    let mut group: Vec<(u64, Vec<StreamTuple>)> = Vec::new();
    loop {
        let cmd = match carry.take() {
            Some(cmd) => cmd,
            None => {
                let Ok(cmd) = rx.recv() else { break };
                let shard_metrics = ops.metrics().shard(shard);
                shard_metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                shard_metrics.commands.fetch_add(1, Ordering::Relaxed);
                cmd
            }
        };
        match cmd {
            Command::Open { id, token, ticket, seed, spec, replies } => {
                let effective = spec.effective_seed(seed);
                let (engine, name, outcome) =
                    match catch_unwind(AssertUnwindSafe(|| spec.build(seed))) {
                        Ok(engine) => {
                            let name = engine.name();
                            (Some(engine), name, Ok(BatchOutcome { accepted: 0, updates: 0 }))
                        }
                        Err(payload) => {
                            let e = SnsError::EngineBuildFailed {
                                stream_id: id,
                                message: panic_message(payload),
                            };
                            (None, String::new(), Err(e))
                        }
                    };
                let metrics = ops.metrics().stream(id);
                metrics.shard.store(shard, Ordering::Relaxed);
                let opened = engine.is_some();
                let engine_name = name.clone();
                let slot = StreamSlot {
                    name,
                    token,
                    spec,
                    seed: effective,
                    engine,
                    error: outcome.as_ref().err().cloned(),
                    quarantined: false,
                    last_flagged: 0,
                    wal_seq: 0,
                    metrics,
                    replies,
                };
                slot.acknowledge(id, ticket, outcome);
                if slots.insert(id, slot).is_some() {
                    publish_evicted(&ops, id, shard, EvictReason::Replaced);
                }
                if opened && ops.bus().has_subscribers() {
                    ops.bus().publish(PoolEvent::StreamOpened {
                        stream_id: id,
                        shard,
                        engine: engine_name,
                    });
                }
            }
            Command::Restore { id, token, ticket, snapshot, replies } => {
                let EngineSnapshot { spec, seed, state, wal_seq, .. } = *snapshot;
                match state.into_engine() {
                    Ok(engine) => {
                        let metrics = ops.metrics().stream(id);
                        metrics.shard.store(shard, Ordering::Relaxed);
                        let slot = StreamSlot {
                            name: engine.name(),
                            token,
                            spec,
                            seed,
                            engine: Some(engine),
                            error: None,
                            quarantined: false,
                            last_flagged: 0,
                            wal_seq,
                            metrics,
                            replies,
                        };
                        slot.acknowledge(id, ticket, Ok(BatchOutcome { accepted: 0, updates: 0 }));
                        if slots.insert(id, slot).is_some() {
                            publish_evicted(&ops, id, shard, EvictReason::Replaced);
                        }
                        if ops.bus().has_subscribers() {
                            ops.bus().publish(PoolEvent::StreamMigrated { stream_id: id, shard });
                        }
                    }
                    Err(e) => {
                        // An inconsistent snapshot installs nothing; the
                        // caller sees the typed error on the open ack.
                        let _ =
                            replies.send(SessionReply { ticket, body: ReplyBody::Receipt(Err(e)) });
                    }
                }
            }
            Command::Prefill { id, token, ticket, tuples } => {
                if let Some(s) = live(&mut slots, id, token) {
                    let j = journal.as_ref();
                    apply_batch(
                        &ops,
                        policy,
                        j,
                        &buffers,
                        shard,
                        s,
                        id,
                        ticket,
                        QuarantinedOp::Prefill,
                        tuples,
                    );
                } else {
                    buffers.put(tuples);
                }
            }
            Command::WarmStart { id, token, ticket, opts } => {
                if let Some(s) = live(&mut slots, id, token) {
                    let outcome = if s.quarantined {
                        // A warm start on a rolled-back model would bake
                        // the missing quarantined batches into the
                        // factors; replay first.
                        Err(SnsError::StreamQuarantined {
                            stream_id: id,
                            pending: ops.dlq().pending(id),
                        })
                    } else {
                        s.guard(id, |e| {
                            e.warm_start(&opts);
                            Ok(BatchOutcome { accepted: 0, updates: 0 })
                        })
                    };
                    if outcome.is_err() {
                        s.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    let applied = outcome.is_ok();
                    s.acknowledge(id, ticket, outcome);
                    if applied {
                        let jop = JournalOp::WarmStart(&opts);
                        journal_op(&ops, journal.as_ref(), s, shard, id, ticket, jop);
                    }
                }
            }
            Command::Ingest { id, token, ticket, tuples } => {
                // Coalesce: drain every already-queued consecutive
                // ingest for the same session in this one channel
                // acquisition run and drive them as a single group —
                // one slot lookup, one rollback snapshot, one metrics
                // flush. The first command for a different stream (or
                // of a different kind) is carried into the next loop
                // turn, preserving global submission order. Per-tuple
                // update order inside the engine is untouched, so
                // results stay bitwise identical to per-batch
                // execution (see `apply_ingest_group`).
                group.clear();
                group.push((ticket, tuples));
                let mut drained = 0u64;
                while carry.is_none() {
                    match rx.try_recv() {
                        Ok(Command::Ingest { id: i2, token: t2, ticket: k2, tuples: u2 })
                            if i2 == id && t2 == token =>
                        {
                            drained += 1;
                            group.push((k2, u2));
                        }
                        Ok(other) => {
                            drained += 1;
                            carry = Some(other);
                        }
                        Err(_) => break,
                    }
                }
                if drained > 0 {
                    let shard_metrics = ops.metrics().shard(shard);
                    shard_metrics.queue_depth.fetch_sub(drained as i64, Ordering::Relaxed);
                    shard_metrics.commands.fetch_add(drained, Ordering::Relaxed);
                }
                ops.metrics().shard(shard).ingest_groups.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = live(&mut slots, id, token) {
                    let j = journal.as_ref();
                    apply_ingest_group(&ops, policy, j, &buffers, shard, s, id, &mut group);
                } else {
                    // Stale session: drop the batches, recycle buffers.
                    for (_, buf) in group.drain(..) {
                        buffers.put(buf);
                    }
                }
            }
            Command::AdvanceTo { id, token, ticket, t } => {
                if let Some(s) = live(&mut slots, id, token) {
                    let outcome = if s.quarantined {
                        // Advancing the clock past quarantined batches
                        // would desynchronize their replay chronology.
                        Err(SnsError::StreamQuarantined {
                            stream_id: id,
                            pending: ops.dlq().pending(id),
                        })
                    } else {
                        s.guard(id, |e| {
                            Ok(BatchOutcome { accepted: 0, updates: e.advance_to(t) as u64 })
                        })
                    };
                    if outcome.is_err() {
                        s.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    let applied = outcome.is_ok();
                    s.acknowledge(id, ticket, outcome);
                    if applied {
                        journal_op(
                            &ops,
                            journal.as_ref(),
                            s,
                            shard,
                            id,
                            ticket,
                            JournalOp::AdvanceTo(t),
                        );
                    }
                }
            }
            Command::Release { id, token, ticket } => {
                if let Some(s) = live(&mut slots, id, token) {
                    s.quarantined = false;
                    s.error = None;
                    s.acknowledge(id, ticket, Ok(BatchOutcome { accepted: 0, updates: 0 }));
                }
            }
            Command::Report { id, token, ticket } => {
                if let Some(s) = live(&mut slots, id, token) {
                    let report = s.report(id);
                    let _ = s
                        .replies
                        .send(SessionReply { ticket, body: ReplyBody::Report(Box::new(report)) });
                }
            }
            Command::Snapshot { id, token, ticket } => {
                if let Some(s) = live(&mut slots, id, token) {
                    // Deliberately not `guard`ed: a snapshot failure (e.g.
                    // an engine without capture support) must not be
                    // recorded as a stream error.
                    let result = match (&s.engine, &s.error) {
                        (Some(engine), _) => engine.snapshot().map(|state| EngineSnapshot {
                            stream_id: id,
                            spec: s.spec.clone(),
                            seed: s.seed,
                            wal_seq: s.wal_seq,
                            state,
                        }),
                        (None, Some(err)) => Err(err.clone()),
                        (None, None) => Err(SnsError::StreamClosed { stream_id: id }),
                    };
                    let _ = s
                        .replies
                        .send(SessionReply { ticket, body: ReplyBody::Snapshot(Box::new(result)) });
                }
            }
            Command::Close { id, token } => {
                if slots.get(&id).is_some_and(|s| s.token == token) {
                    slots.remove(&id);
                    publish_evicted(&ops, id, shard, EvictReason::Closed);
                }
            }
            Command::CheckpointShard { replies } => {
                let mut out: Vec<(u64, Result<EngineSnapshot, SnsError>)> = slots
                    .iter()
                    .map(|(&id, s)| {
                        let result = match (&s.engine, &s.error) {
                            (Some(engine), _) => engine.snapshot().map(|state| EngineSnapshot {
                                stream_id: id,
                                spec: s.spec.clone(),
                                seed: s.seed,
                                wal_seq: s.wal_seq,
                                state,
                            }),
                            (None, Some(err)) => Err(err.clone()),
                            (None, None) => Err(SnsError::StreamClosed { stream_id: id }),
                        };
                        (id, result)
                    })
                    .collect();
                out.sort_by_key(|&(id, _)| id);
                let _ = replies.send(out);
            }
            Command::Evict { id } => {
                if slots.remove(&id).is_some() {
                    publish_evicted(&ops, id, shard, EvictReason::Evicted);
                }
            }
            Command::Shutdown => break,
        }
    }
}

/// Shards many independent [`StreamingCpd`] streams across worker
/// threads behind bounded queues. See the module docs for the threading,
/// flow-control, and determinism model.
pub struct EnginePool {
    senders: Vec<SyncSender<Command>>,
    workers: Vec<JoinHandle<()>>,
    base_seed: u64,
    queue_depth: usize,
    next_token: AtomicU64,
    ops: PoolOps,
    /// Per-shard freelists of recycled batch buffers; sessions take
    /// from their shard's freelist, the worker returns on ack.
    buffer_pools: Vec<BufferPool>,
    /// Which shard currently owns each stream id, if any. The outer lock
    /// only guards map shape (get-or-insert of a cell) and is never held
    /// across a channel send; the per-stream cell serializes
    /// claim + evict + install for one id (see [`EnginePool::start_session`]).
    /// Entries are kept after close — a stale entry is only a hint and an
    /// `Evict` to a shard without the slot is a no-op.
    owners: Mutex<HashMap<u64, Arc<Mutex<Option<usize>>>>>,
}

impl EnginePool {
    /// Spawns the worker threads.
    pub fn new(cfg: PoolConfig) -> Self {
        let shards = cfg.shards.max(1);
        let queue_depth = cfg.queue_depth.max(1);
        let ops = PoolOps::new(shards, queue_depth, cfg.bus_capacity.max(1));
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut buffer_pools = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = sync_channel::<Command>(queue_depth);
            let worker_ops = ops.clone();
            let policy = cfg.quarantine;
            let journal = cfg.journal.clone();
            let buffers = BufferPool::new();
            let worker_buffers = buffers.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sns-pool-{i}"))
                .spawn(move || worker_loop(i, rx, worker_ops, policy, journal, worker_buffers))
                .expect("spawn engine pool worker");
            senders.push(tx);
            workers.push(handle);
            buffer_pools.push(buffers);
        }
        EnginePool {
            senders,
            workers,
            base_seed: cfg.base_seed,
            queue_depth,
            next_token: AtomicU64::new(0),
            ops,
            buffer_pools,
            owners: Mutex::new(HashMap::new()),
        }
    }

    /// Number of worker threads.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The pool's operability surface: lifecycle event bus, metrics
    /// registry (per-stream counters + latency histograms, per-shard
    /// queue gauges), and the dead-letter queue of quarantined batches.
    pub fn ops(&self) -> &PoolOps {
        &self.ops
    }

    /// Counts a command entering `shard`'s queue (the worker decrements
    /// on receive, so the gauge reads commands in flight).
    fn track_send(&self, shard: usize) {
        self.ops.metrics().shard(shard).queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Which worker serves a stream id (stable for the pool's lifetime).
    pub fn shard_of(&self, stream_id: u64) -> usize {
        // Re-mix so adjacent ids spread across shards.
        (stream_seed(0, stream_id) % self.senders.len() as u64) as usize
    }

    /// Opens a stream: the engine described by `spec` is built on the
    /// stream's worker with the deterministic seed
    /// [`stream_seed`]`(base_seed, id)` (unless the spec pins one) and a
    /// [`StreamSession`] for it is returned. Blocks until the engine is
    /// built; a constructor panic surfaces as
    /// [`SnsError::EngineBuildFailed`].
    ///
    /// Re-opening an id replaces the previous engine and invalidates the
    /// previous session (its calls return [`SnsError::StreamClosed`]).
    pub fn open(&self, stream_id: u64, spec: EngineSpec) -> Result<StreamSession, SnsError> {
        let shard = self.shard_of(stream_id);
        let seed = stream_seed(self.base_seed, stream_id);
        self.start_session(stream_id, shard, |token, replies| Command::Open {
            id: stream_id,
            token,
            ticket: 0,
            seed,
            spec,
            replies,
        })
    }

    /// Resumes a snapshotted stream on an explicit shard — possibly of a
    /// different pool — continuing bitwise-identically from the captured
    /// state. Blocks until the stream is installed.
    ///
    /// Restoring over a still-open session of the same id replaces it,
    /// exactly like [`EnginePool::open`].
    pub fn restore(
        &self,
        snapshot: EngineSnapshot,
        shard: usize,
    ) -> Result<StreamSession, SnsError> {
        if shard >= self.senders.len() {
            return Err(SnsError::ShardOutOfRange { shard, shards: self.senders.len() });
        }
        // Validate the snapshot *before* the session claim: start_session
        // evicts the id's previous engine before the worker installs the
        // new one, so an invalid snapshot (e.g. decoded from a corrupted
        // store entry that passed its checksum) must be rejected here —
        // otherwise it would destroy the still-healthy session and leave
        // the stream id dead. A throwaway rebuild on the caller thread is
        // the validation; restores are control-plane rare.
        snapshot.state.clone().into_engine()?;
        let stream_id = snapshot.stream_id;
        self.start_session(stream_id, shard, |token, replies| Command::Restore {
            id: stream_id,
            token,
            ticket: 0,
            snapshot: Box::new(snapshot),
            replies,
        })
    }

    fn start_session(
        &self,
        stream_id: u64,
        shard: usize,
        make: impl FnOnce(u64, Sender<SessionReply>) -> Command,
    ) -> Result<StreamSession, SnsError> {
        // A stream id lives on at most one shard. The ownership map knows
        // which shard that is (a previous `restore` may have moved the id
        // off its hash shard), so only the owning shard — if any, and if
        // different — receives an `Evict`; a saturated *unrelated* shard
        // is never touched and cannot stall this open.
        //
        // Claim-then-evict is atomic per stream: the per-stream cell is
        // held from the claim until the install command is enqueued, so
        // concurrent `open`/`restore` of the same id serialize. The last
        // claimant's install is the last command any shard receives for
        // the id (channels are FIFO and the loser's `Evict`/install were
        // enqueued while it held the cell earlier), hence exactly one
        // slot survives. Evicting the owning shard may still block on
        // *that* shard's bounded queue — it is the one shard actually
        // serving this stream.
        let cell = {
            let mut owners = self.owners.lock().expect("ownership map poisoned");
            Arc::clone(owners.entry(stream_id).or_default())
        };
        let mut owner = cell.lock().expect("ownership cell poisoned");
        if let Some(prev) = owner.replace(shard).filter(|&p| p != shard) {
            if self.senders[prev].send(Command::Evict { id: stream_id }).is_ok() {
                self.track_send(prev);
            }
        }
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel();
        let tx = self.senders[shard].clone();
        tx.send(make(token, reply_tx)).map_err(|_| SnsError::StreamClosed { stream_id })?;
        self.track_send(shard);
        drop(owner);
        let metrics = self.ops.metrics().stream(stream_id);
        let mut session = StreamSession {
            stream_id,
            shard,
            token,
            queue_depth: self.queue_depth,
            tx,
            rx: reply_rx,
            next_ticket: 1,
            buffered: VecDeque::new(),
            unclaimed: 0,
            closed: false,
            ops: self.ops.clone(),
            metrics,
            buffers: self.buffer_pools[shard].clone(),
            pending_at: VecDeque::new(),
        };
        match session.wait_for(0)? {
            ReplyBody::Receipt(Ok(_)) => Ok(session),
            ReplyBody::Receipt(Err(e)) => Err(e),
            _ => Err(SnsError::Internal {
                detail: "open/restore must acknowledge with a receipt".to_string(),
            }),
        }
    }

    /// Checkpoints **every** live stream in the pool: each worker drains
    /// its previously enqueued commands, then snapshots all of its slots
    /// in one step. The result is per-stream consistent (a stream's
    /// snapshot reflects exactly the commands acknowledged before it)
    /// and sorted by stream id; sessions stay open and unaffected.
    ///
    /// Streams whose engine cannot be captured (quarantined after a
    /// panic, or an engine family with an explicit snapshot opt-out)
    /// report their typed error in place, so one bad stream never hides
    /// the rest of the fleet's checkpoint.
    ///
    /// For cross-stream consistency, quiesce the clients first (collect
    /// all outstanding receipts); in-flight batches submitted *after*
    /// this call may or may not be included.
    pub fn checkpoint_all(&self) -> CheckpointResults {
        let (tx, rx) = channel();
        let mut expected = 0usize;
        for (i, sender) in self.senders.iter().enumerate() {
            if sender.send(Command::CheckpointShard { replies: tx.clone() }).is_ok() {
                self.track_send(i);
                expected += 1;
            }
        }
        drop(tx);
        let mut all: Vec<(u64, Result<EngineSnapshot, SnsError>)> = Vec::new();
        for _ in 0..expected {
            match rx.recv() {
                Ok(mut shard) => all.append(&mut shard),
                Err(_) => break, // worker gone; its streams are lost
            }
        }
        all.sort_by_key(|&(id, _)| id);
        for i in 0..self.senders.len() {
            self.ops.metrics().shard(i).checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        if self.ops.bus().has_subscribers() {
            self.ops.bus().publish(PoolEvent::CheckpointCommitted { streams: all.len() });
        }
        all
    }

    /// Checkpoints the live streams of **one** shard — the amortized
    /// building block behind background checkpointing: a policy daemon
    /// walks shards round-robin, paying one shard's capture cost per
    /// step instead of stalling the whole pool at once (see
    /// `sns_codec::daemon`). Same per-stream consistency and error
    /// semantics as [`EnginePool::checkpoint_all`]; results are sorted
    /// by stream id.
    ///
    /// # Errors
    /// [`SnsError::ShardOutOfRange`] if `shard` does not name a worker;
    /// [`SnsError::StreamClosed`] (stream 0) if the pool is shutting
    /// down and the worker is gone.
    pub fn checkpoint_shard(&self, shard: usize) -> Result<CheckpointResults, SnsError> {
        let Some(sender) = self.senders.get(shard) else {
            return Err(SnsError::ShardOutOfRange { shard, shards: self.senders.len() });
        };
        let (tx, rx) = channel();
        sender
            .send(Command::CheckpointShard { replies: tx })
            .map_err(|_| SnsError::StreamClosed { stream_id: 0 })?;
        self.track_send(shard);
        let out = rx.recv().map_err(|_| SnsError::StreamClosed { stream_id: 0 })?;
        self.ops.metrics().shard(shard).checkpoints.fetch_add(1, Ordering::Relaxed);
        if self.ops.bus().has_subscribers() {
            self.ops.bus().publish(PoolEvent::CheckpointCommitted { streams: out.len() });
        }
        Ok(out)
    }

    /// Rebuilds every snapshotted stream on this pool, each on its
    /// stream id's home shard, and returns the live sessions in snapshot
    /// order. Restored engines continue bitwise-identically — this is
    /// the recovery half of [`EnginePool::checkpoint_all`], used after a
    /// crash (typically with snapshots loaded from a
    /// `CheckpointStore`).
    ///
    /// # Errors
    /// Fails on the first snapshot that cannot be restored; streams
    /// restored before the failure stay installed.
    pub fn recover_all(
        &self,
        snapshots: Vec<EngineSnapshot>,
    ) -> Result<Vec<StreamSession>, SnsError> {
        snapshots
            .into_iter()
            .map(|snapshot| {
                let shard = self.shard_of(snapshot.stream_id);
                self.restore(snapshot, shard)
            })
            .collect()
    }

    /// Shuts the workers down and waits for them to finish. Sessions
    /// outliving the pool observe [`SnsError::StreamClosed`].
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        for (i, tx) in self.senders.iter().enumerate() {
            // Workers that already exited are fine to ignore.
            if tx.send(Command::Shutdown).is_ok() {
                self.track_send(i);
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client handle to one pooled stream: batched, acknowledged,
/// flow-controlled ingestion plus state capture.
///
/// Obtained from [`EnginePool::open`] / [`EnginePool::restore`]. All
/// commands for the stream flow through its shard's **bounded** queue in
/// submission order. Two ingestion disciplines compose freely:
///
/// - **Synchronous**: [`StreamSession::ingest_batch`] submits and blocks
///   for the batch's [`BatchReceipt`] (waiting first for queue space if
///   the shard is saturated — flow control by blocking).
/// - **Pipelined**: [`StreamSession::try_ingest_batch`] submits without
///   blocking and returns a ticket, or [`SnsError::Backpressure`] when
///   the shard queue is full; receipts are collected later with
///   [`StreamSession::recv_receipt`] / [`StreamSession::try_recv_receipt`]
///   in submission order.
///
/// Dropping the session closes the stream (best-effort; [`StreamSession::close`]
/// is the reliable way).
#[must_use = "dropping a StreamSession closes its stream; bind it"]
pub struct StreamSession {
    stream_id: u64,
    shard: usize,
    token: u64,
    queue_depth: usize,
    tx: SyncSender<Command>,
    rx: Receiver<SessionReply>,
    next_ticket: u64,
    /// Receipts for pipelined batches that arrived while a blocking call
    /// was waiting for its own reply; handed out FIFO by `recv_receipt`.
    buffered: VecDeque<Result<BatchReceipt, SnsError>>,
    /// Pipelined batches whose receipts the caller has not collected.
    unclaimed: usize,
    closed: bool,
    ops: PoolOps,
    /// This stream's metrics handle (latency histogram, replay counter).
    metrics: Arc<StreamMetrics>,
    /// The shard's batch-buffer freelist: batch submissions reuse
    /// acknowledged batches' allocations instead of allocating.
    buffers: BufferPool,
    /// Enqueue timestamps of outstanding receipt-bearing commands, in
    /// ticket order; receipts are stamped with `enqueue → pull` latency.
    pending_at: VecDeque<(u64, Instant)>,
}

impl StreamSession {
    /// The stream this session controls.
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// The worker shard serving this stream.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Pipelined batches whose receipts have not been collected yet.
    pub fn in_flight(&self) -> usize {
        self.unclaimed
    }

    fn bump_ticket(&mut self) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        t
    }

    fn closed_err(&self) -> SnsError {
        SnsError::StreamClosed { stream_id: self.stream_id }
    }

    /// Blocking submit (waits for queue space — flow control). A submit
    /// that actually has to wait publishes edge-triggered
    /// [`PoolEvent::BackpressureOnset`] / [`PoolEvent::BackpressureRelief`]
    /// events around the stall.
    fn submit(&mut self, cmd: Command) -> Result<(), SnsError> {
        let gauge = &self.ops.metrics().shard(self.shard).queue_depth;
        match self.tx.try_send(cmd) {
            Ok(()) => {
                gauge.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(cmd)) => {
                let observed = self.ops.bus().has_subscribers();
                if observed {
                    self.ops.bus().publish(PoolEvent::BackpressureOnset {
                        stream_id: self.stream_id,
                        shard: self.shard,
                        depth: self.ops.metrics().shard(self.shard).depth(),
                        capacity: self.queue_depth,
                    });
                }
                let sent = self.tx.send(cmd).map_err(|_| self.closed_err());
                if sent.is_ok() {
                    gauge.fetch_add(1, Ordering::Relaxed);
                    if observed {
                        self.ops.bus().publish(PoolEvent::BackpressureRelief {
                            stream_id: self.stream_id,
                            shard: self.shard,
                        });
                    }
                }
                sent
            }
            Err(TrySendError::Disconnected(_)) => Err(self.closed_err()),
        }
    }

    /// Submit of a receipt-bearing command: remembers the enqueue time
    /// so the receipt can be stamped with its latency.
    fn submit_timed(&mut self, ticket: u64, cmd: Command) -> Result<(), SnsError> {
        self.pending_at.push_back((ticket, sns_ops::clock::now()));
        let sent = self.submit(cmd);
        if sent.is_err() {
            self.pending_at.pop_back();
        }
        sent
    }

    /// Stamps a pulled receipt with its enqueue→ack latency and records
    /// it into the stream's histogram. Entries for already-acknowledged
    /// (earlier) tickets are discarded along the way.
    fn stamp_receipt(
        &mut self,
        ticket: u64,
        r: Result<BatchReceipt, SnsError>,
    ) -> Result<BatchReceipt, SnsError> {
        let mut latency = None;
        while let Some(&(t, at)) = self.pending_at.front() {
            if t > ticket {
                break;
            }
            self.pending_at.pop_front();
            if t == ticket {
                latency = Some(at.elapsed());
            }
        }
        match (r, latency) {
            (Ok(mut receipt), Some(latency)) => {
                receipt.latency = latency;
                self.metrics.latency.record(latency);
                Ok(receipt)
            }
            (r, _) => r,
        }
    }

    /// Waits for the reply to `ticket`, buffering receipts of earlier
    /// pipelined batches for later [`StreamSession::recv_receipt`] calls.
    fn wait_for(&mut self, ticket: u64) -> Result<ReplyBody, SnsError> {
        loop {
            let reply = self.rx.recv().map_err(|_| self.closed_err())?;
            let body = match reply.body {
                ReplyBody::Receipt(r) => ReplyBody::Receipt(self.stamp_receipt(reply.ticket, r)),
                other => other,
            };
            if reply.ticket == ticket {
                return Ok(body);
            }
            if let ReplyBody::Receipt(r) = body {
                self.buffered.push_back(r);
            }
        }
    }

    fn await_receipt(&mut self, ticket: u64) -> Result<BatchReceipt, SnsError> {
        match self.wait_for(ticket)? {
            ReplyBody::Receipt(r) => r,
            _ => Err(SnsError::Internal {
                detail: "batch commands must acknowledge with receipts".to_string(),
            }),
        }
    }

    /// Ingests a batch into the window **without** factor updates
    /// (initialization phase). Blocks for the receipt; on error, tuples
    /// before the failing one stay applied (see
    /// [`StreamingCpd::prefill_all`]).
    pub fn prefill_batch(&mut self, tuples: &[StreamTuple]) -> Result<BatchReceipt, SnsError> {
        let ticket = self.bump_ticket();
        let cmd = Command::Prefill {
            id: self.stream_id,
            token: self.token,
            ticket,
            tuples: self.buffers.take(tuples),
        };
        self.submit_timed(ticket, cmd)?;
        self.await_receipt(ticket)
    }

    /// Runs batch ALS on the stream's current window from its current
    /// factors and installs the result. Blocks until done.
    pub fn warm_start(&mut self, opts: &AlsOptions) -> Result<BatchReceipt, SnsError> {
        let ticket = self.bump_ticket();
        let cmd = Command::WarmStart {
            id: self.stream_id,
            token: self.token,
            ticket,
            opts: opts.clone(),
        };
        self.submit_timed(ticket, cmd)?;
        self.await_receipt(ticket)
    }

    /// Ingests a batch of live tuples, blocking for its
    /// [`BatchReceipt`] (and first for queue space if the shard is
    /// saturated). On error the receipt is a typed [`SnsError`] carrying
    /// the accepted prefix (see [`StreamingCpd::ingest_all`]).
    pub fn ingest_batch(&mut self, tuples: &[StreamTuple]) -> Result<BatchReceipt, SnsError> {
        let ticket = self.bump_ticket();
        let cmd = Command::Ingest {
            id: self.stream_id,
            token: self.token,
            ticket,
            tuples: self.buffers.take(tuples),
        };
        self.submit_timed(ticket, cmd)?;
        self.await_receipt(ticket)
    }

    /// Submits a batch without blocking. Returns its ticket on success;
    /// [`SnsError::Backpressure`] if the shard queue is full (nothing
    /// was enqueued — retry later or fall back to the blocking
    /// [`StreamSession::ingest_batch`]). Collect the receipt with
    /// [`StreamSession::recv_receipt`] / [`StreamSession::try_recv_receipt`].
    pub fn try_ingest_batch(&mut self, tuples: &[StreamTuple]) -> Result<u64, SnsError> {
        let ticket = self.next_ticket;
        let cmd = Command::Ingest {
            id: self.stream_id,
            token: self.token,
            ticket,
            tuples: self.buffers.take(tuples),
        };
        match self.tx.try_send(cmd) {
            Ok(()) => {
                self.ops.metrics().shard(self.shard).queue_depth.fetch_add(1, Ordering::Relaxed);
                self.pending_at.push_back((ticket, sns_ops::clock::now()));
                self.next_ticket += 1;
                self.unclaimed += 1;
                Ok(ticket)
            }
            Err(TrySendError::Full(cmd)) => {
                // Nothing was enqueued: recover the batch's buffer so a
                // backpressure storm doesn't bleed allocations.
                if let Command::Ingest { tuples, .. } = cmd {
                    self.buffers.put(tuples);
                }
                Err(SnsError::Backpressure {
                    stream_id: self.stream_id,
                    shard: self.shard,
                    depth: self.ops.metrics().shard(self.shard).depth(),
                    capacity: self.queue_depth,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(self.closed_err()),
        }
    }

    /// Receipt of the oldest uncollected pipelined batch, blocking until
    /// it arrives. `None` if no pipelined batches are outstanding.
    pub fn recv_receipt(&mut self) -> Option<Result<BatchReceipt, SnsError>> {
        if let Some(r) = self.buffered.pop_front() {
            self.unclaimed -= 1;
            return Some(r);
        }
        if self.unclaimed == 0 {
            return None;
        }
        loop {
            match self.rx.recv() {
                Ok(SessionReply { ticket, body: ReplyBody::Receipt(r) }) => {
                    self.unclaimed -= 1;
                    return Some(self.stamp_receipt(ticket, r));
                }
                // Only pipelined receipts can be outstanding here.
                Ok(_) => continue,
                Err(_) => {
                    self.unclaimed -= 1;
                    return Some(Err(self.closed_err()));
                }
            }
        }
    }

    /// Non-blocking [`StreamSession::recv_receipt`]: `None` when no
    /// receipt is ready (or none outstanding).
    pub fn try_recv_receipt(&mut self) -> Option<Result<BatchReceipt, SnsError>> {
        if let Some(r) = self.buffered.pop_front() {
            self.unclaimed -= 1;
            return Some(r);
        }
        if self.unclaimed == 0 {
            return None;
        }
        match self.rx.try_recv() {
            Ok(SessionReply { ticket, body: ReplyBody::Receipt(r) }) => {
                self.unclaimed -= 1;
                Some(self.stamp_receipt(ticket, r))
            }
            Ok(_) => None,
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                self.unclaimed -= 1;
                Some(Err(self.closed_err()))
            }
        }
    }

    /// Advances the stream clock without an arrival; due boundary work
    /// still fires. The receipt's `updates` counts the events processed.
    pub fn advance_to(&mut self, t: u64) -> Result<BatchReceipt, SnsError> {
        let ticket = self.bump_ticket();
        let cmd = Command::AdvanceTo { id: self.stream_id, token: self.token, ticket, t };
        self.submit_timed(ticket, cmd)?;
        self.await_receipt(ticket)
    }

    /// Blocks until the worker has drained every previously submitted
    /// command for this stream, then returns its model-health snapshot.
    pub fn report(&mut self) -> Result<StreamReport, SnsError> {
        let ticket = self.bump_ticket();
        self.submit(Command::Report { id: self.stream_id, token: self.token, ticket })?;
        match self.wait_for(ticket)? {
            ReplyBody::Report(r) => Ok(*r),
            _ => Err(SnsError::Internal {
                detail: "report commands must acknowledge with reports".to_string(),
            }),
        }
    }

    /// Captures the stream's complete engine state for migration (after
    /// draining every previously submitted command). The stream keeps
    /// running; pair with [`StreamSession::close`] +
    /// [`EnginePool::restore`] to move it.
    pub fn snapshot(&mut self) -> Result<EngineSnapshot, SnsError> {
        let ticket = self.bump_ticket();
        self.submit(Command::Snapshot { id: self.stream_id, token: self.token, ticket })?;
        match self.wait_for(ticket)? {
            ReplyBody::Snapshot(r) => *r,
            _ => Err(SnsError::Internal {
                detail: "snapshot commands must acknowledge with snapshots".to_string(),
            }),
        }
    }

    /// Re-drives this stream's quarantined batches after repair.
    ///
    /// Takes every dead letter pending for the stream (oldest first),
    /// lets `repair` edit each in place (fix the poisoned tuples, tweak
    /// nothing, …), lifts the quarantine, and replays the letters in
    /// their original order through the normal prefill/ingest path.
    /// Replaying the exact per-tuple sequence the engine would have seen
    /// keeps the model bitwise-identical to a run that never faulted —
    /// provided the repaired tuples match what the healthy run ingested.
    ///
    /// Returns the number of letters fully replayed. If a replayed batch
    /// panics again, it (and the letters after it) land back in the DLQ
    /// in order and the first error is returned; a typed rejection
    /// instead requeues the unattempted letters verbatim at the front.
    /// `Ok(0)` means nothing was pending.
    pub fn replay_quarantined(
        &mut self,
        mut repair: impl FnMut(&mut PoolDeadLetter),
    ) -> Result<usize, SnsError> {
        let mut letters = self.ops.dlq().take(self.stream_id);
        if letters.is_empty() {
            return Ok(0);
        }
        for letter in &mut letters {
            repair(letter);
        }
        // Lift the quarantine first; per-stream FIFO ordering makes the
        // release visible to the worker before any batch replayed below.
        let ticket = self.bump_ticket();
        let release = Command::Release { id: self.stream_id, token: self.token, ticket };
        if let Err(e) =
            self.submit_timed(ticket, release).and_then(|()| self.await_receipt(ticket).map(drop))
        {
            self.ops.dlq().requeue_front(self.stream_id, letters);
            return Err(e);
        }
        let mut replayed = 0usize;
        let mut first_err: Option<SnsError> = None;
        let mut i = 0usize;
        while i < letters.len() {
            let result = match letters[i].op {
                QuarantinedOp::Prefill => self.prefill_batch(&letters[i].tuples),
                QuarantinedOp::Ingest => self.ingest_batch(&letters[i].tuples),
            };
            match result {
                Ok(_) => {
                    replayed += 1;
                    self.metrics.replayed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
                    if matches!(
                        e.root_cause(),
                        SnsError::EnginePanicked { .. } | SnsError::StreamQuarantined { .. }
                    ) =>
                {
                    // The panicking batch re-quarantined itself on the
                    // worker; keep pushing the remainder through so it
                    // lands back in the DLQ behind it, still in order.
                    first_err.get_or_insert(e);
                }
                Err(e) => {
                    // Typed rejection: nothing was re-quarantined. This
                    // letter and the unattempted remainder go back to
                    // the front, verbatim.
                    let rest = letters.split_off(i);
                    self.ops.dlq().requeue_front(self.stream_id, rest);
                    return Err(e);
                }
            }
            i += 1;
        }
        match first_err {
            None => Ok(replayed),
            Some(e) => Err(e),
        }
    }

    /// Closes the stream: its engine is dropped once the worker drains
    /// the queued commands. Blocks only for queue space.
    pub fn close(mut self) {
        self.closed = true;
        if self.tx.send(Command::Close { id: self.stream_id, token: self.token }).is_ok() {
            self.ops.metrics().shard(self.shard).queue_depth.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StreamSession(stream={}, shard={}, in_flight={})",
            self.stream_id, self.shard, self.unclaimed
        )
    }
}

impl Drop for StreamSession {
    fn drop(&mut self) {
        if !self.closed {
            // Best-effort: if the shard queue is full the slot lives
            // until the pool shuts down. `close(self)` is reliable.
            if self.tx.try_send(Command::Close { id: self.stream_id, token: self.token }).is_ok() {
                self.ops.metrics().shard(self.shard).queue_depth.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_stream::StreamTuple;

    fn spec() -> EngineSpec {
        let config = SnsConfig { rank: 2, theta: 8, ..Default::default() };
        EngineSpec::sns(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config)
    }

    fn tuples_for(id: u64) -> Vec<StreamTuple> {
        (0..120u64)
            .map(|t| StreamTuple::new([((t + id) % 4) as u32, ((t * 3 + id) % 3) as u32], 1.0, t))
            .collect()
    }

    #[test]
    fn batch_buffers_recycle_cleared_and_bounded() {
        let freelist = BufferPool::new();
        let tuples = tuples_for(1);
        let buf = freelist.take(&tuples[..8]);
        assert_eq!(buf.len(), 8);
        let cap = buf.capacity();
        freelist.put(buf);
        // Recycled allocation, contents fully replaced — no stale tuples.
        let again = freelist.take(&tuples[..2]);
        assert_eq!(again.capacity(), cap, "allocation not recycled");
        assert_eq!(again.as_slice(), &tuples[..2]);
        // Capacity-0 buffers are not worth pooling.
        freelist.put(Vec::new());
        assert!(freelist.inner.lock().unwrap().is_empty());
        // A burst cannot pin unbounded memory in the freelist.
        for _ in 0..(2 * BufferPool::MAX_POOLED) {
            freelist.put(Vec::with_capacity(4));
        }
        assert_eq!(freelist.inner.lock().unwrap().len(), BufferPool::MAX_POOLED);
    }

    #[test]
    fn stream_seed_is_pure_and_spreads() {
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        assert_ne!(stream_seed(1, 2), stream_seed(1, 3));
        assert_ne!(stream_seed(1, 2), stream_seed(2, 2));
    }

    #[test]
    fn pooled_batched_equals_serial() {
        let ids = [0u64, 1, 2, 3, 4, 5, 6, 7];
        let base_seed = 0xabcd;

        // Serial reference: per-tuple ingestion.
        let mut serial = Vec::new();
        for &id in &ids {
            let mut e = spec().build(stream_seed(base_seed, id));
            for tu in tuples_for(id) {
                e.ingest(tu).unwrap();
            }
            serial.push((e.fitness(), e.updates_applied()));
        }

        // Pooled run over 3 workers, batches interleaved across streams.
        let pool = EnginePool::new(PoolConfig { shards: 3, base_seed, ..Default::default() });
        let mut sessions: Vec<StreamSession> =
            ids.iter().map(|&id| pool.open(id, spec()).unwrap()).collect();
        for chunk_start in (0..120).step_by(30) {
            for (session, &id) in sessions.iter_mut().zip(&ids) {
                let batch = &tuples_for(id)[chunk_start..chunk_start + 30];
                let receipt = session.ingest_batch(batch).unwrap();
                assert_eq!(receipt.accepted, 30);
            }
        }
        for (session, (fit, updates)) in sessions.iter_mut().zip(&serial) {
            let r = session.report().unwrap();
            assert_eq!(r.error, None);
            assert_eq!(r.fitness.to_bits(), fit.to_bits(), "stream {} fitness", r.stream_id);
            assert_eq!(r.updates_applied, *updates, "stream {} updates", r.stream_id);
        }
        drop(sessions);
        pool.join();
    }

    #[test]
    fn batch_errors_are_typed_and_not_fatal() {
        let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 1, ..Default::default() });
        let mut session = pool.open(9, spec()).unwrap();
        let _ = session.ingest_batch(&[StreamTuple::new([0u32, 0], 1.0, 50)]).unwrap();
        let err = session
            .ingest_batch(&[
                StreamTuple::new([1u32, 1], 1.0, 55),
                StreamTuple::new([0u32, 0], 1.0, 10), // out of order
            ])
            .unwrap_err();
        assert_eq!(err.accepted(), Some(1), "{err}");
        assert!(matches!(err.root_cause(), SnsError::OutOfOrder { .. }));
        // The stream stays usable and the report records the first error.
        let receipt = session.ingest_batch(&[StreamTuple::new([1u32, 1], 1.0, 60)]).unwrap();
        assert!(receipt.accepted == 1);
        let r = session.report().unwrap();
        assert!(matches!(r.error, Some(SnsError::BatchAborted { .. })), "{:?}", r.error);
        assert!(r.fitness.is_nan() || r.fitness.is_finite());
    }

    #[test]
    fn engine_build_failure_is_typed_and_isolated() {
        let pool = EnginePool::new(PoolConfig { shards: 1, base_seed: 0, ..Default::default() });
        // window = 0 makes the SnsEngine constructor panic on the worker.
        let bad = EngineSpec::sns(&[4, 3], 0, 10, AlgorithmKind::PlusVec, &SnsConfig::with_rank(2));
        match pool.open(1, bad) {
            Err(SnsError::EngineBuildFailed { stream_id: 1, message }) => {
                assert!(message.contains("window"), "{message}");
            }
            other => panic!("expected EngineBuildFailed, got {:?}", other.err()),
        }
        // The worker survives: a healthy stream opens on the same shard.
        let mut ok = pool.open(2, spec()).unwrap();
        let receipt = ok.ingest_batch(&tuples_for(2)[..10]).unwrap();
        assert_eq!(receipt.accepted, 10);
    }

    #[test]
    fn reopening_replaces_and_invalidates_the_old_session() {
        let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 3, ..Default::default() });
        let mut old = pool.open(5, spec()).unwrap();
        let _ = old.ingest_batch(&tuples_for(5)[..10]).unwrap();
        let mut new = pool.open(5, spec()).unwrap();
        // The old session's replies channel was dropped with its slot.
        assert!(matches!(
            old.ingest_batch(&tuples_for(5)[10..20]).unwrap_err(),
            SnsError::StreamClosed { stream_id: 5 }
        ));
        // The new session drives a fresh engine (10 fewer tuples seen).
        let receipt = new.ingest_batch(&tuples_for(5)[..10]).unwrap();
        assert_eq!(receipt.accepted, 10);
        assert_eq!(new.report().unwrap().updates_applied, receipt.updates);
    }

    #[test]
    fn pipelined_receipts_arrive_in_order() {
        let pool = EnginePool::new(PoolConfig { shards: 1, base_seed: 0, ..Default::default() });
        let mut session = pool.open(3, spec()).unwrap();
        let tuples = tuples_for(3);
        let mut tickets = Vec::new();
        let mut sent = 0usize;
        for chunk in tuples.chunks(12) {
            match session.try_ingest_batch(chunk) {
                Ok(t) => {
                    tickets.push(t);
                    sent += chunk.len();
                }
                Err(SnsError::Backpressure { .. }) => {
                    // Saturated queue: fall back to the blocking path.
                    let r = session.ingest_batch(chunk).unwrap();
                    assert_eq!(r.accepted, chunk.len());
                    sent += chunk.len();
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let mut acked = 0usize;
        let mut last_ticket = 0u64;
        while let Some(r) = session.recv_receipt() {
            let r = r.unwrap();
            assert!(r.ticket > last_ticket || acked == 0, "receipts out of order");
            last_ticket = r.ticket;
            acked += r.accepted;
        }
        assert_eq!(session.in_flight(), 0);
        // Everything submitted (pipelined or blocking) was accepted.
        let report = session.report().unwrap();
        assert_eq!(report.error, None);
        assert_eq!(sent, tuples.len());
        let _ = (tickets, acked);
    }

    #[test]
    fn shard_assignment_is_stable() {
        let pool = EnginePool::new(PoolConfig { shards: 4, base_seed: 0, ..Default::default() });
        for id in 0..50u64 {
            assert_eq!(pool.shard_of(id), pool.shard_of(id));
            assert!(pool.shard_of(id) < 4);
        }
    }

    #[test]
    fn restore_elsewhere_evicts_the_still_open_session() {
        let pool = EnginePool::new(PoolConfig { shards: 3, base_seed: 0, ..Default::default() });
        let mut old = pool.open(4, spec()).unwrap();
        let tuples = tuples_for(4);
        let _ = old.ingest_batch(&tuples[..20]).unwrap();
        let snapshot = old.snapshot().unwrap();
        // Restore onto a *different* shard without closing the old
        // session: the id must not end up served by two engines.
        let target = (old.shard() + 1) % pool.shards();
        let mut migrated = pool.restore(snapshot, target).unwrap();
        assert!(matches!(
            old.ingest_batch(&tuples[20..30]).unwrap_err(),
            SnsError::StreamClosed { stream_id: 4 }
        ));
        // The migrated session carries the stream forward alone.
        let receipt = migrated.ingest_batch(&tuples[20..]).unwrap();
        assert_eq!(receipt.accepted, 100);
        assert_eq!(migrated.report().unwrap().error, None);
    }

    #[test]
    fn checkpoint_all_then_recover_matches_uninterrupted_run() {
        let ids = [0u64, 1, 2, 3, 4];
        let base_seed = 0xfeed;
        let make_pool =
            || EnginePool::new(PoolConfig { shards: 3, base_seed, ..Default::default() });

        // Reference: uninterrupted pooled run over the whole stream.
        let reference = make_pool();
        let mut sessions: Vec<StreamSession> =
            ids.iter().map(|&id| reference.open(id, spec()).unwrap()).collect();
        for (session, &id) in sessions.iter_mut().zip(&ids) {
            let _ = session.ingest_batch(&tuples_for(id)).unwrap();
        }
        let expected: Vec<(u64, u64)> = sessions
            .iter_mut()
            .map(|s| {
                let r = s.report().unwrap();
                (r.fitness.to_bits(), r.updates_applied)
            })
            .collect();
        drop(sessions);
        reference.join();

        // Interrupted run: half the stream, checkpoint, "crash", recover
        // into a brand-new pool, finish the stream.
        let first = make_pool();
        let mut sessions: Vec<StreamSession> =
            ids.iter().map(|&id| first.open(id, spec()).unwrap()).collect();
        for (session, &id) in sessions.iter_mut().zip(&ids) {
            let _ = session.ingest_batch(&tuples_for(id)[..60]).unwrap();
        }
        // Quiesce (blocking batches are already acked), then checkpoint.
        let checkpoints = first.checkpoint_all();
        assert_eq!(checkpoints.len(), ids.len());
        let snapshots: Vec<EngineSnapshot> =
            checkpoints.into_iter().map(|(_, r)| r.unwrap()).collect();
        assert!(snapshots.windows(2).all(|w| w[0].stream_id < w[1].stream_id));
        drop(sessions);
        first.join(); // the crash

        let recovered_pool = make_pool();
        let mut recovered = recovered_pool.recover_all(snapshots).unwrap();
        for (session, &id) in recovered.iter_mut().zip(&ids) {
            assert_eq!(session.stream_id(), id);
            let _ = session.ingest_batch(&tuples_for(id)[60..]).unwrap();
        }
        for (session, (fitness, updates)) in recovered.iter_mut().zip(&expected) {
            let r = session.report().unwrap();
            assert_eq!(r.error, None);
            assert_eq!(r.fitness.to_bits(), *fitness, "stream {}", r.stream_id);
            assert_eq!(r.updates_applied, *updates, "stream {}", r.stream_id);
        }
    }

    #[test]
    fn checkpoint_reports_quarantined_streams_in_place() {
        let pool = EnginePool::new(PoolConfig { shards: 1, base_seed: 2, ..Default::default() });
        let mut healthy = pool.open(1, spec()).unwrap();
        let _ = healthy.ingest_batch(&tuples_for(1)[..10]).unwrap();
        // A closed slot stays out of the checkpoint; only live slots show.
        let gone = pool.open(2, spec()).unwrap();
        gone.close();
        let checkpoints = pool.checkpoint_all();
        assert!(checkpoints.iter().any(|(id, r)| *id == 1 && r.is_ok()));
        assert!(!checkpoints.iter().any(|(id, _)| *id == 2), "closed stream checkpointed");
    }

    #[test]
    fn invalid_restore_leaves_the_live_session_untouched() {
        let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 4, ..Default::default() });
        let mut live = pool.open(8, spec()).unwrap();
        let _ = live.ingest_batch(&tuples_for(8)[..20]).unwrap();
        let mut snapshot = live.snapshot().unwrap();
        // Corrupt the snapshot: window from this engine, factors from a
        // differently-shaped one — exactly what a damaged store entry
        // that slipped past framing checks would look like.
        let crate::snapshot::EngineState::Sns(state) = &mut snapshot.state else {
            panic!("continuous snapshot expected");
        };
        let foreign = EngineSpec::sns(
            &[9, 9],
            3,
            10,
            sns_core::config::AlgorithmKind::PlusVec,
            &SnsConfig { rank: 2, ..Default::default() },
        )
        .build(1);
        let foreign_state = foreign.snapshot().unwrap();
        let crate::snapshot::EngineState::Sns(foreign_sns) = foreign_state else {
            panic!("continuous snapshot expected");
        };
        state.updater = foreign_sns.updater;

        // The restore fails typed — and must NOT evict the live session.
        assert!(matches!(
            pool.restore(snapshot, 0),
            Err(SnsError::Codec { fault: sns_error::CodecFault::Invalid, .. })
        ));
        let receipt = live.ingest_batch(&tuples_for(8)[20..30]).unwrap();
        assert_eq!(receipt.accepted, 10, "healthy session must survive a failed restore");
        assert_eq!(live.report().unwrap().error, None);
    }

    #[test]
    fn restore_rejects_bad_shard() {
        let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 0, ..Default::default() });
        let mut session = pool.open(1, spec()).unwrap();
        let _ = session.ingest_batch(&tuples_for(1)[..20]).unwrap();
        let snapshot = session.snapshot().unwrap();
        assert!(matches!(
            pool.restore(snapshot, 9).unwrap_err(),
            SnsError::ShardOutOfRange { shard: 9, shards: 2 }
        ));
    }
}
