//! A sharded multi-stream runtime: many independent tensor streams, one
//! process, `N` worker threads.
//!
//! ## Model
//!
//! Every stream (a tenant's sensor feed, one city's traffic matrix, …)
//! is an independent [`StreamingCpd`] engine identified by a `u64`
//! stream id. The pool pins each id to exactly one worker thread
//! (`shard = hash(id) % workers`) and forwards commands over a
//! per-worker channel, so:
//!
//! - commands for one stream execute **in submission order** on one
//!   thread — no locks around engine state, no cross-thread movement of
//!   engines (they are built *on* their worker and die there, so engine
//!   types need not be `Send`);
//! - different streams proceed **concurrently** across workers;
//! - results are bitwise-identical to driving each engine serially,
//!   because engines are deterministic given their seed and input order;
//! - failures stay **per-stream**: an engine that returns an error has
//!   it recorded in its [`StreamReport`]; an engine that *panics* is
//!   quarantined (its stream keeps reporting the panic message) while
//!   every other stream on the shard — and the calling thread — keep
//!   running.
//!
//! ## Determinism contract
//!
//! [`EnginePool::open_stream`] hands the factory a seed derived by
//! [`stream_seed`]`(base_seed, id)` — a pure function, independent of
//! shard count and worker scheduling. A serial reference run that builds
//! its engines with the same derived seeds reproduces pooled results
//! exactly (see `tests/engine_pool.rs`).

use crate::streaming::StreamingCpd;
use sns_core::als::AlsOptions;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

/// Pool sizing and seeding.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker (shard) count. Streams are hashed across workers.
    pub shards: usize,
    /// Base seed that per-stream seeds are derived from.
    pub base_seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        PoolConfig { shards, base_seed: 0x5eed }
    }
}

/// Deterministic per-stream seed: a SplitMix64 mix of the pool's base
/// seed and the stream id. Pure — independent of shard count, worker
/// scheduling, and stream open order.
pub fn stream_seed(base_seed: u64, stream_id: u64) -> u64 {
    let mut z = base_seed ^ stream_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a stream's engine on its worker thread from the derived seed.
type EngineFactory = Box<dyn FnOnce(u64) -> Box<dyn StreamingCpd> + Send>;

/// Snapshot of one stream's state, produced on its worker.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The stream id the report describes.
    pub stream_id: u64,
    /// Engine display name.
    pub name: String,
    /// Fitness against the stream's current window.
    pub fitness: f64,
    /// Factor updates applied so far.
    pub updates_applied: u64,
    /// Model parameter count.
    pub num_parameters: usize,
    /// Whether the model diverged.
    pub diverged: bool,
    /// First command error observed on this stream, if any.
    pub error: Option<String>,
}

enum Command {
    Open { id: u64, seed: u64, build: EngineFactory },
    Prefill { id: u64, tuple: sns_stream::StreamTuple },
    WarmStart { id: u64, opts: AlsOptions },
    Ingest { id: u64, tuple: sns_stream::StreamTuple },
    AdvanceTo { id: u64, t: u64 },
    Report { id: u64, reply: Sender<StreamReport> },
    Shutdown,
}

struct StreamSlot {
    name: String,
    /// `None` once the engine is quarantined after a panic (its state is
    /// no longer trustworthy); the slot keeps reporting the error.
    engine: Option<Box<dyn StreamingCpd>>,
    error: Option<String>,
}

impl StreamSlot {
    /// Runs an engine command with panic isolation: an engine that
    /// returns `Err` records the error; an engine that *panics* is
    /// quarantined (dropped) and the panic message recorded — the worker
    /// thread, its other streams, and the calling thread all survive.
    fn guard<T>(
        &mut self,
        f: impl FnOnce(&mut dyn StreamingCpd) -> Result<T, String>,
    ) -> Option<T> {
        let engine = self.engine.as_mut()?;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(engine.as_mut()))) {
            Ok(Ok(v)) => Some(v),
            Ok(Err(e)) => {
                self.error.get_or_insert(e);
                None
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic payload".to_string());
                self.error.get_or_insert(format!("engine panicked: {msg}"));
                self.engine = None;
                None
            }
        }
    }
}

/// Shards many independent [`StreamingCpd`] streams across worker
/// threads. See the module docs for the threading and determinism model.
pub struct EnginePool {
    senders: Vec<Sender<Command>>,
    workers: Vec<JoinHandle<()>>,
    base_seed: u64,
}

impl EnginePool {
    /// Spawns the worker threads.
    pub fn new(cfg: PoolConfig) -> Self {
        let shards = cfg.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = channel::<Command>();
            let handle = std::thread::Builder::new()
                .name(format!("sns-pool-{i}"))
                .spawn(move || {
                    let mut slots: HashMap<u64, StreamSlot> = HashMap::new();
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            Command::Open { id, seed, build } => {
                                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    build(seed)
                                })) {
                                    Ok(engine) => {
                                        let name = engine.name();
                                        slots.insert(
                                            id,
                                            StreamSlot { name, engine: Some(engine), error: None },
                                        );
                                    }
                                    Err(_) => {
                                        slots.insert(
                                            id,
                                            StreamSlot {
                                                name: String::new(),
                                                engine: None,
                                                error: Some("engine factory panicked".to_string()),
                                            },
                                        );
                                    }
                                }
                            }
                            Command::Prefill { id, tuple } => {
                                if let Some(s) = slots.get_mut(&id) {
                                    s.guard(|e| e.prefill(tuple).map_err(|e| e.to_string()));
                                }
                            }
                            Command::WarmStart { id, opts } => {
                                if let Some(s) = slots.get_mut(&id) {
                                    s.guard(|e| {
                                        e.warm_start(&opts);
                                        Ok(())
                                    });
                                }
                            }
                            Command::Ingest { id, tuple } => {
                                if let Some(s) = slots.get_mut(&id) {
                                    s.guard(|e| {
                                        e.ingest(tuple).map(|_| ()).map_err(|e| e.to_string())
                                    });
                                }
                            }
                            Command::AdvanceTo { id, t } => {
                                if let Some(s) = slots.get_mut(&id) {
                                    s.guard(|e| {
                                        e.advance_to(t);
                                        Ok(())
                                    });
                                }
                            }
                            Command::Report { id, reply } => {
                                let report = match slots.get_mut(&id) {
                                    Some(s) => {
                                        let snapshot = s.guard(|e| {
                                            Ok((
                                                e.fitness(),
                                                e.updates_applied(),
                                                e.num_parameters(),
                                                e.diverged(),
                                            ))
                                        });
                                        let (fitness, updates_applied, num_parameters, diverged) =
                                            snapshot.unwrap_or((f64::NAN, 0, 0, false));
                                        StreamReport {
                                            stream_id: id,
                                            name: s.name.clone(),
                                            fitness,
                                            updates_applied,
                                            num_parameters,
                                            diverged,
                                            error: s.error.clone(),
                                        }
                                    }
                                    None => StreamReport {
                                        stream_id: id,
                                        name: String::new(),
                                        fitness: f64::NAN,
                                        updates_applied: 0,
                                        num_parameters: 0,
                                        diverged: false,
                                        error: Some(format!("unknown stream id {id}")),
                                    },
                                };
                                // The requester may have hung up; that's fine.
                                let _ = reply.send(report);
                            }
                            Command::Shutdown => break,
                        }
                    }
                })
                .expect("spawn engine pool worker");
            senders.push(tx);
            workers.push(handle);
        }
        EnginePool { senders, workers, base_seed: cfg.base_seed }
    }

    /// Number of worker threads.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Which worker serves a stream id (stable for the pool's lifetime).
    pub fn shard_of(&self, stream_id: u64) -> usize {
        // Re-mix so adjacent ids spread across shards.
        (stream_seed(0, stream_id) % self.senders.len() as u64) as usize
    }

    fn send(&self, stream_id: u64, cmd: Command) {
        self.senders[self.shard_of(stream_id)].send(cmd).expect("engine pool worker alive");
    }

    /// Registers a stream: `build` runs on the stream's worker thread
    /// with the deterministic seed [`stream_seed`]`(base_seed, id)`.
    /// Re-opening an id replaces the previous engine.
    pub fn open_stream<F>(&self, stream_id: u64, build: F)
    where
        F: FnOnce(u64) -> Box<dyn StreamingCpd> + Send + 'static,
    {
        let seed = stream_seed(self.base_seed, stream_id);
        self.send(stream_id, Command::Open { id: stream_id, seed, build: Box::new(build) });
    }

    /// Queues a prefill tuple for a stream (no factor update).
    pub fn prefill(&self, stream_id: u64, tuple: sns_stream::StreamTuple) {
        self.send(stream_id, Command::Prefill { id: stream_id, tuple });
    }

    /// Queues a warm start for a stream.
    pub fn warm_start(&self, stream_id: u64, opts: &AlsOptions) {
        self.send(stream_id, Command::WarmStart { id: stream_id, opts: opts.clone() });
    }

    /// Queues one live tuple for a stream.
    pub fn ingest(&self, stream_id: u64, tuple: sns_stream::StreamTuple) {
        self.send(stream_id, Command::Ingest { id: stream_id, tuple });
    }

    /// Queues a clock advance for a stream.
    pub fn advance_to(&self, stream_id: u64, t: u64) {
        self.send(stream_id, Command::AdvanceTo { id: stream_id, t });
    }

    /// Blocks until the stream's worker has drained every previously
    /// queued command for it, then returns its state snapshot.
    pub fn report(&self, stream_id: u64) -> StreamReport {
        let (tx, rx) = channel();
        self.send(stream_id, Command::Report { id: stream_id, reply: tx });
        rx.recv().expect("engine pool worker alive")
    }

    /// Shuts the workers down and waits for them to finish.
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        for tx in &self.senders {
            // Workers that already exited are fine to ignore.
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_core::engine::SnsEngine;
    use sns_stream::StreamTuple;

    fn build_engine(seed: u64) -> Box<dyn StreamingCpd> {
        let config = SnsConfig { rank: 2, theta: 8, seed, ..Default::default() };
        Box::new(SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config))
    }

    fn tuples_for(id: u64) -> Vec<StreamTuple> {
        (0..120u64)
            .map(|t| StreamTuple::new([((t + id) % 4) as u32, ((t * 3 + id) % 3) as u32], 1.0, t))
            .collect()
    }

    #[test]
    fn stream_seed_is_pure_and_spreads() {
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        assert_ne!(stream_seed(1, 2), stream_seed(1, 3));
        assert_ne!(stream_seed(1, 2), stream_seed(2, 2));
    }

    #[test]
    fn pooled_equals_serial() {
        let ids = [0u64, 1, 2, 3, 4, 5, 6, 7];
        let base_seed = 0xabcd;

        // Serial reference.
        let mut serial = Vec::new();
        for &id in &ids {
            let mut e = build_engine(stream_seed(base_seed, id));
            for tu in tuples_for(id) {
                e.ingest(tu).unwrap();
            }
            serial.push((e.fitness(), e.updates_applied()));
        }

        // Pooled run over 3 workers, tuples interleaved across streams.
        let pool = EnginePool::new(PoolConfig { shards: 3, base_seed });
        for &id in &ids {
            pool.open_stream(id, build_engine);
        }
        for i in 0..120 {
            for &id in &ids {
                pool.ingest(id, tuples_for(id)[i]);
            }
        }
        for (&id, (fit, updates)) in ids.iter().zip(&serial) {
            let r = pool.report(id);
            assert_eq!(r.error, None);
            assert_eq!(r.fitness.to_bits(), fit.to_bits(), "stream {id} fitness differs");
            assert_eq!(r.updates_applied, *updates, "stream {id} updates differ");
        }
        pool.join();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let pool = EnginePool::new(PoolConfig { shards: 2, base_seed: 1 });
        pool.open_stream(9, build_engine);
        pool.ingest(9, StreamTuple::new([0u32, 0], 1.0, 50));
        pool.ingest(9, StreamTuple::new([0u32, 0], 1.0, 10)); // out of order
        let r = pool.report(9);
        assert!(r.error.is_some(), "out-of-order ingest must surface");
        // The stream stays usable.
        pool.ingest(9, StreamTuple::new([1u32, 1], 1.0, 60));
        let r = pool.report(9);
        assert!(r.fitness.is_nan() || r.fitness.is_finite());
        assert_eq!(pool.report(777).error.as_deref(), Some("unknown stream id 777"));
    }

    /// Trait stub whose `ingest` panics at a chosen timestamp.
    struct Grenade {
        kruskal: sns_core::kruskal::KruskalTensor,
        window: sns_tensor::SparseTensor,
        boom_at: u64,
        updates: u64,
    }

    impl Grenade {
        fn boxed(boom_at: u64) -> Box<dyn StreamingCpd> {
            Box::new(Grenade {
                kruskal: sns_core::kruskal::KruskalTensor::zeros(&[2, 2], 1),
                window: sns_tensor::SparseTensor::new(sns_tensor::Shape::new(&[2, 2])),
                boom_at,
                updates: 0,
            })
        }
    }

    impl StreamingCpd for Grenade {
        fn prefill(&mut self, _tuple: StreamTuple) -> sns_stream::Result<()> {
            Ok(())
        }
        fn warm_start(&mut self, opts: &AlsOptions) -> sns_core::als::AlsResult {
            sns_core::als::als(&self.window, 1, opts)
        }
        fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
            assert!(tuple.time != self.boom_at, "boom");
            self.updates += 1;
            Ok(1)
        }
        fn advance_to(&mut self, _t: u64) -> usize {
            0
        }
        fn window(&self) -> &sns_tensor::SparseTensor {
            &self.window
        }
        fn kruskal(&self) -> &sns_core::kruskal::KruskalTensor {
            &self.kruskal
        }
        fn fitness(&self) -> f64 {
            1.0
        }
        fn diverged(&self) -> bool {
            false
        }
        fn updates_applied(&self) -> u64 {
            self.updates
        }
        fn num_parameters(&self) -> usize {
            self.kruskal.num_parameters()
        }
        fn name(&self) -> String {
            "grenade".to_string()
        }
    }

    #[test]
    fn panicking_engine_is_quarantined_not_fatal() {
        let pool = EnginePool::new(PoolConfig { shards: 1, base_seed: 0 });
        pool.open_stream(1, |_| Grenade::boxed(5));
        pool.open_stream(2, |_| Grenade::boxed(u64::MAX));
        for t in 0..10u64 {
            pool.ingest(1, StreamTuple::new([0u32, 0], 1.0, t));
            pool.ingest(2, StreamTuple::new([0u32, 0], 1.0, t));
        }
        // Stream 1 blew up at t = 5: quarantined, error recorded, but the
        // shared worker and the calling thread survive.
        let r1 = pool.report(1);
        assert!(r1.error.as_deref().unwrap_or("").contains("panicked"), "{:?}", r1.error);
        assert!(r1.fitness.is_nan());
        // Stream 2 on the same shard is untouched.
        let r2 = pool.report(2);
        assert_eq!(r2.error, None);
        assert_eq!(r2.updates_applied, 10);
        // The pool still accepts new streams afterwards.
        pool.open_stream(3, |_| Grenade::boxed(u64::MAX));
        pool.ingest(3, StreamTuple::new([0u32, 0], 1.0, 1));
        assert_eq!(pool.report(3).updates_applied, 1);
    }

    #[test]
    fn shard_assignment_is_stable() {
        let pool = EnginePool::new(PoolConfig { shards: 4, base_seed: 0 });
        for id in 0..50u64 {
            assert_eq!(pool.shard_of(id), pool.shard_of(id));
            assert!(pool.shard_of(id) < 4);
        }
    }
}
