//! [`ChaosCpd`]: declarative fault injection as a [`StreamingCpd`]
//! decorator.
//!
//! Soak-testing the pool's quarantine and backpressure paths needs
//! *deterministic* faults: the same trace must panic the same engine at
//! the same tuple on every run, or the replay-byte-identity proof is
//! meaningless. Closures can't ride inside an
//! [`EngineSpec`](crate::spec::EngineSpec) (specs are plain comparable
//! data), so faults are declared as data instead:
//!
//! - a **poison sentinel** — a tuple whose value bit-equals
//!   [`ChaosConfig::poison_value`] panics the engine at the exact
//!   arrival that carries it, modelling a poison batch;
//! - a **per-tuple delay** — an optional busy-wait that slows the
//!   worker's apply path, modelling a slow engine so sessions
//!   deterministically hit queue-full backpressure.
//!
//! Benign tuples delegate untouched, so a chaos-wrapped engine is
//! bitwise-identical to the bare engine for any poison-free stream —
//! which is exactly what makes a repaired replay comparable against a
//! clean serial run.

use crate::snapshot::{EngineState, StateCapture};
use crate::streaming::{BatchOutcome, StreamingCpd};
use sns_core::als::{AlsOptions, AlsResult};
use sns_core::kruskal::KruskalTensor;
use sns_error::SnsError;
use sns_stream::StreamTuple;
use sns_tensor::SparseTensor;

/// The default poison sentinel: an ordinary (non-NaN) magic value no
/// real trace produces, so equality is exact and bit-stable.
pub const POISON_VALUE: f64 = -123_456_789.0;

/// Declarative configuration of a [`ChaosCpd`] decorator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Tuples whose value bit-equals this panic the engine.
    pub poison_value: f64,
    /// Busy-wait (microseconds) per ingested tuple; 0 disables.
    pub delay_micros: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { poison_value: POISON_VALUE, delay_micros: 0 }
    }
}

impl ChaosConfig {
    fn is_poison(&self, value: f64) -> bool {
        value.to_bits() == self.poison_value.to_bits()
    }
}

/// Fault-injecting decorator around any [`StreamingCpd`] engine. See
/// the module docs for semantics; construct via
/// [`EngineSpec::with_chaos`](crate::spec::EngineSpec::with_chaos) for
/// pooled use.
pub struct ChaosCpd {
    inner: Box<dyn StreamingCpd>,
    config: ChaosConfig,
}

impl ChaosCpd {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Box<dyn StreamingCpd>, config: ChaosConfig) -> Self {
        ChaosCpd { inner, config }
    }

    /// The decorator's fault plan.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> Box<dyn StreamingCpd> {
        self.inner
    }

    /// Captures the decorator's state (the wrapped engine's state plus
    /// the fault plan, so a rollback restores the *decorated* engine —
    /// stripping the wrapper mid-run would turn later poisons into real
    /// values and break replay determinism).
    pub fn capture_state(&self) -> Result<ChaosState, SnsError> {
        Ok(ChaosState { inner: self.inner.snapshot()?, config: self.config })
    }

    /// Rebuilds a decorator from captured state.
    pub fn from_state(state: ChaosState) -> Result<Self, SnsError> {
        Ok(ChaosCpd { inner: state.inner.into_engine()?, config: state.config })
    }

    fn trip(&self, tuple: &StreamTuple) {
        if self.config.is_poison(tuple.value) {
            panic!("chaos poison tuple at t={}", tuple.time);
        }
        if self.config.delay_micros > 0 {
            let until =
                sns_ops::clock::now() + std::time::Duration::from_micros(self.config.delay_micros);
            while sns_ops::clock::now() < until {
                std::hint::spin_loop();
            }
        }
    }
}

impl StateCapture for ChaosCpd {
    fn capture(&self) -> Result<EngineState, SnsError> {
        Ok(EngineState::Chaos(Box::new(self.capture_state()?)))
    }
}

impl StreamingCpd for ChaosCpd {
    fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()> {
        self.trip(&tuple);
        self.inner.prefill(tuple)
    }

    fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult {
        self.inner.warm_start(opts)
    }

    fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
        self.trip(&tuple);
        self.inner.ingest(tuple)
    }

    fn advance_to(&mut self, t: u64) -> usize {
        self.inner.advance_to(t)
    }

    fn window(&self) -> &SparseTensor {
        self.inner.window()
    }

    fn kruskal(&self) -> &KruskalTensor {
        self.inner.kruskal()
    }

    fn fitness(&self) -> f64 {
        self.inner.fitness()
    }

    fn diverged(&self) -> bool {
        self.inner.diverged()
    }

    fn updates_applied(&self) -> u64 {
        self.inner.updates_applied()
    }

    fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }

    fn name(&self) -> String {
        format!("Chaos({})", self.inner.name())
    }

    fn prefill_all(&mut self, tuples: &[StreamTuple]) -> Result<usize, SnsError> {
        for tu in tuples {
            self.trip(tu);
        }
        self.inner.prefill_all(tuples)
    }

    fn ingest_all(&mut self, tuples: &[StreamTuple]) -> Result<BatchOutcome, SnsError> {
        // Per-tuple so a poison mid-batch fires exactly at its own
        // arrival, after the tuples before it were applied — the same
        // partial progress a real poison batch would leave behind.
        let mut updates = 0u64;
        for (i, tu) in tuples.iter().enumerate() {
            match self.ingest(*tu) {
                Ok(n) => updates += n as u64,
                Err(e) => return Err(e.aborted_at(i, updates)),
            }
        }
        Ok(BatchOutcome { accepted: tuples.len(), updates })
    }

    fn snapshot(&self) -> Result<EngineState, SnsError> {
        StateCapture::capture(self)
    }

    fn anomalies(&self) -> Option<crate::anomaly::AnomalySummary> {
        self.inner.anomalies()
    }

    fn arrival_residual(&self, tuple: &StreamTuple) -> f64 {
        self.inner.arrival_residual(tuple)
    }
}

/// Captured state of a [`ChaosCpd`]: the wrapped engine's state plus
/// the fault plan.
#[derive(Clone)]
pub struct ChaosState {
    /// The wrapped engine's captured state.
    pub inner: EngineState,
    /// The fault plan (poison sentinel, delay).
    pub config: ChaosConfig,
}

impl std::fmt::Debug for ChaosState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChaosState(delay={}us, inner={:?})", self.config.delay_micros, self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::{AlgorithmKind, SnsConfig};
    use sns_core::engine::SnsEngine;

    fn engine() -> Box<dyn StreamingCpd> {
        let config = SnsConfig { rank: 2, theta: 4, seed: 11, ..Default::default() };
        Box::new(SnsEngine::new(&[4, 3], 3, 10, AlgorithmKind::PlusRnd, &config))
    }

    fn tuples() -> Vec<StreamTuple> {
        (0..120u64).map(|t| StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).collect()
    }

    #[test]
    fn benign_stream_is_bitwise_transparent() {
        let mut plain = engine();
        let mut wrapped = ChaosCpd::new(engine(), ChaosConfig::default());
        let stream = tuples();
        plain.prefill_all(&stream[..40]).unwrap();
        wrapped.prefill_all(&stream[..40]).unwrap();
        plain.warm_start(&AlsOptions::default());
        wrapped.warm_start(&AlsOptions::default());
        let a = plain.ingest_all(&stream[40..]).unwrap();
        let b = wrapped.ingest_all(&stream[40..]).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.fitness().to_bits(), wrapped.fitness().to_bits());
        for m in 0..3 {
            assert_eq!(plain.kruskal().factors[m], wrapped.kruskal().factors[m], "mode {m}");
        }
        assert_eq!(wrapped.name(), "Chaos(SNS+_RND)");
    }

    #[test]
    fn poison_tuple_panics_at_its_own_arrival() {
        let mut wrapped = ChaosCpd::new(engine(), ChaosConfig::default());
        let stream = tuples();
        wrapped.prefill_all(&stream[..40]).unwrap();
        wrapped.ingest_all(&stream[40..50]).unwrap();
        let mut batch = stream[50..60].to_vec();
        batch[4].value = POISON_VALUE;
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wrapped.ingest_all(&batch)));
        assert!(result.is_err(), "poison must panic");
    }

    #[test]
    fn capture_keeps_the_wrapper() {
        let mut wrapped = ChaosCpd::new(engine(), ChaosConfig::default());
        let stream = tuples();
        wrapped.prefill_all(&stream[..40]).unwrap();
        wrapped.ingest_all(&stream[40..80]).unwrap();
        let state = wrapped.snapshot().unwrap();
        assert!(matches!(state, EngineState::Chaos(_)));
        let mut restored = state.into_engine().unwrap();
        assert_eq!(restored.name(), "Chaos(SNS+_RND)");
        // The restored wrapper still trips on poison …
        let poison = StreamTuple::new([0u32, 0], POISON_VALUE, 90);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| restored.ingest(poison)));
        assert!(result.is_err(), "restored chaos wrapper must still trip");
        // … and a benign continuation stays bitwise-aligned.
        let mut again = wrapped.snapshot().unwrap().into_engine().unwrap();
        for tu in &stream[80..] {
            wrapped.ingest(*tu).unwrap();
            again.ingest(*tu).unwrap();
        }
        assert_eq!(wrapped.fitness().to_bits(), again.fitness().to_bits());
    }

    #[test]
    fn delay_slows_the_apply_path() {
        let mut wrapped =
            ChaosCpd::new(engine(), ChaosConfig { delay_micros: 200, ..Default::default() });
        let stream = tuples();
        let start = std::time::Instant::now();
        wrapped.prefill_all(&stream[..20]).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(4));
    }
}
