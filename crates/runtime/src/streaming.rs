//! The [`StreamingCpd`] trait: one interface over the continuous
//! SliceNStitch engine and the once-per-period baseline engines.

use crate::anomaly::AnomalySummary;
use crate::snapshot::EngineState;
use sns_baselines::{BaselineEngine, PeriodicCpd};
use sns_core::als::{AlsOptions, AlsResult};
use sns_core::engine::SnsEngine;
use sns_core::kruskal::KruskalTensor;
use sns_stream::{SnsError, StreamTuple};
use sns_tensor::SparseTensor;

/// What a batched ingestion accomplished: how many tuples went in and
/// how many factor updates they triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Tuples accepted (the whole batch, on success).
    pub accepted: usize,
    /// Factor updates applied (events for continuous engines, periods
    /// for baselines).
    pub updates: u64,
}

/// A continuously maintained CP decomposition of one sparse tensor
/// stream, independent of *when* the model updates (per event for
/// SliceNStitch, per period for the conventional baselines).
///
/// The trait is dyn-compatible: drivers hold `Box<dyn StreamingCpd>` and
/// never know which update rule runs behind it. The protocol every
/// implementation shares (the paper's §VI-A):
///
/// 1. [`prefill`](StreamingCpd::prefill) the first full window without
///    touching factors,
/// 2. [`warm_start`](StreamingCpd::warm_start) with batch ALS on that
///    window,
/// 3. [`ingest`](StreamingCpd::ingest) the live stream (factor updates
///    fire at each engine's own cadence),
/// 4. read [`fitness`](StreamingCpd::fitness) /
///    [`kruskal`](StreamingCpd::kruskal) at any point.
pub trait StreamingCpd {
    /// Ingests a tuple into the window **without** updating factors
    /// (initialization phase).
    fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()>;

    /// Runs batch ALS on the current window from the engine's current
    /// factors and installs the result (`sns_core::als::warm_start_from`).
    fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult;

    /// Ingests one stream tuple, applying every factor update it
    /// triggers. Returns the number of updates applied.
    fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize>;

    /// Advances the clock without an arrival; due boundary work still
    /// fires. Returns the number of updates applied.
    fn advance_to(&mut self, t: u64) -> usize;

    /// The current window tensor fitness is measured on.
    fn window(&self) -> &SparseTensor;

    /// The current factorization.
    fn kruskal(&self) -> &KruskalTensor;

    /// Fitness of the current factorization against the current window.
    fn fitness(&self) -> f64;

    /// True if the model hit non-finite values.
    fn diverged(&self) -> bool;

    /// Total factor updates applied since construction (events for
    /// continuous engines, periods for baselines).
    fn updates_applied(&self) -> u64;

    /// Model parameter count (`R · Σ N_m`, Fig. 1d).
    fn num_parameters(&self) -> usize;

    /// Display name matching the paper's figures.
    fn name(&self) -> String;

    /// Prefills a whole slice of tuples. On success all `tuples.len()`
    /// tuples were accepted.
    ///
    /// # Errors
    /// Short-circuits at the first failing tuple with
    /// [`SnsError::BatchAborted`], whose `accepted` field is the number
    /// of tuples actually applied before the failure (= the failing
    /// tuple's index). Accepted tuples **stay** in the window; the
    /// engine remains usable.
    fn prefill_all(&mut self, tuples: &[StreamTuple]) -> sns_stream::Result<usize> {
        for (i, tu) in tuples.iter().enumerate() {
            self.prefill(*tu).map_err(|e| e.aborted_at(i, 0))?;
        }
        Ok(tuples.len())
    }

    /// Ingests a whole slice of chronological tuples, applying every
    /// factor update the batch triggers. Default-implemented as a
    /// per-tuple loop; engines with a cheaper batch path (e.g.
    /// [`SnsEngine`]) override it to amortize per-tuple dispatch.
    ///
    /// # Composition invariant
    /// `ingest_all(a)` then `ingest_all(b)` must be bitwise equivalent
    /// to `ingest_all(a ++ b)`: batching is a dispatch amortization,
    /// never a numeric transformation. The pool's worker-side batch
    /// coalescing (`EnginePool`) relies on this to fuse queued batches
    /// into one engine call. Implementations must therefore keep the
    /// per-tuple update sequence — and with it any RNG draw order (the
    /// `_RND` families sample per update) — independent of batch
    /// boundaries. In particular, tuples landing in the same window
    /// unit must **not** be pre-accumulated into one delta before the
    /// factor update: float addition is non-associative and the
    /// updaters read the window mid-batch, so any such fusion would
    /// break bitwise reproducibility.
    ///
    /// # Errors
    /// Short-circuits at the first failing tuple with
    /// [`SnsError::BatchAborted`] carrying the accepted-tuple count and
    /// the updates they applied; the accepted prefix stays applied.
    fn ingest_all(&mut self, tuples: &[StreamTuple]) -> Result<BatchOutcome, SnsError> {
        let mut updates = 0u64;
        for (i, tu) in tuples.iter().enumerate() {
            match self.ingest(*tu) {
                Ok(n) => updates += n as u64,
                Err(e) => return Err(e.aborted_at(i, updates)),
            }
        }
        Ok(BatchOutcome { accepted: tuples.len(), updates })
    }

    /// Captures the engine's complete state for migration and durable
    /// checkpointing; a restored engine continues bitwise-identically.
    /// Every workspace engine family implements this (continuous,
    /// all four baselines, the anomaly decorator); the default is the
    /// **explicit opt-out** for external engines without a faithful
    /// capture path.
    fn snapshot(&self) -> Result<EngineState, SnsError> {
        Err(SnsError::SnapshotUnsupported { engine: self.name() })
    }

    /// Anomaly-scoring roll-up, if this engine scores its stream
    /// (see [`AnomalyCpd`](crate::anomaly::AnomalyCpd)). Plain engines
    /// report `None`; the pool copies the summary onto every
    /// [`StreamReport`](crate::pool::StreamReport).
    fn anomalies(&self) -> Option<AnomalySummary> {
        None
    }

    /// Reconstruction residual an arrival would produce against the
    /// engine's **current** model state — `|observed − predicted|`,
    /// where `observed` is the engine's current value at the cell the
    /// arrival lands in plus the arrival's value, and `predicted` is the
    /// current factorization's reconstruction of that cell. Read-only:
    /// scoring through this hook never perturbs the engine, which is
    /// what keeps [`AnomalyCpd`](crate::anomaly::AnomalyCpd) decoration
    /// bitwise-invisible.
    ///
    /// The default reads the newest time unit of
    /// [`window`](StreamingCpd::window) (where continuous-model arrivals
    /// land, S.1). Engines whose arrivals land elsewhere override it:
    /// the conventional model accumulates arrivals in a *pending* unit
    /// outside the window tensor, so [`BaselineEngine`] compares the
    /// pending accumulation against the reconstruction of the newest
    /// completed unit — the conventional model's freshest forecast of a
    /// period's total.
    ///
    /// The caller must pass a tuple that fits the window (coordinate
    /// order and bounds).
    fn arrival_residual(&self, tuple: &StreamTuple) -> f64 {
        let window = self.window();
        let newest = window.shape().dim(window.order() - 1) as u32 - 1;
        let coord = tuple.coords.extended(newest);
        (window.get(&coord) + tuple.value - self.kruskal().eval(&coord)).abs()
    }
}

impl StreamingCpd for SnsEngine {
    fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()> {
        SnsEngine::prefill(self, tuple)
    }

    fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult {
        SnsEngine::warm_start(self, opts)
    }

    fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
        SnsEngine::ingest(self, tuple)
    }

    fn advance_to(&mut self, t: u64) -> usize {
        SnsEngine::advance_to(self, t)
    }

    fn window(&self) -> &SparseTensor {
        SnsEngine::window(self)
    }

    fn kruskal(&self) -> &KruskalTensor {
        SnsEngine::kruskal(self)
    }

    fn fitness(&self) -> f64 {
        SnsEngine::fitness(self)
    }

    fn diverged(&self) -> bool {
        SnsEngine::diverged(self)
    }

    fn updates_applied(&self) -> u64 {
        SnsEngine::updates_applied(self)
    }

    fn num_parameters(&self) -> usize {
        SnsEngine::num_parameters(self)
    }

    fn name(&self) -> String {
        self.kind().name().to_string()
    }

    fn ingest_all(&mut self, tuples: &[StreamTuple]) -> Result<BatchOutcome, SnsError> {
        SnsEngine::ingest_all(self, tuples)
            .map(|updates| BatchOutcome { accepted: tuples.len(), updates })
    }

    fn snapshot(&self) -> Result<EngineState, SnsError> {
        crate::snapshot::StateCapture::capture(self)
    }
}

/// Periodic engines speak the same interface: an "update" is one
/// completed period, and `advance_to` flushes due periods.
impl<B: PeriodicCpd> StreamingCpd for BaselineEngine<B> {
    fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()> {
        BaselineEngine::prefill(self, tuple)
    }

    fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult {
        BaselineEngine::warm_start(self, opts)
    }

    fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
        BaselineEngine::ingest(self, tuple)
    }

    fn advance_to(&mut self, t: u64) -> usize {
        self.flush_to(t)
    }

    fn window(&self) -> &SparseTensor {
        BaselineEngine::window(self)
    }

    fn kruskal(&self) -> &KruskalTensor {
        self.algo().kruskal()
    }

    fn fitness(&self) -> f64 {
        BaselineEngine::fitness(self)
    }

    fn diverged(&self) -> bool {
        !self.algo().kruskal().is_finite()
    }

    fn updates_applied(&self) -> u64 {
        self.periods()
    }

    fn num_parameters(&self) -> usize {
        self.algo().kruskal().num_parameters()
    }

    fn name(&self) -> String {
        self.algo().name()
    }

    fn snapshot(&self) -> Result<EngineState, SnsError> {
        crate::snapshot::StateCapture::capture(self)
    }

    fn arrival_residual(&self, tuple: &StreamTuple) -> f64 {
        // Conventional model: the arrival accumulates in the pending
        // unit, which is not in the window tensor until its period
        // completes — compare the pending total against the
        // reconstruction of the newest (completed-unit) time row instead
        // of mixing last period's value with this period's delta.
        let window = BaselineEngine::window(self);
        let newest = window.shape().dim(window.order() - 1) as u32 - 1;
        let coord = tuple.coords.extended(newest);
        let observed = self.pending_value(&tuple.coords) + tuple.value;
        (observed - self.algo().kruskal().eval(&coord)).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_baselines::AlsPeriodic;
    use sns_core::config::{AlgorithmKind, SnsConfig};

    fn drive(engine: &mut dyn StreamingCpd) -> (f64, u64) {
        let tuples: Vec<StreamTuple> = (0..200u64)
            .map(|t| StreamTuple::new([(t % 5) as u32, (t % 4) as u32], 1.0, t))
            .collect();
        engine.prefill_all(&tuples[..100]).unwrap();
        engine.warm_start(&AlsOptions { max_iters: 15, ..Default::default() });
        for tu in &tuples[100..] {
            engine.ingest(*tu).unwrap();
        }
        engine.advance_to(400);
        (engine.fitness(), engine.updates_applied())
    }

    #[test]
    fn both_engine_families_speak_the_trait() {
        let config = SnsConfig { rank: 3, seed: 3, ..Default::default() };
        let mut sns: Box<dyn StreamingCpd> =
            Box::new(SnsEngine::new(&[5, 4], 4, 10, AlgorithmKind::PlusVec, &config));
        let (fit_c, updates_c) = drive(sns.as_mut());
        assert!(fit_c.is_finite());
        // Continuous: every tuple is at least one event.
        assert!(updates_c >= 100, "{updates_c} continuous updates");
        assert_eq!(sns.name(), "SNS+_VEC");
        assert_eq!(sns.num_parameters(), 3 * (5 + 4 + 4));

        let algo: Box<dyn PeriodicCpd> = Box::new(AlsPeriodic::new(&[5, 4, 4], 3, 2, 3));
        let mut base: Box<dyn StreamingCpd> = Box::new(BaselineEngine::new(&[5, 4], 4, 10, algo));
        let (fit_p, updates_p) = drive(base.as_mut());
        assert!(fit_p.is_finite());
        // Periodic: one update per completed period — far fewer.
        assert!(updates_p < updates_c, "{updates_p} vs {updates_c}");
        assert_eq!(base.name(), "ALS(2)");
        assert_eq!(base.num_parameters(), 3 * (5 + 4 + 4));
        assert!(!base.diverged());
    }

    #[test]
    fn out_of_order_errors_surface_through_the_trait() {
        let config = SnsConfig { rank: 2, seed: 4, ..Default::default() };
        let mut e: Box<dyn StreamingCpd> =
            Box::new(SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::Vec, &config));
        e.ingest(StreamTuple::new([0u32, 0], 1.0, 10)).unwrap();
        assert!(e.ingest(StreamTuple::new([0u32, 0], 1.0, 5)).is_err());
    }

    #[test]
    fn prefill_all_reports_how_far_it_got() {
        let config = SnsConfig { rank: 2, seed: 4, ..Default::default() };
        let mut e: Box<dyn StreamingCpd> =
            Box::new(SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::PlusVec, &config));
        let tuples = [
            StreamTuple::new([0u32, 0], 1.0, 1),
            StreamTuple::new([1u32, 1], 1.0, 2),
            StreamTuple::new([2u32, 2], 1.0, 3),
            StreamTuple::new([0u32, 1], 1.0, 1), // out of order
            StreamTuple::new([1u32, 2], 1.0, 9),
        ];
        let err = e.prefill_all(&tuples).unwrap_err();
        assert_eq!(err.accepted(), Some(3), "{err}");
        assert!(matches!(err.root_cause(), sns_stream::SnsError::OutOfOrder { .. }));
        // The accepted prefix stays in the window; prefill applies no
        // factor updates.
        assert_eq!(e.window().nnz(), 3);
        assert_eq!(e.updates_applied(), 0);
        // All-good batches still report the full count.
        assert_eq!(e.prefill_all(&[StreamTuple::new([1u32, 0], 1.0, 10)]).unwrap(), 1);
    }

    #[test]
    fn default_ingest_all_drives_baselines_and_reports_updates() {
        let algo: Box<dyn PeriodicCpd> = Box::new(AlsPeriodic::new(&[5, 4, 4], 3, 1, 3));
        let mut e: Box<dyn StreamingCpd> = Box::new(BaselineEngine::new(&[5, 4], 4, 10, algo));
        let tuples: Vec<StreamTuple> = (0..200u64)
            .map(|t| StreamTuple::new([(t % 5) as u32, (t % 4) as u32], 1.0, t))
            .collect();
        let outcome = e.ingest_all(&tuples).unwrap();
        assert_eq!(outcome.accepted, 200);
        assert_eq!(outcome.updates, e.updates_applied());
        assert!(outcome.updates > 0);
    }

    #[test]
    fn arrival_residual_reads_the_cell_an_arrival_lands_in() {
        // Continuous model: arrivals land in the newest window unit.
        let config = SnsConfig { rank: 2, seed: 6, ..Default::default() };
        let mut sns: Box<dyn StreamingCpd> =
            Box::new(SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::PlusVec, &config));
        sns.ingest(StreamTuple::new([1u32, 1], 2.0, 5)).unwrap();
        let coord = sns_tensor::Coord::new(&[1, 1, 2]);
        let expected = (sns.window().get(&coord) + 3.0 - sns.kruskal().eval(&coord)).abs();
        let got = sns.arrival_residual(&StreamTuple::new([1u32, 1], 3.0, 6));
        assert_eq!(got.to_bits(), expected.to_bits());

        // Conventional model: arrivals accumulate in the *pending* unit,
        // which is not in the window tensor — the residual must use the
        // pending value, not the newest completed unit's.
        let algo: Box<dyn PeriodicCpd> = Box::new(AlsPeriodic::new(&[3, 3, 3], 2, 1, 3));
        let mut base = BaselineEngine::new(&[3, 3], 3, 10, algo);
        base.ingest(StreamTuple::new([1u32, 1], 2.0, 5)).unwrap(); // pending, mid-period
        assert_eq!(StreamingCpd::window(&base).get(&coord), 0.0, "pending is not in the window");
        let predicted = base.algo().kruskal().eval(&coord);
        let got = StreamingCpd::arrival_residual(&base, &StreamTuple::new([1u32, 1], 3.0, 6));
        let expected = (2.0 + 3.0 - predicted).abs(); // pending 2.0 + arrival 3.0
        assert_eq!(got.to_bits(), expected.to_bits());
    }

    #[test]
    fn snapshot_is_supported_by_every_engine_family() {
        let config = SnsConfig { rank: 2, seed: 4, ..Default::default() };
        let sns: Box<dyn StreamingCpd> =
            Box::new(SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::PlusRnd, &config));
        assert!(matches!(sns.snapshot(), Ok(EngineState::Sns(_))));

        let algo: Box<dyn PeriodicCpd> = Box::new(AlsPeriodic::new(&[3, 3, 3], 2, 1, 3));
        let mut base: Box<dyn StreamingCpd> = Box::new(BaselineEngine::new(&[3, 3], 3, 10, algo));
        base.ingest(StreamTuple::new([1u32, 1], 2.0, 5)).unwrap();
        let state = base.snapshot().unwrap();
        assert!(matches!(state, EngineState::Baseline(_)));
        let restored = state.into_engine().unwrap();
        assert_eq!(restored.name(), "ALS(1)");
        // The pending (mid-period) accumulation came along.
        let tu = StreamTuple::new([1u32, 1], 1.0, 7);
        assert_eq!(restored.arrival_residual(&tu).to_bits(), base.arrival_residual(&tu).to_bits());
    }
}
