//! The [`StreamingCpd`] trait: one interface over the continuous
//! SliceNStitch engine and the once-per-period baseline engines.

use sns_baselines::{BaselineEngine, PeriodicCpd};
use sns_core::als::{AlsOptions, AlsResult};
use sns_core::engine::SnsEngine;
use sns_core::kruskal::KruskalTensor;
use sns_stream::StreamTuple;
use sns_tensor::SparseTensor;

/// A continuously maintained CP decomposition of one sparse tensor
/// stream, independent of *when* the model updates (per event for
/// SliceNStitch, per period for the conventional baselines).
///
/// The trait is dyn-compatible: drivers hold `Box<dyn StreamingCpd>` and
/// never know which update rule runs behind it. The protocol every
/// implementation shares (the paper's §VI-A):
///
/// 1. [`prefill`](StreamingCpd::prefill) the first full window without
///    touching factors,
/// 2. [`warm_start`](StreamingCpd::warm_start) with batch ALS on that
///    window,
/// 3. [`ingest`](StreamingCpd::ingest) the live stream (factor updates
///    fire at each engine's own cadence),
/// 4. read [`fitness`](StreamingCpd::fitness) /
///    [`kruskal`](StreamingCpd::kruskal) at any point.
pub trait StreamingCpd {
    /// Ingests a tuple into the window **without** updating factors
    /// (initialization phase).
    fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()>;

    /// Runs batch ALS on the current window from the engine's current
    /// factors and installs the result (`sns_core::als::warm_start_from`).
    fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult;

    /// Ingests one stream tuple, applying every factor update it
    /// triggers. Returns the number of updates applied.
    fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize>;

    /// Advances the clock without an arrival; due boundary work still
    /// fires. Returns the number of updates applied.
    fn advance_to(&mut self, t: u64) -> usize;

    /// The current window tensor fitness is measured on.
    fn window(&self) -> &SparseTensor;

    /// The current factorization.
    fn kruskal(&self) -> &KruskalTensor;

    /// Fitness of the current factorization against the current window.
    fn fitness(&self) -> f64;

    /// True if the model hit non-finite values.
    fn diverged(&self) -> bool;

    /// Total factor updates applied since construction (events for
    /// continuous engines, periods for baselines).
    fn updates_applied(&self) -> u64;

    /// Model parameter count (`R · Σ N_m`, Fig. 1d).
    fn num_parameters(&self) -> usize;

    /// Display name matching the paper's figures.
    fn name(&self) -> String;

    /// Prefills a whole slice of tuples, returning how many were
    /// accepted. Default-implemented so every engine shares the
    /// initialization loop instead of re-rolling it per driver.
    fn prefill_all(&mut self, tuples: &[StreamTuple]) -> sns_stream::Result<usize> {
        for tu in tuples {
            self.prefill(*tu)?;
        }
        Ok(tuples.len())
    }
}

impl StreamingCpd for SnsEngine {
    fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()> {
        SnsEngine::prefill(self, tuple)
    }

    fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult {
        SnsEngine::warm_start(self, opts)
    }

    fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
        SnsEngine::ingest(self, tuple)
    }

    fn advance_to(&mut self, t: u64) -> usize {
        SnsEngine::advance_to(self, t)
    }

    fn window(&self) -> &SparseTensor {
        SnsEngine::window(self)
    }

    fn kruskal(&self) -> &KruskalTensor {
        SnsEngine::kruskal(self)
    }

    fn fitness(&self) -> f64 {
        SnsEngine::fitness(self)
    }

    fn diverged(&self) -> bool {
        SnsEngine::diverged(self)
    }

    fn updates_applied(&self) -> u64 {
        SnsEngine::updates_applied(self)
    }

    fn num_parameters(&self) -> usize {
        SnsEngine::num_parameters(self)
    }

    fn name(&self) -> String {
        self.kind().name().to_string()
    }
}

/// Periodic engines speak the same interface: an "update" is one
/// completed period, and `advance_to` flushes due periods.
impl<B: PeriodicCpd> StreamingCpd for BaselineEngine<B> {
    fn prefill(&mut self, tuple: StreamTuple) -> sns_stream::Result<()> {
        BaselineEngine::prefill(self, tuple)
    }

    fn warm_start(&mut self, opts: &AlsOptions) -> AlsResult {
        BaselineEngine::warm_start(self, opts)
    }

    fn ingest(&mut self, tuple: StreamTuple) -> sns_stream::Result<usize> {
        BaselineEngine::ingest(self, tuple)
    }

    fn advance_to(&mut self, t: u64) -> usize {
        self.flush_to(t)
    }

    fn window(&self) -> &SparseTensor {
        BaselineEngine::window(self)
    }

    fn kruskal(&self) -> &KruskalTensor {
        self.algo().kruskal()
    }

    fn fitness(&self) -> f64 {
        BaselineEngine::fitness(self)
    }

    fn diverged(&self) -> bool {
        !self.algo().kruskal().is_finite()
    }

    fn updates_applied(&self) -> u64 {
        self.periods()
    }

    fn num_parameters(&self) -> usize {
        self.algo().kruskal().num_parameters()
    }

    fn name(&self) -> String {
        self.algo().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_baselines::AlsPeriodic;
    use sns_core::config::{AlgorithmKind, SnsConfig};

    fn drive(engine: &mut dyn StreamingCpd) -> (f64, u64) {
        let tuples: Vec<StreamTuple> = (0..200u64)
            .map(|t| StreamTuple::new([(t % 5) as u32, (t % 4) as u32], 1.0, t))
            .collect();
        engine.prefill_all(&tuples[..100]).unwrap();
        engine.warm_start(&AlsOptions { max_iters: 15, ..Default::default() });
        for tu in &tuples[100..] {
            engine.ingest(*tu).unwrap();
        }
        engine.advance_to(400);
        (engine.fitness(), engine.updates_applied())
    }

    #[test]
    fn both_engine_families_speak_the_trait() {
        let config = SnsConfig { rank: 3, seed: 3, ..Default::default() };
        let mut sns: Box<dyn StreamingCpd> =
            Box::new(SnsEngine::new(&[5, 4], 4, 10, AlgorithmKind::PlusVec, &config));
        let (fit_c, updates_c) = drive(sns.as_mut());
        assert!(fit_c.is_finite());
        // Continuous: every tuple is at least one event.
        assert!(updates_c >= 100, "{updates_c} continuous updates");
        assert_eq!(sns.name(), "SNS+_VEC");
        assert_eq!(sns.num_parameters(), 3 * (5 + 4 + 4));

        let algo: Box<dyn PeriodicCpd> = Box::new(AlsPeriodic::new(&[5, 4, 4], 3, 2, 3));
        let mut base: Box<dyn StreamingCpd> = Box::new(BaselineEngine::new(&[5, 4], 4, 10, algo));
        let (fit_p, updates_p) = drive(base.as_mut());
        assert!(fit_p.is_finite());
        // Periodic: one update per completed period — far fewer.
        assert!(updates_p < updates_c, "{updates_p} vs {updates_c}");
        assert_eq!(base.name(), "ALS(2)");
        assert_eq!(base.num_parameters(), 3 * (5 + 4 + 4));
        assert!(!base.diverged());
    }

    #[test]
    fn out_of_order_errors_surface_through_the_trait() {
        let config = SnsConfig { rank: 2, seed: 4, ..Default::default() };
        let mut e: Box<dyn StreamingCpd> =
            Box::new(SnsEngine::new(&[3, 3], 3, 10, AlgorithmKind::Vec, &config));
        e.ingest(StreamTuple::new([0u32, 0], 1.0, 10)).unwrap();
        assert!(e.ingest(StreamTuple::new([0u32, 0], 1.0, 5)).is_err());
    }
}
