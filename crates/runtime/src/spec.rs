//! Declarative engine construction: [`EngineSpec`] describes *what* to
//! build; the runtime decides *where* (which worker thread) and *with
//! which seed*.
//!
//! The pool used to take opaque `FnOnce(u64) -> Box<dyn StreamingCpd>`
//! factories, which could not be inspected, compared, logged, or shipped
//! alongside a snapshot. A spec is plain data: the worker materializes
//! the engine with [`EngineSpec::build`], and the same spec + the same
//! seed always produce bitwise-identical engines — the property both the
//! pool's determinism contract and snapshot restoration rely on.

use crate::anomaly::{AnomalyConfig, AnomalyCpd};
use crate::chaos::{ChaosConfig, ChaosCpd};
use crate::streaming::StreamingCpd;
use sns_baselines::{AlsPeriodic, BaselineEngine, CpStream, NeCpd, OnlineScp, PeriodicCpd};
use sns_core::config::{AlgorithmKind, Precision, SnsConfig};
use sns_core::engine::SnsEngine;

/// Which conventional once-per-period baseline to run behind a
/// [`BaselineEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaselineKind {
    /// Periodic warm-started batch ALS with the given sweep count.
    AlsPeriodic {
        /// ALS sweeps per period.
        sweeps: usize,
    },
    /// Windowed OnlineSCP.
    OnlineScp,
    /// Windowed CP-stream.
    CpStream {
        /// Forgetting factor `μ`.
        decay: f64,
        /// Inner iterations per period.
        iters: usize,
    },
    /// Windowed NeCPD with the given epoch count.
    NeCpd {
        /// SGD epochs per period.
        epochs: usize,
    },
}

/// A declarative description of one stream's engine: tensor shape,
/// window geometry, algorithm, and hyperparameters — everything a worker
/// needs to rebuild the engine deterministically from a seed.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// A continuous SliceNStitch engine ([`SnsEngine`]).
    Sns {
        /// Categorical mode lengths `N₁,…,N_{M−1}`.
        base_dims: Vec<usize>,
        /// Window length `W`.
        window: usize,
        /// Period `T`.
        period: u64,
        /// Which per-event updater to run.
        kind: AlgorithmKind,
        /// CP rank `R`.
        rank: usize,
        /// Sampling threshold `θ` (RND variants).
        theta: usize,
        /// Clipping bound `η` (SNS⁺ variants).
        eta: f64,
        /// Scale of the random factor initialization.
        init_scale: f64,
        /// Factor-storage precision profile.
        precision: Precision,
        /// Fixed seed; `None` lets the runtime supply one (the pool's
        /// deterministic per-stream seed).
        seed: Option<u64>,
    },
    /// A conventional once-per-period baseline ([`BaselineEngine`]).
    Baseline {
        /// Categorical mode lengths `N₁,…,N_{M−1}`.
        base_dims: Vec<usize>,
        /// Window length `W`.
        window: usize,
        /// Period `T`.
        period: u64,
        /// CP rank `R`.
        rank: usize,
        /// Which baseline algorithm to wrap.
        algo: BaselineKind,
        /// Fixed seed; `None` lets the runtime supply one.
        seed: Option<u64>,
    },
    /// An anomaly-scoring decorator ([`AnomalyCpd`]) around another spec.
    /// Declarative, so pool workers can build decorated engines on their
    /// own threads; construct with [`EngineSpec::with_anomaly`].
    Anomaly {
        /// The engine being decorated.
        inner: Box<EngineSpec>,
        /// Detector threshold and retention.
        config: AnomalyConfig,
    },
    /// A fault-injecting chaos decorator ([`ChaosCpd`]) around another
    /// spec — deterministic poison panics and apply-path delays for
    /// soak-testing quarantine and backpressure; construct with
    /// [`EngineSpec::with_chaos`].
    Chaos {
        /// The engine being decorated.
        inner: Box<EngineSpec>,
        /// Poison sentinel and per-tuple delay.
        config: ChaosConfig,
    },
}

impl EngineSpec {
    /// Spec for a continuous SliceNStitch engine. The config's `seed` is
    /// **not** captured — the runtime supplies one at build time; use
    /// [`EngineSpec::with_seed`] to pin it instead.
    pub fn sns(
        base_dims: &[usize],
        window: usize,
        period: u64,
        kind: AlgorithmKind,
        config: &SnsConfig,
    ) -> Self {
        EngineSpec::Sns {
            base_dims: base_dims.to_vec(),
            window,
            period,
            kind,
            rank: config.rank,
            theta: config.theta,
            eta: config.eta,
            init_scale: config.init_scale,
            precision: config.precision,
            seed: None,
        }
    }

    /// Spec for a conventional once-per-period baseline engine.
    pub fn baseline(
        base_dims: &[usize],
        window: usize,
        period: u64,
        rank: usize,
        algo: BaselineKind,
    ) -> Self {
        EngineSpec::Baseline {
            base_dims: base_dims.to_vec(),
            window,
            period,
            rank,
            algo,
            seed: None,
        }
    }

    /// Wraps this spec in an anomaly-scoring decorator: the built engine
    /// becomes an [`AnomalyCpd`] around whatever this spec describes.
    /// Decoration never perturbs the wrapped engine's factors.
    pub fn with_anomaly(self, config: AnomalyConfig) -> Self {
        EngineSpec::Anomaly { inner: Box::new(self), config }
    }

    /// Wraps this spec in a fault-injecting chaos decorator: the built
    /// engine becomes a [`ChaosCpd`] around whatever this spec
    /// describes. Benign tuples are untouched (bitwise).
    pub fn with_chaos(self, config: ChaosConfig) -> Self {
        EngineSpec::Chaos { inner: Box::new(self), config }
    }

    /// Pins the seed, overriding whatever the runtime would supply.
    pub fn with_seed(mut self, pinned: u64) -> Self {
        self.pin_seed(pinned);
        self
    }

    fn pin_seed(&mut self, pinned: u64) {
        match self {
            EngineSpec::Sns { seed, .. } | EngineSpec::Baseline { seed, .. } => {
                *seed = Some(pinned);
            }
            EngineSpec::Anomaly { inner, .. } | EngineSpec::Chaos { inner, .. } => {
                inner.pin_seed(pinned)
            }
        }
    }

    /// The seed a build with `fallback` would actually use.
    pub fn effective_seed(&self, fallback: u64) -> u64 {
        match self {
            EngineSpec::Sns { seed, .. } | EngineSpec::Baseline { seed, .. } => {
                seed.unwrap_or(fallback)
            }
            EngineSpec::Anomaly { inner, .. } | EngineSpec::Chaos { inner, .. } => {
                inner.effective_seed(fallback)
            }
        }
    }

    /// Materializes the engine. `fallback_seed` is used unless the spec
    /// pins its own; same spec + same seed ⇒ bitwise-identical engines.
    ///
    /// # Panics
    /// Propagates constructor panics (e.g. `window == 0`); the pool
    /// catches these on the worker and reports
    /// [`SnsError::EngineBuildFailed`](sns_error::SnsError::EngineBuildFailed).
    pub fn build(&self, fallback_seed: u64) -> Box<dyn StreamingCpd> {
        let seed = self.effective_seed(fallback_seed);
        match self {
            EngineSpec::Sns {
                base_dims,
                window,
                period,
                kind,
                rank,
                theta,
                eta,
                init_scale,
                precision,
                ..
            } => {
                let config = SnsConfig {
                    rank: *rank,
                    theta: *theta,
                    eta: *eta,
                    init_scale: *init_scale,
                    seed,
                    precision: *precision,
                };
                Box::new(SnsEngine::new(base_dims, *window, *period, *kind, &config))
            }
            EngineSpec::Baseline { base_dims, window, period, rank, algo, .. } => {
                let mut dims = base_dims.clone();
                dims.push(*window);
                let algo: Box<dyn PeriodicCpd> = match *algo {
                    BaselineKind::AlsPeriodic { sweeps } => {
                        Box::new(AlsPeriodic::new(&dims, *rank, sweeps, seed))
                    }
                    BaselineKind::OnlineScp => Box::new(OnlineScp::new(&dims, *rank, seed)),
                    BaselineKind::CpStream { decay, iters } => {
                        Box::new(CpStream::new(&dims, *rank, decay, iters, seed))
                    }
                    BaselineKind::NeCpd { epochs } => {
                        Box::new(NeCpd::new(&dims, *rank, epochs, seed))
                    }
                };
                Box::new(BaselineEngine::new(base_dims, *window, *period, algo))
            }
            EngineSpec::Anomaly { inner, config } => {
                Box::new(AnomalyCpd::new(inner.build(fallback_seed), *config))
            }
            EngineSpec::Chaos { inner, config } => {
                Box::new(ChaosCpd::new(inner.build(fallback_seed), *config))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_stream::StreamTuple;

    fn drive(mut e: Box<dyn StreamingCpd>) -> (String, f64, u64) {
        for t in 0..80u64 {
            e.ingest(StreamTuple::new([(t % 4) as u32, (t % 3) as u32], 1.0, t)).unwrap();
        }
        (e.name(), e.fitness(), e.updates_applied())
    }

    #[test]
    fn same_spec_same_seed_is_bitwise_deterministic() {
        let spec = EngineSpec::sns(
            &[4, 3],
            3,
            10,
            AlgorithmKind::PlusRnd,
            &SnsConfig { rank: 2, theta: 2, ..Default::default() },
        );
        let (na, fa, ua) = drive(spec.build(42));
        let (nb, fb, ub) = drive(spec.build(42));
        assert_eq!(na, nb);
        assert_eq!(fa.to_bits(), fb.to_bits());
        assert_eq!(ua, ub);
    }

    #[test]
    fn pinned_seed_wins_over_fallback() {
        let spec = EngineSpec::sns(
            &[4, 3],
            3,
            10,
            AlgorithmKind::PlusRnd,
            &SnsConfig { rank: 2, theta: 2, ..Default::default() },
        )
        .with_seed(7);
        assert_eq!(spec.effective_seed(999), 7);
        let (_, fa, _) = drive(spec.build(1));
        let (_, fb, _) = drive(spec.build(2));
        assert_eq!(fa.to_bits(), fb.to_bits(), "fallback must be ignored once pinned");
    }

    #[test]
    fn anomaly_spec_builds_a_transparent_decorator() {
        let plain = EngineSpec::sns(
            &[4, 3],
            3,
            10,
            AlgorithmKind::PlusRnd,
            &SnsConfig { rank: 2, theta: 2, ..Default::default() },
        );
        let wrapped = plain.clone().with_anomaly(AnomalyConfig::default());
        assert_eq!(wrapped.effective_seed(9), plain.effective_seed(9));
        let pinned = wrapped.clone().with_seed(7);
        assert_eq!(pinned.effective_seed(999), 7);
        let (np, fp, up) = drive(plain.build(42));
        let (nw, fw, uw) = drive(wrapped.build(42));
        assert_eq!(nw, format!("Anomaly({np})"));
        assert_eq!(fp.to_bits(), fw.to_bits(), "decoration must not perturb the factors");
        assert_eq!(up, uw);
        let e = wrapped.build(42);
        assert!(e.anomalies().is_some());
    }

    #[test]
    fn chaos_spec_builds_a_transparent_decorator() {
        let plain = EngineSpec::sns(
            &[4, 3],
            3,
            10,
            AlgorithmKind::PlusRnd,
            &SnsConfig { rank: 2, theta: 2, ..Default::default() },
        );
        let wrapped = plain.clone().with_chaos(crate::chaos::ChaosConfig::default());
        assert_eq!(wrapped.effective_seed(9), plain.effective_seed(9));
        assert_eq!(wrapped.clone().with_seed(7).effective_seed(999), 7);
        let (np, fp, up) = drive(plain.build(42));
        let (nw, fw, uw) = drive(wrapped.build(42));
        assert_eq!(nw, format!("Chaos({np})"));
        assert_eq!(fp.to_bits(), fw.to_bits(), "benign tuples must pass through bitwise");
        assert_eq!(up, uw);
    }

    #[test]
    fn baseline_specs_build_every_kind() {
        for (algo, name) in [
            (BaselineKind::AlsPeriodic { sweeps: 1 }, "ALS(1)"),
            (BaselineKind::OnlineScp, "OnlineSCP"),
            (BaselineKind::CpStream { decay: 0.99, iters: 3 }, "CP-stream"),
            (BaselineKind::NeCpd { epochs: 1 }, "NeCPD(1)"),
        ] {
            let spec = EngineSpec::baseline(&[4, 3], 3, 10, 2, algo);
            let (n, f, _) = drive(spec.build(5));
            assert_eq!(n, name);
            assert!(f.is_finite() || f.is_nan(), "{name} produced {f}");
        }
    }
}
