//! The pool's write-ahead-log hook: a sink for accepted stream
//! operations.
//!
//! Durability in this workspace is layered: the runtime knows *what*
//! happened to each stream (which batches were accepted, in which
//! order), while `sns-codec` knows how to make that durable (WAL
//! segments, checkpoints). [`BatchJournal`] is the seam between the two
//! — a pool configured with a journal ([`PoolConfig::journal`]) calls
//! [`BatchJournal::record`] from the shard worker **after** every
//! acknowledged state-changing command, and the sink decides framing,
//! buffering, and fsync policy on its own.
//!
//! ## Contract
//!
//! - `record` is called on the shard worker thread, after the client's
//!   ack has been sent: the client-visible hot path never waits on the
//!   sink, but a slow sink does occupy the worker (pick the fsync
//!   policy accordingly). Calls for one stream arrive in exactly the
//!   order the engine applied the operations.
//! - `record` is infallible by signature. A sink that hits an I/O error
//!   must swallow it and surface it out of band (a sticky error the
//!   operator polls) — the alternative, failing live traffic because
//!   the *redundancy* layer is sick, is the wrong trade for this
//!   runtime.
//! - Only operations that reached the engine are journaled: batches
//!   diverted to the dead-letter queue, rejected while quarantined, or
//!   rolled back after a panic never call `record` (they did not change
//!   state). A batch that failed part-way with a typed error **is**
//!   journaled in full — the engine applied its accepted prefix, and
//!   deterministic replay of the same tuples reproduces exactly that
//!   prefix (and the same error).
//!
//! ## Sequencing
//!
//! Each journaled operation carries the stream's new **WAL sequence
//! number**: a cumulative count of journaled units (one per tuple for
//! prefill/ingest, one per clock/warm-start op). Counting units rather
//! than batches makes the sequence independent of batch geometry — two
//! runs that feed the same tuple stream through different batch splits
//! agree on every sequence number. Snapshots capture the counter
//! ([`EngineSnapshot::wal_seq`](crate::EngineSnapshot)), so recovery is
//! "restore snapshot, replay journal records with `seq >` the
//! snapshot's".
//!
//! [`PoolConfig::journal`]: crate::PoolConfig

use sns_core::als::AlsOptions;
use sns_stream::StreamTuple;

/// One journaled stream operation, borrowed from the worker's command.
#[derive(Debug, Clone, Copy)]
pub enum JournalOp<'a> {
    /// Tuples loaded into the window without factor updates.
    Prefill(&'a [StreamTuple]),
    /// Tuples ingested live (with factor updates).
    Ingest(&'a [StreamTuple]),
    /// The stream clock was advanced to this time.
    AdvanceTo(u64),
    /// A batch ALS warm start ran with these options.
    WarmStart(&'a AlsOptions),
}

impl JournalOp<'_> {
    /// How many WAL sequence units this operation advances the stream
    /// by: one per tuple for batches, one for clock/warm-start ops.
    pub fn units(&self) -> u64 {
        match self {
            JournalOp::Prefill(tuples) | JournalOp::Ingest(tuples) => tuples.len() as u64,
            JournalOp::AdvanceTo(_) | JournalOp::WarmStart(_) => 1,
        }
    }

    /// Stable lowercase label of the operation kind.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalOp::Prefill(_) => "prefill",
            JournalOp::Ingest(_) => "ingest",
            JournalOp::AdvanceTo(_) => "advance_to",
            JournalOp::WarmStart(_) => "warm_start",
        }
    }
}

/// One record handed to a [`BatchJournal`]: which stream did what, with
/// its post-operation WAL sequence number and the session ticket that
/// acknowledged it.
#[derive(Debug, Clone, Copy)]
pub struct JournalEntry<'a> {
    /// The stream the operation was applied to.
    pub stream_id: u64,
    /// The stream's WAL sequence **after** this operation (cumulative
    /// journaled units; see the module docs).
    pub seq: u64,
    /// The session ticket the operation was acknowledged under
    /// (diagnostic — tickets restart per session, `seq` is the replay
    /// cursor).
    pub ticket: u64,
    /// The operation itself.
    pub op: JournalOp<'a>,
}

/// A sink for accepted stream operations — the write-ahead-log hook the
/// pool's shard workers call after each ack. See the module docs for
/// the calling contract.
pub trait BatchJournal: Send + Sync {
    /// Records one accepted operation. Must not panic; must not fail
    /// (sticky-error internally instead).
    fn record(&self, entry: JournalEntry<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_count_tuples_for_batches_and_one_for_clock_ops() {
        let tuples = vec![
            StreamTuple::new([0u32, 0], 1.0, 0),
            StreamTuple::new([1u32, 1], 2.0, 1),
            StreamTuple::new([2u32, 2], 3.0, 2),
        ];
        assert_eq!(JournalOp::Prefill(&tuples).units(), 3);
        assert_eq!(JournalOp::Ingest(&tuples[..1]).units(), 1);
        assert_eq!(JournalOp::AdvanceTo(99).units(), 1);
        assert_eq!(JournalOp::WarmStart(&AlsOptions::default()).units(), 1);
    }

    #[test]
    fn kinds_are_distinct() {
        let opts = AlsOptions::default();
        let ops = [
            JournalOp::Prefill(&[]),
            JournalOp::Ingest(&[]),
            JournalOp::AdvanceTo(0),
            JournalOp::WarmStart(&opts),
        ];
        let mut kinds: Vec<_> = ops.iter().map(|o| o.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 4);
    }
}
