//! Throughput bench: events/second per method at the Table-III default
//! configuration (synthetic NYC-Taxi-like stream, `R = 20`, `W = 10`,
//! `T = 3600`, `θ = 20`), emitting a machine-readable `BENCH_*.json` —
//! plus the pooled multi-rank `sweep` scenario.
//!
//! ```text
//! cargo run --release -p sns-bench --bin bench -- --smoke --tag pr6
//! cargo run --release -p sns-bench --bin bench -- resources --smoke --tag pr6
//! cargo run --release -p sns-bench --bin bench -- sweep --smoke --out SWEEP_pr4.json
//! cargo run --release -p sns-bench --bin bench -- recover --smoke --out RECOVER_pr5.json
//! ```
//!
//! Throughput flags:
//! - `--smoke`          quarter-length stream (CI-sized, < 1 min);
//! - `--tag <tag>`      artifact tag (default `pr6`); the default output
//!   path is derived from it (`BENCH_<tag>.json`);
//! - `--out <path>`     JSON output path (overrides the tag-derived name);
//! - `--enforce-floor`  exit non-zero if the continuous SNS reference
//!   method (SNS⁺_RND) falls below [`FLOOR_EVENTS_PER_SEC`], or if
//!   SNS⁺_VEC regresses past its PR-3 per-event baseline
//!   ([`VEC_BASELINE_MICROS`]);
//! - `--runs <n>`       repetitions per method, best run reported
//!   (default 3; measurement is wall-clock and shared machines are
//!   noisy, so the floor check uses the best of `n`).
//!
//! `resources` subcommand (same `--smoke`/`--tag`/`--out`/`--runs`
//! flags, default output `RESOURCES_<tag>.json`): one timed run per
//! method recording steady-state allocation traffic (a counting global
//! allocator — bytes and calls per event on the measured ingest path),
//! process peak RSS (`VmHWM`), and CPU utilization (`/proc/self/stat`
//! utime+stime over wall time). With `--pooled`, an extra row drives
//! the same reference stream through a one-shard [`sns_runtime`]
//! `EnginePool` session (pipelined submits, recycled batch buffers) and
//! the JSON gains a `pooled_guard`: with `--enforce-floor` the run
//! exits non-zero unless the pooled path stays at or under
//! [`POOLED_ALLOCS_PER_EVENT_MAX`] allocations per event — the
//! zero-alloc command-pipeline claim, held to measurement.
//!
//! `fleet` subcommand flags (default output `BENCH_<tag>.json`, tag
//! default `pr10`):
//! - `--shards <a,b,c>`  worker-shard grid (default `1,2,4`);
//! - `--streams <n>`     concurrent pooled streams per cell (default 8);
//! - `--batch <n>`       tuples per pipelined batch (default 256);
//! - `--smoke`           quarter-length shared trace (CI-sized);
//! - `--tag <tag>` / `--out <path>`  artifact naming;
//! - `--enforce-floor`   exit non-zero if the best cell's aggregate
//!   throughput misses the 60k floor, or — on hosts with ≥ 4 cores —
//!   if the widest cell fails the 2× scaling requirement over one
//!   shard (advisory elsewhere; the JSON records `enforced`).
//!
//! `sweep` subcommand flags:
//! - `--ranks <a,b,c>`  CP ranks to sweep (default `5,10,20`);
//! - `--shards <n>`     pool worker shards (default 4);
//! - `--smoke`          fifth-length trace (CI-sized);
//! - `--out <path>`     JSON output path (default `SWEEP_pr4.json`);
//! - `--trace-for rank=R,method=M,path=P`  replay the CSV at `P` in the
//!   `(R, M)` cell instead of the shared synthetic trace (repeatable;
//!   opens dataset×rank sweeps).
//!
//! `soak` subcommand flags (default output `METRICS_<tag>.json`, tag
//! default `pr7`):
//! - `--streams <n>`    concurrent pooled streams (default 240);
//! - `--shards <n>`     pool worker shards (default 4);
//! - `--smoke`          third-length traces (CI-sized);
//! - `--tag <tag>` / `--out <path>`  artifact naming.
//!   Exits non-zero unless the chaos fleet survives: zero stream
//!   deaths, every quarantined batch replayed **byte-identically**
//!   after repair, every stream present in the metrics dump.
//!
//! `recover` subcommand flags:
//! - `--shards <n>`     pool worker shards (default 4);
//! - `--smoke`          quarter-length trace (CI-sized);
//! - `--wal`            WAL mode: per-stream journal + background
//!   checkpoint daemon during the doomed run; recovery replays the
//!   bounded journal tail on top of the newest delta checkpoint (see
//!   `docs/DURABILITY.md`);
//! - `--dir <path>`     checkpoint directory (default
//!   `recover-checkpoint`; the manifest is left behind for artifacts);
//! - `--out <path>`     JSON output path (default `RECOVER_pr5.json`,
//!   or `RECOVER_pr8.json` with `--wal`).
//!   Exits non-zero unless every recovered stream is **byte-identical**
//!   to the uninterrupted reference run (and, with `--wal`, the replay
//!   was bounded: more than zero units yet fewer than the full journal).
//!
//! All JSON schemas are documented in the README.

use sns_bench::experiments::fleet::{run_fleet, FleetConfig, AGGREGATE_FLOOR_EVENTS_PER_SEC};
use sns_bench::experiments::recover::{run_recover, RecoverConfig};
use sns_bench::experiments::soak::{run_soak, SoakConfig};
use sns_bench::experiments::sweep::{run_sweep, SweepConfig, TraceOverride};
use sns_bench::runner::{split_prefill, ExperimentParams};
use sns_bench::Method;
use sns_core::als::AlsOptions;
use sns_core::config::{AlgorithmKind, SnsConfig};
use sns_data::{generate, nytaxi_like};
use sns_runtime::{EnginePool, EngineSpec, PoolConfig, QuarantinePolicy, SnsError};
use sns_stream::StreamTuple;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Counting wrapper around the system allocator — bench-binary only.
/// Two relaxed atomic adds per allocation; the counters stay honest
/// under the scoped-thread kernels and cost nothing measurable against
/// an actual heap allocation.
struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counters never influence
// the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        ALLOC_CALLS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        ALLOC_CALLS.fetch_add(1, Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only the growth: a shrinking realloc allocates nothing.
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        ALLOC_CALLS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Snapshot of the allocation counters.
fn alloc_counters() -> (u64, u64) {
    (ALLOC_BYTES.load(Relaxed), ALLOC_CALLS.load(Relaxed))
}

/// Peak resident set size (`VmHWM`) in kilobytes from
/// `/proc/self/status`, or `None` off Linux / on parse failure.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Cumulative process CPU time (user + system) in seconds from
/// `/proc/self/stat`, or `None` off Linux. Fields 14/15 are utime and
/// stime in clock ticks; `USER_HZ` is 100 on every mainstream Linux.
fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The command name (field 2) may contain spaces; skip past its
    // closing paren before splitting.
    let rest = &stat[stat.rfind(')')? + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Checked-in floor for the continuous SNS reference method (SNS⁺_RND,
/// the paper's recommended variant) in events per second. Ratcheted
/// PR-3's 30k to 60k after the wave-2 kernel work (blocked fiber
/// MTTKRP, interleaved mirror, fused sampled-residual pass, cheap
/// uniform draws): measured ~110–152k ev/s on a single weak shared
/// core, so the floor keeps ~2× headroom for CI hardware variance while
/// still catching any genuine hot-path regression.
pub const FLOOR_EVENTS_PER_SEC: f64 = 60_000.0;

/// Measured SNS⁺_VEC per-event latency ceiling (µs) on the reference
/// machine. `--enforce-floor` additionally fails if SNS⁺_VEC's best run
/// is slower than this — a no-regression guard on the pure exact-path
/// kernels, which the 60k floor (on the sampled reference method) would
/// not catch alone. Wave 3 ratchets PR-3's 5.7µs down to 4.5µs: wave 2
/// measures ~3.5–4.9µs best-of-runs, and the floor check reports the
/// best of `--runs`, so 4.5µs still leaves noise headroom over the
/// observed best while banking the wave-2 kernel wins.
pub const VEC_BASELINE_MICROS: f64 = 4.5;

/// Allocation budget for the pooled resources row (`--pooled`):
/// allocations per acknowledged factor update on the measured pipelined
/// ingest path. The freelist recycles batch buffers and the reply
/// channel amortizes its blocks, so steady state measures well under
/// this; anything above it means the zero-alloc command pipeline
/// regressed.
pub const POOLED_ALLOCS_PER_EVENT_MAX: f64 = 0.1;

struct MethodResult {
    name: String,
    tuples: usize,
    updates: u64,
    seconds: f64,
    events_per_sec: f64,
    tuples_per_sec: f64,
    final_fitness: f64,
    diverged: bool,
}

/// Prefill + warm start outside the clock, then time the batched ingest
/// of the measured stream (the same `ingest_all` path the pooled runtime
/// drives). Returns the best of `runs` repetitions.
fn run_method(
    method: Method,
    params: &ExperimentParams,
    stream: &[StreamTuple],
    runs: usize,
) -> MethodResult {
    let cfg = sns_bench::RunConfig {
        als: AlsOptions { max_iters: 10, tol: 1e-3, ..Default::default() },
        ..Default::default()
    };
    let (prefill, measured) = split_prefill(params, stream);
    let mut best: Option<MethodResult> = None;
    for _ in 0..runs.max(1) {
        let mut engine = method.build(params, &cfg);
        engine.prefill_all(prefill).expect("chronological stream");
        engine.warm_start(&cfg.als);
        let start = Instant::now();
        let outcome = engine.ingest_all(measured).expect("chronological stream");
        let seconds = start.elapsed().as_secs_f64();
        let updates = outcome.updates;
        let result = MethodResult {
            name: method.name(),
            tuples: measured.len(),
            updates,
            seconds,
            events_per_sec: updates as f64 / seconds,
            tuples_per_sec: measured.len() as f64 / seconds,
            final_fitness: engine.fitness(),
            diverged: engine.diverged(),
        };
        if best.as_ref().is_none_or(|b| result.seconds < b.seconds) {
            best = Some(result);
        }
    }
    best.expect("runs >= 1")
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn json_opt_u64(x: Option<u64>) -> String {
    x.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// Shared CLI plumbing: `--tag` (default `pr6`) and the `--out` override
/// for a `<PREFIX>_<tag>.json` artifact.
fn tagged_out_path(args: &[String], prefix: &str) -> String {
    let tag = args
        .iter()
        .position(|a| a == "--tag")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "pr6".to_string());
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{prefix}_{tag}.json"))
}

struct ResourceResult {
    name: String,
    updates: u64,
    seconds: f64,
    events_per_sec: f64,
    bytes_allocated: u64,
    alloc_calls: u64,
    bytes_per_event: f64,
    allocs_per_event: f64,
    cpu_percent: Option<f64>,
    peak_rss_kb_after: Option<u64>,
}

/// The `--pooled` resources row: the reference method (SNS⁺_RND at the
/// Table-III configuration) driven through a one-shard [`EnginePool`]
/// session with pipelined submits — the same command pipeline the fleet
/// bench exercises, measured by the same counting global allocator. The
/// counters are process-wide, so the shard worker's allocations count
/// too; the freelist has to actually work for this row to stay under
/// [`POOLED_ALLOCS_PER_EVENT_MAX`].
fn run_pooled_resources(params: &ExperimentParams, stream: &[StreamTuple]) -> ResourceResult {
    const BATCH: usize = 512;
    let cfg = sns_bench::RunConfig {
        als: AlsOptions { max_iters: 10, tol: 1e-3, ..Default::default() },
        ..Default::default()
    };
    let (prefill, measured) = split_prefill(params, stream);
    let pool = EnginePool::new(PoolConfig {
        shards: 1,
        base_seed: 42,
        queue_depth: 64,
        bus_capacity: 1 << 12,
        quarantine: QuarantinePolicy::Disabled,
        ..Default::default()
    });
    let spec = EngineSpec::sns(
        &params.base_dims,
        params.window,
        params.period,
        AlgorithmKind::PlusRnd,
        &SnsConfig {
            rank: params.rank,
            theta: params.theta,
            eta: params.eta,
            ..Default::default()
        },
    );
    let mut session = pool.open(0, spec).expect("open pooled stream");
    for chunk in prefill.chunks(4096) {
        let _ = session.prefill_batch(chunk).expect("chronological stream");
    }
    let _ = session.warm_start(&cfg.als).expect("warm start");
    // One pipelined warmup pass is already behind us (prefill batches
    // recycle through the same freelist), so the measured window sees
    // steady state from its first batch.
    let cpu_before = cpu_seconds();
    let (bytes_before, calls_before) = alloc_counters();
    let start = Instant::now();
    let mut updates = 0u64;
    for chunk in measured.chunks(BATCH) {
        match session.try_ingest_batch(chunk) {
            Ok(_ticket) => {}
            Err(SnsError::Backpressure { .. }) => {
                if let Some(receipt) = session.recv_receipt() {
                    updates += receipt.expect("pooled ingest").updates;
                }
                updates += session.ingest_batch(chunk).expect("pooled ingest").updates;
            }
            Err(e) => panic!("pooled ingest failed: {e}"),
        }
    }
    while let Some(receipt) = session.recv_receipt() {
        updates += receipt.expect("pooled ingest").updates;
    }
    let seconds = start.elapsed().as_secs_f64();
    let (bytes_after, calls_after) = alloc_counters();
    let cpu_after = cpu_seconds();
    drop(session);
    pool.join();
    let bytes = bytes_after - bytes_before;
    let calls = calls_after - calls_before;
    ResourceResult {
        name: "SNS+_RND@pool".to_string(),
        updates,
        seconds,
        events_per_sec: updates as f64 / seconds.max(1e-9),
        bytes_allocated: bytes,
        alloc_calls: calls,
        bytes_per_event: bytes as f64 / updates.max(1) as f64,
        allocs_per_event: calls as f64 / updates.max(1) as f64,
        cpu_percent: cpu_before.zip(cpu_after).map(|(b, a)| 100.0 * (a - b) / seconds.max(1e-9)),
        peak_rss_kb_after: peak_rss_kb(),
    }
}

/// `bench resources`: one timed run per method, recording allocation
/// traffic on the measured ingest path, CPU utilization, and process
/// peak RSS. Allocation counts are the interesting number — the PR-3
/// workspace work claims a steady-state allocation-free per-event path,
/// and this artifact is what holds that claim to measurement. With
/// `--pooled`, [`run_pooled_resources`] contributes the pooled pipeline
/// row and its allocation guard.
fn run_resources_command(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let pooled = args.iter().any(|a| a == "--pooled");
    let enforce = args.iter().any(|a| a == "--enforce-floor");
    let out_path = tagged_out_path(args, "RESOURCES");
    let spec = nytaxi_like();
    let params = ExperimentParams::from_spec(&spec);
    let events = if smoke { spec.default_events / 4 } else { spec.default_events };
    let stream = generate(&spec.generator(events, 42));
    println!(
        "resources: {} (synthetic), dims {:?}, R={}, W={}, theta={}, events={} ({} mode)",
        spec.name,
        spec.base_dims,
        params.rank,
        params.window,
        params.theta,
        events,
        if smoke { "smoke" } else { "full" },
    );
    let cfg = sns_bench::RunConfig {
        als: AlsOptions { max_iters: 10, tol: 1e-3, ..Default::default() },
        ..Default::default()
    };
    let (prefill, measured) = split_prefill(&params, &stream);
    let methods = [
        Method::Sns(AlgorithmKind::Vec),
        Method::Sns(AlgorithmKind::Rnd),
        Method::Sns(AlgorithmKind::PlusVec),
        Method::Sns(AlgorithmKind::PlusRnd),
    ];
    let mut results: Vec<ResourceResult> = Vec::new();
    for method in methods {
        let mut engine = method.build(&params, &cfg);
        engine.prefill_all(prefill).expect("chronological stream");
        engine.warm_start(&cfg.als);
        let cpu_before = cpu_seconds();
        let (bytes_before, calls_before) = alloc_counters();
        let start = Instant::now();
        let outcome = engine.ingest_all(measured).expect("chronological stream");
        let seconds = start.elapsed().as_secs_f64();
        let (bytes_after, calls_after) = alloc_counters();
        let cpu_after = cpu_seconds();
        let updates = outcome.updates;
        let bytes = bytes_after - bytes_before;
        let calls = calls_after - calls_before;
        let r = ResourceResult {
            name: method.name(),
            updates,
            seconds,
            events_per_sec: updates as f64 / seconds,
            bytes_allocated: bytes,
            alloc_calls: calls,
            bytes_per_event: bytes as f64 / updates.max(1) as f64,
            allocs_per_event: calls as f64 / updates.max(1) as f64,
            cpu_percent: cpu_before
                .zip(cpu_after)
                .map(|(b, a)| 100.0 * (a - b) / seconds.max(1e-9)),
            peak_rss_kb_after: peak_rss_kb(),
        };
        println!(
            "  {:<10} {:>10.0} events/s  {:>8.1} B/event  {:>6.3} allocs/event  cpu {}  rss {} kB",
            r.name,
            r.events_per_sec,
            r.bytes_per_event,
            r.allocs_per_event,
            r.cpu_percent.map_or_else(|| "n/a".into(), |c| format!("{c:.0}%")),
            r.peak_rss_kb_after.map_or_else(|| "n/a".into(), |k| k.to_string()),
        );
        results.push(r);
    }
    let pooled_allocs = pooled.then(|| {
        let r = run_pooled_resources(&params, &stream);
        println!(
            "  {:<10} {:>10.0} events/s  {:>8.1} B/event  {:>6.3} allocs/event  cpu {}  rss {} kB",
            r.name,
            r.events_per_sec,
            r.bytes_per_event,
            r.allocs_per_event,
            r.cpu_percent.map_or_else(|| "n/a".into(), |c| format!("{c:.0}%")),
            r.peak_rss_kb_after.map_or_else(|| "n/a".into(), |k| k.to_string()),
        );
        let allocs = r.allocs_per_event;
        results.push(r);
        allocs
    });
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"sns-resources\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!(
        "  \"config\": {{\"dataset\": \"{}\", \"synthetic\": true, \"base_dims\": {:?}, \"rank\": {}, \"window\": {}, \"period\": {}, \"theta\": {}, \"events\": {}, \"seed\": 42}},\n",
        spec.name, spec.base_dims, params.rank, params.window, params.period, params.theta, events,
    ));
    json.push_str("  \"methods\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"updates\": {}, \"seconds\": {}, \"events_per_sec\": {}, \"bytes_allocated\": {}, \"alloc_calls\": {}, \"bytes_per_event\": {}, \"allocs_per_event\": {}, \"cpu_percent\": {}, \"peak_rss_kb_after\": {}}}{}\n",
            r.name,
            r.updates,
            json_f64(r.seconds),
            json_f64(r.events_per_sec),
            r.bytes_allocated,
            r.alloc_calls,
            json_f64(r.bytes_per_event),
            json_f64(r.allocs_per_event),
            r.cpu_percent.map_or_else(|| "null".to_string(), json_f64),
            json_opt_u64(r.peak_rss_kb_after),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    if let Some(allocs) = pooled_allocs {
        json.push_str(&format!(
            "  \"pooled_guard\": {{\"name\": \"SNS+_RND@pool\", \"max_allocs_per_event\": {}, \"measured\": {}, \"pass\": {}}},\n",
            json_f64(POOLED_ALLOCS_PER_EVENT_MAX),
            json_f64(allocs),
            allocs <= POOLED_ALLOCS_PER_EVENT_MAX,
        ));
    }
    json.push_str(&format!("  \"peak_rss_kb\": {}\n", json_opt_u64(peak_rss_kb())));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write resources json");
    println!("wrote {out_path}");
    if let Some(allocs) = pooled_allocs {
        if enforce && allocs > POOLED_ALLOCS_PER_EVENT_MAX {
            eprintln!(
                "POOLED ALLOC REGRESSION: {allocs:.3} allocs/event, budget {POOLED_ALLOCS_PER_EVENT_MAX}",
            );
            std::process::exit(1);
        }
    }
}

/// `bench sweep`: run the pooled multi-rank sweep scenario and write its
/// machine-readable report.
fn run_sweep_command(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "SWEEP_pr4.json".to_string());
    let mut cfg = SweepConfig::default();
    if let Some(ranks) = args.iter().position(|a| a == "--ranks").and_then(|i| args.get(i + 1)) {
        let parsed: Vec<usize> = ranks.split(',').filter_map(|r| r.trim().parse().ok()).collect();
        if !parsed.is_empty() {
            cfg.ranks = parsed;
        }
    }
    if let Some(shards) = args.iter().position(|a| a == "--shards").and_then(|i| args.get(i + 1)) {
        if let Ok(n) = shards.parse::<usize>() {
            cfg.shards = n.max(1);
        }
    }
    for (i, arg) in args.iter().enumerate() {
        if arg != "--trace-for" {
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("--trace-for needs rank=R,method=M,path=P");
            std::process::exit(2);
        };
        match parse_trace_override(value) {
            Some(ov) => cfg.trace_overrides.push(ov),
            None => {
                eprintln!("malformed --trace-for {value:?} (want rank=R,method=M,path=P)");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        cfg.events /= 5;
    }
    println!(
        "sweep: ranks {:?} x methods {:?} over {} events, {} shards ({} mode)",
        cfg.ranks,
        cfg.methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
        cfg.events,
        cfg.shards,
        if smoke { "smoke" } else { "full" },
    );
    let report = run_sweep(&cfg);
    print!("{}", report.render());
    if let Some(best) = report.best() {
        println!("best cell: {} at R={} (fitness {:.4})", best.method, best.rank, best.fitness);
    }
    let failed = report.cells.iter().filter(|c| c.error.is_some()).count();
    std::fs::write(&out_path, report.to_json()).expect("write sweep json");
    println!("wrote {out_path}");
    if failed > 0 {
        eprintln!("{failed} sweep cell(s) errored");
        std::process::exit(1);
    }
}

/// Parses one `rank=R,method=M,path=P` value. The method name may
/// itself contain `=` or `,` only if it is one of the known display
/// names, which none do — so plain splitting is enough.
fn parse_trace_override(value: &str) -> Option<TraceOverride> {
    let mut rank = None;
    let mut method = None;
    let mut path = None;
    for part in value.split(',') {
        let (key, v) = part.split_once('=')?;
        match key.trim() {
            "rank" => rank = v.trim().parse::<usize>().ok(),
            "method" => method = Some(v.trim().to_string()),
            "path" => path = Some(std::path::PathBuf::from(v.trim())),
            _ => return None,
        }
    }
    Some(TraceOverride { rank: rank?, method: method?, path: path? })
}

/// `bench soak`: a large pooled fleet with injected engine panics —
/// quarantine, repair, bitwise replay, and the ops-layer metrics
/// artifact. Exits non-zero unless every acceptance condition holds
/// (no stream deaths, every stream bitwise after repair, every stream
/// observable in the metrics dump, backpressure and quarantine events
/// seen on the bus).
fn run_soak_command(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = {
        let tag = args
            .iter()
            .position(|a| a == "--tag")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "pr7".to_string());
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| format!("METRICS_{tag}.json"))
    };
    let mut cfg = SoakConfig::default();
    if let Some(shards) = args.iter().position(|a| a == "--shards").and_then(|i| args.get(i + 1)) {
        if let Ok(n) = shards.parse::<usize>() {
            cfg.shards = n.max(1);
        }
    }
    if let Some(streams) = args.iter().position(|a| a == "--streams").and_then(|i| args.get(i + 1))
    {
        if let Ok(n) = streams.parse::<usize>() {
            cfg.streams = n.max(1);
        }
    }
    if smoke {
        cfg.events /= 3;
    }
    println!(
        "soak: {} streams ({} chaos), {} events each, {} shards ({} mode)",
        cfg.streams,
        (0..cfg.streams as u64).filter(|id| id % cfg.chaos_every == 0).count(),
        cfg.events,
        cfg.shards,
        if smoke { "smoke" } else { "full" },
    );
    let report = match run_soak(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("soak scenario failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    std::fs::write(&out_path, &report.metrics_json).expect("write metrics json");
    println!("wrote {out_path}");
    if !report.all_ok() {
        eprintln!("SOAK FAILED: a stream died, diverged after replay, or went unobserved");
        std::process::exit(1);
    }
}

/// `bench recover`: kill a pooled replay mid-trace, recover from disk,
/// finish, and assert byte-identity with an uninterrupted run.
fn run_recover_command(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let wal = args.iter().any(|a| a == "--wal");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if wal {
                "RECOVER_pr8.json".to_string()
            } else {
                "RECOVER_pr5.json".to_string()
            }
        });
    let mut cfg = RecoverConfig { wal, ..Default::default() };
    if let Some(shards) = args.iter().position(|a| a == "--shards").and_then(|i| args.get(i + 1)) {
        if let Ok(n) = shards.parse::<usize>() {
            cfg.shards = n.max(1);
        }
    }
    if let Some(dir) = args.iter().position(|a| a == "--dir").and_then(|i| args.get(i + 1)) {
        cfg.dir = std::path::PathBuf::from(dir);
    }
    if smoke {
        cfg.events /= 4;
    }
    println!(
        "recover: {} events, crash at midpoint, {} shards, checkpoint dir {} ({} mode{})",
        cfg.events,
        cfg.shards,
        cfg.dir.display(),
        if smoke { "smoke" } else { "full" },
        if cfg.wal { ", wal" } else { "" },
    );
    let report = match run_recover(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("recover scenario failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    println!("checkpoint manifest: {}", report.manifest.display());
    std::fs::write(&out_path, report.to_json()).expect("write recover json");
    println!("wrote {out_path}");
    if !report.all_identical() {
        eprintln!("RECOVERY DIVERGED: restored fleet is not byte-identical");
        std::process::exit(1);
    }
    if !report.replay_bounded() {
        eprintln!(
            "WAL REPLAY UNBOUNDED: {} units replayed of {} journaled",
            report.replayed, report.replay_bound
        );
        std::process::exit(1);
    }
}

/// `bench fleet`: the shards × streams aggregate-throughput grid.
/// Exits non-zero (with `--enforce-floor`) if the best cell misses the
/// aggregate floor, or — on hosts with enough cores for worker threads
/// to actually spread — if the widest cell fails the 2× scaling
/// requirement over the single-shard cell.
fn run_fleet_command(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce-floor");
    let out_path = {
        let tag = args
            .iter()
            .position(|a| a == "--tag")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "pr10".to_string());
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| format!("BENCH_{tag}.json"))
    };
    let mut cfg = FleetConfig::default();
    if let Some(grid) = args.iter().position(|a| a == "--shards").and_then(|i| args.get(i + 1)) {
        let parsed: Vec<usize> =
            grid.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n > 0).collect();
        if !parsed.is_empty() {
            cfg.shard_grid = parsed;
        }
    }
    if let Some(streams) = args.iter().position(|a| a == "--streams").and_then(|i| args.get(i + 1))
    {
        if let Ok(n) = streams.parse::<usize>() {
            cfg.streams = n.max(1);
        }
    }
    if let Some(batch) = args.iter().position(|a| a == "--batch").and_then(|i| args.get(i + 1)) {
        if let Ok(n) = batch.parse::<usize>() {
            cfg.batch = n.max(1);
        }
    }
    if smoke {
        cfg.events /= 4;
    }
    println!(
        "fleet: {} streams x shards {:?}, {} shared events, batch {}, quarantine disabled ({} mode)",
        cfg.streams,
        cfg.shard_grid,
        cfg.events,
        cfg.batch,
        if smoke { "smoke" } else { "full" },
    );
    let report = match run_fleet(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet scenario failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    std::fs::write(&out_path, report.to_json(&cfg, if smoke { "smoke" } else { "full" }))
        .expect("write fleet json");
    println!("wrote {out_path}");
    if enforce && !report.floor_pass() {
        eprintln!(
            "AGGREGATE FLOOR VIOLATION: best cell at {:.0} events/s, floor {:.0}",
            report.best_aggregate(),
            AGGREGATE_FLOOR_EVENTS_PER_SEC,
        );
        std::process::exit(1);
    }
    if !report.scaling_pass() {
        let detail =
            report.scaling_ratio().map_or_else(|| "n/a".to_string(), |r| format!("{r:.2}x"));
        if enforce && report.scaling_enforceable() {
            eprintln!("SCALING VIOLATION: {detail} at widest cell, required 2x over 1 shard");
            std::process::exit(1);
        }
        println!(
            "scaling advisory: {detail} at widest cell (not enforced on {} core(s))",
            report.cores,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "sweep") {
        run_sweep_command(&args[1..]);
        return;
    }
    if args.first().is_some_and(|a| a == "recover") {
        run_recover_command(&args[1..]);
        return;
    }
    if args.first().is_some_and(|a| a == "soak") {
        run_soak_command(&args[1..]);
        return;
    }
    if args.first().is_some_and(|a| a == "resources") {
        run_resources_command(&args[1..]);
        return;
    }
    if args.first().is_some_and(|a| a == "fleet") {
        run_fleet_command(&args[1..]);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce = args.iter().any(|a| a == "--enforce-floor");
    let out_path = tagged_out_path(&args, "BENCH");
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(3);

    let spec = nytaxi_like();
    let params = ExperimentParams::from_spec(&spec);
    let events = if smoke { spec.default_events / 4 } else { spec.default_events };
    let stream = generate(&spec.generator(events, 42));
    println!(
        "config: {} (synthetic), dims {:?}, R={}, W={}, T={}, theta={}, events={} ({} mode)",
        spec.name,
        spec.base_dims,
        params.rank,
        params.window,
        params.period,
        params.theta,
        events,
        if smoke { "smoke" } else { "full" },
    );

    // The four fast continuous methods in full; SNS_MAT (one ALS sweep
    // per event) on a capped slice so the bench stays minutes-bounded.
    let methods = [
        Method::Sns(AlgorithmKind::Vec),
        Method::Sns(AlgorithmKind::Rnd),
        Method::Sns(AlgorithmKind::PlusVec),
        Method::Sns(AlgorithmKind::PlusRnd),
    ];
    let mut results: Vec<MethodResult> = Vec::new();
    for m in methods {
        let r = run_method(m, &params, &stream, runs);
        println!(
            "  {:<10} {:>10.0} events/s  {:>10.0} tuples/s  ({} updates in {:.3}s, fitness {:.3}{})",
            r.name,
            r.events_per_sec,
            r.tuples_per_sec,
            r.updates,
            r.seconds,
            r.final_fitness,
            if r.diverged { ", DIVERGED" } else { "" },
        );
        results.push(r);
    }

    let reference =
        results.iter().find(|r| r.name == "SNS+_RND").expect("reference method present");
    let pass = reference.events_per_sec >= FLOOR_EVENTS_PER_SEC;
    let vec_ref = results.iter().find(|r| r.name == "SNS+_VEC").expect("SNS+_VEC present");
    let vec_micros = 1e6 / vec_ref.events_per_sec;
    let vec_pass = vec_micros <= VEC_BASELINE_MICROS;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"sns-smoke\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!(
        "  \"config\": {{\"dataset\": \"{}\", \"synthetic\": true, \"base_dims\": {:?}, \"rank\": {}, \"window\": {}, \"period\": {}, \"theta\": {}, \"eta\": {}, \"events\": {}, \"seed\": 42, \"runs\": {}}},\n",
        spec.name, spec.base_dims, params.rank, params.window, params.period, params.theta,
        json_f64(params.eta), events, runs,
    ));
    json.push_str("  \"methods\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"tuples\": {}, \"updates\": {}, \"seconds\": {}, \"events_per_sec\": {}, \"tuples_per_sec\": {}, \"final_fitness\": {}, \"diverged\": {}}}{}\n",
            r.name,
            r.tuples,
            r.updates,
            json_f64(r.seconds),
            json_f64(r.events_per_sec),
            json_f64(r.tuples_per_sec),
            json_f64(r.final_fitness),
            r.diverged,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"floor\": {{\"method\": \"{}\", \"events_per_sec\": {}, \"measured\": {}, \"pass\": {}}},\n",
        reference.name,
        json_f64(FLOOR_EVENTS_PER_SEC),
        json_f64(reference.events_per_sec),
        pass,
    ));
    json.push_str(&format!(
        "  \"vec_guard\": {{\"method\": \"{}\", \"baseline_micros\": {}, \"measured_micros\": {}, \"pass\": {}}}\n",
        vec_ref.name,
        json_f64(VEC_BASELINE_MICROS),
        json_f64(vec_micros),
        vec_pass,
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    if enforce && !pass {
        eprintln!(
            "FLOOR VIOLATION: {} at {:.0} events/s, floor {:.0}",
            reference.name, reference.events_per_sec, FLOOR_EVENTS_PER_SEC
        );
        std::process::exit(1);
    }
    if enforce && !vec_pass {
        eprintln!(
            "VEC REGRESSION: {} at {:.2}us/event, baseline {:.2}us",
            vec_ref.name, vec_micros, VEC_BASELINE_MICROS
        );
        std::process::exit(1);
    }
}
