//! Harness binary for the paper's fig6 (see sns_bench::experiments::fig6).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = sns_bench::parse_scale(&args);
    print!("{}", sns_bench::experiments::fig6::run(scale));
}
