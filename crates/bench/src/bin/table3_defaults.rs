//! Harness binary for the paper's table3 (see sns_bench::experiments::table3).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = sns_bench::parse_scale(&args);
    print!("{}", sns_bench::experiments::table3::run(scale));
}
