//! Harness binary for the paper's fig1 (see sns_bench::experiments::fig1).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = sns_bench::parse_scale(&args);
    print!("{}", sns_bench::experiments::fig1::run(scale));
}
