//! Runs every table/figure harness in paper order; the output of this
//! binary is what `EXPERIMENTS.md` records.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = sns_bench::parse_scale(&args);
    println!("SliceNStitch reproduction — full experiment sweep (scale = {scale})");
    print!("{}", sns_bench::experiments::run_all(scale));
}
