//! Shared experiment runner implementing the paper's protocol
//! (Section VI-A): ALS initialization on the first full window, then
//! stream processing over `5·W·T` with per-update timing and periodic
//! relative-fitness checkpoints.
//!
//! There is exactly **one** drive loop, [`drive`], generic over
//! `Box<dyn StreamingCpd>`: the continuous SliceNStitch engines and the
//! once-per-period baselines run through identical code, differing only
//! in the engine [`Method::build`] hands back.

use crate::method::Method;
use sns_core::als::{als, AlsOptions};
use sns_data::spec::DatasetSpec;
use sns_runtime::StreamingCpd;
use sns_stream::StreamTuple;
use std::time::Instant;

/// Tensor-window parameters for one experiment (a [`DatasetSpec`] with
/// possible overrides for the parameter-sweep figures).
#[derive(Debug, Clone)]
pub struct ExperimentParams {
    /// Categorical mode lengths.
    pub base_dims: Vec<usize>,
    /// Window length `W`.
    pub window: usize,
    /// Period `T`.
    pub period: u64,
    /// CP rank `R`.
    pub rank: usize,
    /// Sampling threshold `θ`.
    pub theta: usize,
    /// Clipping bound `η`.
    pub eta: f64,
}

impl ExperimentParams {
    /// Parameters straight from a dataset spec (Table III defaults).
    pub fn from_spec(spec: &DatasetSpec) -> Self {
        ExperimentParams {
            base_dims: spec.base_dims.to_vec(),
            window: spec.window,
            period: spec.period,
            rank: spec.rank,
            theta: spec.theta,
            eta: spec.eta,
        }
    }

    /// Prefill horizon: the first full window `W·T`.
    pub fn prefill_until(&self) -> u64 {
        self.window as u64 * self.period
    }
}

/// Runner knobs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// RNG seed for factor init / sampling.
    pub seed: u64,
    /// Number of fitness checkpoints over the measured stream.
    pub checkpoints: usize,
    /// ALS options for the warm start and the fitness reference.
    pub als: AlsOptions,
    /// Optional cap on measured tuples (for per-event methods that are
    /// too slow to run over the whole stream, e.g. SNS_MAT).
    pub max_measured_tuples: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0xbe7c,
            checkpoints: 10,
            als: AlsOptions { max_iters: 25, tol: 1e-4, ..Default::default() },
            max_measured_tuples: None,
        }
    }
}

/// One relative-fitness sample.
#[derive(Debug, Clone, Copy)]
pub struct Checkpoint {
    /// Index into the measured tuple slice.
    pub tuple_idx: usize,
    /// Stream time at the checkpoint.
    pub time: u64,
    /// Method fitness at the checkpoint.
    pub fitness: f64,
    /// Reference (batch ALS) fitness at the checkpoint.
    pub reference: f64,
}

impl Checkpoint {
    /// Relative fitness (Section VI-A).
    pub fn relative(&self) -> f64 {
        self.fitness / self.reference
    }
}

/// Result of running one method over one stream.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method display name.
    pub method: String,
    /// Mean wall time per factor update, microseconds. For continuous
    /// methods an update is one event; for baselines, one period. The
    /// measured span is the whole drive loop (window maintenance
    /// included, checkpoint evaluation excluded).
    pub avg_update_us: f64,
    /// Number of factor updates performed.
    pub updates: u64,
    /// Number of measured tuples processed.
    pub tuples: usize,
    /// Relative fitness samples over the measured horizon.
    pub series: Vec<Checkpoint>,
    /// Mean relative fitness across checkpoints.
    pub avg_relative_fitness: f64,
    /// Fitness at the final checkpoint.
    pub final_fitness: f64,
    /// Whether an unclipped variant diverged.
    pub diverged: bool,
    /// Model parameter count.
    pub parameters: usize,
    /// Total measured wall time, seconds.
    pub total_seconds: f64,
}

/// Splits a stream at the prefill horizon.
pub fn split_prefill<'a>(
    params: &ExperimentParams,
    stream: &'a [StreamTuple],
) -> (&'a [StreamTuple], &'a [StreamTuple]) {
    let cut = stream.partition_point(|t| t.time <= params.prefill_until());
    stream.split_at(cut)
}

/// Evenly spaced checkpoint indices into a measured slice of length `n`.
pub fn checkpoint_indices(n: usize, k: usize) -> Vec<usize> {
    if n == 0 || k == 0 {
        return vec![];
    }
    let k = k.min(n);
    (1..=k).map(|j| (j * n) / k - 1).collect()
}

fn reference_fitness(window: &sns_tensor::SparseTensor, rank: usize, als_opts: &AlsOptions) -> f64 {
    als(window, rank, als_opts).fitness
}

/// Runs one method over one pre-generated stream: builds its engine via
/// [`Method::build`] and hands it to the generic [`drive`] loop.
pub fn run_method(
    params: &ExperimentParams,
    stream: &[StreamTuple],
    method: Method,
    cfg: &RunConfig,
) -> RunResult {
    drive(params, stream, method.build(params, cfg), cfg)
}

/// The single drive loop of the experiment protocol, shared by every
/// method: prefill the first window, ALS warm start, then ingest the
/// measured stream **in batches** ([`StreamingCpd::ingest_all`]) between
/// relative-fitness checkpoints — the same amortized path the pooled
/// runtime's workers use. The engine decides *when* factors update; the
/// loop neither knows nor cares.
pub fn drive(
    params: &ExperimentParams,
    stream: &[StreamTuple],
    mut engine: Box<dyn StreamingCpd>,
    cfg: &RunConfig,
) -> RunResult {
    let (prefill, measured) = split_prefill(params, stream);
    engine.prefill_all(prefill).expect("chronological stream");
    engine.warm_start(&cfg.als);

    let measured = match cfg.max_measured_tuples {
        Some(cap) => &measured[..measured.len().min(cap)],
        None => measured,
    };
    let marks = checkpoint_indices(measured.len(), cfg.checkpoints);
    let mut series = Vec::with_capacity(marks.len());
    let mut total = std::time::Duration::ZERO;
    let mut done = 0usize;
    // One batch per inter-checkpoint span (plus a tail batch when the
    // last mark is not the final tuple); each batch is timed, each mark
    // evaluated outside the timed span.
    for &mark in &marks {
        let chunk = &measured[done..=mark];
        let chunk_start = Instant::now();
        engine.ingest_all(chunk).expect("chronological stream");
        total += chunk_start.elapsed();
        done = mark + 1;
        let fitness = engine.fitness();
        let reference = reference_fitness(engine.window(), params.rank, &cfg.als);
        series.push(Checkpoint { tuple_idx: mark, time: measured[mark].time, fitness, reference });
    }
    if done < measured.len() {
        let chunk_start = Instant::now();
        engine.ingest_all(&measured[done..]).expect("chronological stream");
        total += chunk_start.elapsed();
    }

    finish_result(
        engine.name(),
        total.as_secs_f64(),
        engine.updates_applied(),
        measured.len(),
        series,
        engine.diverged(),
        engine.num_parameters(),
    )
}

fn finish_result(
    method: String,
    total_seconds: f64,
    updates: u64,
    tuples: usize,
    series: Vec<Checkpoint>,
    diverged: bool,
    parameters: usize,
) -> RunResult {
    let avg_update_us = if updates > 0 { total_seconds * 1e6 / updates as f64 } else { 0.0 };
    let rels: Vec<f64> = series.iter().map(|c| c.relative()).filter(|r| r.is_finite()).collect();
    let avg_relative_fitness =
        if rels.is_empty() { f64::NAN } else { rels.iter().sum::<f64>() / rels.len() as f64 };
    let final_fitness = series.last().map_or(f64::NAN, |c| c.fitness);
    RunResult {
        method,
        avg_update_us,
        updates,
        tuples,
        series,
        avg_relative_fitness,
        final_fitness,
        diverged,
        parameters,
        total_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::config::AlgorithmKind;
    use sns_data::generator::generate;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams {
            base_dims: vec![8, 6],
            window: 4,
            period: 20,
            rank: 3,
            theta: 10,
            eta: 1000.0,
        }
    }

    fn tiny_stream(params: &ExperimentParams) -> Vec<StreamTuple> {
        generate(&sns_data::GeneratorConfig {
            base_dims: params.base_dims.clone(),
            n_components: 3,
            events: 1200,
            duration: 6 * params.window as u64 * params.period,
            day_ticks: 40,
            seed: 5,
            ..Default::default()
        })
    }

    #[test]
    fn checkpoint_indices_are_sane() {
        assert_eq!(checkpoint_indices(100, 4), vec![24, 49, 74, 99]);
        assert_eq!(checkpoint_indices(0, 4), Vec::<usize>::new());
        assert_eq!(checkpoint_indices(3, 10), vec![0, 1, 2]);
        assert_eq!(checkpoint_indices(10, 1), vec![9]);
    }

    #[test]
    fn split_prefill_respects_horizon() {
        let p = tiny_params();
        let s = tiny_stream(&p);
        let (pre, post) = split_prefill(&p, &s);
        assert!(pre.iter().all(|t| t.time <= p.prefill_until()));
        assert!(post.iter().all(|t| t.time > p.prefill_until()));
        assert_eq!(pre.len() + post.len(), s.len());
    }

    #[test]
    fn continuous_run_produces_sane_result() {
        let p = tiny_params();
        let s = tiny_stream(&p);
        let cfg = RunConfig { checkpoints: 4, ..Default::default() };
        let r = run_method(&p, &s, Method::Sns(AlgorithmKind::PlusRnd), &cfg);
        assert_eq!(r.method, "SNS+_RND");
        assert!(r.updates > r.tuples as u64, "boundary events must add updates");
        assert_eq!(r.series.len(), 4);
        assert!(r.avg_update_us > 0.0);
        assert!(!r.diverged);
        assert!(r.avg_relative_fitness.is_finite());
        assert_eq!(r.parameters, 3 * (8 + 6 + 4));
    }

    #[test]
    fn periodic_run_produces_sane_result() {
        let p = tiny_params();
        let s = tiny_stream(&p);
        let cfg = RunConfig { checkpoints: 4, ..Default::default() };
        let r = run_method(&p, &s, Method::OnlineScp, &cfg);
        assert_eq!(r.method, "OnlineSCP");
        // Periodic methods update once per period: far fewer updates than
        // tuples.
        assert!(r.updates < r.tuples as u64 / 2, "{} updates", r.updates);
        assert!(r.avg_update_us > 0.0);
        assert_eq!(r.series.len(), 4);
    }

    #[test]
    fn measured_cap_limits_tuples() {
        let p = tiny_params();
        let s = tiny_stream(&p);
        let cfg = RunConfig { checkpoints: 2, max_measured_tuples: Some(50), ..Default::default() };
        let r = run_method(&p, &s, Method::Sns(AlgorithmKind::Mat), &cfg);
        assert_eq!(r.tuples, 50);
    }
}
