//! Plain-text table rendering for the experiment harnesses.

/// A simple fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: vec![] }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                // Right-align numbers, left-align text.
                if cell
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-' || ch == '+')
                {
                    line.push_str(&" ".repeat(widths[c].saturating_sub(cell.len())));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(widths[c].saturating_sub(cell.len())));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with engineering-style precision for tables.
pub fn f(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a != 0.0 && !(1e-3..1e5).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Encodes a string as a JSON string literal (quotes included).
/// Rust's `{:?}` is *not* valid JSON for non-ASCII input — it emits
/// `\u{e9}`-style escapes — so the machine-readable reports use this.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A section banner for harness output.
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// An Observation line: a PASS/CHECK verdict against a paper claim.
pub fn observation(id: &str, claim: &str, holds: bool) -> String {
    format!("[{}] Observation {id}: {claim}", if holds { "PASS " } else { "CHECK" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1.5".into()]);
        t.row(vec!["b".into(), "22.25".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.5), "0.5000");
        assert_eq!(f(123.45), "123.5");
        assert_eq!(f(1.0e7), "1.000e7");
        assert_eq!(f(0.00001), "1.000e-5");
        assert_eq!(f(f64::NAN), "NaN");
    }

    #[test]
    fn json_strings_stay_valid_for_non_ascii_and_specials() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("tracé.csv"), "\"tracé.csv\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn observation_verdicts() {
        assert!(observation("1", "x", true).starts_with("[PASS ]"));
        assert!(observation("1", "x", false).starts_with("[CHECK]"));
    }
}
