//! Figure 6 — data scalability: total runtime vs number of events.
//!
//! The paper runs the four row-wise SliceNStitch variants over 1–5·10⁵
//! events per dataset (SNS_MAT omitted for runtime) and finds linear
//! growth (Obs. 5). We sweep a scaled grid on the New York Taxi twin and
//! check the linearity ratio directly.

use crate::method::Method;
use crate::report::{banner, f, observation, Table};
use crate::runner::{run_method, ExperimentParams, RunConfig};
use sns_core::config::AlgorithmKind;
use sns_data::{generate, nytaxi_like};

/// Renders Fig. 6.
pub fn run(scale: f64) -> String {
    let spec = nytaxi_like();
    let base = ((10_000.0 * scale) as usize).max(800);
    let grid: Vec<usize> = (1..=5).map(|k| k * base).collect();
    let variants =
        [AlgorithmKind::Vec, AlgorithmKind::Rnd, AlgorithmKind::PlusVec, AlgorithmKind::PlusRnd];

    let mut out = banner("Fig 6 — total runtime vs number of events (New York Taxi-like)");
    out.push_str(&format!("event grid: {grid:?} (SNS_MAT omitted, as in the paper)\n\n"));
    let mut t = Table::new(&["Method", "events", "total s", "us/update", "updates"]);
    let mut linear_ok = true;
    for kind in variants {
        let mut per_update = Vec::new();
        for &events in &grid {
            // The paper processes ever-longer prefixes of a fixed-rate
            // stream: keep the dataset's *natural* event rate and let the
            // horizon grow with the event count. (A fixed horizon with
            // more events would densify the window and make
            // degree-dependent methods look superlinear; a slower rate
            // would starve the window and destabilize the unclipped
            // variants through ill-conditioned Gram systems.)
            let mut gen_cfg = spec.generator(events, 0xf166);
            gen_cfg.duration =
                (spec.duration() as u128 * events as u128 / spec.default_events as u128)
                    .max(2 * spec.window as u128 * spec.period as u128) as u64;
            let stream = generate(&gen_cfg);
            let params = ExperimentParams::from_spec(&spec);
            let cfg = RunConfig { checkpoints: 0, ..Default::default() };
            let r = run_method(&params, &stream, Method::Sns(kind), &cfg);
            per_update.push(r.avg_update_us);
            t.row(vec![
                kind.name().to_string(),
                events.to_string(),
                f(r.total_seconds),
                f(r.avg_update_us),
                r.updates.to_string(),
            ]);
        }
        // Linear total time ⇔ bounded per-event cost. Check that the
        // per-update time stays within a small factor across the grid
        // (the synthetic stream's weekday/weekend texture makes window
        // density — and hence per-event cost — drift over long horizons,
        // which is data realism, not superlinearity).
        let max = per_update.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_update.iter().cloned().fold(f64::MAX, f64::min);
        if max > 4.0 * min {
            linear_ok = false;
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&observation(
        "5",
        "total runtime grows linearly in the number of events (5x events => ~5x time)",
        linear_ok,
    ));
    out.push('\n');
    out
}
