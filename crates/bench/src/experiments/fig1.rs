//! Figure 1 — advantages of continuous CPD over conventional CPD.
//!
//! Protocol (Section VI-B): on the New York Taxi stream, run SNS_RND with
//! `T = 1 hour` (continuous), and the conventional methods (periodic ALS,
//! OnlineSCP, CP-stream) with the time-mode granularity `T'` swept from
//! fine to 1 hour. Before measuring conventional fitness, fine-grained
//! time-factor rows are merged (summed) so that one row corresponds to an
//! hour — exactly the paper's post-processing (footnote 7).
//!
//! Reported per configuration: average (hourly) fitness — Fig. 1c,
//! parameter count — Fig. 1d, runtime per update — Fig. 1e.

use crate::method::Method;
use crate::report::{banner, f, observation, Table};
use crate::runner::{checkpoint_indices, ExperimentParams, RunConfig};
use sns_baselines::{AlsPeriodic, CpStream, OnlineScp, PeriodicCpd};
use sns_core::als::als;
use sns_core::fitness::fitness_with_grams;
use sns_core::grams::compute_grams;
use sns_core::kruskal::KruskalTensor;
use sns_data::{generate, nytaxi_like};
use sns_linalg::Mat;
use sns_stream::{DiscreteWindow, StreamTuple};
use sns_tensor::{Shape, SparseTensor};
use std::time::Instant;

/// Sums groups of `group` adjacent time indices of `x` into one, giving a
/// tensor with `merged_len` time indices (the paper's hourly view).
fn merge_window(x: &SparseTensor, group: usize, merged_len: usize) -> SparseTensor {
    let tm = x.order() - 1;
    let mut dims = x.shape().dims().to_vec();
    dims[tm] = merged_len;
    let mut out = SparseTensor::new(Shape::new(&dims));
    for (c, v) in x.iter() {
        let merged_t = (c.get(tm) as usize / group).min(merged_len - 1) as u32;
        out.add(&c.with(tm, merged_t), v);
    }
    out
}

/// Sums groups of `group` adjacent time-factor rows (footnote 7).
fn merge_time_factor(m: &Mat, group: usize, merged_len: usize) -> Mat {
    let mut out = Mat::zeros(merged_len, m.cols());
    for r in 0..m.rows() {
        let target = (r / group).min(merged_len - 1);
        for k in 0..m.cols() {
            out[(target, k)] += m[(r, k)];
        }
    }
    out
}

/// Fitness of a fine-grained model measured on the hourly view.
fn merged_fitness(x: &SparseTensor, k: &KruskalTensor, group: usize, merged_len: usize) -> f64 {
    if group == 1 {
        return fitness_with_grams(x, k, &compute_grams(&k.factors));
    }
    let tm = k.order() - 1;
    let merged_x = merge_window(x, group, merged_len);
    let mut merged_k = k.clone();
    merged_k.factors[tm] = merge_time_factor(&k.factors[tm], group, merged_len);
    let grams = compute_grams(&merged_k.factors);
    fitness_with_grams(&merged_x, &merged_k, &grams)
}

struct ConvResult {
    fitness: f64,
    params: usize,
    update_us: f64,
}

/// Runs one conventional method at granularity `t_int` over the stream,
/// measuring hourly-merged fitness and per-period update time.
fn run_conventional(
    spec: &sns_data::DatasetSpec,
    stream: &[StreamTuple],
    method: Method,
    t_int: u64,
    measured_span: u64,
    seed: u64,
) -> ConvResult {
    let span = spec.window as u64 * spec.period; // 10 hours of wall time
    let fine_w = (span / t_int) as usize;
    let group = (spec.period / t_int) as usize;
    let mut dims = spec.base_dims.to_vec();
    dims.push(fine_w);
    let mut algo: Box<dyn PeriodicCpd> = match method {
        Method::AlsPeriodic(sweeps) => Box::new(AlsPeriodic::new(&dims, spec.rank, sweeps, seed)),
        Method::OnlineScp => Box::new(OnlineScp::new(&dims, spec.rank, seed)),
        Method::CpStream => Box::new(CpStream::new(&dims, spec.rank, 0.99, 3, seed)),
        _ => unreachable!("fig1 conventional methods"),
    };
    let mut window = DiscreteWindow::new(spec.base_dims, fine_w, t_int);
    let mut buf = Vec::new();

    // Prefill one full window, warm start.
    let cut = stream.partition_point(|t| t.time <= span);
    for tu in &stream[..cut] {
        buf.clear();
        window.ingest(*tu, &mut buf).expect("chronological");
    }
    {
        let warm = als(
            window.tensor(),
            spec.rank,
            &sns_core::als::AlsOptions { max_iters: 10, tol: 1e-3, ..Default::default() },
        );
        algo.install(warm.kruskal, warm.grams);
    }

    // Measure over a capped span.
    let end = span + measured_span;
    let measured: Vec<&StreamTuple> = stream[cut..].iter().take_while(|t| t.time <= end).collect();
    let marks = checkpoint_indices(measured.len(), 3);
    let mut next_mark = 0;
    let mut total = std::time::Duration::ZERO;
    let mut updates = 0u64;
    let mut fits = Vec::new();
    for (i, tu) in measured.iter().enumerate() {
        buf.clear();
        window.ingest(**tu, &mut buf).expect("chronological");
        if !buf.is_empty() {
            let start = Instant::now();
            for u in &buf {
                algo.on_period(window.tensor(), u);
            }
            total += start.elapsed();
            updates += buf.len() as u64;
        }
        if next_mark < marks.len() && i == marks[next_mark] {
            fits.push(merged_fitness(window.tensor(), algo.kruskal(), group, spec.window));
            next_mark += 1;
        }
    }
    let fitness =
        if fits.is_empty() { f64::NAN } else { fits.iter().sum::<f64>() / fits.len() as f64 };
    let params = spec.rank * (spec.base_dims.iter().sum::<usize>() + fine_w);
    let update_us = if updates > 0 { total.as_secs_f64() * 1e6 / updates as f64 } else { 0.0 };
    ConvResult { fitness, params, update_us }
}

/// Renders Figure 1 (c, d, e).
pub fn run(scale: f64) -> String {
    let spec = nytaxi_like();
    let events = ((spec.default_events as f64 * scale * 0.6) as usize).max(2_000);
    let stream = generate(&spec.generator(events, 0xf161));
    let mut out = banner("Fig 1 — continuous CPD vs conventional CPD (New York Taxi-like)");
    out.push_str(&format!(
        "events = {events}, span = W*T = {} s\n\n",
        spec.window as u64 * spec.period
    ));

    // Continuous CPD: SNS_RND at T = 1 hour.
    let params = ExperimentParams::from_spec(&spec);
    let cfg = RunConfig { checkpoints: 3, ..Default::default() };
    let cont = crate::runner::run_method(
        &params,
        &stream,
        Method::Sns(sns_core::config::AlgorithmKind::Rnd),
        &cfg,
    );
    let cont_fit: f64 = {
        let v: Vec<f64> = cont.series.iter().map(|c| c.fitness).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };

    // Conventional CPD at granularities T' (paper: 1 s … 1 h; we sweep a
    // 100× range so the full run fits the session budget — the trend
    // direction is what Fig. 1 establishes).
    let intervals = [36u64, 180, 900, 3600];
    let measured_span = (1.5 * spec.window as f64 * spec.period as f64) as u64;
    let methods = [Method::AlsPeriodic(1), Method::OnlineScp, Method::CpStream];

    let mut t = Table::new(&[
        "Method",
        "Update interval (s)",
        "Avg fitness (hourly)",
        "#Params",
        "us/update",
    ]);
    t.row(vec![
        "SNS_RND (continuous)".to_string(),
        "per event".to_string(),
        f(cont_fit),
        cont.parameters.to_string(),
        f(cont.avg_update_us),
    ]);
    let mut fine_fits = Vec::new();
    let mut fine_params = 0usize;
    for method in methods {
        for &t_int in &intervals {
            let r = run_conventional(&spec, &stream, method, t_int, measured_span, 0xf162);
            if t_int == intervals[0] {
                fine_fits.push(r.fitness);
                fine_params = r.params;
            }
            t.row(vec![
                method.name(),
                t_int.to_string(),
                f(r.fitness),
                r.params.to_string(),
                f(r.update_us),
            ]);
        }
    }
    out.push_str(&t.render());

    // Observation 1 verdicts.
    let best_fine = fine_fits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    out.push('\n');
    out.push_str(&observation(
        "1a",
        "continuous CPD achieves near-instant updates (per event, not per period)",
        true,
    ));
    out.push('\n');
    out.push_str(&observation(
        "1b",
        &format!(
            "at matched update latency, continuous fitness ({}) exceeds fine-grained conventional ({})",
            f(cont_fit),
            f(best_fine)
        ),
        cont_fit > best_fine,
    ));
    out.push('\n');
    out.push_str(&observation(
        "1c",
        &format!(
            "continuous model needs {}x fewer parameters than the finest conventional model",
            f(fine_params as f64 / cont.parameters as f64)
        ),
        fine_params > cont.parameters,
    ));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_tensor::Coord;

    #[test]
    fn merge_window_sums_groups() {
        let mut x = SparseTensor::new(Shape::new(&[2, 6]));
        x.add(&Coord::new(&[0, 0]), 1.0);
        x.add(&Coord::new(&[0, 1]), 2.0);
        x.add(&Coord::new(&[0, 5]), 4.0);
        let merged = merge_window(&x, 3, 2);
        assert_eq!(merged.shape().dims(), &[2, 2]);
        assert_eq!(merged.get(&Coord::new(&[0, 0])), 3.0);
        assert_eq!(merged.get(&Coord::new(&[0, 1])), 4.0);
    }

    #[test]
    fn merge_factor_sums_rows() {
        let m = Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let merged = merge_time_factor(&m, 2, 2);
        assert_eq!(merged[(0, 0)], 3.0);
        assert_eq!(merged[(1, 0)], 7.0);
    }

    #[test]
    fn merged_fitness_group1_is_plain_fitness() {
        let mut x = SparseTensor::new(Shape::new(&[2, 3]));
        x.add(&Coord::new(&[0, 0]), 1.0);
        let k = KruskalTensor::zeros(&[2, 3], 1);
        assert_eq!(merged_fitness(&x, &k, 1, 3), 0.0);
    }
}
