//! Figure 8 — effect of the clipping bound η on SNS+_VEC / SNS+_RND.
//!
//! η sweeps 32 … 16000 (log-spaced). The paper finds fitness insensitive
//! to η "as long as η is small enough" (Obs. 7) — clipping only needs to
//! prevent runaway magnitudes, not to act as a tight regularizer.

use crate::method::Method;
use crate::report::{banner, f, observation, Table};
use crate::runner::{run_method, ExperimentParams, RunConfig};
use sns_core::config::AlgorithmKind;
use sns_data::{chicago_crime_like, generate, nytaxi_like};

/// Renders Fig. 8.
pub fn run(scale: f64) -> String {
    let specs = [nytaxi_like(), chicago_crime_like()];
    let etas = [32.0, 100.0, 320.0, 1000.0, 3200.0, 16000.0];
    let mut out = banner("Fig 8 — effect of eta on SNS+_VEC and SNS+_RND");
    let mut insensitive = true;
    for spec in specs {
        let events = ((spec.default_events as f64 * scale * 0.4) as usize).max(1_200);
        let stream = generate(&spec.generator(events, 0xf188));
        out.push_str(&format!("\n--- {} ---\n", spec.name));
        let mut t = Table::new(&["Method", "eta", "avg rel fitness"]);
        for kind in [AlgorithmKind::PlusVec, AlgorithmKind::PlusRnd] {
            let mut fits = Vec::new();
            for &eta in &etas {
                let mut params = ExperimentParams::from_spec(&spec);
                params.eta = eta;
                let cfg = RunConfig { checkpoints: 4, ..Default::default() };
                let r = run_method(&params, &stream, Method::Sns(kind), &cfg);
                t.row(vec![
                    kind.name().to_string(),
                    format!("{eta:.0}"),
                    f(r.avg_relative_fitness),
                ]);
                fits.push(r.avg_relative_fitness);
            }
            // "Insensitive as long as small enough": the spread across the
            // small-η half of the sweep should be tight.
            let small: Vec<f64> = fits[..3].to_vec();
            let max = small.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = small.iter().cloned().fold(f64::INFINITY, f64::min);
            if max - min > 0.25 {
                insensitive = false;
            }
        }
        out.push_str(&t.render());
    }
    out.push('\n');
    out.push_str(&observation(
        "7",
        "fitness is insensitive to eta in the small-eta regime",
        insensitive,
    ));
    out.push('\n');
    out
}
