//! Table II — dataset summary: paper-reported statistics side by side
//! with the synthetic twins actually used in the experiments.

use crate::report::{banner, f, Table};
use sns_data::{all_datasets, generate};
use sns_stream::ContinuousWindow;

/// Renders Table II.
pub fn run(scale: f64) -> String {
    let mut out = banner("Table II — real-world datasets (paper) vs synthetic twins (ours)");
    let mut paper = Table::new(&["Name", "Size (paper)", "#Non-zeros", "Density"]);
    for d in all_datasets() {
        let dims = d.paper_dims.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" x ");
        paper.row(vec![
            d.name.to_string(),
            dims,
            format!("{:.2}M", d.paper_nnz / 1e6),
            format!("{:.3e}", d.paper_density),
        ]);
    }
    out.push_str(&paper.render());

    out.push_str(
        "\nSynthetic twins at current scale (window statistics after one full prefill):\n",
    );
    let mut ours = Table::new(&[
        "Name",
        "Base dims",
        "Events",
        "Window nnz",
        "Window density",
        "Period T",
        "W",
    ]);
    for d in all_datasets() {
        let events = ((d.default_events as f64 * scale) as usize).max(500);
        let stream = generate(&d.generator(events, 0x7ab1e2));
        // Fill one window worth of events to report steady-state stats.
        let mut w = ContinuousWindow::new(d.base_dims, d.window, d.period);
        let mut buf = Vec::new();
        let horizon = d.window as u64 * d.period;
        for tu in stream.iter().filter(|t| t.time <= horizon) {
            w.ingest(*tu, &mut buf).expect("chronological");
            buf.clear();
        }
        ours.row(vec![
            d.name.to_string(),
            d.base_dims.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" x "),
            events.to_string(),
            w.tensor().nnz().to_string(),
            f(w.tensor().density()),
            format!("{} {}", d.period, d.tick_unit),
            d.window.to_string(),
        ]);
    }
    out.push_str(&ours.render());
    out.push_str(
        "\nNote: twins preserve mode structure and density regime; absolute sizes are\n\
         scaled for single-machine runs (DESIGN.md §4).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let s = super::run(0.02);
        assert!(s.contains("Divvy Bikes"));
        assert!(s.contains("Chicago Crime"));
        assert!(s.contains("New York Taxi"));
        assert!(s.contains("Ride Austin"));
        assert!(s.contains("84.39M"));
    }
}
