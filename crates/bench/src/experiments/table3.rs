//! Table III — default hyperparameter settings.

use crate::report::{banner, Table};
use sns_data::all_datasets;

/// Renders Table III (scale has no effect; kept for interface symmetry).
pub fn run(_scale: f64) -> String {
    let mut out = banner("Table III — default hyperparameters (paper values)");
    let mut t = Table::new(&["Name", "R", "W", "T (period)", "theta", "eta"]);
    for d in all_datasets() {
        t.row(vec![
            d.name.to_string(),
            d.rank.to_string(),
            d.window.to_string(),
            format!("{} {}", d.period, d.tick_unit),
            d.theta.to_string(),
            format!("{:.0}", d.eta),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_paper_defaults() {
        let s = super::run(1.0);
        assert!(s.contains("3600 seconds"));
        assert!(s.contains("720 hours"));
        // Ride Austin's θ = 50 is the only deviation from 20.
        assert!(s.contains("50"));
    }
}
