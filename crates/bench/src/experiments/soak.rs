//! Soak: a large pooled fleet with injected engine panics, proving the
//! ops layer keeps every stream alive and observable.
//!
//! The scenario behind `bench soak`:
//!
//! 1. **Fleet** — hundreds of small tenant streams (continuous SNS
//!    variants, a conventional baseline, anomaly-decorated engines)
//!    served concurrently through one [`EnginePool`]. Every
//!    `chaos_every`-th stream is wrapped in the chaos decorator and its
//!    trace is spiked with two [`POISON_VALUE`] tuples, so its engine
//!    panics **twice** mid-trace.
//! 2. **Quarantine** — each panic is caught by the worker: the engine is
//!    rolled back to its pre-batch snapshot, the batch goes to the
//!    dead-letter queue, and the stream rejects further batches (which
//!    are diverted behind it, in order) instead of dying. Healthy
//!    streams never notice.
//! 3. **Repair & replay** — the quarantined letters are repaired
//!    (poison → `1.0`) and re-driven through
//!    [`StreamSession::replay_quarantined`]. The final pooled state of
//!    *every* stream — chaos included — is then serialized with
//!    `sns-codec` and compared **byte for byte** against a serial
//!    single-threaded run of the same spec, same derived seed, over the
//!    repaired trace.
//! 4. **Observability** — an event-bus subscriber tallies the lifecycle
//!    events (opens, quarantines, checkpoint, evictions, anomalies); a
//!    second single-shard pool with a `queue_depth = 2` queue and a
//!    deliberately slow (chaos-delayed) engine exercises the typed
//!    [`SnsError::Backpressure`] path and its onset/relief events. The
//!    per-stream ingest-latency histograms and queue-depth gauges are
//!    exported as the `METRICS_*.json` artifact via `PoolOps::dump`.
//!
//! Any stream death, any non-bitwise replay, or any stream missing from
//! the metrics registry fails the scenario (and CI, which runs it with
//! `--smoke`).

use sns_core::als::AlsOptions;
use sns_core::config::{AlgorithmKind, SnsConfig};
use sns_data::{generate, GeneratorConfig};
use sns_ops::{BusItem, PoolEvent, Subscription};
use sns_runtime::pool::stream_seed;
use sns_runtime::{
    AnomalyConfig, BaselineKind, ChaosConfig, EnginePool, EngineSnapshot, EngineSpec, PoolConfig,
    SnsError, StreamSession, POISON_VALUE,
};
use sns_stream::StreamTuple;

/// Tiny tenant tensors: the soak is about fleet survival, not fitting.
const BASE_DIMS: [usize; 2] = [4, 3];
const W: usize = 3;
const T: u64 = 5;
const BATCH: usize = 25;

/// How to size the soak.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Concurrent pooled streams (the issue floor is 200).
    pub streams: usize,
    /// Events generated per stream.
    pub events: usize,
    /// Worker shards of the main pool.
    pub shards: usize,
    /// Every `chaos_every`-th stream id gets the chaos decorator and a
    /// poisoned trace.
    pub chaos_every: u64,
    /// Pool base seed (per-stream seeds are derived from it).
    pub base_seed: u64,
    /// Trace generator seed (per-stream traces are derived from it).
    pub data_seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            streams: 240,
            events: 600,
            shards: 4,
            chaos_every: 8,
            base_seed: 0x50ac,
            data_seed: 77,
        }
    }
}

/// Per-event-kind tallies observed by the bus subscriber.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventCounts {
    /// `StreamOpened`.
    pub opened: u64,
    /// `StreamEvicted` (any reason).
    pub evicted: u64,
    /// `StreamMigrated`.
    pub migrated: u64,
    /// `CheckpointCommitted`.
    pub checkpoints: u64,
    /// `AnomalyFlagged`.
    pub anomalies: u64,
    /// `TupleQuarantined`.
    pub quarantines: u64,
    /// `BackpressureOnset`.
    pub onsets: u64,
    /// `BackpressureRelief`.
    pub reliefs: u64,
    /// Events the subscriber missed (drop-oldest ring overwrote them).
    pub lagged: u64,
}

impl EventCounts {
    fn absorb(&mut self, item: BusItem<PoolEvent>) {
        match item {
            BusItem::Lagged { missed } => self.lagged += missed,
            BusItem::Event(e) => match *e {
                PoolEvent::StreamOpened { .. } => self.opened += 1,
                PoolEvent::StreamEvicted { .. } => self.evicted += 1,
                PoolEvent::StreamMigrated { .. } => self.migrated += 1,
                PoolEvent::CheckpointCommitted { .. } => self.checkpoints += 1,
                PoolEvent::AnomalyFlagged { .. } => self.anomalies += 1,
                PoolEvent::TupleQuarantined { .. } => self.quarantines += 1,
                PoolEvent::BackpressureOnset { .. } => self.onsets += 1,
                PoolEvent::BackpressureRelief { .. } => self.reliefs += 1,
                // Journal-gated; the soak pool attaches no journal, so
                // these never fire here.
                PoolEvent::BatchApplied { .. } => {}
            },
        }
    }

    fn drain(&mut self, sub: &mut Subscription<PoolEvent>) {
        for item in sub.drain() {
            self.absorb(item);
        }
    }
}

/// A completed soak.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Streams served by the main pool.
    pub streams: usize,
    /// How many of them were chaos streams.
    pub chaos_streams: usize,
    /// Streams whose final report carried a sticky error (must be 0).
    pub deaths: Vec<u64>,
    /// Total batches quarantined across the fleet (DLQ counter).
    pub quarantined_total: u64,
    /// Total letters successfully replayed after repair.
    pub replayed_total: u64,
    /// Streams whose final pooled state was byte-identical to the
    /// serial repaired-trace reference.
    pub bitwise: usize,
    /// Streams that diverged (must be empty).
    pub mismatched: Vec<u64>,
    /// Streams absent from the metrics registry, or present with an
    /// empty latency histogram / zero batches (must be empty).
    pub missing_metrics: Vec<u64>,
    /// Worst per-stream p99 ingest latency observed (µs).
    pub p99_max_us: f64,
    /// Typed `SnsError::Backpressure` rejections observed in the
    /// backpressure sub-phase.
    pub typed_backpressure: usize,
    /// Event tallies from the main pool's subscriber.
    pub events: EventCounts,
    /// Event tallies from the backpressure sub-phase's subscriber.
    pub backpressure_events: EventCounts,
    /// The main pool's `PoolOps::dump()` — the `METRICS_*.json`
    /// artifact (schema in the README).
    pub metrics_json: String,
}

impl SoakReport {
    /// True when every acceptance condition held: no stream died, every
    /// stream (chaos included) is bitwise-identical to its serial
    /// reference, every stream is present in the metrics dump with a
    /// non-empty latency histogram, panics were actually injected and
    /// replayed, and the event taxonomy was observed end to end.
    pub fn all_ok(&self) -> bool {
        self.deaths.is_empty()
            && self.mismatched.is_empty()
            && self.missing_metrics.is_empty()
            && self.bitwise == self.streams
            && self.chaos_streams > 0
            && self.quarantined_total > 0
            && self.replayed_total >= self.quarantined_total
            && self.typed_backpressure > 0
            && self.events.opened as usize >= self.streams
            && self.events.quarantines > 0
            && self.events.checkpoints > 0
            && self.events.evicted > 0
            && self.backpressure_events.onsets > 0
            && self.backpressure_events.reliefs > 0
            && self.p99_max_us.is_finite()
    }

    /// Renders the soak summary as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "soak: {} streams ({} chaos), {} deaths, {} batches quarantined, {} replayed\n",
            self.streams,
            self.chaos_streams,
            self.deaths.len(),
            self.quarantined_total,
            self.replayed_total,
        ));
        out.push_str(&format!(
            "  bitwise after repair: {}/{} ({} diverged), worst p99 ingest {:.1}us\n",
            self.bitwise,
            self.streams,
            self.mismatched.len(),
            self.p99_max_us,
        ));
        out.push_str(&format!(
            "  events: {} opened, {} evicted, {} quarantined, {} anomalies, {} checkpoints, {} lagged\n",
            self.events.opened,
            self.events.evicted,
            self.events.quarantines,
            self.events.anomalies,
            self.events.checkpoints,
            self.events.lagged,
        ));
        out.push_str(&format!(
            "  backpressure: {} typed rejections, {} onsets, {} reliefs (queue_depth=2)\n",
            self.typed_backpressure,
            self.backpressure_events.onsets,
            self.backpressure_events.reliefs,
        ));
        if !self.missing_metrics.is_empty() {
            out.push_str(&format!("  MISSING METRICS for streams {:?}\n", self.missing_metrics));
        }
        if !self.deaths.is_empty() {
            out.push_str(&format!("  DEAD streams {:?}\n", self.deaths));
        }
        out
    }
}

/// True when `id` hosts a chaos-decorated engine.
fn is_chaos(id: u64, cfg: &SoakConfig) -> bool {
    id % cfg.chaos_every == 0
}

/// The tenant mix: continuous SNS variants, one conventional baseline,
/// anomaly-decorated engines, and (on chaos ids) the chaos decorator
/// around the paper's reference method.
fn stream_spec(id: u64, cfg: &SoakConfig) -> EngineSpec {
    let sns = |kind| {
        EngineSpec::sns(
            &BASE_DIMS,
            W,
            T,
            kind,
            &SnsConfig { rank: 2, theta: 10, ..Default::default() },
        )
    };
    if is_chaos(id, cfg) {
        return sns(AlgorithmKind::PlusRnd).with_chaos(ChaosConfig::default());
    }
    match id % 4 {
        1 => sns(AlgorithmKind::PlusVec),
        2 => EngineSpec::baseline(&BASE_DIMS, W, T, 2, BaselineKind::OnlineScp),
        3 => sns(AlgorithmKind::PlusRnd).with_anomaly(AnomalyConfig::default()),
        _ => sns(AlgorithmKind::PlusRnd),
    }
}

/// One tenant's trace; chaos ids get two poison tuples spiked into the
/// live region (so the panic fires mid-stream, after warm start, and
/// the DLQ holds more than one letter when the second poison arrives
/// behind the quarantine).
fn stream_trace(id: u64, cfg: &SoakConfig) -> Vec<StreamTuple> {
    let mut trace = generate(&GeneratorConfig {
        base_dims: BASE_DIMS.to_vec(),
        n_components: 2,
        events: cfg.events,
        duration: 10 * W as u64 * T,
        zipf_exponent: 1.2,
        noise_fraction: 0.1,
        day_ticks: 50,
        seed: cfg.data_seed.wrapping_add(id),
        ..Default::default()
    });
    if is_chaos(id, cfg) {
        let cut = prefill_cut(&trace);
        let live = trace.len() - cut;
        assert!(live >= 6, "trace too short to poison");
        trace[cut + live / 3].value = POISON_VALUE;
        trace[cut + 2 * live / 3].value = POISON_VALUE;
    }
    trace
}

/// Index of the first live (post-initialization) tuple.
fn prefill_cut(trace: &[StreamTuple]) -> usize {
    trace.partition_point(|t| t.time <= W as u64 * T)
}

/// Undoes the poison: the repair applied to quarantined letters, and to
/// the serial reference trace.
fn repair_tuples(tuples: &mut [StreamTuple]) {
    for t in tuples {
        if t.value.to_bits() == POISON_VALUE.to_bits() {
            t.value = 1.0;
        }
    }
}

fn als_opts() -> AlsOptions {
    AlsOptions { max_iters: 4, tol: 1e-3, ..Default::default() }
}

/// True for the two error classes a quarantine surfaces to the driver:
/// the caught panic itself, and the diversion of batches submitted
/// while the stream is quarantined.
fn is_quarantine_class(e: &SnsError) -> bool {
    matches!(e.root_cause(), SnsError::EnginePanicked { .. } | SnsError::StreamQuarantined { .. })
}

/// Drives one stream's full trace through its session. Chaos streams
/// tolerate quarantine-class rejections (that is the scenario); any
/// other error — on any stream — is fatal.
fn drive_stream(
    session: &mut StreamSession,
    trace: &[StreamTuple],
    chaos: bool,
) -> Result<(), SnsError> {
    let cut = prefill_cut(trace);
    for chunk in trace[..cut].chunks(BATCH) {
        let _ = session.prefill_batch(chunk)?;
    }
    let _ = session.warm_start(&als_opts())?;
    for chunk in trace[cut..].chunks(BATCH) {
        match session.ingest_batch(chunk) {
            Ok(_) => {}
            Err(e) if chaos && is_quarantine_class(&e) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The serial reference: same spec, same derived seed, repaired trace,
/// single-threaded — serialized through the same canonical codec.
fn serial_reference_bytes(
    id: u64,
    cfg: &SoakConfig,
    trace: &[StreamTuple],
) -> Result<Vec<u8>, SnsError> {
    let mut repaired = trace.to_vec();
    repair_tuples(&mut repaired);
    let spec = stream_spec(id, cfg);
    let seed = spec.effective_seed(stream_seed(cfg.base_seed, id));
    let mut engine = spec.build(stream_seed(cfg.base_seed, id));
    let cut = prefill_cut(&repaired);
    engine.prefill_all(&repaired[..cut])?;
    engine.warm_start(&als_opts());
    engine.ingest_all(&repaired[cut..])?;
    let snapshot =
        EngineSnapshot { stream_id: id, spec, seed, wal_seq: 0, state: engine.snapshot()? };
    Ok(sns_codec::to_bytes(&snapshot))
}

/// The backpressure sub-phase: a single shard with a `queue_depth = 2`
/// queue in front of a chaos-delayed (slow, never-poisoned) engine.
/// Non-blocking submits observe typed [`SnsError::Backpressure`] with
/// live depth and capacity; the blocking path publishes onset/relief.
fn backpressure_phase(cfg: &SoakConfig) -> Result<(usize, EventCounts), SnsError> {
    const QUEUE: usize = 2;
    let pool = EnginePool::new(PoolConfig {
        shards: 1,
        base_seed: cfg.base_seed,
        queue_depth: QUEUE,
        bus_capacity: 1 << 12,
        ..Default::default()
    });
    let mut sub = pool.ops().subscribe();
    let id = cfg.streams as u64 + 1;
    let spec = EngineSpec::sns(
        &BASE_DIMS,
        W,
        T,
        AlgorithmKind::PlusRnd,
        &SnsConfig { rank: 2, theta: 10, ..Default::default() },
    )
    .with_chaos(ChaosConfig { poison_value: POISON_VALUE, delay_micros: 200 });
    let mut session = pool.open(id, spec)?;
    let trace = stream_trace(id, cfg); // id is off the chaos grid check
    assert!(
        trace.iter().all(|t| t.value.to_bits() != POISON_VALUE.to_bits()),
        "backpressure trace must not poison",
    );
    let cut = prefill_cut(&trace);
    let mut typed = 0usize;
    for chunk in trace[cut..].chunks(8) {
        match session.try_ingest_batch(chunk) {
            Ok(_ticket) => {}
            Err(SnsError::Backpressure { depth, capacity, .. }) => {
                assert!(capacity == QUEUE && depth <= capacity);
                typed += 1;
                let _ = session.ingest_batch(chunk)?; // shed to the blocking path
            }
            Err(e) => return Err(e),
        }
    }
    while let Some(receipt) = session.recv_receipt() {
        let _ = receipt?;
    }
    drop(session);
    pool.join();
    let mut counts = EventCounts::default();
    counts.drain(&mut sub);
    Ok((typed, counts))
}

/// Runs the soak; see the module docs for the four phases.
///
/// # Errors
/// Any error on a *healthy* stream, or a non-quarantine error on a
/// chaos stream. Acceptance shortfalls (a death, a diverged replay, a
/// missing metric) are not errors — they are reported per stream and
/// the caller exits non-zero on [`SoakReport::all_ok`] being false.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, SnsError> {
    let ids: Vec<u64> = (0..cfg.streams as u64).collect();
    let traces: Vec<Vec<StreamTuple>> = ids.iter().map(|&id| stream_trace(id, cfg)).collect();

    let pool = EnginePool::new(PoolConfig {
        shards: cfg.shards,
        base_seed: cfg.base_seed,
        queue_depth: 64,
        bus_capacity: 1 << 16,
        ..Default::default()
    });
    let mut sub = pool.ops().subscribe();
    let mut sessions: Vec<StreamSession> = Vec::with_capacity(ids.len());
    for &id in &ids {
        sessions.push(pool.open(id, stream_spec(id, cfg))?);
    }

    // Phase 1+2: every stream driven concurrently; chaos engines panic
    // twice mid-trace and get quarantined instead of killed.
    let results: Vec<Result<(), SnsError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter_mut()
            .zip(&ids)
            .zip(&traces)
            .map(|((session, &id), trace)| {
                let chaos = is_chaos(id, cfg);
                scope.spawn(move || drive_stream(session, trace, chaos))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver thread panicked")).collect()
    });
    results.into_iter().collect::<Result<Vec<()>, SnsError>>()?;

    // Phase 3: repair the dead letters (poison → 1.0) and re-drive
    // them, in original submission order, through the repaired engines.
    let mut replayed_total = 0u64;
    for (session, &id) in sessions.iter_mut().zip(&ids) {
        if is_chaos(id, cfg) {
            replayed_total += session.replay_quarantined(|letter| {
                repair_tuples(&mut letter.tuples);
            })? as u64;
        }
    }
    let quarantined_total = pool.ops().dlq().stats().quarantined_total;

    // Verdict: final pooled state vs the serial repaired-trace run,
    // byte for byte, for every stream.
    let mut deaths = Vec::new();
    let mut mismatched = Vec::new();
    let mut bitwise = 0usize;
    for (session, (&id, trace)) in sessions.iter_mut().zip(ids.iter().zip(&traces)) {
        let report = session.report()?;
        if report.error.is_some() {
            deaths.push(id);
            continue;
        }
        let pooled = sns_codec::to_bytes(&session.snapshot()?);
        if pooled == serial_reference_bytes(id, cfg, trace)? {
            bitwise += 1;
        } else {
            mismatched.push(id);
        }
    }

    // Phase 4: checkpoint (for the CheckpointCommitted event), export
    // the metrics artifact, validate per-stream observability.
    for (_, snapshot) in pool.checkpoint_all() {
        let _ = snapshot?;
    }
    let metrics = pool.ops().metrics();
    let mut missing_metrics = Vec::new();
    let mut p99_max_us = 0.0f64;
    let known = metrics.stream_ids();
    for &id in &ids {
        if !known.contains(&id) {
            missing_metrics.push(id);
            continue;
        }
        let m = metrics.stream(id);
        let latency = m.latency.snapshot();
        let batches = m.batches.load(std::sync::atomic::Ordering::Relaxed);
        if latency.count == 0 || batches == 0 || !latency.p99_us.is_finite() {
            missing_metrics.push(id);
            continue;
        }
        p99_max_us = p99_max_us.max(latency.p99_us);
    }
    let metrics_json = pool.ops().dump();
    drop(sessions);
    pool.join();
    let mut events = EventCounts::default();
    events.drain(&mut sub);

    let (typed_backpressure, backpressure_events) = backpressure_phase(cfg)?;

    Ok(SoakReport {
        streams: cfg.streams,
        chaos_streams: ids.iter().filter(|&&id| is_chaos(id, cfg)).count(),
        deaths,
        quarantined_total,
        replayed_total,
        bitwise,
        mismatched,
        missing_metrics,
        p99_max_us,
        typed_backpressure,
        events,
        backpressure_events,
        metrics_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_survives_panics_and_replays_bitwise() {
        let cfg = SoakConfig { streams: 24, events: 150, shards: 3, ..Default::default() };
        let report = run_soak(&cfg).unwrap();
        assert_eq!(report.streams, 24);
        assert_eq!(report.chaos_streams, 3);
        assert!(report.deaths.is_empty(), "streams died: {:?}", report.deaths);
        assert!(report.mismatched.is_empty(), "diverged: {:?}", report.mismatched);
        assert_eq!(report.bitwise, 24, "every stream must be bitwise after repair");
        assert!(report.quarantined_total >= 6, "two poisons per chaos stream quarantine");
        assert!(report.replayed_total >= report.quarantined_total);
        assert!(report.missing_metrics.is_empty(), "missing: {:?}", report.missing_metrics);
        assert!(report.typed_backpressure > 0);
        assert!(report.backpressure_events.onsets > 0);
        assert!(report.backpressure_events.reliefs > 0);
        assert!(report.events.opened >= 24);
        assert!(report.events.quarantines > 0);
        assert!(report.events.checkpoints > 0);
        assert!(report.all_ok(), "\n{}", report.render());
        for key in ["\"metrics\"", "\"shards\"", "\"streams\"", "\"events\"", "\"dlq\""] {
            assert!(report.metrics_json.contains(key), "dump missing {key}");
        }
    }
}
