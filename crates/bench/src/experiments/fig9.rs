//! Figure 9 — application: anomaly detection on the New York Taxi stream.
//!
//! Protocol (Section VI-G): inject 20 spikes of 5× the maximum 1-second
//! change into random entries; score every arrival by the z-score of its
//! reconstruction error (against the *pre-update* model — the model must
//! not absorb the spike before it is scored); report precision@20 and the
//! time between occurrence and detection. SliceNStitch scores each event
//! the moment it arrives; the per-period baselines can only score a spike
//! when its period completes — a gap of up to `T` (the paper measures
//! ~1400–1600 s at `T` = 1 h, vs 0.0015 s for SNS+_RND).

use crate::report::{banner, f, observation, Table};
use crate::runner::ExperimentParams;
use sns_baselines::{CpStream, OnlineScp, PeriodicCpd};
use sns_core::anomaly::AnomalyDetector;
use sns_core::config::{AlgorithmKind, Precision, SnsConfig};
use sns_core::update::{ContinuousUpdater, Updater};
use sns_data::{generate, inject_anomalies, nytaxi_like, InjectedAnomaly};
use sns_stream::{ContinuousWindow, DeltaKind, DiscreteWindow, StreamTuple};

struct DetectionOutcome {
    method: String,
    precision: f64,
    mean_gap: f64,
    scored: usize,
}

fn is_hit(
    e: &sns_core::anomaly::ScoredEvent,
    injected: &[InjectedAnomaly],
    tolerance: u64,
) -> Option<usize> {
    let tm = e.coord.order() - 1;
    injected.iter().position(|a| {
        e.time >= a.time
            && e.time - a.time <= tolerance
            && a.coords.as_slice() == &e.coord.as_slice()[..tm]
    })
}

fn outcome(
    method: &str,
    det: &AnomalyDetector,
    injected: &[InjectedAnomaly],
    tolerance: u64,
) -> DetectionOutcome {
    let top = det.top_k(injected.len());
    let mut hits = 0usize;
    let mut gap_sum = 0.0;
    let mut matched = vec![false; injected.len()];
    for e in &top {
        if let Some(idx) = is_hit(e, injected, tolerance) {
            if !matched[idx] {
                matched[idx] = true;
                hits += 1;
                gap_sum += (e.time - injected[idx].time) as f64;
            }
        }
    }
    DetectionOutcome {
        method: method.to_string(),
        precision: hits as f64 / injected.len() as f64,
        mean_gap: if hits > 0 { gap_sum / hits as f64 } else { f64::NAN },
        scored: det.events().len(),
    }
}

/// Continuous detector: SNS+_RND scoring each arrival *before* the factor
/// update absorbs it.
fn detect_continuous(
    params: &ExperimentParams,
    stream: &[StreamTuple],
    injected: &[InjectedAnomaly],
    seed: u64,
) -> DetectionOutcome {
    let config = SnsConfig {
        rank: params.rank,
        theta: params.theta,
        eta: params.eta,
        init_scale: 1.0,
        seed,
        precision: Precision::F64,
    };
    let mut dims = params.base_dims.clone();
    dims.push(params.window);
    let mut window = ContinuousWindow::new(&params.base_dims, params.window, params.period);
    let mut updater = Updater::new(AlgorithmKind::PlusRnd, &dims, &config);
    let mut det = AnomalyDetector::new();
    let mut buf = Vec::new();
    let prefill = params.prefill_until();
    let mut warmed = false;
    for tu in stream {
        if !warmed && tu.time > prefill {
            let warm = sns_core::als::als(
                window.tensor(),
                params.rank,
                &sns_core::als::AlsOptions { max_iters: 20, tol: 1e-4, ..Default::default() },
            );
            updater.install(warm.kruskal, warm.grams);
            warmed = true;
        }
        buf.clear();
        window.ingest(*tu, &mut buf).expect("chronological");
        for d in &buf {
            if warmed {
                if d.kind == DeltaKind::Arrival {
                    // Score before the model sees the event.
                    let (coord, _) = d.changes.as_slice()[0];
                    det.observe(window.tensor(), updater.kruskal(), &coord, d.time);
                }
                updater.apply(window.tensor(), d);
            }
        }
    }
    outcome("SNS+_RND", &det, injected, 0)
}

/// Periodic detector: scores every slice entry at the period boundary,
/// before the baseline's factor update.
fn detect_periodic(
    params: &ExperimentParams,
    stream: &[StreamTuple],
    injected: &[InjectedAnomaly],
    mut algo: Box<dyn PeriodicCpd>,
    name: &str,
) -> DetectionOutcome {
    let mut window = DiscreteWindow::new(&params.base_dims, params.window, params.period);
    let mut det = AnomalyDetector::new();
    let mut buf = Vec::new();
    let prefill = params.prefill_until();
    let mut warmed = false;
    let newest = (params.window - 1) as u32;
    for tu in stream {
        if !warmed && tu.time > prefill {
            let warm = sns_core::als::als(
                window.tensor(),
                params.rank,
                &sns_core::als::AlsOptions { max_iters: 20, tol: 1e-4, ..Default::default() },
            );
            algo.install(warm.kruskal, warm.grams);
            warmed = true;
        }
        buf.clear();
        window.ingest(*tu, &mut buf).expect("chronological");
        for u in &buf {
            if warmed {
                // Score the completed slice against the stale model; the
                // detection timestamp is the period boundary.
                for (c, _v) in &u.slice {
                    let coord = c.extended(newest);
                    det.observe(window.tensor(), algo.kruskal(), &coord, u.boundary);
                }
                algo.on_period(window.tensor(), u);
            }
        }
    }
    outcome(name, &det, injected, params.period)
}

/// Renders Fig. 9.
pub fn run(scale: f64) -> String {
    let spec = nytaxi_like();
    let params = ExperimentParams::from_spec(&spec);
    let events = ((spec.default_events as f64 * scale * 0.6) as usize).max(3_000);
    let clean = generate(&spec.generator(events, 0xf199));
    // Inject after the prefill horizon so the warm start is clean.
    let (stream, injected) = inject_anomalies(
        &clean,
        &params.base_dims,
        20,
        5.0,
        params.prefill_until() + 1,
        spec.duration(),
        0xabc,
    );

    let mut out = banner("Fig 9 — anomaly detection (New York Taxi-like, 20 injected spikes)");
    let mut t = Table::new(&[
        "Method",
        "Precision@20",
        "Mean occurrence->detection gap (s)",
        "Events scored",
    ]);

    let cont = detect_continuous(&params, &stream, &injected, 0x99);
    let mut dims = params.base_dims.clone();
    dims.push(params.window);
    let scp = detect_periodic(
        &params,
        &stream,
        &injected,
        Box::new(OnlineScp::new(&dims, params.rank, 0x99)),
        "OnlineSCP",
    );
    let cps = detect_periodic(
        &params,
        &stream,
        &injected,
        Box::new(CpStream::new(&dims, params.rank, 0.99, 3, 0x99)),
        "CP-stream",
    );

    let mut gap_ok = true;
    for o in [&cont, &scp, &cps] {
        t.row(vec![o.method.clone(), f(o.precision), f(o.mean_gap), o.scored.to_string()]);
    }
    if !(cont.mean_gap == 0.0 || cont.mean_gap.is_nan()) {
        gap_ok = false;
    }
    if scp.mean_gap.is_finite() && scp.mean_gap <= cont.mean_gap.max(0.0) {
        gap_ok = false;
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(
        "Paper: SNS+_RND precision 0.80 @ gap 0.0015 s; OnlineSCP 0.80 @ 1601 s; CP-stream 0.70 @ 1424 s.\n",
    );
    out.push_str(&observation(
        "Fig9",
        "continuous detection is immediate (gap = 0 stream seconds); periodic methods wait for the boundary",
        gap_ok,
    ));
    out.push('\n');
    out.push_str(&observation(
        "Fig9b",
        &format!(
            "continuous precision ({}) is comparable to the best periodic precision ({})",
            f(cont.precision),
            f(scp.precision.max(cps.precision))
        ),
        cont.precision + 0.25 >= scp.precision.max(cps.precision),
    ));
    out.push('\n');
    out
}
