//! One module per paper table/figure. Every module exposes
//! `run(scale: f64) -> String`; the binaries print that string, and
//! `run_all` concatenates everything for `EXPERIMENTS.md`.
//!
//! [`sweep`], [`recover`], [`soak`], and [`fleet`] are not paper
//! figures: they are the pooled multi-rank sweep scenario
//! (`bench sweep`), the pool-wide crash recovery scenario
//! (`bench recover`), the chaos/quarantine soak (`bench soak`), and the
//! shards × streams aggregate-throughput grid (`bench fleet`), all
//! documented in the README.

pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod recover;
pub mod soak;
pub mod sweep;
pub mod table2;
pub mod table3;

/// Runs every experiment at the given scale, in paper order.
pub fn run_all(scale: f64) -> String {
    let mut out = String::new();
    out.push_str(&table2::run(scale));
    out.push_str(&table3::run(scale));
    out.push_str(&fig1::run(scale));
    out.push_str(&fig4::run(scale));
    out.push_str(&fig5::run(scale));
    out.push_str(&fig6::run(scale));
    out.push_str(&fig7::run(scale));
    out.push_str(&fig8::run(scale));
    out.push_str(&fig9::run(scale));
    out
}
