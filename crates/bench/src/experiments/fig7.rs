//! Figure 7 — effect of the sampling threshold θ on SNS_RND / SNS+_RND.
//!
//! θ sweeps 25%–200% of the Table III default. The paper finds fitness
//! increasing with diminishing returns while the update time grows
//! linearly (Obs. 6).

use crate::method::Method;
use crate::report::{banner, f, observation, Table};
use crate::runner::{run_method, ExperimentParams, RunConfig};
use sns_core::config::AlgorithmKind;
use sns_data::{generate, nytaxi_like, ride_austin_like};

/// Renders Fig. 7.
pub fn run(scale: f64) -> String {
    let specs = [nytaxi_like(), ride_austin_like()];
    let fractions = [0.25, 0.5, 1.0, 1.5, 2.0];
    let mut out = banner("Fig 7 — effect of theta on SNS_RND and SNS+_RND");
    let mut fitness_trend_ok = true;
    let mut time_trend_ok = true;
    for spec in specs {
        let events = ((spec.default_events as f64 * scale * 0.5) as usize).max(1_500);
        let stream = generate(&spec.generator(events, 0xf177));
        out.push_str(&format!("\n--- {} (default theta = {}) ---\n", spec.name, spec.theta));
        let mut t = Table::new(&["Method", "theta", "avg rel fitness", "us/update"]);
        for kind in [AlgorithmKind::Rnd, AlgorithmKind::PlusRnd] {
            let mut series = Vec::new();
            for &frac in &fractions {
                let mut params = ExperimentParams::from_spec(&spec);
                params.theta = ((spec.theta as f64 * frac) as usize).max(1);
                let cfg = RunConfig { checkpoints: 5, ..Default::default() };
                let r = run_method(&params, &stream, Method::Sns(kind), &cfg);
                t.row(vec![
                    kind.name().to_string(),
                    params.theta.to_string(),
                    f(r.avg_relative_fitness),
                    f(r.avg_update_us),
                ]);
                series.push((params.theta, r.avg_relative_fitness, r.avg_update_us));
            }
            // Trends (with slack for sampling noise): the largest θ should
            // fit at least as well as the smallest, and cost more time.
            let (first, last) = (series[0], series[series.len() - 1]);
            if kind == AlgorithmKind::PlusRnd {
                if last.1 < first.1 - 0.05 {
                    fitness_trend_ok = false;
                }
                // Timing trend checked on the taxi twin only: on Ride
                // Austin the exact path (deg ≤ θ) progressively replaces
                // the costlier sampled path as θ grows, which can offset
                // the per-sample cost increase.
                if spec.name == "New York Taxi" && last.2 <= first.2 {
                    time_trend_ok = false;
                }
            }
        }
        out.push_str(&t.render());
    }
    out.push('\n');
    out.push_str(&observation(
        "6a",
        "fitness increases with theta (diminishing returns)",
        fitness_trend_ok,
    ));
    out.push('\n');
    out.push_str(&observation("6b", "update time grows with theta", time_trend_ok));
    out.push('\n');
    out
}
