//! Figure 5 — per-update runtime (a) and average relative fitness (b),
//! all methods × 4 datasets.
//!
//! The paper's headline: every SliceNStitch variant updates orders of
//! magnitude faster than the per-period baselines (up to 464× vs
//! CP-stream for SNS+_RND) at comparable fitness (Obs. 2 and 4). Note the
//! units: a SliceNStitch "update" reacts to a *single event*, a baseline
//! "update" digests a whole period.

use crate::experiments::fig4::{collect, DatasetRuns};
use crate::report::{banner, f, observation, Table};

/// Renders Fig. 5 from collected lineup runs.
pub fn render(runs: &[DatasetRuns]) -> String {
    let mut out = banner("Fig 5 — runtime per update and average relative fitness");
    let mut t =
        Table::new(&["Dataset", "Method", "us/update", "avg rel fitness", "speedup vs CP-stream"]);
    let mut speedup_ok = true;
    for dr in runs {
        let cpstream_us = dr
            .results
            .iter()
            .find(|r| r.method == "CP-stream")
            .map(|r| r.avg_update_us)
            .unwrap_or(f64::NAN);
        for r in &dr.results {
            let speedup = cpstream_us / r.avg_update_us;
            t.row(vec![
                dr.spec.name.to_string(),
                r.method.clone(),
                f(r.avg_update_us),
                if r.diverged {
                    format!("{} (diverged)", f(r.avg_relative_fitness))
                } else {
                    f(r.avg_relative_fitness)
                },
                if r.method == "CP-stream" {
                    "1.0 (ref)".into()
                } else {
                    format!("{:.1}x", speedup)
                },
            ]);
        }
        // Obs. 2: the fast SNS variants must beat every baseline's update
        // time on every dataset.
        let fastest_baseline = dr
            .results
            .iter()
            .filter(|r| !r.method.starts_with("SNS"))
            .map(|r| r.avg_update_us)
            .fold(f64::INFINITY, f64::min);
        // The paper's guide recommends the clipped variants; their speed
        // advantage must hold on every dataset. (The unclipped variants
        // also win wherever they are stable, but a destabilized run has
        // meaningless timing — see Observation 3.)
        for name in ["SNS+_VEC", "SNS+_RND"] {
            if let Some(r) = dr.results.iter().find(|r| r.method == name) {
                if r.avg_update_us >= fastest_baseline {
                    speedup_ok = false;
                }
            }
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&observation(
        "2",
        "the stable row-wise SNS variants update faster than the fastest per-period baseline on every dataset",
        speedup_ok,
    ));
    out.push('\n');
    out
}

/// Full Fig. 5 experiment.
pub fn run(scale: f64) -> String {
    render(&collect(scale))
}
