//! Kill → recover → finish: pool-wide crash recovery, proven bitwise.
//!
//! The scenario behind `bench recover`:
//!
//! 1. **Reference run** — a pooled fleet covering every engine family
//!    (the continuous SNS variants, all four conventional baselines, and
//!    an anomaly-decorated engine) replays a trace end to end,
//!    uninterrupted; each final engine state is serialized with
//!    `sns-codec`.
//! 2. **Interrupted run** — an identical fleet replays the *first half*
//!    of the trace, the pool is checkpointed to a file-backed
//!    [`CheckpointStore`], and the pool is dropped mid-trace (the
//!    "crash"). A **brand-new** pool recovers every stream from disk and
//!    finishes the trace.
//! 3. **Verdict** — the recovered fleet's final snapshots are serialized
//!    and compared **byte for byte** against the reference's. Because
//!    the codec is canonical, byte equality is full state equality:
//!    factors, Grams, window orders, pending events, RNG states,
//!    detector statistics — everything.
//!
//! Any divergence — a field the codec forgot, dead state that turned out
//! to be live, an iteration order that did not survive the disk round
//! trip — fails the scenario (and CI, which runs it with `--smoke`).

use crate::report::{f, Table};
use sns_codec::store::{checkpoint_pool, recover_pool, CheckpointStore};
use sns_codec::to_bytes;
use sns_core::als::AlsOptions;
use sns_core::config::{AlgorithmKind, Precision, SnsConfig};
use sns_data::replay::{replay, ReplayPlan};
use sns_data::{generate, nytaxi_like, DatasetSpec};
use sns_runtime::{AnomalyConfig, EnginePool, EngineSpec, PoolConfig, SnsError};
use sns_stream::StreamTuple;
use std::collections::HashMap;
use std::path::PathBuf;

/// How to size the recover scenario.
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// Events generated for the trace.
    pub events: usize,
    /// Worker shards of both pools.
    pub shards: usize,
    /// Pool base seed.
    pub base_seed: u64,
    /// Trace generator seed.
    pub data_seed: u64,
    /// Directory the checkpoint is written to (kept afterwards so CI can
    /// upload the manifest as an artifact).
    pub dir: PathBuf,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            events: 20_000,
            shards: 4,
            base_seed: 0x5eed,
            data_seed: 42,
            dir: PathBuf::from("recover-checkpoint"),
        }
    }
}

/// Outcome for one stream of the fleet.
#[derive(Debug, Clone)]
pub struct RecoverCell {
    /// Pooled stream id.
    pub stream_id: u64,
    /// Engine display name.
    pub name: String,
    /// Factor updates at end of trace (recovered run).
    pub updates: u64,
    /// Final fitness (recovered run).
    pub fitness: f64,
    /// Serialized snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// Whether the recovered final state is byte-identical to the
    /// uninterrupted run's.
    pub identical: bool,
}

/// A completed recover scenario.
#[derive(Debug, Clone)]
pub struct RecoverReport {
    /// Dataset the trace mirrors.
    pub dataset: String,
    /// Events in the trace.
    pub events: usize,
    /// Trace index the crash was injected at.
    pub crash_at: usize,
    /// Per-stream outcomes, in stream-id order.
    pub cells: Vec<RecoverCell>,
    /// Path of the checkpoint manifest left on disk.
    pub manifest: PathBuf,
}

impl RecoverReport {
    /// True when every stream recovered bitwise.
    pub fn all_identical(&self) -> bool {
        self.cells.iter().all(|c| c.identical)
    }

    /// Renders the scenario as an aligned text table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["stream", "engine", "updates", "fitness", "bytes", "bitwise"]);
        for c in &self.cells {
            t.row(vec![
                c.stream_id.to_string(),
                c.name.clone(),
                c.updates.to_string(),
                f(c.fitness),
                c.snapshot_bytes.to_string(),
                if c.identical { "identical".to_string() } else { "DIVERGED".to_string() },
            ]);
        }
        t.render()
    }

    /// Serializes the machine-readable report (schema in the README).
    pub fn to_json(&self) -> String {
        fn jf(x: f64) -> String {
            if x.is_finite() {
                format!("{x:.6}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"sns-recover\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"dataset\": \"{}\", \"synthetic\": true, \"events\": {}, \"crash_at\": {}, \"streams\": {}}},\n",
            self.dataset,
            self.events,
            self.crash_at,
            self.cells.len(),
        ));
        out.push_str(&format!("  \"all_identical\": {},\n", self.all_identical()));
        out.push_str("  \"streams\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stream_id\": {}, \"engine\": \"{}\", \"updates\": {}, \"fitness\": {}, \"snapshot_bytes\": {}, \"identical\": {}}}{}\n",
                c.stream_id,
                c.name,
                c.updates,
                jf(c.fitness),
                c.snapshot_bytes,
                c.identical,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The fleet: every engine family plus the anomaly decorator, one
/// pooled stream each. Rank is kept small — the scenario is about state
/// fidelity, not fitting quality.
fn fleet(spec: &DatasetSpec) -> Vec<(u64, EngineSpec)> {
    let sns = |kind| {
        EngineSpec::sns(
            spec.base_dims,
            spec.window,
            spec.period,
            kind,
            &SnsConfig {
                rank: 4,
                theta: spec.theta,
                eta: spec.eta,
                init_scale: 1.0,
                seed: 0,
                precision: Precision::F64,
            },
        )
    };
    let baseline = |algo| EngineSpec::baseline(spec.base_dims, spec.window, spec.period, 4, algo);
    vec![
        (0, sns(AlgorithmKind::PlusRnd)),
        (1, sns(AlgorithmKind::PlusVec)),
        (2, baseline(sns_runtime::BaselineKind::AlsPeriodic { sweeps: 1 })),
        (3, baseline(sns_runtime::BaselineKind::OnlineScp)),
        (4, baseline(sns_runtime::BaselineKind::CpStream { decay: 0.99, iters: 2 })),
        (5, baseline(sns_runtime::BaselineKind::NeCpd { epochs: 1 })),
        (6, sns(AlgorithmKind::PlusRnd).with_anomaly(AnomalyConfig::default())),
    ]
}

/// Opens every fleet stream on `pool` and replays `tuples` through all
/// of them concurrently (one driver thread per stream).
fn replay_fleet(
    pool: &EnginePool,
    streams: &[(u64, EngineSpec)],
    tuples: &[StreamTuple],
    plan: &ReplayPlan,
) -> Result<Vec<sns_runtime::StreamSession>, SnsError> {
    let mut sessions = Vec::with_capacity(streams.len());
    for (id, spec) in streams {
        sessions.push(pool.open(*id, spec.clone())?);
    }
    drive_fleet(&mut sessions, tuples, plan)?;
    Ok(sessions)
}

/// Replays `tuples` through already-open sessions concurrently.
fn drive_fleet(
    sessions: &mut [sns_runtime::StreamSession],
    tuples: &[StreamTuple],
    plan: &ReplayPlan,
) -> Result<(), SnsError> {
    let results: Vec<Result<(), SnsError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter_mut()
            .map(|session| scope.spawn(move || replay(session, tuples, plan).map(|_| ())))
            .collect();
        handles.into_iter().map(|h| h.join().expect("replay thread panicked")).collect()
    });
    results.into_iter().collect()
}

/// Runs the scenario; see the module docs for the three phases.
///
/// # Errors
/// Any pool, replay, codec, or store error; a *non-identical* recovery
/// is not an error — it is reported per stream (and the caller exits
/// non-zero on [`RecoverReport::all_identical`] being false).
pub fn run_recover(cfg: &RecoverConfig) -> Result<RecoverReport, SnsError> {
    let spec = nytaxi_like();
    let trace = generate(&spec.generator(cfg.events, cfg.data_seed));
    let als = AlsOptions { max_iters: 8, tol: 1e-3, ..Default::default() };
    let full_plan = ReplayPlan::for_dataset(&spec, als.clone());
    let streams = fleet(&spec);
    let pool_config = || PoolConfig {
        shards: cfg.shards,
        base_seed: cfg.base_seed,
        queue_depth: 64,
        ..Default::default()
    };

    // Phase 1: the uninterrupted reference. Snapshots are taken while
    // the sessions are still open (closing a session drops its slot).
    let reference_pool = EnginePool::new(pool_config());
    let sessions = replay_fleet(&reference_pool, &streams, &trace, &full_plan)?;
    let mut reference_bytes: HashMap<u64, Vec<u8>> = HashMap::new();
    for (id, snapshot) in reference_pool.checkpoint_all() {
        reference_bytes.insert(id, to_bytes(&snapshot?));
    }
    drop(sessions);
    reference_pool.join();

    // Phase 2: replay half the trace, checkpoint to disk, crash.
    let crash_at = trace.len() / 2;
    let first_half_plan = ReplayPlan { advance_to: None, ..full_plan.clone() };
    let store = CheckpointStore::create(&cfg.dir)?;
    let doomed_pool = EnginePool::new(pool_config());
    let sessions = replay_fleet(&doomed_pool, &streams, &trace[..crash_at], &first_half_plan)?;
    checkpoint_pool(&doomed_pool, &store)?;
    drop(sessions);
    drop(doomed_pool); // the crash: no clean close, the process state is gone

    // Phase 3: recover from disk into a brand-new pool, finish the trace.
    let recovered_pool = EnginePool::new(pool_config());
    let mut recovered = recover_pool(&recovered_pool, &store)?;
    let tail_plan = ReplayPlan {
        prefill_until: None,
        warm_start: None,
        bucket_ticks: full_plan.bucket_ticks,
        max_batch: full_plan.max_batch,
        advance_to: full_plan.advance_to,
    };
    drive_fleet(&mut recovered, &trace[crash_at..], &tail_plan)?;

    let mut cells = Vec::with_capacity(streams.len());
    for session in &mut recovered {
        let report = session.report()?;
        if let Some(e) = report.error {
            return Err(e);
        }
        let snapshot = session.snapshot()?;
        let bytes = to_bytes(&snapshot);
        let reference = reference_bytes
            .get(&report.stream_id)
            .ok_or(SnsError::StreamClosed { stream_id: report.stream_id })?;
        cells.push(RecoverCell {
            stream_id: report.stream_id,
            name: report.name,
            updates: report.updates_applied,
            fitness: report.fitness,
            snapshot_bytes: bytes.len(),
            identical: &bytes == reference,
        });
    }
    cells.sort_by_key(|c| c.stream_id);
    drop(recovered);
    recovered_pool.join();

    Ok(RecoverReport {
        dataset: spec.name.to_string(),
        events: trace.len(),
        crash_at,
        cells,
        manifest: store.manifest_path(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_recover_finish_is_bitwise_identical() {
        let dir = std::env::temp_dir().join(format!("sns-recover-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_recover(&RecoverConfig {
            events: 3_000,
            shards: 3,
            base_seed: 0xbead,
            data_seed: 7,
            dir: dir.clone(),
        })
        .unwrap();
        assert_eq!(report.cells.len(), 7, "every engine family plus the decorator");
        for c in &report.cells {
            assert!(c.identical, "stream {} ({}) diverged after recovery", c.stream_id, c.name);
            assert!(c.updates > 0, "stream {} applied no updates", c.stream_id);
            assert!(c.snapshot_bytes > 0);
        }
        assert!(report.all_identical());
        assert!(report.manifest.exists(), "manifest must stay on disk for CI artifacts");
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"sns-recover\""));
        assert!(json.contains("\"all_identical\": true"));
        assert!(report.render().contains("identical"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
